// Dataset comparison — the demo's second use case (paper §IV-D): apply the
// same algorithm to different datasets to gain insights. Two sub-studies:
//
//  (a) cross-cultural: CycleRank around "Fake news" on six Wikipedia
//      language editions (the Table III experiment);
//  (b) cross-time: PageRank hubs of the wiki-like en snapshots from 2003
//      to 2018 ("comparing snapshots of a graph at different points in
//      time, another functionality available in the demo").

#include <cstdio>
#include <string>
#include <vector>

#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/catalog.h"
#include "datasets/corpus.h"
#include "platform/gateway.h"

using namespace cyclerank;

namespace {

int CrossCultural() {
  std::puts("(a) cross-cultural: CycleRank (K=3) around 'Fake news'\n");
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4));
  TaskBuilder builder;
  for (const std::string& lang : FakeNewsLanguages()) {
    const auto title = FakeNewsTitle(lang);
    if (!title.ok()) return 1;
    (void)builder.Add("fakenews-" + lang, "cyclerank",
                      "source=" + *title + ", k=3, sigma=exp, top_k=6");
  }
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return 1;
  (void)gateway.WaitForCompletion(*id, 60.0);
  auto results = gateway.GetResults(*id);
  if (!results.ok()) return 1;

  for (const TaskResult& result : *results) {
    auto graph = store.GetDataset(result.spec.dataset);
    if (!graph.ok() || !result.status.ok()) continue;
    std::printf("  %s:\n", result.spec.dataset.c_str());
    size_t rank = 0;
    for (const ScoredNode& entry : result.ranking) {
      const std::string name = (*graph)->NodeName(entry.node);
      if (name == result.spec.params.GetString("source", "")) continue;
      std::printf("    %zu. %s\n", ++rank, name.c_str());
      if (rank == 5) break;
    }
  }
  return 0;
}

int CrossTime() {
  std::puts(
      "\n(b) cross-time: top PageRank hub of wikilink-en snapshots\n");
  for (int year : {2003, 2008, 2013, 2018}) {
    const std::string name = "wikilink-en-" + std::to_string(year);
    auto graph = DatasetCatalog::BuiltIn().Load(name);
    if (!graph.ok()) return 1;
    auto pr = ComputePageRank(**graph);
    if (!pr.ok()) return 1;
    const RankedList top = ScoresToRankedList(pr->scores);
    std::printf("  %d: n=%-6u m=%-7llu top hub: node %u (score %.4f)\n",
                year, (*graph)->num_nodes(),
                static_cast<unsigned long long>((*graph)->num_edges()),
                top.front().node, top.front().score);
  }
  std::puts(
      "\n  (snapshots grow over time; the hub layer persists across years —\n"
      "   the longitudinal-analysis pattern of WikiLinkGraphs)");
  return 0;
}

}  // namespace

int main() {
  if (CrossCultural() != 0) return 1;
  return CrossTime();
}
