// Algorithm comparison — the demo's first use case (paper §IV-D): run all
// seven showcased algorithms on the same dataset and reference node
// through the full platform (gateway -> scheduler -> executors ->
// datastore), then render the side-by-side table and pairwise
// rank-agreement metrics.
//
//   ./algorithm_comparison                          # amazon-books-mini / 1984
//   ./algorithm_comparison <dataset> <reference>

#include <cstdio>
#include <string>
#include <vector>

#include "eval/comparison.h"
#include "platform/gateway.h"

using namespace cyclerank;

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "amazon-books-mini";
  const std::string reference = argc > 2 ? argv[2] : "1984";

  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4));

  // Build the query set: the seven algorithms of the demo (§II, §V).
  // Global algorithms ignore the reference parameter.
  TaskBuilder builder;
  const char* algorithms[] = {"pagerank",      "cheirank",     "2drank",
                              "pers_pagerank", "pers_cheirank", "pers_2drank",
                              "cyclerank"};
  for (const char* algorithm : algorithms) {
    const Status st = builder.Add(
        dataset, algorithm, "source=" + reference + ", k=3, sigma=exp");
    if (!st.ok()) {
      std::fprintf(stderr, "task: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  auto comparison_id = gateway.SubmitQuerySet(builder.Build());
  if (!comparison_id.ok()) {
    std::fprintf(stderr, "submit: %s\n",
                 comparison_id.status().ToString().c_str());
    return 1;
  }
  std::printf("Comparison id: %s\n\n", comparison_id->c_str());
  (void)gateway.WaitForCompletion(*comparison_id, 120.0);

  auto results = gateway.GetResults(*comparison_id);
  auto graph = store.GetDataset(dataset);
  if (!results.ok() || !graph.ok()) {
    std::fprintf(stderr, "fetch failed\n");
    return 1;
  }

  std::vector<ComparisonColumn> columns;
  for (const TaskResult& result : *results) {
    if (!result.status.ok()) {
      std::fprintf(stderr, "task %s failed: %s\n", result.task_id.c_str(),
                   result.status.ToString().c_str());
      continue;
    }
    columns.push_back({result.spec.algorithm, result.ranking});
  }

  const NodeId ref = (*graph)->FindNode(reference);
  ComparisonTableOptions table;
  table.top_k = 5;
  table.skip_node = ref;
  std::printf("top-5 per algorithm (reference '%s' omitted):\n",
              reference.c_str());
  std::fputs(RenderComparisonTable(**graph, columns, table).c_str(), stdout);

  std::puts("\npairwise agreement at depth 5:");
  std::fputs(RenderPairwise(ComparePairwise(columns, 5)).c_str(), stdout);
  return 0;
}
