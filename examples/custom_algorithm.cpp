// Custom algorithm — the paper's extensibility claim made concrete: "Our
// demo design enables the possibility of adding new algorithms to the
// demo" (§III, §V). This example implements HITS (Kleinberg 1999) as a
// user-provided `RelevanceAlgorithm`, registers it next to the built-ins,
// and runs it through the unmodified platform pipeline.

#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "eval/comparison.h"
#include "platform/gateway.h"

using namespace cyclerank;

namespace {

/// HITS authority scores: mutually reinforcing hub/authority iteration.
/// Exposes the "authority" vector as the relevance score; `reference` is
/// ignored (HITS is a global method, like PageRank).
class HitsAuthority final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "hits_authority"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }

  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    const NodeId n = g.num_nodes();
    if (n == 0) return Status::InvalidArgument("hits: empty graph");
    std::vector<double> hub(n, 1.0), authority(n, 1.0);
    for (uint32_t iter = 0; iter < request.max_iterations; ++iter) {
      // authority(v) = sum of hub(u) over in-neighbours u.
      double norm = 0.0;
      for (NodeId v = 0; v < n; ++v) {
        double sum = 0.0;
        for (NodeId u : g.InNeighbors(v)) sum += hub[u];
        authority[v] = sum;
        norm += sum * sum;
      }
      norm = std::sqrt(norm);
      if (norm > 0) {
        for (double& a : authority) a /= norm;
      }
      // hub(u) = sum of authority(v) over out-neighbours v.
      norm = 0.0;
      for (NodeId u = 0; u < n; ++u) {
        double sum = 0.0;
        for (NodeId v : g.OutNeighbors(u)) sum += authority[v];
        hub[u] = sum;
        norm += sum * sum;
      }
      norm = std::sqrt(norm);
      if (norm > 0) {
        for (double& h : hub) h /= norm;
      }
    }
    RankingOptions options;
    options.top_k = request.top_k;
    return ScoresToRankedList(authority, options);
  }
};

}  // namespace

int main() {
  // 1. Register the custom algorithm in a registry of our own (so repeated
  //    runs of this example don't collide with the process-wide Default()).
  AlgorithmRegistry registry;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    (void)registry.Register(MakeAlgorithm(kind));
  }
  const Status st = registry.Register(std::make_shared<HitsAuthority>());
  std::printf("registered 'hits_authority': %s\n\n", st.ToString().c_str());

  // 2. Use it through the platform exactly like a built-in.
  Datastore store;
  ApiGateway gateway(&store, &registry,
      PlatformOptions::WithWorkers(2));
  TaskBuilder builder;
  (void)builder.Add("enwiki-mini-2018", "hits_authority",
                    "max_iterations=50, top_k=5");
  (void)builder.Add("enwiki-mini-2018", "pagerank", "alpha=0.85, top_k=5");
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) {
    std::fprintf(stderr, "submit: %s\n", id.status().ToString().c_str());
    return 1;
  }
  (void)gateway.WaitForCompletion(*id, 60.0);
  auto results = gateway.GetResults(*id);
  auto graph = store.GetDataset("enwiki-mini-2018");
  if (!results.ok() || !graph.ok()) return 1;

  std::vector<ComparisonColumn> columns;
  for (const TaskResult& result : *results) {
    if (result.status.ok()) {
      columns.push_back({result.spec.algorithm, result.ranking});
    }
  }
  ComparisonTableOptions table;
  table.top_k = 5;
  std::puts("custom HITS vs built-in PageRank on enwiki-mini-2018:");
  std::fputs(RenderComparisonTable(**graph, columns, table).c_str(), stdout);
  std::puts(
      "\n(both are global in-link methods, so the hub articles dominate "
      "each)");
  return 0;
}
