// Dataset upload & format conversion — the demo supports "commonly used
// graph formats such as: edgelist (CSV), pajek, and our own ASD format"
// (paper §IV-B). This example:
//   1. reads a graph file (or an embedded sample when no path is given),
//   2. prints its statistics,
//   3. converts it to the other two formats,
//   4. uploads it into a datastore and runs CycleRank on it.
//
//   ./upload_dataset [graph-file] [reference-node]

#include <cstdio>
#include <string>

#include "core/cyclerank.h"
#include "core/ranking.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "platform/gateway.h"

using namespace cyclerank;

namespace {

constexpr const char* kSampleCsv =
    "# sample co-purchase edgelist\n"
    "lord_of_the_rings,the_hobbit\n"
    "the_hobbit,lord_of_the_rings\n"
    "lord_of_the_rings,silmarillion\n"
    "silmarillion,lord_of_the_rings\n"
    "the_hobbit,silmarillion\n"
    "lord_of_the_rings,harry_potter\n"
    "the_hobbit,harry_potter\n"
    "silmarillion,harry_potter\n";

}  // namespace

int main(int argc, char** argv) {
  // 1. Load.
  Result<Graph> graph =
      argc > 1 ? ReadGraphFile(argv[1]) : ReadGraphFromString(kSampleCsv);
  if (!graph.ok()) {
    std::fprintf(stderr, "read: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = graph.value();
  std::printf("loaded graph:\n%s\n\n", ComputeGraphStats(g).ToString().c_str());

  // 2. Convert to every supported format.
  for (GraphFormat format :
       {GraphFormat::kEdgeList, GraphFormat::kPajek, GraphFormat::kAsd}) {
    auto text = WriteGraphToString(g, format);
    if (!text.ok()) return 1;
    std::printf("-- %s serialization (%zu bytes), first lines:\n",
                std::string(GraphFormatToString(format)).c_str(),
                text->size());
    size_t shown = 0, pos = 0;
    while (shown < 3 && pos < text->size()) {
      const size_t nl = text->find('\n', pos);
      std::printf("   %s\n", text->substr(pos, nl - pos).c_str());
      pos = nl + 1;
      ++shown;
    }
  }

  // 3. Upload and run through the platform.
  const std::string reference =
      argc > 2 ? argv[2] : (g.labels() ? "lord_of_the_rings" : "0");
  Datastore store;
  auto csv = WriteGraphToString(g, GraphFormat::kEdgeList);
  if (!csv.ok() || !store.UploadDataset("uploaded", *csv).ok()) {
    std::fprintf(stderr, "upload failed\n");
    return 1;
  }
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(2));
  TaskBuilder builder;
  const Status st =
      builder.Add("uploaded", "cyclerank", "source=" + reference + ", k=4");
  if (!st.ok()) {
    std::fprintf(stderr, "task: %s\n", st.ToString().c_str());
    return 1;
  }
  auto id = gateway.SubmitQuerySet(builder.Build());
  if (!id.ok()) return 1;
  (void)gateway.WaitForCompletion(*id, 60.0);
  auto results = gateway.GetResults(*id);
  if (!results.ok() || results->empty() || !results->front().status.ok()) {
    std::fprintf(stderr, "cyclerank task failed\n");
    return 1;
  }
  auto uploaded = store.GetDataset("uploaded");
  std::printf("\nCycleRank (K=4) around '%s' on the uploaded graph:\n%s",
              reference.c_str(),
              FormatTopK(results->front().ranking, **uploaded, 10).c_str());
  return 0;
}
