// Platform walkthrough — every arrow of the paper's Figure 1, narrated:
// task building, submission through the API gateway, scheduling onto
// executor workers, live status polling, per-task logs in the datastore,
// result retrieval by permalink, and cancellation.

#include <chrono>
#include <cstdio>
#include <thread>

#include "platform/gateway.h"

using namespace cyclerank;

int main() {
  std::puts("== CycleRank demo platform walkthrough (Fig. 1) ==\n");

  // One PlatformOptions string configures the whole stack — storage
  // budgets for the datastore, workers/admission for the gateway.
  const PlatformOptions options =
      PlatformOptions::FromString(
          "num_workers=2, graph_store_bytes=64m, max_retained_results=1000, "
          "max_tasks_per_submission=32")
          .value();
  std::printf("[options]   %s\n", options.ToString().c_str());

  // Datastore backed by the pre-loaded catalog (plus one upload).
  Datastore store(&DatasetCatalog::BuiltIn(), options);
  const Status upload = store.UploadDataset(
      "my-upload",
      "alice,bob\nbob,alice\nbob,carol\ncarol,alice\nalice,dave\n");
  std::printf("[datastore] uploaded 'my-upload': %s\n",
              upload.ToString().c_str());

  ApiGateway gateway(&store, &AlgorithmRegistry::Default(), options);
  std::printf("[gateway]   %zu executor workers\n\n", gateway.num_workers());

  // Task builder (Fig. 2): compose, prune, submit.
  TaskBuilder builder;
  (void)builder.Add("enwiki-mini-2018", "cyclerank",
                    "source=Freddie Mercury, k=3, sigma=exp, top_k=5");
  (void)builder.Add("enwiki-mini-2018", "pers_pagerank",
                    "source=Freddie Mercury, alpha=0.3, top_k=5");
  (void)builder.Add("my-upload", "cyclerank", "source=alice, k=3");
  (void)builder.Add("my-upload", "pagerank", "");
  (void)builder.Add("nonexistent-dataset", "pagerank", "");  // will fail
  std::printf("[builder]   %zu queries composed", builder.size());
  (void)builder.Remove(3);  // drop the plain pagerank row (the Fig. 2 "x")
  std::printf(" -> %zu after removing one\n", builder.size());

  auto comparison_id = gateway.SubmitQuerySet(builder.Build());
  if (!comparison_id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 comparison_id.status().ToString().c_str());
    return 1;
  }
  std::printf("[gateway]   comparison id (permalink): %s\n\n",
              comparison_id->c_str());

  // Status component: poll until done.
  while (true) {
    auto status = gateway.GetStatus(*comparison_id);
    if (!status.ok()) return 1;
    std::printf("[status]    ");
    for (size_t i = 0; i < status->task_ids.size(); ++i) {
      std::printf("task %zu: %-10s ", i,
                  std::string(TaskStateToString(status->states[i])).c_str());
    }
    std::puts("");
    if (status->done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // Results + logs from the datastore.
  auto results = gateway.GetResults(*comparison_id);
  if (!results.ok()) return 1;
  std::puts("\n[results]");
  for (const TaskResult& result : *results) {
    std::printf("  %s -> %s (%zu ranked nodes, %.1f ms)\n",
                result.spec.ToString().c_str(),
                result.status.ok() ? "ok" : result.status.ToString().c_str(),
                result.ranking.size(), result.seconds * 1000.0);
  }

  std::puts("\n[logs] first task's datastore log:");
  for (const std::string& line :
       store.GetLog(results->front().task_id)) {
    std::printf("  | %s\n", line.c_str());
  }

  // Cancellation: a fresh comparison, cancelled immediately.
  TaskBuilder heavy;
  for (int i = 0; i < 8; ++i) {
    (void)heavy.Add("twitter-cop27", "ppr_montecarlo",
                    "source=0, walks=500000, seed=" + std::to_string(i));
  }
  auto heavy_id = gateway.SubmitQuerySet(heavy.Build());
  if (heavy_id.ok()) {
    (void)gateway.Cancel(*heavy_id);
    (void)gateway.WaitForCompletion(*heavy_id, 120.0);
    auto status = gateway.GetStatus(*heavy_id);
    if (status.ok()) {
      std::printf(
          "\n[cancel]    heavy comparison: %zu completed, %zu cancelled\n",
          status->completed, status->cancelled);
    }
  }
  std::puts("\ndone.");
  return 0;
}
