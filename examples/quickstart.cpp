// Quickstart: load a pre-loaded dataset, compute CycleRank and
// Personalized PageRank for a reference node, and print the two top-10
// lists side by side.
//
//   ./quickstart                         # enwiki-mini-2018 / Freddie Mercury
//   ./quickstart <dataset> <reference>   # any catalog dataset + node label

#include <cstdio>
#include <string>

#include "core/cyclerank.h"
#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/catalog.h"
#include "eval/comparison.h"
#include "graph/stats.h"

using namespace cyclerank;

int main(int argc, char** argv) {
  const std::string dataset = argc > 1 ? argv[1] : "enwiki-mini-2018";
  const std::string reference = argc > 2 ? argv[2] : "Freddie Mercury";

  // 1. Load a dataset from the built-in catalog (~50 graphs; see
  //    DatasetCatalog::BuiltIn().List()).
  auto graph = DatasetCatalog::BuiltIn().Load(dataset);
  if (!graph.ok()) {
    std::fprintf(stderr, "load '%s': %s\n", dataset.c_str(),
                 graph.status().ToString().c_str());
    return 1;
  }
  const Graph& g = **graph;
  std::printf("dataset %s:\n%s\n\n", dataset.c_str(),
              ComputeGraphStats(g).ToString().c_str());

  // 2. Resolve the reference node.
  const NodeId ref = g.FindNode(reference);
  if (ref == kInvalidNode) {
    std::fprintf(stderr, "reference node '%s' not found in '%s'\n",
                 reference.c_str(), dataset.c_str());
    return 1;
  }

  // 3. CycleRank (K=3, sigma=e^-n — the paper's Wikipedia setting).
  CycleRankOptions cr_options;
  cr_options.max_cycle_length = 3;
  auto cr = ComputeCycleRank(g, ref, cr_options);
  if (!cr.ok()) {
    std::fprintf(stderr, "cyclerank: %s\n", cr.status().ToString().c_str());
    return 1;
  }
  std::printf("CycleRank found %llu cycles of length <= %u through '%s'\n\n",
              static_cast<unsigned long long>(cr->total_cycles),
              cr_options.max_cycle_length, reference.c_str());

  // 4. Personalized PageRank for comparison.
  PageRankOptions ppr_options;
  ppr_options.alpha = 0.85;
  auto ppr = ComputePersonalizedPageRank(g, ref, ppr_options);
  if (!ppr.ok()) {
    std::fprintf(stderr, "ppr: %s\n", ppr.status().ToString().c_str());
    return 1;
  }

  // 5. Side-by-side top-10.
  std::vector<ComparisonColumn> columns = {
      {"Cyclerank (K=3)", ScoresToRankedList(cr->scores)},
      {"Pers.PageRank (a=.85)", ScoresToRankedList(ppr->scores)}};
  ComparisonTableOptions table;
  table.top_k = 10;
  table.show_scores = true;
  std::fputs(RenderComparisonTable(g, columns, table).c_str(), stdout);
  return 0;
}
