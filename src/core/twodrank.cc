#include "core/twodrank.h"

#include <algorithm>

#include "core/cheirank.h"
#include "core/ranking.h"

namespace cyclerank {
namespace internal {

std::vector<NodeId> MergeTwoDim(const std::vector<uint32_t>& pr_position,
                                const std::vector<uint32_t>& chei_position) {
  const NodeId n = static_cast<NodeId>(pr_position.size());
  std::vector<NodeId> order;
  order.reserve(n);

  // Sort nodes by shell = max(K, K*). Within a shell: CheiRank-edge nodes
  // (K* == shell) first by ascending K, then PageRank-edge nodes by
  // ascending K*, then the corner (K == K* == shell).
  std::vector<NodeId> nodes(n);
  for (NodeId i = 0; i < n; ++i) nodes[i] = i;
  std::sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    const uint32_t shell_a = std::max(pr_position[a], chei_position[a]);
    const uint32_t shell_b = std::max(pr_position[b], chei_position[b]);
    if (shell_a != shell_b) return shell_a < shell_b;
    // Edge class: 0 = CheiRank edge (K* = shell, K < shell),
    //             1 = PageRank edge (K = shell, K* < shell),
    //             2 = corner (K = K* = shell).
    auto edge_class = [&](NodeId x) -> int {
      const bool on_chei = chei_position[x] >= pr_position[x];
      const bool on_pr = pr_position[x] >= chei_position[x];
      if (on_chei && on_pr) return 2;
      return on_chei ? 0 : 1;
    };
    const int class_a = edge_class(a);
    const int class_b = edge_class(b);
    if (class_a != class_b) return class_a < class_b;
    // Within the CheiRank edge order by K, within the PageRank edge by K*.
    const uint32_t key_a = class_a == 0 ? pr_position[a] : chei_position[a];
    const uint32_t key_b = class_b == 0 ? pr_position[b] : chei_position[b];
    if (key_a != key_b) return key_a < key_b;
    return a < b;
  });
  order = std::move(nodes);
  return order;
}

}  // namespace internal

namespace {

Result<TwoDRankResult> TwoDRankFromScores(const Graph& g,
                                          const PageRankScores& pr,
                                          const PageRankScores& chei) {
  RankingOptions all;
  all.drop_zeros = false;  // need a full permutation
  const RankedList pr_ranked = ScoresToRankedList(pr.scores, all);
  const RankedList chei_ranked = ScoresToRankedList(chei.scores, all);

  TwoDRankResult result;
  result.pagerank_position = RankPositions(pr_ranked, g.num_nodes());
  result.cheirank_position = RankPositions(chei_ranked, g.num_nodes());
  result.order = internal::MergeTwoDim(result.pagerank_position,
                                       result.cheirank_position);
  return result;
}

}  // namespace

Result<TwoDRankResult> Compute2DRank(const Graph& g,
                                     const PageRankOptions& options) {
  CYCLERANK_ASSIGN_OR_RETURN(PageRankScores pr, ComputePageRank(g, options));
  CYCLERANK_ASSIGN_OR_RETURN(PageRankScores chei,
                             ComputeCheiRank(g, options));
  return TwoDRankFromScores(g, pr, chei);
}

Result<TwoDRankResult> ComputePersonalized2DRank(
    const Graph& g, NodeId reference, const PageRankOptions& options) {
  CYCLERANK_ASSIGN_OR_RETURN(
      PageRankScores pr, ComputePersonalizedPageRank(g, reference, options));
  CYCLERANK_ASSIGN_OR_RETURN(
      PageRankScores chei,
      ComputePersonalizedCheiRank(g, reference, options));
  return TwoDRankFromScores(g, pr, chei);
}

}  // namespace cyclerank
