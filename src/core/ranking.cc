#include "core/ranking.h"

#include <algorithm>
#include <sstream>

#include "common/strings.h"

namespace cyclerank {

RankedList ScoresToRankedList(const std::vector<double>& scores,
                              const RankingOptions& options) {
  RankedList out;
  out.reserve(scores.size());
  for (NodeId u = 0; u < scores.size(); ++u) {
    if (options.drop_zeros && scores[u] == 0.0) continue;
    out.push_back({u, scores[u]});
  }
  std::sort(out.begin(), out.end(), [](const ScoredNode& a, const ScoredNode& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.node < b.node;
  });
  if (options.top_k > 0 && out.size() > options.top_k) {
    out.resize(options.top_k);
  }
  return out;
}

RankedList OrderToRankedList(const std::vector<NodeId>& order, size_t top_k) {
  RankedList out;
  const size_t limit =
      top_k > 0 ? std::min(top_k, order.size()) : order.size();
  out.reserve(limit);
  for (size_t i = 0; i < limit; ++i) {
    out.push_back({order[i], 1.0 / static_cast<double>(i + 1)});
  }
  return out;
}

std::vector<uint32_t> RankPositions(const RankedList& ranking,
                                    NodeId num_nodes) {
  std::vector<uint32_t> pos(num_nodes, num_nodes);
  for (uint32_t i = 0; i < ranking.size(); ++i) {
    if (ranking[i].node < num_nodes) pos[ranking[i].node] = i;
  }
  return pos;
}

std::vector<NodeId> TopKNodes(const RankedList& ranking, size_t k) {
  std::vector<NodeId> out;
  const size_t limit = std::min(k, ranking.size());
  out.reserve(limit);
  for (size_t i = 0; i < limit; ++i) out.push_back(ranking[i].node);
  return out;
}

std::string FormatTopK(const RankedList& ranking, const Graph& g, size_t k) {
  std::ostringstream os;
  const size_t limit = std::min(k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    os << (i + 1) << ". " << g.NodeName(ranking[i].node) << " ("
       << FormatDouble(ranking[i].score) << ")\n";
  }
  return os.str();
}

}  // namespace cyclerank
