#include "core/forward_push.h"

#include <deque>
#include <string>

namespace cyclerank {

Result<ForwardPushScores> ComputeForwardPushPpr(
    const Graph& g, NodeId reference, const ForwardPushOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("ForwardPush: reference node " +
                              std::to_string(reference) + " out of range");
  }
  if (!(options.alpha > 0.0) || !(options.alpha < 1.0)) {
    return Status::InvalidArgument("ForwardPush: alpha must be in (0,1)");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("ForwardPush: epsilon must be positive");
  }

  const NodeId n = g.num_nodes();
  const double alpha = options.alpha;

  ForwardPushScores result;
  result.scores.assign(n, 0.0);
  std::vector<double> residual(n, 0.0);
  residual[reference] = 1.0;

  // Work queue of nodes whose residual may exceed the push threshold;
  // `queued` deduplicates entries.
  std::deque<NodeId> queue{reference};
  std::vector<bool> queued(n, false);
  queued[reference] = true;

  auto threshold = [&](NodeId u) {
    // Dangling nodes push everything in one teleport step, so any positive
    // residual qualifies; regular nodes use ε·deg as in ACL.
    const uint32_t deg = g.OutDegree(u);
    return deg == 0 ? 0.0 : options.epsilon * static_cast<double>(deg);
  };

  while (!queue.empty()) {
    if (options.max_pushes != 0 && result.pushes >= options.max_pushes) {
      result.converged = false;
      break;
    }
    const NodeId u = queue.front();
    queue.pop_front();
    queued[u] = false;

    const double r_u = residual[u];
    if (r_u <= threshold(u) || r_u == 0.0) continue;

    ++result.pushes;
    residual[u] = 0.0;
    result.scores[u] += (1.0 - alpha) * r_u;

    const auto row = g.OutNeighbors(u);
    if (row.empty()) {
      // Dangling: the walk teleports home, so the α mass returns to the
      // reference node's residual.
      residual[reference] += alpha * r_u;
      if (!queued[reference] &&
          residual[reference] > threshold(reference)) {
        queue.push_back(reference);
        queued[reference] = true;
      }
      continue;
    }
    const double share = alpha * r_u / static_cast<double>(row.size());
    for (NodeId v : row) {
      residual[v] += share;
      if (!queued[v] && residual[v] > threshold(v)) {
        queue.push_back(v);
        queued[v] = true;
      }
    }
  }

  double mass = 0.0;
  for (double r : residual) mass += r;
  result.residual_mass = mass;
  return result;
}

}  // namespace cyclerank
