#include "core/forward_push.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/frontier.h"
#include "graph/sharded_graph.h"

namespace cyclerank {
namespace {

/// Deterministic big-residuals-first admission: pending nodes are bucketed
/// by the power-of-4 tier of their residual-to-threshold ratio, re-filed
/// when their residual crosses into a higher tier (stale entries are
/// skipped at drain time), and each round drains whole tiers top-down
/// until at least `kMinBatch` nodes are admitted.
///
/// Round-synchronous (Jacobi) pushes convert residual in smaller bites
/// than the old queue-carried (Gauss-Seidel) schedule — admitting the
/// whole pending set each round costs ~1.6× the pushes on BA graphs.
/// Draining the biggest ratios first lets small residuals keep
/// accumulating before their push, which empirically restores the
/// queue-carried push count (±5%) while staying a pure function of the
/// merged state — thread-count independence is untouched.
class TierQueue {
 public:
  /// 64 power-of-4 tiers cover every finite ratio ≥ 1 (4^64 ≈ 3·10^38
  /// saturates the top tier; the dangling-node pseudo-ratio lands there).
  static constexpr int kNumTiers = 64;
  static constexpr size_t kMinBatch = 32;

  explicit TierQueue(uint32_t num_nodes) : tier_(num_nodes, -1) {}

  /// True when no node is pending admission.
  bool empty() const { return live_ == 0; }

  /// Files `v` under the tier of `ratio` (> 1). Re-filing under a higher
  /// tier supersedes the old entry; equal or lower tiers are ignored.
  /// Returns the filed tier.
  int Update(uint32_t v, double ratio) {
    const int k = TierOf(ratio);
    if (k > tier_[v]) {
      if (tier_[v] < 0) ++live_;
      tier_[v] = static_cast<int8_t>(k);
      buckets_[k].push_back(v);
    }
    return k;
  }

  /// Drains whole buckets top-down until `kMinBatch` nodes are admitted
  /// or the hard `limit` is reached (a partially-drained bucket keeps its
  /// unadmitted suffix for the next round), handing each to `admit`.
  template <typename Fn>
  void Drain(size_t limit, const Fn& admit) {
    size_t admitted = 0;
    for (int k = kNumTiers - 1; k >= 0; --k) {
      std::vector<uint32_t>& bucket = buckets_[k];
      if (bucket.empty()) continue;
      for (size_t i = 0; i < bucket.size(); ++i) {
        if (admitted == limit) {
          bucket.erase(bucket.begin(),
                       bucket.begin() + static_cast<ptrdiff_t>(i));
          return;
        }
        const uint32_t v = bucket[i];
        if (tier_[v] != k) continue;  // superseded or already admitted
        tier_[v] = -1;
        --live_;
        admit(v);
        ++admitted;
      }
      bucket.clear();
      if (admitted >= kMinBatch) break;
    }
  }

 private:
  static int TierOf(double ratio) {
    // Biased IEEE-754 exponent >> 1 = floor(log4); ratio > 1 makes it
    // non-negative.
    const int k =
        static_cast<int>((std::bit_cast<uint64_t>(ratio) >> 52) - 1023) / 2;
    return k >= kNumTiers ? kNumTiers - 1 : k;
  }

  std::vector<int8_t> tier_;  // -1 = not pending
  std::vector<uint32_t> buckets_[kNumTiers];
  size_t live_ = 0;  // pending nodes (excluding superseded duplicates)
};

}  // namespace

Result<ForwardPushScores> ComputeForwardPushPpr(
    const Graph& g, NodeId reference, const ForwardPushOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("ForwardPush: reference node " +
                              std::to_string(reference) + " out of range");
  }
  if (!(options.alpha > 0.0) || !(options.alpha < 1.0)) {
    return Status::InvalidArgument("ForwardPush: alpha must be in (0,1)");
  }
  if (!(options.epsilon > 0.0)) {
    return Status::InvalidArgument("ForwardPush: epsilon must be positive");
  }
  if (options.sharded != nullptr && options.sharded->parent().get() != &g) {
    return Status::InvalidArgument(
        "ForwardPush: sharded view does not belong to this graph");
  }

  const NodeId n = g.num_nodes();
  const double alpha = options.alpha;

  ForwardPushScores result;
  result.scores.assign(n, 0.0);

  // Hot per-node state, packed so the merge's inner loop touches one cache
  // line per delta: the residual, and the *bar* — the residual level at
  // which the node next needs (re-)filing in the tier queue. A node files
  // when it first exceeds its push threshold ε · out_degree (bar starts
  // there; as in ACL, dangling nodes push any positive residual) and again
  // whenever it crosses into a higher power-of-4 tier, so deltas that grow
  // a residual within its current tier cost one compare and no filing.
  struct HotState {
    double residual;
    double bar;
  };
  // Cold per-node state, read once per push / per filing, not per delta.
  struct ColdState {
    double threshold;      // ε · out_degree (0 for dangling)
    double inv_threshold;  // 1/threshold; 1e300 for dangling (0·inf = NaN)
  };
  std::vector<HotState> hot(n);
  std::vector<ColdState> cold(n);
  std::vector<uint32_t> degrees(n);
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t deg = g.OutDegree(u);
    degrees[u] = deg;
    const double threshold =
        options.epsilon * static_cast<double>(deg);  // 0 iff dangling
    cold[u] = {threshold, deg == 0 ? 1e300 : 1.0 / threshold};
    hot[u] = {0.0, threshold};
  }
  hot[reference].residual = 1.0;

  FrontierEngine::Options engine_options;
  engine_options.num_threads = options.num_threads;
  if (options.sharded != nullptr) {
    engine_options.shard_bounds = options.sharded->bounds();
  }
  FrontierEngine engine(n, engine_options);
  engine.Seed(reference);

  TierQueue pending(n);

  // Push counting is an integer sum, so relaxed atomic adds from the
  // expansion workers stay deterministic.
  std::atomic<uint64_t> pushes{0};

  FrontierEngine::Callbacks callbacks;
  callbacks.node_weights = degrees;
  callbacks.expand = [&](std::span<const uint32_t> chunk, uint32_t shard,
                         FrontierEngine::Emitter& out) {
    // Each frontier node appears in exactly one chunk, so consuming its
    // residual and crediting its estimate here is data-race-free; all
    // cross-node residual updates travel through `out` and are applied in
    // the deterministic merge.
    uint64_t chunk_pushes = 0;
    for (uint32_t u : chunk) {
      const double r_u = hot[u].residual;
      if (!(r_u > cold[u].threshold)) continue;
      ++chunk_pushes;
      hot[u].residual = 0.0;
      result.scores[u] += (1.0 - alpha) * r_u;

      // Shard-local row when a view is attached (element-equal to the
      // parent's, so the logged delta group — and with it the merge — is
      // unchanged); the sharded rows outlive the round's merge.
      const auto row = options.sharded != nullptr
                           ? options.sharded->OutNeighbors(shard, u)
                           : g.OutNeighbors(u);
      if (row.empty()) {
        // Dangling: the walk teleports home, so the α mass returns to the
        // reference node's residual.
        out.Delta(reference, alpha * r_u);
        continue;
      }
      const double share = alpha * r_u / static_cast<double>(row.size());
      out.Deltas(row, share);  // zero-copy: the group references the row
    }
    if (chunk_pushes > 0) {
      pushes.fetch_add(chunk_pushes, std::memory_order_relaxed);
    }
  };
  // Compaction buffer for the merge: targets whose delta pushed them over
  // their bar. Grown to the largest chunk's delta count, never shrunk.
  std::vector<uint32_t> crossed;
  callbacks.deltas = [&](std::span<const FrontierEngine::DeltaGroup> groups) {
    // The run's hot loop (once per logged delta). Branchless: the
    // unconditional store + conditional-move increment compacts
    // bar-crossing targets without a mispredict-prone branch; tier filing
    // — which does branch — runs over the small compacted tail.
    size_t total = 0;
    for (const FrontierEngine::DeltaGroup& group : groups) {
      total += group.targets == nullptr ? 1 : group.count;
    }
    if (crossed.size() < total) crossed.resize(total);
    uint32_t* crossed_tail = crossed.data();
    size_t count = 0;
    FrontierEngine::ForEachDelta(groups, [&](uint32_t v, double x) {
      const double r = hot[v].residual + x;
      hot[v].residual = r;
      crossed_tail[count] = v;
      count += r > hot[v].bar ? 1 : 0;
    });
    for (size_t i = 0; i < count; ++i) {
      const uint32_t v = crossed_tail[i];
      const int k =
          pending.Update(v, hot[v].residual * cold[v].inv_threshold);
      // Next filing once the residual crosses into tier k+1, i.e. exceeds
      // threshold · 4^(k+1) — the scale built by bit-packing the IEEE-754
      // exponent (4^(k+1) = 2^(2k+2); k < 64 keeps it finite). The top
      // tier never re-files (1e308 bar); a dangling node's bar stays 0,
      // and its re-filings are cheap tier-compare skips.
      hot[v].bar =
          k + 1 >= TierQueue::kNumTiers
              ? 1e308
              : cold[v].threshold *
                    std::bit_cast<double>(
                        static_cast<uint64_t>(1023 + 2 * (k + 1)) << 52);
    }
  };
  callbacks.round_done = [&](uint32_t) {
    // The cap only means truncation while work is actually pending: a cap
    // that lands exactly on the convergence point is still a converged
    // run, as with the old deque loop (queue drained == converged, no
    // matter the push count).
    const uint64_t done = pushes.load(std::memory_order_relaxed);
    if (options.max_pushes != 0 && done >= options.max_pushes &&
        !pending.empty()) {
      result.converged = false;
      return false;
    }
    // Admission is budgeted by the remaining cap (every admitted node
    // qualifies and will push next round), so `pushes` can never exceed
    // `max_pushes` — the cap is a hard safety valve, not advisory. The
    // budget is a function of the deterministic push count, so truncation
    // stays thread-count independent. The tier queue hands out each
    // pending node at most once, so the engine's dedup probe is
    // redundant; re-arm the admitted node's bar at its base threshold for
    // its next pending cycle.
    const size_t budget =
        options.max_pushes == 0
            ? std::numeric_limits<size_t>::max()
            : static_cast<size_t>(options.max_pushes - done);
    pending.Drain(budget, [&](uint32_t v) {
      hot[v].bar = cold[v].threshold;
      engine.SeedUnchecked(v);
    });
    return true;
  };
  engine.Run(callbacks);

  result.pushes = pushes.load(std::memory_order_relaxed);
  double mass = 0.0;
  for (const HotState& s : hot) mass += s.residual;
  result.residual_mass = mass;
  return result;
}

}  // namespace cyclerank
