#ifndef CYCLERANK_CORE_TWODRANK_H_
#define CYCLERANK_CORE_TWODRANK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/pagerank.h"
#include "graph/graph.h"

namespace cyclerank {

/// Outcome of 2DRank. The paper stresses that 2DRank "does not assign a
/// score to each node, but just produces a ranking" (§II), so the primary
/// output is `order`; the PageRank / CheiRank positions that induced it are
/// exposed for inspection and tests.
struct TwoDRankResult {
  /// Node ids from most to least relevant.
  std::vector<NodeId> order;

  /// K(i): 0-based position of node i in the PageRank ordering.
  std::vector<uint32_t> pagerank_position;

  /// K*(i): 0-based position of node i in the CheiRank ordering.
  std::vector<uint32_t> cheirank_position;
};

/// 2DRank (Zhirov, Zhirov & Shepelyansky 2010, paper §II): combines the
/// PageRank index K and the CheiRank index K* into one ranking by growing
/// squares [0..k]×[0..k] in the (K, K*) plane. When the square grows from
/// k-1 to k, the nodes that newly enter are appended in the order:
///   1. nodes on the CheiRank edge (K* = k, K < k), by ascending K;
///   2. nodes on the PageRank edge (K = k, K* < k), by ascending K*;
///   3. the corner node (K = K* = k), if any.
/// Equivalently: sort by max(K, K*), CheiRank-edge first within a shell.
Result<TwoDRankResult> Compute2DRank(const Graph& g,
                                     const PageRankOptions& options = {});

/// Personalized 2DRank: same construction over the *personalized* PageRank
/// and CheiRank orderings with reference node `reference`.
Result<TwoDRankResult> ComputePersonalized2DRank(
    const Graph& g, NodeId reference, const PageRankOptions& options = {});

namespace internal {

/// The square-growing merge, exposed for direct testing. `pr_position` and
/// `chei_position` must be permutations of [0, n).
std::vector<NodeId> MergeTwoDim(const std::vector<uint32_t>& pr_position,
                                const std::vector<uint32_t>& chei_position);

}  // namespace internal

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_TWODRANK_H_
