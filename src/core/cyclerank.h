#ifndef CYCLERANK_CORE_CYCLERANK_H_
#define CYCLERANK_CORE_CYCLERANK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/scoring.h"
#include "graph/graph.h"

namespace cyclerank {

class ShardedGraph;

/// Options for CycleRank (paper §II, Eq. (1); Consonni, Laniado & Montresor,
/// Proc. Royal Society A 2020).
struct CycleRankOptions {
  /// K — "a parameter representing the maximum length considered for
  /// cycles" (Eq. (1)). Must be ≥ 2. The paper uses K=3 on Wikipedia and
  /// K=5 on the Amazon co-purchase graph.
  uint32_t max_cycle_length = 3;

  /// σ — the scoring function weighting a cycle of length n. "For
  /// Wikipedia we have experimentally found that the best choice … is an
  /// exponential damping σ = e^-n" (§II).
  ScoringFunction scoring = ScoringFunction::kExponential;

  /// Distance-based search pruning (DESIGN.md §4). Disabling it recovers
  /// the naive bounded DFS — same counts, more work — and exists for the
  /// A2 ablation bench.
  bool use_pruning = true;

  /// Safety cap on enumerated cycles; 0 = unlimited. When hit, the run
  /// stops early and `truncated` is set (scores are then a lower bound).
  uint64_t max_cycles = 0;

  /// When true, `cycle_counts_per_node` is populated (length-stratified
  /// per-node counts c_{r,n}(i)); costs O(K·n) extra memory.
  bool collect_per_node_counts = false;

  /// Number of worker threads, scheduled on the process-wide compute pool
  /// (`GlobalComputePool`); 0 = use every pool worker. The enumeration is
  /// partitioned by the reference node's first-hop branches (each simple
  /// cycle through r belongs to exactly one branch, so partial results sum
  /// without double counting), and every thread count — including 1 —
  /// runs the same branch partition with partials merged in ascending
  /// first-hop order. Scores, counts, and the work metric are therefore
  /// **bit-identical at every thread count**. Branch enumeration uses
  /// reusable per-thread workspaces (epoch-stamped visited set, sparse
  /// touched-node accumulators), so a query costs memory proportional to
  /// the nodes reached, not O(out_degree × n). The backward pruning BFS
  /// shares this budget (it runs level-synchronously on the frontier
  /// engine). Ignored (single enumeration) when `max_cycles != 0`, since
  /// a global cap cannot be enforced exactly across concurrent branches.
  uint32_t num_threads = 1;

  /// Optional sharded view of the *same* graph (`sharded->parent().get()`
  /// must equal the graph passed to the kernel — validated). Consumed by
  /// the backward pruning BFS, which then streams shard-local CSR rows;
  /// the DFS enumeration is unaffected (its working set is the reachable
  /// neighbourhood, not a vertex-range scan). Execution-only, like
  /// `num_threads`: scores, counts, and the work metric are bit-identical
  /// at every shard count. Borrowed; must outlive the call.
  const ShardedGraph* sharded = nullptr;
};

/// Outcome of a CycleRank computation.
struct CycleRankScores {
  /// CR_{r,K}(i) per node; 0 for nodes on no cycle through r. The
  /// reference node r holds the maximum ("by definition, the reference
  /// node gets the maximum Cyclerank score", §II).
  std::vector<double> scores;

  /// Total number of simple cycles through r of length ∈ [2, K].
  uint64_t total_cycles = 0;

  /// `cycles_by_length[n]` = number of length-n cycles (indices 0 and 1
  /// always 0; size K+1).
  std::vector<uint64_t> cycles_by_length;

  /// c_{r,n}(i): `cycle_counts_per_node[n][i]`, only when
  /// `collect_per_node_counts` was set (size (K+1) × n, rows 0,1 zero).
  std::vector<std::vector<uint64_t>> cycle_counts_per_node;

  /// Number of DFS node expansions — the work metric compared by the
  /// pruning ablation.
  uint64_t dfs_expansions = 0;

  /// True when `max_cycles` stopped the enumeration early.
  bool truncated = false;
};

/// Computes CycleRank scores with respect to `reference`:
///
///   CR_{r,K}(i) = Σ_{n=2..K} σ(n) · c_{r,n}(i)
///
/// where c_{r,n}(i) is the number of simple cycles of length n containing
/// both r and i. Enumeration is a depth-first traversal of simple paths
/// rooted at r; with pruning enabled, a node v is expanded at depth d only
/// if d + dist(v→r) ≤ K, where dist(v→r) comes from one backward BFS.
///
/// Determinism: neighbors are visited in ascending id order, so scores and
/// counts are identical across runs and platforms.
///
/// Errors: OutOfRange for an invalid reference; InvalidArgument for K < 2.
Result<CycleRankScores> ComputeCycleRank(const Graph& g, NodeId reference,
                                         const CycleRankOptions& options = {});

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_CYCLERANK_H_
