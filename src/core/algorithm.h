#ifndef CYCLERANK_CORE_ALGORITHM_H_
#define CYCLERANK_CORE_ALGORITHM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/ranking.h"
#include "core/scoring.h"
#include "graph/graph.h"
#include "graph/sharded_graph.h"

namespace cyclerank {

/// The seven algorithms showcased by the demo (§II, §V: "we compared
/// Cyclerank with 6 established algorithms") plus the two efficient PPR
/// approximations shipped as extensions.
enum class AlgorithmKind {
  kPageRank,
  kPersonalizedPageRank,
  kCheiRank,
  kPersonalizedCheiRank,
  k2DRank,
  kPersonalized2DRank,
  kCycleRank,
  // Extensions (not in the demo's seven, exposed through the same API):
  kPprForwardPush,
  kPprMonteCarlo,
};

/// Canonical lowercase names used by the platform registry and the task
/// builder, e.g. "cyclerank", "pers_pagerank".
std::string_view AlgorithmKindToString(AlgorithmKind kind);
Result<AlgorithmKind> AlgorithmKindFromString(std::string_view name);

/// All demo algorithm kinds, in presentation order.
const std::vector<AlgorithmKind>& AllAlgorithmKinds();

/// A fully-resolved request for one relevance computation. The Web UI's
/// parameter panel (§IV-C) maps onto this struct; the platform layer parses
/// string parameters into it.
struct AlgorithmRequest {
  /// Reference node r. Required by personalized algorithms and CycleRank;
  /// ignored by global PageRank / CheiRank / 2DRank.
  NodeId reference = kInvalidNode;

  /// Damping / transition probability α (PageRank family).
  double alpha = 0.85;

  /// Maximum cycle length K (CycleRank).
  uint32_t max_cycle_length = 3;

  /// Scoring function σ (CycleRank).
  ScoringFunction scoring = ScoringFunction::kExponential;

  /// Convergence controls (PageRank family).
  double tolerance = 1e-10;
  uint32_t max_iterations = 200;

  /// Forward-push residual threshold.
  double epsilon = 1e-7;

  /// Monte-Carlo controls.
  uint64_t num_walks = 100000;
  uint64_t seed = 42;

  /// Worker threads for the kernel itself, scheduled on the process-wide
  /// compute pool shared with the query-level `Scheduler`. 0 = every pool
  /// worker, 1 = the executor thread only. Every kernel produces
  /// bit-identical output at any thread count, so this is purely a
  /// latency/throughput trade-off.
  uint32_t num_threads = 0;

  /// Shard count the executor resolved for this task (0 or 1 =
  /// monolithic). Execution-only, like `num_threads`: every kernel is
  /// bit-identical at any shard count, so — also like `num_threads` — the
  /// value is excluded from the task fingerprint. Informational once
  /// `sharded_graph` is set; kept for logging.
  uint32_t num_shards = 0;

  /// The sharded view matching `num_shards`, fetched (and cached) by the
  /// platform next to the parent graph. Null = monolithic execution.
  /// Kernels validate that the view's parent is the graph they were
  /// handed.
  ShardedGraphPtr sharded_graph;

  /// Keep only the best `top_k` entries of the resulting ranking
  /// (0 = everything). The demo UI displays top-k lists.
  size_t top_k = 0;
};

/// Interface every relevance algorithm implements — the extension point
/// behind the demo's "new algorithms can be easily added" claim (§III).
/// Implementations must be stateless and thread-safe: the same instance is
/// invoked concurrently by executor workers.
class RelevanceAlgorithm {
 public:
  virtual ~RelevanceAlgorithm() = default;

  /// Canonical name, e.g. "cyclerank".
  virtual std::string_view name() const = 0;

  /// True when the algorithm needs `request.reference`.
  virtual bool requires_reference() const = 0;

  /// True when emitted scores are meaningful values (false for rank-only
  /// algorithms such as 2DRank, whose placeholder scores only encode
  /// order).
  virtual bool produces_scores() const = 0;

  /// Runs the computation. The returned list is sorted by decreasing
  /// relevance and truncated to `request.top_k` when set.
  virtual Result<RankedList> Run(const Graph& g,
                                 const AlgorithmRequest& request) const = 0;
};

/// Creates the built-in implementation of `kind`.
std::unique_ptr<RelevanceAlgorithm> MakeAlgorithm(AlgorithmKind kind);

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_ALGORITHM_H_
