#include "core/scoring.h"

#include <cmath>

#include "common/strings.h"

namespace cyclerank {

double Sigma(ScoringFunction fn, uint32_t n) {
  const double len = static_cast<double>(n);
  switch (fn) {
    case ScoringFunction::kExponential:
      return std::exp(-len);
    case ScoringFunction::kLinear:
      return 1.0 / len;
    case ScoringFunction::kQuadratic:
      return 1.0 / (len * len);
    case ScoringFunction::kConstant:
      return 1.0;
  }
  return 0.0;
}

std::string_view ScoringFunctionToString(ScoringFunction fn) {
  switch (fn) {
    case ScoringFunction::kExponential:
      return "exp";
    case ScoringFunction::kLinear:
      return "lin";
    case ScoringFunction::kQuadratic:
      return "quad";
    case ScoringFunction::kConstant:
      return "const";
  }
  return "?";
}

Result<ScoringFunction> ScoringFunctionFromString(std::string_view name) {
  const std::string lower = AsciiToLower(StripAsciiWhitespace(name));
  if (lower == "exp" || lower == "exponential") {
    return ScoringFunction::kExponential;
  }
  if (lower == "lin" || lower == "linear") return ScoringFunction::kLinear;
  if (lower == "quad" || lower == "quadratic") {
    return ScoringFunction::kQuadratic;
  }
  if (lower == "const" || lower == "constant") {
    return ScoringFunction::kConstant;
  }
  return Status::InvalidArgument("unknown scoring function '" +
                                 std::string(name) + "'");
}

}  // namespace cyclerank
