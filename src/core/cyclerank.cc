#include "core/cyclerank.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "graph/traversal.h"

namespace cyclerank {
namespace {

/// Iterative depth-first enumeration of simple paths rooted at `ref`.
///
/// A frame holds a node on the current path and a cursor into its adjacency
/// row; the path itself lives in `path`. When an edge closes back to `ref`
/// with path length ≥ 2, every node on the path is credited with σ(len).
///
/// `first_hop` restricts the enumeration to paths whose first edge is
/// ref→first_hop (used by the parallel partitioning); `kInvalidNode` means
/// all branches.
class CycleEnumerator {
 public:
  CycleEnumerator(const Graph& g, NodeId ref, const CycleRankOptions& options,
                  const std::vector<uint32_t>& dist_back,
                  CycleRankScores* out)
      : g_(g),
        ref_(ref),
        options_(options),
        k_(options.max_cycle_length),
        dist_back_(dist_back),
        out_(out),
        on_path_(g.num_nodes(), false) {}

  void Run(NodeId first_hop = kInvalidNode) {
    path_.push_back(ref_);
    on_path_[ref_] = true;
    if (first_hop == kInvalidNode) {
      frames_.push_back({ref_, 0});
      ++out_->dfs_expansions;
    } else {
      // Seed the stack as if the root frame had just yielded `first_hop`.
      // The root expansion itself is credited once by the parallel driver,
      // so the summed work metric matches the serial run exactly.
      if (!Descend(first_hop, /*depth=*/1)) return;
    }

    while (!frames_.empty()) {
      if (options_.max_cycles != 0 &&
          out_->total_cycles >= options_.max_cycles) {
        out_->truncated = true;
        return;
      }
      Frame& frame = frames_.back();
      const auto row = g_.OutNeighbors(frame.node);
      if (frame.edge_pos >= row.size()) {
        on_path_[frame.node] = false;
        path_.pop_back();
        frames_.pop_back();
        continue;
      }
      const NodeId v = row[frame.edge_pos++];
      const uint32_t depth = static_cast<uint32_t>(path_.size());  // depth of v

      if (v == ref_) {
        // Closing edge: the path r → … → frame.node plus edge back to r is a
        // simple cycle of length == depth (number of edges == nodes on path).
        if (depth >= 2) RecordCycle(depth);
        continue;
      }
      (void)Descend(v, depth);
    }
  }

 private:
  struct Frame {
    NodeId node;
    uint32_t edge_pos;
  };

  /// Pushes `v` (at the given path depth) onto the DFS unless pruned.
  /// Returns true when a frame was pushed.
  bool Descend(NodeId v, uint32_t depth) {
    if (on_path_[v]) return false;     // keep paths simple
    if (depth + 1 > k_) return false;  // path would exceed any closable cycle
    if (options_.use_pruning) {
      // v sits at distance `depth` from r along the path; it still needs
      // dist_back_[v] edges to get home. Prune when that exceeds K.
      if (dist_back_[v] == kUnreachable || depth + dist_back_[v] > k_) {
        return false;
      }
    }
    path_.push_back(v);
    on_path_[v] = true;
    frames_.push_back({v, 0});
    ++out_->dfs_expansions;
    return true;
  }

  void RecordCycle(uint32_t length) {
    ++out_->total_cycles;
    ++out_->cycles_by_length[length];
    const double weight = Sigma(options_.scoring, length);
    for (NodeId u : path_) {
      out_->scores[u] += weight;
      if (options_.collect_per_node_counts) {
        ++out_->cycle_counts_per_node[length][u];
      }
    }
  }

  const Graph& g_;
  const NodeId ref_;
  const CycleRankOptions& options_;
  const uint32_t k_;
  const std::vector<uint32_t>& dist_back_;
  CycleRankScores* out_;

  std::vector<bool> on_path_;
  std::vector<NodeId> path_;
  std::vector<Frame> frames_;
};

CycleRankScores EmptyResult(const Graph& g, const CycleRankOptions& options) {
  CycleRankScores result;
  result.scores.assign(g.num_nodes(), 0.0);
  result.cycles_by_length.assign(options.max_cycle_length + 1, 0);
  if (options.collect_per_node_counts) {
    result.cycle_counts_per_node.assign(
        options.max_cycle_length + 1,
        std::vector<uint64_t>(g.num_nodes(), 0));
  }
  return result;
}

/// Merges `branch` into `total` (element-wise sums). Branch results are
/// merged in ascending first-hop order, which keeps floating-point sums —
/// and therefore the public output — independent of thread scheduling.
void MergeInto(const CycleRankScores& branch, const CycleRankOptions& options,
               CycleRankScores* total) {
  for (size_t u = 0; u < branch.scores.size(); ++u) {
    total->scores[u] += branch.scores[u];
  }
  total->total_cycles += branch.total_cycles;
  for (size_t n = 0; n < branch.cycles_by_length.size(); ++n) {
    total->cycles_by_length[n] += branch.cycles_by_length[n];
  }
  if (options.collect_per_node_counts) {
    for (size_t n = 0; n < branch.cycle_counts_per_node.size(); ++n) {
      for (size_t u = 0; u < branch.cycle_counts_per_node[n].size(); ++u) {
        total->cycle_counts_per_node[n][u] +=
            branch.cycle_counts_per_node[n][u];
      }
    }
  }
  total->dfs_expansions += branch.dfs_expansions;
}

CycleRankScores RunParallel(const Graph& g, NodeId reference,
                            const CycleRankOptions& options,
                            const std::vector<uint32_t>& dist_back) {
  // Every cycle's second node is one of the reference's out-neighbours;
  // partition by that first hop.
  const auto branches = g.OutNeighbors(reference);
  std::vector<CycleRankScores> partials(branches.size());
  std::vector<std::thread> workers;
  const uint32_t num_threads =
      std::min<uint32_t>(options.num_threads,
                         std::max<size_t>(branches.size(), 1));
  std::atomic<size_t> next_branch{0};
  workers.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&] {
      while (true) {
        const size_t b = next_branch.fetch_add(1, std::memory_order_relaxed);
        if (b >= branches.size()) return;
        partials[b] = EmptyResult(g, options);
        CycleEnumerator enumerator(g, reference, options, dist_back,
                                   &partials[b]);
        enumerator.Run(branches[b]);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  CycleRankScores result = EmptyResult(g, options);
  result.dfs_expansions = 1;  // the root expansion (see CycleEnumerator::Run)
  for (const CycleRankScores& partial : partials) {
    MergeInto(partial, options, &result);
  }
  return result;
}

}  // namespace

Result<CycleRankScores> ComputeCycleRank(const Graph& g, NodeId reference,
                                         const CycleRankOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("CycleRank: reference node " +
                              std::to_string(reference) + " out of range");
  }
  if (options.max_cycle_length < 2) {
    return Status::InvalidArgument(
        "CycleRank: max_cycle_length (K) must be >= 2, got " +
        std::to_string(options.max_cycle_length));
  }

  // One backward BFS gives dist(v → r) for the pruning rule. Bounded by
  // K-1: anything farther can never participate in a cycle of length ≤ K.
  std::vector<uint32_t> dist_back;
  if (options.use_pruning) {
    CYCLERANK_ASSIGN_OR_RETURN(
        dist_back, BfsDistances(g, reference, Direction::kBackward,
                                options.max_cycle_length - 1));
  } else {
    dist_back.assign(g.num_nodes(), 0);
  }

  if (options.num_threads > 1 && options.max_cycles == 0) {
    return RunParallel(g, reference, options, dist_back);
  }

  CycleRankScores result = EmptyResult(g, options);
  CycleEnumerator enumerator(g, reference, options, dist_back, &result);
  enumerator.Run();
  return result;
}

}  // namespace cyclerank
