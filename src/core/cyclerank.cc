#include "core/cyclerank.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel_for.h"
#include "common/workspace.h"
#include "graph/sharded_graph.h"
#include "graph/traversal.h"

namespace cyclerank {
namespace {

/// Per-thread reusable scratch for the branch enumeration. All dense
/// arrays are allocated once per worker (not per branch): `on_path` resets
/// in O(1) via epochs, and `scores` / `counts` reset in O(|touched|) via
/// the touched-node list. A branch therefore costs memory proportional to
/// the nodes it actually reaches, not O(n) — the old driver allocated a
/// dense score vector (plus optional K×n count matrix) per first-hop
/// branch.
struct BranchWorkspace {
  BranchWorkspace(NodeId n, uint32_t k, bool collect_counts)
      : num_nodes(n), max_cycle_length(k) {
    on_path.Resize(n);
    credited.Resize(n);
    scores.assign(n, 0.0);
    cycles_by_length.assign(k + 1, 0);
    if (collect_counts && k >= 2) {
      // Rows for lengths 2..K, row-major; row (len-2) holds n counters.
      counts.assign(static_cast<size_t>(k - 1) * n, 0);
    }
  }

  /// Clears per-branch state; cost O(|touched| · K), not O(n).
  void BeginBranch() {
    on_path.NewEpoch();
    credited.NewEpoch();
    for (NodeId u : touched) {
      scores[u] = 0.0;
      if (!counts.empty()) {
        for (uint32_t len = 2; len <= max_cycle_length; ++len) {
          counts[static_cast<size_t>(len - 2) * num_nodes + u] = 0;
        }
      }
    }
    touched.clear();
    std::fill(cycles_by_length.begin(), cycles_by_length.end(), 0);
    total_cycles = 0;
    dfs_expansions = 0;
    path.clear();
    frames.clear();
  }

  const NodeId num_nodes;
  const uint32_t max_cycle_length;

  EpochSet on_path;
  EpochSet credited;                // membership test behind `touched`
  std::vector<double> scores;       // dense scratch, non-zero only on touched
  std::vector<NodeId> touched;      // nodes credited by this branch
  std::vector<uint64_t> counts;     // (K-1)×n rows when collecting, else empty
  std::vector<uint64_t> cycles_by_length;
  uint64_t total_cycles = 0;
  uint64_t dfs_expansions = 0;

  std::vector<NodeId> path;
  struct Frame {
    NodeId node;
    uint32_t edge_pos;
  };
  std::vector<Frame> frames;
};

/// One branch's result in sparse form: only the touched nodes, sorted
/// ascending so the merge walks them deterministically.
struct BranchPartial {
  std::vector<std::pair<NodeId, double>> scores;
  /// Parallel to `scores`: K-1 counters (lengths 2..K) per touched node,
  /// row-major. Empty unless per-node counts were requested.
  std::vector<uint64_t> count_rows;
  std::vector<uint64_t> cycles_by_length;
  uint64_t total_cycles = 0;
  uint64_t dfs_expansions = 0;
};

/// Iterative depth-first enumeration of simple paths rooted at `ref`.
///
/// A frame holds a node on the current path and a cursor into its adjacency
/// row; the path itself lives in the workspace. When an edge closes back to
/// `ref` with path length ≥ 2, every node on the path is credited with
/// σ(len).
///
/// `first_hop` restricts the enumeration to paths whose first edge is
/// ref→first_hop (used by the branch partitioning); `kInvalidNode` means
/// all branches.
class CycleEnumerator {
 public:
  CycleEnumerator(const Graph& g, NodeId ref, const CycleRankOptions& options,
                  const std::vector<uint32_t>& dist_back, BranchWorkspace* ws)
      : g_(g),
        ref_(ref),
        options_(options),
        k_(options.max_cycle_length),
        dist_back_(dist_back),
        ws_(ws) {}

  /// Returns false when a `max_cycles` cap stopped the enumeration early.
  bool Run(NodeId first_hop = kInvalidNode) {
    ws_->path.push_back(ref_);
    ws_->on_path.Add(ref_);
    if (first_hop == kInvalidNode) {
      ws_->frames.push_back({ref_, 0});
      ++ws_->dfs_expansions;
    } else {
      // Seed the stack as if the root frame had just yielded `first_hop`.
      // The root expansion itself is credited once by the branch driver,
      // so the summed work metric matches the single-enumeration run
      // exactly.
      if (!Descend(first_hop, /*depth=*/1)) return true;
    }

    while (!ws_->frames.empty()) {
      if (options_.max_cycles != 0 &&
          ws_->total_cycles >= options_.max_cycles) {
        return false;
      }
      BranchWorkspace::Frame& frame = ws_->frames.back();
      const auto row = g_.OutNeighbors(frame.node);
      if (frame.edge_pos >= row.size()) {
        ws_->on_path.Remove(frame.node);
        ws_->path.pop_back();
        ws_->frames.pop_back();
        continue;
      }
      const NodeId v = row[frame.edge_pos++];
      const uint32_t depth =
          static_cast<uint32_t>(ws_->path.size());  // depth of v

      if (v == ref_) {
        // Closing edge: the path r → … → frame.node plus edge back to r is
        // a simple cycle of length == depth (number of edges == nodes on
        // path).
        if (depth >= 2) RecordCycle(depth);
        continue;
      }
      (void)Descend(v, depth);
    }
    return true;
  }

 private:
  /// Pushes `v` (at the given path depth) onto the DFS unless pruned.
  /// Returns true when a frame was pushed.
  bool Descend(NodeId v, uint32_t depth) {
    if (ws_->on_path.Contains(v)) return false;  // keep paths simple
    if (depth + 1 > k_) return false;  // path would exceed any closable cycle
    if (options_.use_pruning) {
      // v sits at distance `depth` from r along the path; it still needs
      // dist_back_[v] edges to get home. Prune when that exceeds K.
      if (dist_back_[v] == kUnreachable || depth + dist_back_[v] > k_) {
        return false;
      }
    }
    ws_->path.push_back(v);
    ws_->on_path.Add(v);
    ws_->frames.push_back({v, 0});
    ++ws_->dfs_expansions;
    return true;
  }

  void RecordCycle(uint32_t length) {
    ++ws_->total_cycles;
    ++ws_->cycles_by_length[length];
    const double weight = Sigma(options_.scoring, length);
    const bool collect = !ws_->counts.empty();
    for (NodeId u : ws_->path) {
      // Explicit membership test: scores[u] == 0.0 would miss nodes whose
      // only weight underflowed to zero (σ = e^-n for very long cycles),
      // leaking stale count rows into the next branch on this workspace.
      if (!ws_->credited.Contains(u)) {
        ws_->credited.Add(u);
        ws_->touched.push_back(u);
      }
      ws_->scores[u] += weight;
      if (collect) {
        ++ws_->counts[static_cast<size_t>(length - 2) * ws_->num_nodes + u];
      }
    }
  }

  const Graph& g_;
  const NodeId ref_;
  const CycleRankOptions& options_;
  const uint32_t k_;
  const std::vector<uint32_t>& dist_back_;
  BranchWorkspace* ws_;
};

CycleRankScores EmptyResult(const Graph& g, const CycleRankOptions& options) {
  CycleRankScores result;
  result.scores.assign(g.num_nodes(), 0.0);
  result.cycles_by_length.assign(options.max_cycle_length + 1, 0);
  if (options.collect_per_node_counts) {
    result.cycle_counts_per_node.assign(
        options.max_cycle_length + 1,
        std::vector<uint64_t>(g.num_nodes(), 0));
  }
  return result;
}

/// Extracts the workspace's touched state into a sparse partial. Touched
/// nodes are kept in DFS discovery order — a pure function of the branch,
/// hence deterministic at any thread count — so no sort is needed.
void ExtractPartial(const CycleRankOptions& options, BranchWorkspace* ws,
                    BranchPartial* out) {
  out->scores.reserve(ws->touched.size());
  const uint32_t k = options.max_cycle_length;
  const bool collect = !ws->counts.empty();
  if (collect) out->count_rows.reserve(ws->touched.size() * (k - 1));
  for (NodeId u : ws->touched) {
    out->scores.emplace_back(u, ws->scores[u]);
    if (collect) {
      for (uint32_t len = 2; len <= k; ++len) {
        out->count_rows.push_back(
            ws->counts[static_cast<size_t>(len - 2) * ws->num_nodes + u]);
      }
    }
  }
  out->cycles_by_length = ws->cycles_by_length;
  out->total_cycles = ws->total_cycles;
  out->dfs_expansions = ws->dfs_expansions;
}

/// Merges `branch` into `total`. Partials are merged in ascending
/// first-hop order, which keeps floating-point sums — and therefore the
/// public output — independent of thread scheduling *and* thread count.
void MergeInto(const BranchPartial& branch, const CycleRankOptions& options,
               CycleRankScores* total) {
  const uint32_t k = options.max_cycle_length;
  for (size_t i = 0; i < branch.scores.size(); ++i) {
    const auto [u, score] = branch.scores[i];
    total->scores[u] += score;
    if (!branch.count_rows.empty()) {
      for (uint32_t len = 2; len <= k; ++len) {
        total->cycle_counts_per_node[len][u] +=
            branch.count_rows[i * (k - 1) + (len - 2)];
      }
    }
  }
  total->total_cycles += branch.total_cycles;
  for (size_t n = 0; n < branch.cycles_by_length.size(); ++n) {
    total->cycles_by_length[n] += branch.cycles_by_length[n];
  }
  total->dfs_expansions += branch.dfs_expansions;
}

/// Branch-partitioned enumeration: every cycle's second node is one of the
/// reference's out-neighbours, so partitioning by that first hop covers
/// each cycle exactly once. Runs the branches on the shared compute pool
/// (caller-runs, so `num_threads == 1` executes the identical code on the
/// calling thread) and merges sparse partials in ascending branch order.
CycleRankScores RunBranches(const Graph& g, NodeId reference,
                            const CycleRankOptions& options,
                            const std::vector<uint32_t>& dist_back) {
  const auto branches = g.OutNeighbors(reference);
  std::vector<BranchPartial> partials(branches.size());

  const NodeId n = g.num_nodes();
  WorkspacePool<BranchWorkspace> workspaces([&] {
    return std::make_unique<BranchWorkspace>(
        n, options.max_cycle_length, options.collect_per_node_counts);
  });

  const uint32_t num_threads = ResolveThreadCount(options.num_threads);
  ThreadPool* pool = num_threads > 1 ? GlobalComputePool() : nullptr;
  ParallelFor(pool, branches.size(), /*grain=*/1, num_threads,
              [&](size_t b, size_t, size_t) {
                auto ws = workspaces.Acquire();
                ws->BeginBranch();
                CycleEnumerator enumerator(g, reference, options, dist_back,
                                           ws.get());
                enumerator.Run(branches[b]);
                ExtractPartial(options, ws.get(), &partials[b]);
              });

  CycleRankScores result = EmptyResult(g, options);
  result.dfs_expansions = 1;  // the root expansion (see CycleEnumerator::Run)
  for (const BranchPartial& partial : partials) {
    MergeInto(partial, options, &result);
  }
  return result;
}

/// Single enumeration over all branches at once — only used when a global
/// `max_cycles` cap must be enforced exactly, which cannot be split across
/// concurrent branches.
CycleRankScores RunCapped(const Graph& g, NodeId reference,
                          const CycleRankOptions& options,
                          const std::vector<uint32_t>& dist_back) {
  BranchWorkspace ws(g.num_nodes(), options.max_cycle_length,
                     options.collect_per_node_counts);
  ws.BeginBranch();
  CycleEnumerator enumerator(g, reference, options, dist_back, &ws);
  const bool completed = enumerator.Run();

  CycleRankScores result = EmptyResult(g, options);
  result.truncated = !completed;
  BranchPartial partial;
  ExtractPartial(options, &ws, &partial);
  MergeInto(partial, options, &result);
  return result;
}

}  // namespace

Result<CycleRankScores> ComputeCycleRank(const Graph& g, NodeId reference,
                                         const CycleRankOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("CycleRank: reference node " +
                              std::to_string(reference) + " out of range");
  }
  if (options.max_cycle_length < 2) {
    return Status::InvalidArgument(
        "CycleRank: max_cycle_length (K) must be >= 2, got " +
        std::to_string(options.max_cycle_length));
  }
  if (options.sharded != nullptr && options.sharded->parent().get() != &g) {
    return Status::InvalidArgument(
        "CycleRank: sharded view does not belong to this graph");
  }

  // One backward BFS gives dist(v → r) for the pruning rule. Bounded by
  // K-1: anything farther can never participate in a cycle of length ≤ K.
  // The BFS runs on the frontier engine with the query's thread budget, so
  // the pruning pass scales on the shared pool alongside the enumeration.
  std::vector<uint32_t> dist_back;
  if (options.use_pruning) {
    CYCLERANK_ASSIGN_OR_RETURN(
        dist_back, BfsDistances(g, reference, Direction::kBackward,
                                options.max_cycle_length - 1,
                                options.num_threads, options.sharded));
  } else {
    dist_back.assign(g.num_nodes(), 0);
  }

  if (options.max_cycles != 0) {
    return RunCapped(g, reference, options, dist_back);
  }
  return RunBranches(g, reference, options, dist_back);
}

}  // namespace cyclerank
