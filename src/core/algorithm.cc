#include "core/algorithm.h"

#include "common/strings.h"
#include "core/cheirank.h"
#include "core/cyclerank.h"
#include "core/forward_push.h"
#include "core/monte_carlo.h"
#include "core/pagerank.h"
#include "core/twodrank.h"

namespace cyclerank {

std::string_view AlgorithmKindToString(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kPageRank:
      return "pagerank";
    case AlgorithmKind::kPersonalizedPageRank:
      return "pers_pagerank";
    case AlgorithmKind::kCheiRank:
      return "cheirank";
    case AlgorithmKind::kPersonalizedCheiRank:
      return "pers_cheirank";
    case AlgorithmKind::k2DRank:
      return "2drank";
    case AlgorithmKind::kPersonalized2DRank:
      return "pers_2drank";
    case AlgorithmKind::kCycleRank:
      return "cyclerank";
    case AlgorithmKind::kPprForwardPush:
      return "ppr_push";
    case AlgorithmKind::kPprMonteCarlo:
      return "ppr_montecarlo";
  }
  return "?";
}

Result<AlgorithmKind> AlgorithmKindFromString(std::string_view name) {
  const std::string lower = AsciiToLower(StripAsciiWhitespace(name));
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    if (lower == AlgorithmKindToString(kind)) return kind;
  }
  // Friendly aliases matching the paper's phrasing.
  if (lower == "ppr" || lower == "personalized pagerank" ||
      lower == "pers. pagerank") {
    return AlgorithmKind::kPersonalizedPageRank;
  }
  if (lower == "pr") return AlgorithmKind::kPageRank;
  if (lower == "cr") return AlgorithmKind::kCycleRank;
  return Status::NotFound("unknown algorithm '" + std::string(name) + "'");
}

const std::vector<AlgorithmKind>& AllAlgorithmKinds() {
  static const std::vector<AlgorithmKind>* kinds =
      new std::vector<AlgorithmKind>{
          AlgorithmKind::kPageRank,
          AlgorithmKind::kPersonalizedPageRank,
          AlgorithmKind::kCheiRank,
          AlgorithmKind::kPersonalizedCheiRank,
          AlgorithmKind::k2DRank,
          AlgorithmKind::kPersonalized2DRank,
          AlgorithmKind::kCycleRank,
          AlgorithmKind::kPprForwardPush,
          AlgorithmKind::kPprMonteCarlo,
      };
  return *kinds;
}

namespace {

Status CheckReference(const Graph& g, const AlgorithmRequest& request,
                      std::string_view algo) {
  if (request.reference == kInvalidNode) {
    return Status::InvalidArgument(std::string(algo) +
                                   ": a reference node is required");
  }
  if (!g.IsValidNode(request.reference)) {
    return Status::OutOfRange(std::string(algo) + ": reference node " +
                              std::to_string(request.reference) +
                              " out of range");
  }
  return Status::OK();
}

PageRankOptions ToPageRankOptions(const AlgorithmRequest& request) {
  PageRankOptions options;
  options.alpha = request.alpha;
  options.tolerance = request.tolerance;
  options.max_iterations = request.max_iterations;
  options.num_threads = request.num_threads;
  options.sharded = request.sharded_graph.get();
  return options;
}

RankingOptions ToRankingOptions(const AlgorithmRequest& request,
                                bool drop_zeros) {
  RankingOptions options;
  options.top_k = request.top_k;
  options.drop_zeros = drop_zeros;
  return options;
}

class PageRankAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "pagerank"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_ASSIGN_OR_RETURN(PageRankScores pr,
                               ComputePageRank(g, ToPageRankOptions(request)));
    return ScoresToRankedList(pr.scores,
                              ToRankingOptions(request, /*drop_zeros=*/false));
  }
};

class PersonalizedPageRankAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "pers_pagerank"; }
  bool requires_reference() const override { return true; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_RETURN_NOT_OK(CheckReference(g, request, name()));
    CYCLERANK_ASSIGN_OR_RETURN(
        PageRankScores pr,
        ComputePersonalizedPageRank(g, request.reference,
                                    ToPageRankOptions(request)));
    return ScoresToRankedList(pr.scores,
                              ToRankingOptions(request, /*drop_zeros=*/true));
  }
};

class CheiRankAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "cheirank"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_ASSIGN_OR_RETURN(PageRankScores scores,
                               ComputeCheiRank(g, ToPageRankOptions(request)));
    return ScoresToRankedList(scores.scores,
                              ToRankingOptions(request, /*drop_zeros=*/false));
  }
};

class PersonalizedCheiRankAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "pers_cheirank"; }
  bool requires_reference() const override { return true; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_RETURN_NOT_OK(CheckReference(g, request, name()));
    CYCLERANK_ASSIGN_OR_RETURN(
        PageRankScores scores,
        ComputePersonalizedCheiRank(g, request.reference,
                                    ToPageRankOptions(request)));
    return ScoresToRankedList(scores.scores,
                              ToRankingOptions(request, /*drop_zeros=*/true));
  }
};

class TwoDRankAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "2drank"; }
  bool requires_reference() const override { return false; }
  bool produces_scores() const override { return false; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_ASSIGN_OR_RETURN(TwoDRankResult rank,
                               Compute2DRank(g, ToPageRankOptions(request)));
    return OrderToRankedList(rank.order, request.top_k);
  }
};

class Personalized2DRankAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "pers_2drank"; }
  bool requires_reference() const override { return true; }
  bool produces_scores() const override { return false; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_RETURN_NOT_OK(CheckReference(g, request, name()));
    CYCLERANK_ASSIGN_OR_RETURN(
        TwoDRankResult rank,
        ComputePersonalized2DRank(g, request.reference,
                                  ToPageRankOptions(request)));
    return OrderToRankedList(rank.order, request.top_k);
  }
};

class CycleRankAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "cyclerank"; }
  bool requires_reference() const override { return true; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_RETURN_NOT_OK(CheckReference(g, request, name()));
    CycleRankOptions options;
    options.max_cycle_length = request.max_cycle_length;
    options.scoring = request.scoring;
    options.num_threads = request.num_threads;
    options.sharded = request.sharded_graph.get();
    CYCLERANK_ASSIGN_OR_RETURN(
        CycleRankScores scores,
        ComputeCycleRank(g, request.reference, options));
    return ScoresToRankedList(scores.scores,
                              ToRankingOptions(request, /*drop_zeros=*/true));
  }
};

class ForwardPushAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "ppr_push"; }
  bool requires_reference() const override { return true; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_RETURN_NOT_OK(CheckReference(g, request, name()));
    ForwardPushOptions options;
    options.alpha = request.alpha;
    options.epsilon = request.epsilon;
    options.num_threads = request.num_threads;
    options.sharded = request.sharded_graph.get();
    CYCLERANK_ASSIGN_OR_RETURN(
        ForwardPushScores scores,
        ComputeForwardPushPpr(g, request.reference, options));
    return ScoresToRankedList(scores.scores,
                              ToRankingOptions(request, /*drop_zeros=*/true));
  }
};

class MonteCarloAlgorithm final : public RelevanceAlgorithm {
 public:
  std::string_view name() const override { return "ppr_montecarlo"; }
  bool requires_reference() const override { return true; }
  bool produces_scores() const override { return true; }
  Result<RankedList> Run(const Graph& g,
                         const AlgorithmRequest& request) const override {
    CYCLERANK_RETURN_NOT_OK(CheckReference(g, request, name()));
    MonteCarloOptions options;
    options.alpha = request.alpha;
    options.num_walks = request.num_walks;
    options.seed = request.seed;
    options.num_threads = request.num_threads;
    CYCLERANK_ASSIGN_OR_RETURN(
        MonteCarloScores scores,
        ComputeMonteCarloPpr(g, request.reference, options));
    return ScoresToRankedList(scores.scores,
                              ToRankingOptions(request, /*drop_zeros=*/true));
  }
};

}  // namespace

std::unique_ptr<RelevanceAlgorithm> MakeAlgorithm(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kPageRank:
      return std::make_unique<PageRankAlgorithm>();
    case AlgorithmKind::kPersonalizedPageRank:
      return std::make_unique<PersonalizedPageRankAlgorithm>();
    case AlgorithmKind::kCheiRank:
      return std::make_unique<CheiRankAlgorithm>();
    case AlgorithmKind::kPersonalizedCheiRank:
      return std::make_unique<PersonalizedCheiRankAlgorithm>();
    case AlgorithmKind::k2DRank:
      return std::make_unique<TwoDRankAlgorithm>();
    case AlgorithmKind::kPersonalized2DRank:
      return std::make_unique<Personalized2DRankAlgorithm>();
    case AlgorithmKind::kCycleRank:
      return std::make_unique<CycleRankAlgorithm>();
    case AlgorithmKind::kPprForwardPush:
      return std::make_unique<ForwardPushAlgorithm>();
    case AlgorithmKind::kPprMonteCarlo:
      return std::make_unique<MonteCarloAlgorithm>();
  }
  return nullptr;
}

}  // namespace cyclerank
