#include "core/pagerank.h"

#include <cmath>
#include <cstddef>
#include <string>
#include <vector>

#include "common/parallel_for.h"
#include "graph/sharded_graph.h"

namespace cyclerank {
namespace internal {

Result<PageRankScores> PowerIteration(const Graph& g,
                                      const PageRankOptions& options,
                                      bool reverse) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("PageRank: empty graph");
  if (!(options.alpha > 0.0) || !(options.alpha < 1.0)) {
    return Status::InvalidArgument("PageRank: alpha must be in (0,1), got " +
                                   std::to_string(options.alpha));
  }
  if (!(options.tolerance > 0.0)) {
    return Status::InvalidArgument("PageRank: tolerance must be positive");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("PageRank: max_iterations must be >= 1");
  }
  if (options.sharded != nullptr && options.sharded->parent().get() != &g) {
    return Status::InvalidArgument(
        "PageRank: sharded view does not belong to this graph");
  }

  // Teleport distribution v.
  std::vector<double> teleport(n, 0.0);
  if (options.teleport_set.empty()) {
    const double uniform = 1.0 / static_cast<double>(n);
    teleport.assign(n, uniform);
  } else {
    const double mass = 1.0 / static_cast<double>(options.teleport_set.size());
    for (NodeId t : options.teleport_set) {
      if (!g.IsValidNode(t)) {
        return Status::OutOfRange("PageRank: teleport node " +
                                  std::to_string(t) + " out of range");
      }
      if (teleport[t] != 0.0) {
        return Status::InvalidArgument(
            "PageRank: duplicate teleport node " + std::to_string(t));
      }
      teleport[t] = mass;
    }
  }

  // Hoisted out of the iteration loop: the dangling-node list (replacing
  // an O(n) scan per iteration) and the inverse effective out-degree
  // (replacing a division per edge). A dangling node's inverse degree is 0
  // so its contribution term vanishes without a branch in the edge loop.
  std::vector<double> inv_degree(n, 0.0);
  std::vector<NodeId> dangling;
  for (NodeId u = 0; u < n; ++u) {
    const uint32_t degree = reverse ? g.InDegree(u) : g.OutDegree(u);
    if (degree == 0) {
      dangling.push_back(u);
    } else {
      inv_degree[u] = 1.0 / static_cast<double>(degree);
    }
  }

  const double alpha = options.alpha;
  std::vector<double> p(teleport);  // start from the teleport distribution
  std::vector<double> next(n, 0.0);
  std::vector<double> contrib(n, 0.0);  // p[u] / degree(u), per iteration

  // Fixed-grain chunking: boundaries depend only on n, so per-chunk
  // residuals — combined below in a deterministic tree reduction — make the
  // output bit-identical at every thread count.
  constexpr size_t kPullGrain = 2048;
  const uint32_t num_threads = ResolveThreadCount(options.num_threads);
  ThreadPool* pool = num_threads > 1 ? GlobalComputePool() : nullptr;
  std::vector<double> chunk_l1(NumChunks(n, kPullGrain), 0.0);

  // Shard map over the unchanged chunk grid: a chunk fully inside one
  // shard pulls from that shard's local rows (element-equal to the
  // parent's); straddlers (at most num_shards - 1 chunks) use the
  // monolithic CSR. Empty when unsharded.
  const ShardedGraph* sharded = options.sharded;
  const std::vector<int32_t> chunk_shard =
      sharded != nullptr
          ? BuildChunkShardMap(sharded->bounds(), n, kPullGrain)
          : std::vector<int32_t>{};

  PageRankScores result;
  for (uint32_t iter = 1; iter <= options.max_iterations; ++iter) {
    // Mass parked on dangling nodes re-enters via the teleport vector.
    // Summed in ascending node order over the precomputed list: O(|D|),
    // deterministic.
    double dangling_mass = 0.0;
    for (NodeId u : dangling) dangling_mass += p[u];

    ParallelFor(pool, n, kPullGrain, num_threads,
                [&](size_t chunk, size_t begin, size_t end) {
                  for (size_t u = begin; u < end; ++u) {
                    contrib[u] = p[u] * inv_degree[u];
                  }
                  (void)chunk;
                });

    ParallelFor(
        pool, n, kPullGrain, num_threads,
        [&](size_t chunk, size_t begin, size_t end) {
          double l1 = 0.0;
          const int32_t shard =
              chunk_shard.empty() ? -1 : chunk_shard[chunk];
          for (size_t v = begin; v < end; ++v) {
            double inflow = 0.0;
            // Pull along in-edges of v under the chosen direction, from
            // the chunk's shard-local rows when it has one.
            const NodeId node = static_cast<NodeId>(v);
            const auto sources =
                shard >= 0
                    ? (reverse ? sharded->OutNeighbors(
                                     static_cast<uint32_t>(shard), node)
                               : sharded->InNeighbors(
                                     static_cast<uint32_t>(shard), node))
                    : (reverse ? g.OutNeighbors(node) : g.InNeighbors(node));
            for (NodeId u : sources) inflow += contrib[u];
            const double value = alpha * (inflow + dangling_mass * teleport[v]) +
                                 (1.0 - alpha) * teleport[v];
            l1 += std::fabs(value - p[v]);
            next[v] = value;
          }
          chunk_l1[chunk] = l1;
        });

    const double l1_change = DeterministicSum(chunk_l1);
    p.swap(next);
    result.iterations = iter;
    result.residual = l1_change;
    if (l1_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(p);
  return result;
}

}  // namespace internal

Result<PageRankScores> ComputePageRank(const Graph& g,
                                       const PageRankOptions& options) {
  return internal::PowerIteration(g, options, /*reverse=*/false);
}

Result<PageRankScores> ComputePersonalizedPageRank(
    const Graph& g, NodeId reference, const PageRankOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("PersonalizedPageRank: reference node " +
                              std::to_string(reference) + " out of range");
  }
  PageRankOptions personalized = options;
  personalized.teleport_set = {reference};
  return internal::PowerIteration(g, personalized, /*reverse=*/false);
}

}  // namespace cyclerank
