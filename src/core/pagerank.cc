#include "core/pagerank.h"

#include <cmath>
#include <string>
#include <vector>

namespace cyclerank {
namespace internal {

Result<PageRankScores> PowerIteration(const Graph& g,
                                      const PageRankOptions& options,
                                      bool reverse) {
  const NodeId n = g.num_nodes();
  if (n == 0) return Status::InvalidArgument("PageRank: empty graph");
  if (!(options.alpha > 0.0) || !(options.alpha < 1.0)) {
    return Status::InvalidArgument("PageRank: alpha must be in (0,1), got " +
                                   std::to_string(options.alpha));
  }
  if (!(options.tolerance > 0.0)) {
    return Status::InvalidArgument("PageRank: tolerance must be positive");
  }
  if (options.max_iterations == 0) {
    return Status::InvalidArgument("PageRank: max_iterations must be >= 1");
  }

  // Teleport distribution v.
  std::vector<double> teleport(n, 0.0);
  if (options.teleport_set.empty()) {
    const double uniform = 1.0 / static_cast<double>(n);
    teleport.assign(n, uniform);
  } else {
    const double mass = 1.0 / static_cast<double>(options.teleport_set.size());
    for (NodeId t : options.teleport_set) {
      if (!g.IsValidNode(t)) {
        return Status::OutOfRange("PageRank: teleport node " +
                                  std::to_string(t) + " out of range");
      }
      if (teleport[t] != 0.0) {
        return Status::InvalidArgument(
            "PageRank: duplicate teleport node " + std::to_string(t));
      }
      teleport[t] = mass;
    }
  }

  // Effective out-degree under the chosen direction.
  auto out_degree = [&](NodeId u) -> uint32_t {
    return reverse ? g.InDegree(u) : g.OutDegree(u);
  };

  const double alpha = options.alpha;
  std::vector<double> p(teleport);  // start from the teleport distribution
  std::vector<double> next(n, 0.0);

  PageRankScores result;
  for (uint32_t iter = 1; iter <= options.max_iterations; ++iter) {
    // Mass parked on dangling nodes re-enters via the teleport vector.
    double dangling_mass = 0.0;
    for (NodeId u = 0; u < n; ++u) {
      if (out_degree(u) == 0) dangling_mass += p[u];
    }

    double l1_change = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      double inflow = 0.0;
      // Pull along in-edges of v under the chosen direction.
      const auto sources = reverse ? g.OutNeighbors(v) : g.InNeighbors(v);
      for (NodeId u : sources) {
        inflow += p[u] / static_cast<double>(out_degree(u));
      }
      const double value =
          alpha * (inflow + dangling_mass * teleport[v]) +
          (1.0 - alpha) * teleport[v];
      l1_change += std::fabs(value - p[v]);
      next[v] = value;
    }
    p.swap(next);
    result.iterations = iter;
    result.residual = l1_change;
    if (l1_change < options.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(p);
  return result;
}

}  // namespace internal

Result<PageRankScores> ComputePageRank(const Graph& g,
                                       const PageRankOptions& options) {
  return internal::PowerIteration(g, options, /*reverse=*/false);
}

Result<PageRankScores> ComputePersonalizedPageRank(
    const Graph& g, NodeId reference, const PageRankOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("PersonalizedPageRank: reference node " +
                              std::to_string(reference) + " out of range");
  }
  PageRankOptions personalized = options;
  personalized.teleport_set = {reference};
  return internal::PowerIteration(g, personalized, /*reverse=*/false);
}

}  // namespace cyclerank
