#ifndef CYCLERANK_CORE_EXPLAIN_H_
#define CYCLERANK_CORE_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

/// Options for cycle explanations.
struct ExplainOptions {
  /// Maximum cycle length K, as in `CycleRankOptions`.
  uint32_t max_cycle_length = 3;

  /// Stop after collecting this many cycles (they arrive shortest-first up
  /// to DFS order within a length class). Must be ≥ 1.
  uint64_t max_cycles = 25;
};

/// The evidence behind one CycleRank score entry.
struct CycleExplanation {
  /// Cycles through both the reference and the target node, each listed as
  /// its node sequence starting at the reference (the closing edge back to
  /// the reference is implicit). Sorted by length, then DFS order.
  std::vector<std::vector<NodeId>> cycles;

  /// True when `max_cycles` stopped the collection early.
  bool truncated = false;

  /// Total number of qualifying cycles inspected (== cycles.size() unless
  /// truncated).
  uint64_t total_found = 0;
};

/// Enumerates the simple cycles of length ≤ K that contain both `reference`
/// and `target` — the paths that produce `target`'s CycleRank score, in the
/// spirit of the demo's goal "to uncover hidden relationships within the
/// data" (abstract). With `target == reference`, every cycle through the
/// reference qualifies.
///
/// Errors: OutOfRange for invalid nodes, InvalidArgument for K < 2 or a
/// zero cycle cap.
Result<CycleExplanation> ExplainCycles(const Graph& g, NodeId reference,
                                       NodeId target,
                                       const ExplainOptions& options = {});

/// Renders an explanation as "ref -> a -> b -> (ref)" lines using node
/// labels.
std::string FormatExplanation(const CycleExplanation& explanation,
                              const Graph& g);

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_EXPLAIN_H_
