#ifndef CYCLERANK_CORE_MONTE_CARLO_H_
#define CYCLERANK_CORE_MONTE_CARLO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

/// Which random-walk statistic estimates PPR.
enum class MonteCarloEstimator {
  /// Fraction of *all visited states* at each node. Unbiased for the PPR
  /// stationary distribution; variance shrinks with total walk length.
  kVisitFrequency,

  /// Fraction of walks *terminating* at each node (Avrachenkov et al.).
  /// Cheaper bookkeeping, higher variance on low-α settings.
  kEndpoint,
};

/// Options for Monte-Carlo Personalized PageRank.
struct MonteCarloOptions {
  /// Damping factor α = continuation probability of the walk.
  double alpha = 0.85;

  /// Number of independent walks started at the reference node.
  uint64_t num_walks = 100000;

  /// PRNG seed; identical seeds reproduce identical estimates.
  uint64_t seed = 42;

  MonteCarloEstimator estimator = MonteCarloEstimator::kVisitFrequency;

  /// Safety bound on a single walk's length (dangling-free cycles cannot
  /// trap a walk since termination is geometric, but a cap keeps worst-case
  /// latency bounded).
  uint32_t max_walk_length = 10000;

  /// Worker threads for the walk shards, scheduled on the process-wide
  /// compute pool. 1 = run on the calling thread only; 0 = use every pool
  /// worker. Walks are split into fixed-size shards, each driven by its
  /// own RNG stream derived from `seed` (successive xoshiro 2^128 jumps),
  /// and visit counts are merged with integer addition — so estimates are
  /// **bit-identical at every thread count** for a given seed.
  uint32_t num_threads = 1;
};

/// Outcome of a Monte-Carlo PPR estimation.
struct MonteCarloScores {
  /// Estimated PPR distribution (sums to 1 up to rounding).
  std::vector<double> scores;
  uint64_t total_steps = 0;  ///< states visited across all walks
};

/// Simulates `num_walks` α-terminated random walks from `reference`
/// ("simulating a stochastic process in which a user follows random paths",
/// §II) and estimates PPR from the chosen statistic. A walk reaching a
/// dangling node teleports back to the reference node, mirroring the
/// power-iteration dangling rule, so the estimate converges to the same
/// distribution as `ComputePersonalizedPageRank`.
Result<MonteCarloScores> ComputeMonteCarloPpr(
    const Graph& g, NodeId reference, const MonteCarloOptions& options = {});

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_MONTE_CARLO_H_
