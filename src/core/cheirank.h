#ifndef CYCLERANK_CORE_CHEIRANK_H_
#define CYCLERANK_CORE_CHEIRANK_H_

#include "common/result.h"
#include "core/pagerank.h"
#include "graph/graph.h"

namespace cyclerank {

/// CheiRank (Chepelianskii 2010, paper §II): "the PageRank score of nodes
/// on the transposed graph … a kind of PageRank based on outgoing instead
/// of incoming connections."
///
/// Implemented by running the shared power-iteration kernel with the edge
/// direction reversed — no transposed copy of the graph is materialized.
/// `Transpose(g)` + `ComputePageRank` yields bit-identical scores (checked
/// by tests).
Result<PageRankScores> ComputeCheiRank(const Graph& g,
                                       const PageRankOptions& options = {});

/// Personalized CheiRank: teleport restricted to `reference`, walking
/// reversed edges. Ranks nodes by how strongly the reference node *reaches*
/// them through out-links.
Result<PageRankScores> ComputePersonalizedCheiRank(
    const Graph& g, NodeId reference, const PageRankOptions& options = {});

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_CHEIRANK_H_
