#ifndef CYCLERANK_CORE_FORWARD_PUSH_H_
#define CYCLERANK_CORE_FORWARD_PUSH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

class ShardedGraph;

/// Options for the local forward-push PPR approximation
/// (Andersen, Chung & Lang, FOCS 2006). This is one of the "more efficient
/// algorithms" the paper alludes to in §II: it touches only the
/// neighbourhood of the reference node instead of the whole graph.
struct ForwardPushOptions {
  /// Damping factor α, as in `PageRankOptions`.
  double alpha = 0.85;

  /// Residual threshold ε: a node is pushed while its residual exceeds
  /// ε · out_degree. Smaller ε → more accurate, more work. The final
  /// per-node error is bounded by ε · out_degree(node).
  double epsilon = 1e-7;

  /// Hard cap on push operations (0 = unlimited) — a safety valve for
  /// adversarial ε on huge graphs. `pushes` never exceeds the cap: each
  /// round's admission is budgeted by the remaining allowance, and the
  /// check runs at *round boundaries* of the round-synchronous schedule,
  /// so where the truncation lands is independent of the thread count. A
  /// cap that lands exactly on the convergence point still reports
  /// `converged` (nothing was pending when it was reached).
  uint64_t max_pushes = 0;

  /// Worker budget on the process-wide compute pool (`GlobalComputePool`);
  /// 0 = every pool worker. Pushes are round-synchronous on the frontier
  /// engine (`common/frontier.h`): each round pushes a whole admitted
  /// frontier in parallel, with residual deltas accumulated per chunk and
  /// merged in ascending chunk order — so scores, pushes, converged, and
  /// residual_mass are **bit-identical at every thread count**, including
  /// the serial path. Admission is biggest-residuals-first (deterministic
  /// power-of-4 ratio tiers), which keeps the total push count at the
  /// old queue-carried schedule's level (see forward_push.cc: TierQueue).
  uint32_t num_threads = 1;

  /// Optional sharded view of the *same* graph (`sharded->parent().get()`
  /// must equal the graph passed to the kernel — validated). When set, the
  /// frontier engine refines its execution chunks at shard crossings and
  /// pushes stream each shard's local CSR rows. Execution-only, like
  /// `num_threads`: merge batches are independent of the refinement (see
  /// common/frontier.h), so scores, pushes, converged, and residual_mass
  /// are bit-identical at every shard count, unsharded included.
  /// Borrowed; must outlive the call.
  const ShardedGraph* sharded = nullptr;
};

/// Outcome of a forward-push run.
struct ForwardPushScores {
  /// Approximate PPR estimates, one per node (lower bounds on the exact
  /// personalized PageRank). Sums to ≤ 1; the deficit is the mass still
  /// parked in `residual_mass`.
  std::vector<double> scores;

  /// Total residual probability mass not yet converted into estimates.
  double residual_mass = 0.0;

  uint64_t pushes = 0;
  bool converged = true;  ///< false iff `max_pushes` stopped the run
};

/// Approximates Personalized PageRank for `reference` by local pushes:
/// start with residual 1 at the reference node; repeatedly convert a
/// (1-α) fraction of a node's residual into its estimate and spread the
/// α fraction uniformly over its out-neighbours. Residual mass reaching a
/// dangling node teleports back to the reference (consistent with the
/// power-iteration treatment of sinks).
///
/// The push schedule is round-synchronous (Jacobi-style) rather than
/// queue-carried: round R pushes every node whose residual exceeded its
/// threshold after round R-1's merge. The fixpoint it converges to
/// satisfies the same ACL invariant (underestimates within
/// ε · out_degree), and the schedule is what makes the output a pure
/// function of `(graph, reference, options)` — independent of thread
/// count and scheduling.
Result<ForwardPushScores> ComputeForwardPushPpr(
    const Graph& g, NodeId reference, const ForwardPushOptions& options = {});

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_FORWARD_PUSH_H_
