#ifndef CYCLERANK_CORE_FORWARD_PUSH_H_
#define CYCLERANK_CORE_FORWARD_PUSH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

/// Options for the local forward-push PPR approximation
/// (Andersen, Chung & Lang, FOCS 2006). This is one of the "more efficient
/// algorithms" the paper alludes to in §II: it touches only the
/// neighbourhood of the reference node instead of the whole graph.
struct ForwardPushOptions {
  /// Damping factor α, as in `PageRankOptions`.
  double alpha = 0.85;

  /// Residual threshold ε: a node is pushed while its residual exceeds
  /// ε · out_degree. Smaller ε → more accurate, more work. The final
  /// per-node error is bounded by ε · out_degree(node).
  double epsilon = 1e-7;

  /// Hard cap on push operations (0 = unlimited) — a safety valve for
  /// adversarial ε on huge graphs.
  uint64_t max_pushes = 0;
};

/// Outcome of a forward-push run.
struct ForwardPushScores {
  /// Approximate PPR estimates, one per node (lower bounds on the exact
  /// personalized PageRank). Sums to ≤ 1; the deficit is the mass still
  /// parked in `residual_mass`.
  std::vector<double> scores;

  /// Total residual probability mass not yet converted into estimates.
  double residual_mass = 0.0;

  uint64_t pushes = 0;
  bool converged = true;  ///< false iff `max_pushes` stopped the run
};

/// Approximates Personalized PageRank for `reference` by local pushes:
/// start with residual 1 at the reference node; repeatedly convert a
/// (1-α) fraction of a node's residual into its estimate and spread the
/// α fraction uniformly over its out-neighbours. Residual mass reaching a
/// dangling node teleports back to the reference (consistent with the
/// power-iteration treatment of sinks).
Result<ForwardPushScores> ComputeForwardPushPpr(
    const Graph& g, NodeId reference, const ForwardPushOptions& options = {});

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_FORWARD_PUSH_H_
