#ifndef CYCLERANK_CORE_SCORING_H_
#define CYCLERANK_CORE_SCORING_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace cyclerank {

/// CycleRank scoring functions σ(n) weighting a cycle of length n
/// (paper Eq. (1): "σ(n) is the general form of a scoring function").
/// The paper's default — experimentally best on Wikipedia — is the
/// exponential damping σ(n) = e^-n; the CycleRank journal paper also
/// evaluates the reciprocal-linear, reciprocal-quadratic and constant
/// variants, which we ship for the ablation bench (DESIGN.md A1).
enum class ScoringFunction {
  kExponential,  ///< σ(n) = e^-n (paper default)
  kLinear,       ///< σ(n) = 1/n
  kQuadratic,    ///< σ(n) = 1/n²
  kConstant,     ///< σ(n) = 1
};

/// Evaluates σ(n) for a cycle length `n >= 1`.
double Sigma(ScoringFunction fn, uint32_t n);

/// Canonical names: "exp", "lin", "quad", "const".
std::string_view ScoringFunctionToString(ScoringFunction fn);

/// Parses a scoring-function name (also accepts the long forms
/// "exponential", "linear", "quadratic", "constant").
Result<ScoringFunction> ScoringFunctionFromString(std::string_view name);

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_SCORING_H_
