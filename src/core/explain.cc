#include "core/explain.h"

#include <algorithm>
#include <sstream>

#include "graph/traversal.h"

namespace cyclerank {
namespace {

/// Depth-first simple-path enumeration rooted at `ref` (same pruning as the
/// CycleRank enumerator), collecting the cycles that contain `target`.
class ExplainEnumerator {
 public:
  ExplainEnumerator(const Graph& g, NodeId ref, NodeId target,
                    const ExplainOptions& options,
                    const std::vector<uint32_t>& dist_back,
                    CycleExplanation* out)
      : g_(g),
        ref_(ref),
        target_(target),
        k_(options.max_cycle_length),
        max_cycles_(options.max_cycles),
        dist_back_(dist_back),
        out_(out),
        on_path_(g.num_nodes(), false) {}

  void Run() {
    path_.push_back(ref_);
    on_path_[ref_] = true;
    frames_.push_back({ref_, 0});
    while (!frames_.empty()) {
      if (out_->total_found >= max_cycles_) {
        out_->truncated = true;
        return;
      }
      Frame& frame = frames_.back();
      const auto row = g_.OutNeighbors(frame.node);
      if (frame.edge_pos >= row.size()) {
        on_path_[frame.node] = false;
        path_.pop_back();
        frames_.pop_back();
        continue;
      }
      const NodeId v = row[frame.edge_pos++];
      const uint32_t depth = static_cast<uint32_t>(path_.size());
      if (v == ref_) {
        if (depth >= 2 &&
            (target_ == ref_ || on_path_[target_])) {
          out_->cycles.push_back(path_);
          ++out_->total_found;
        }
        continue;
      }
      if (on_path_[v]) continue;
      if (depth + 1 > k_) continue;
      if (dist_back_[v] == kUnreachable || depth + dist_back_[v] > k_) {
        continue;
      }
      path_.push_back(v);
      on_path_[v] = true;
      frames_.push_back({v, 0});
    }
  }

 private:
  struct Frame {
    NodeId node;
    uint32_t edge_pos;
  };

  const Graph& g_;
  const NodeId ref_;
  const NodeId target_;
  const uint32_t k_;
  const uint64_t max_cycles_;
  const std::vector<uint32_t>& dist_back_;
  CycleExplanation* out_;

  std::vector<bool> on_path_;
  std::vector<NodeId> path_;
  std::vector<Frame> frames_;
};

}  // namespace

Result<CycleExplanation> ExplainCycles(const Graph& g, NodeId reference,
                                       NodeId target,
                                       const ExplainOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("ExplainCycles: reference node " +
                              std::to_string(reference) + " out of range");
  }
  if (!g.IsValidNode(target)) {
    return Status::OutOfRange("ExplainCycles: target node " +
                              std::to_string(target) + " out of range");
  }
  if (options.max_cycle_length < 2) {
    return Status::InvalidArgument(
        "ExplainCycles: max_cycle_length (K) must be >= 2");
  }
  if (options.max_cycles == 0) {
    return Status::InvalidArgument("ExplainCycles: max_cycles must be >= 1");
  }
  CYCLERANK_ASSIGN_OR_RETURN(
      std::vector<uint32_t> dist_back,
      BfsDistances(g, reference, Direction::kBackward,
                   options.max_cycle_length - 1));

  CycleExplanation explanation;
  ExplainEnumerator enumerator(g, reference, target, options, dist_back,
                               &explanation);
  enumerator.Run();
  // Shortest cycles first: the strongest evidence under every sigma.
  std::stable_sort(explanation.cycles.begin(), explanation.cycles.end(),
                   [](const std::vector<NodeId>& a,
                      const std::vector<NodeId>& b) {
                     return a.size() < b.size();
                   });
  return explanation;
}

std::string FormatExplanation(const CycleExplanation& explanation,
                              const Graph& g) {
  std::ostringstream os;
  for (const std::vector<NodeId>& cycle : explanation.cycles) {
    os << "  [" << cycle.size() << "] ";
    for (size_t i = 0; i < cycle.size(); ++i) {
      if (i) os << " -> ";
      os << g.NodeName(cycle[i]);
    }
    os << " -> (" << g.NodeName(cycle.front()) << ")\n";
  }
  if (explanation.truncated) {
    os << "  ... (stopped after " << explanation.total_found << " cycles)\n";
  }
  return os.str();
}

}  // namespace cyclerank
