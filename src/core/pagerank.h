#ifndef CYCLERANK_CORE_PAGERANK_H_
#define CYCLERANK_CORE_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

class ShardedGraph;

/// Options for the PageRank / Personalized PageRank power iteration (§II).
struct PageRankOptions {
  /// Damping factor α — the probability of following a link versus
  /// teleporting ("generally assumed to be 0.85", §II; the paper's Table I
  /// uses α=0.3 for PPR).
  double alpha = 0.85;

  /// Stop when the L1 change between successive iterates drops below this.
  double tolerance = 1e-10;

  /// Hard iteration cap; the run reports `converged=false` when hit.
  uint32_t max_iterations = 200;

  /// Teleport set: empty → uniform teleport (classic PageRank); otherwise
  /// teleporting is "directed to a specific node or set of nodes" (§II,
  /// Personalized PageRank). Duplicate nodes are invalid.
  std::vector<NodeId> teleport_set;

  /// Worker threads for the pull phase, scheduled on the process-wide
  /// compute pool (`GlobalComputePool`). 1 = run on the calling thread
  /// only; 0 = use every pool worker. The iteration is chunked on a fixed
  /// grain and per-chunk residuals are combined in a deterministic tree
  /// reduction, so scores and iteration counts are **bit-identical at
  /// every thread count**.
  uint32_t num_threads = 1;

  /// Optional sharded view of the *same* graph (`sharded->parent().get()`
  /// must equal the graph passed to the kernel — validated). When set, the
  /// pull phase streams shard-local CSR rows for every fixed-grain chunk
  /// fully contained in one shard (`BuildChunkShardMap`); chunks straddling
  /// a shard boundary fall back to the monolithic arrays. Execution-only,
  /// like `num_threads`: the chunk grid — and with it every per-chunk
  /// residual and the tree reduction — is untouched, and shard-local rows
  /// are element-equal to the parent's, so scores, iterations, and
  /// residuals are bit-identical at every shard count, unsharded included.
  /// Borrowed; must outlive the call.
  const ShardedGraph* sharded = nullptr;
};

/// Outcome of a PageRank computation.
struct PageRankScores {
  /// Stationary probabilities, one per node; sums to 1.
  std::vector<double> scores;
  uint32_t iterations = 0;
  bool converged = false;
  /// Final L1 residual.
  double residual = 0.0;
};

/// Computes PageRank (uniform teleport) or Personalized PageRank (teleport
/// restricted to `options.teleport_set`) by power iteration:
///
///   p' = α·(Pᵀ p + dangling_mass·v) + (1-α)·v
///
/// where `v` is the teleport distribution. Mass leaking through dangling
/// nodes (out-degree 0) re-enters through `v`, so `p` stays a probability
/// distribution even on graphs with sinks.
///
/// Errors: InvalidArgument for α outside (0,1), non-positive tolerance, an
/// empty graph, or an out-of-range/duplicate teleport node.
Result<PageRankScores> ComputePageRank(const Graph& g,
                                       const PageRankOptions& options = {});

/// Personalized PageRank with a single reference node — the common demo
/// case (§IV-C takes "a reference node r"). Equivalent to `ComputePageRank`
/// with `teleport_set = {reference}`.
Result<PageRankScores> ComputePersonalizedPageRank(
    const Graph& g, NodeId reference, const PageRankOptions& options = {});

namespace internal {

/// Shared kernel: when `reverse` is true the iteration runs on the
/// transposed adjacency (used by CheiRank without materializing Gᵀ).
Result<PageRankScores> PowerIteration(const Graph& g,
                                      const PageRankOptions& options,
                                      bool reverse);

}  // namespace internal

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_PAGERANK_H_
