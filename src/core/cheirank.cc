#include "core/cheirank.h"

namespace cyclerank {

Result<PageRankScores> ComputeCheiRank(const Graph& g,
                                       const PageRankOptions& options) {
  return internal::PowerIteration(g, options, /*reverse=*/true);
}

Result<PageRankScores> ComputePersonalizedCheiRank(
    const Graph& g, NodeId reference, const PageRankOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("PersonalizedCheiRank: reference node " +
                              std::to_string(reference) + " out of range");
  }
  PageRankOptions personalized = options;
  personalized.teleport_set = {reference};
  return internal::PowerIteration(g, personalized, /*reverse=*/true);
}

}  // namespace cyclerank
