#include "core/monte_carlo.h"

#include <algorithm>
#include <memory>
#include <string>

#include "common/parallel_for.h"
#include "common/rng.h"
#include "common/workspace.h"

namespace cyclerank {
namespace {

/// Per-thread scratch: visit counters merged after the sharded simulation.
struct WalkWorkspace {
  std::vector<uint64_t> counts;
  uint64_t steps = 0;
};

/// Walks are partitioned into fixed shards of this many walks; each shard
/// owns an RNG stream. The shard structure depends only on `num_walks`, so
/// the estimate is reproducible at any thread count.
constexpr uint64_t kWalksPerShard = 16384;

void RunWalkShard(const Graph& g, NodeId reference,
                  const MonteCarloOptions& options, uint64_t num_walks,
                  Rng rng, WalkWorkspace* ws) {
  for (uint64_t w = 0; w < num_walks; ++w) {
    NodeId u = reference;
    uint32_t length = 0;
    while (true) {
      if (options.estimator == MonteCarloEstimator::kVisitFrequency) {
        ++ws->counts[u];
        ++ws->steps;
      }
      if (length >= options.max_walk_length) break;
      if (!rng.NextBool(options.alpha)) break;  // teleport: walk ends
      const auto row = g.OutNeighbors(u);
      if (row.empty()) {
        // Dangling: jump home and continue (same rule as power iteration).
        u = reference;
      } else {
        u = row[rng.NextBounded(row.size())];
      }
      ++length;
    }
    if (options.estimator == MonteCarloEstimator::kEndpoint) {
      ++ws->counts[u];
      ++ws->steps;
    }
  }
}

}  // namespace

Result<MonteCarloScores> ComputeMonteCarloPpr(
    const Graph& g, NodeId reference, const MonteCarloOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("MonteCarloPpr: reference node " +
                              std::to_string(reference) + " out of range");
  }
  if (!(options.alpha > 0.0) || !(options.alpha < 1.0)) {
    return Status::InvalidArgument("MonteCarloPpr: alpha must be in (0,1)");
  }
  if (options.num_walks == 0) {
    return Status::InvalidArgument("MonteCarloPpr: num_walks must be >= 1");
  }

  const NodeId n = g.num_nodes();
  const size_t num_shards =
      static_cast<size_t>((options.num_walks + kWalksPerShard - 1) /
                          kWalksPerShard);

  // Shard s draws from Rng(seed) advanced by s xoshiro jumps — 2^128 draws
  // apart, so streams never overlap and depend only on (seed, shard).
  std::vector<Rng> shard_rng;
  shard_rng.reserve(num_shards);
  Rng rng(options.seed);
  for (size_t s = 0; s < num_shards; ++s) {
    shard_rng.push_back(rng);
    rng.Jump();
  }

  WorkspacePool<WalkWorkspace> workspaces([n] {
    auto ws = std::make_unique<WalkWorkspace>();
    ws->counts.assign(n, 0);
    return ws;
  });

  const uint32_t num_threads = ResolveThreadCount(options.num_threads);
  ThreadPool* pool = num_threads > 1 ? GlobalComputePool() : nullptr;
  ParallelFor(pool, num_shards, /*grain=*/1, num_threads,
              [&](size_t shard, size_t, size_t) {
                const uint64_t begin = shard * kWalksPerShard;
                const uint64_t walks =
                    std::min<uint64_t>(kWalksPerShard,
                                       options.num_walks - begin);
                auto ws = workspaces.Acquire();
                RunWalkShard(g, reference, options, walks, shard_rng[shard],
                             ws.get());
              });

  // Integer merge: associative and commutative, hence independent of which
  // thread ran which shard.
  std::vector<uint64_t> counts(n, 0);
  uint64_t total_steps = 0;
  workspaces.ForEach([&](const WalkWorkspace& ws) {
    for (NodeId u = 0; u < n; ++u) counts[u] += ws.counts[u];
    total_steps += ws.steps;
  });

  MonteCarloScores result;
  result.total_steps = total_steps;
  result.scores.assign(n, 0.0);
  const double denom =
      options.estimator == MonteCarloEstimator::kVisitFrequency
          ? static_cast<double>(total_steps)
          : static_cast<double>(options.num_walks);
  if (denom > 0) {
    for (NodeId u = 0; u < n; ++u) {
      result.scores[u] = static_cast<double>(counts[u]) / denom;
    }
  }
  return result;
}

}  // namespace cyclerank
