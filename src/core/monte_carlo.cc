#include "core/monte_carlo.h"

#include <string>

#include "common/rng.h"

namespace cyclerank {

Result<MonteCarloScores> ComputeMonteCarloPpr(
    const Graph& g, NodeId reference, const MonteCarloOptions& options) {
  if (!g.IsValidNode(reference)) {
    return Status::OutOfRange("MonteCarloPpr: reference node " +
                              std::to_string(reference) + " out of range");
  }
  if (!(options.alpha > 0.0) || !(options.alpha < 1.0)) {
    return Status::InvalidArgument("MonteCarloPpr: alpha must be in (0,1)");
  }
  if (options.num_walks == 0) {
    return Status::InvalidArgument("MonteCarloPpr: num_walks must be >= 1");
  }

  const NodeId n = g.num_nodes();
  Rng rng(options.seed);

  std::vector<uint64_t> counts(n, 0);
  uint64_t total_steps = 0;

  for (uint64_t w = 0; w < options.num_walks; ++w) {
    NodeId u = reference;
    uint32_t length = 0;
    while (true) {
      if (options.estimator == MonteCarloEstimator::kVisitFrequency) {
        ++counts[u];
        ++total_steps;
      }
      if (length >= options.max_walk_length) break;
      if (!rng.NextBool(options.alpha)) break;  // teleport: walk ends
      const auto row = g.OutNeighbors(u);
      if (row.empty()) {
        // Dangling: jump home and continue (same rule as power iteration).
        u = reference;
      } else {
        u = row[rng.NextBounded(row.size())];
      }
      ++length;
    }
    if (options.estimator == MonteCarloEstimator::kEndpoint) {
      ++counts[u];
      ++total_steps;
    }
  }

  MonteCarloScores result;
  result.total_steps = total_steps;
  result.scores.assign(n, 0.0);
  const double denom =
      options.estimator == MonteCarloEstimator::kVisitFrequency
          ? static_cast<double>(total_steps)
          : static_cast<double>(options.num_walks);
  if (denom > 0) {
    for (NodeId u = 0; u < n; ++u) {
      result.scores[u] = static_cast<double>(counts[u]) / denom;
    }
  }
  return result;
}

}  // namespace cyclerank
