#ifndef CYCLERANK_CORE_RANKING_H_
#define CYCLERANK_CORE_RANKING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace cyclerank {

/// One entry of a relevance ranking.
struct ScoredNode {
  NodeId node = kInvalidNode;
  double score = 0.0;

  friend bool operator==(const ScoredNode& a, const ScoredNode& b) {
    return a.node == b.node && a.score == b.score;
  }
};

/// A relevance ranking: entries sorted by descending score, ties broken by
/// ascending node id (deterministic across runs and platforms). Rank-only
/// algorithms (2DRank) emit monotonically decreasing placeholder scores.
using RankedList = std::vector<ScoredNode>;

/// Options for converting a dense score vector into a `RankedList`.
struct RankingOptions {
  /// Keep only the `top_k` best entries; 0 keeps everything.
  size_t top_k = 0;

  /// Drop zero-scored nodes. CycleRank assigns 0 to every node outside the
  /// reference node's cycle neighbourhood, so this is on by default; dense
  /// algorithms (PageRank) are unaffected because their scores are positive.
  bool drop_zeros = true;
};

/// Sorts `scores` into a ranking (descending score, ascending id on ties).
RankedList ScoresToRankedList(const std::vector<double>& scores,
                              const RankingOptions& options = {});

/// Converts an explicit node ordering into a `RankedList` with placeholder
/// scores 1/(position+1) — used by rank-only algorithms.
RankedList OrderToRankedList(const std::vector<NodeId>& order,
                             size_t top_k = 0);

/// Position (0-based) of every node in `ranking`; nodes absent from the
/// ranking get `num_nodes` (i.e. "worse than every ranked node").
std::vector<uint32_t> RankPositions(const RankedList& ranking,
                                    NodeId num_nodes);

/// The top-k node ids of `ranking`, in rank order.
std::vector<NodeId> TopKNodes(const RankedList& ranking, size_t k);

/// Renders the first `k` entries as "rank. label (score)" lines.
std::string FormatTopK(const RankedList& ranking, const Graph& g, size_t k);

}  // namespace cyclerank

#endif  // CYCLERANK_CORE_RANKING_H_
