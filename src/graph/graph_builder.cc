#include "graph/graph_builder.h"

#include <algorithm>

namespace cyclerank {

void GraphBuilder::ReserveNodes(NodeId n) {
  min_nodes_ = std::max(min_nodes_, n);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  edges_.emplace_back(u, v);
}

NodeId GraphBuilder::AddNode(std::string_view label) {
  if (!labels_) labels_ = std::make_unique<LabelMap>();
  const NodeId id = labels_->GetOrAdd(label);
  min_nodes_ = std::max<NodeId>(min_nodes_, id + 1);
  return id;
}

void GraphBuilder::AddEdge(std::string_view from, std::string_view to) {
  // Two statements: argument evaluation order is unspecified, and ids must
  // be assigned in (from, to) order for first-appearance numbering.
  const NodeId u = AddNode(from);
  const NodeId v = AddNode(to);
  AddEdge(u, v);
}

Result<Graph> GraphBuilder::Build(const GraphBuildOptions& options) {
  // Determine the node count.
  NodeId n = min_nodes_;
  for (const auto& [u, v] : edges_) {
    n = std::max<NodeId>(n, u + 1);
    n = std::max<NodeId>(n, v + 1);
  }
  if (labels_ && labels_->size() > n) n = static_cast<NodeId>(labels_->size());

  std::vector<std::pair<NodeId, NodeId>> edges = std::move(edges_);
  edges_.clear();

  if (options.drop_self_loops) {
    edges.erase(std::remove_if(edges.begin(), edges.end(),
                               [](const auto& e) { return e.first == e.second; }),
                edges.end());
  }
  std::sort(edges.begin(), edges.end());
  if (options.deduplicate) {
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }

  Graph g;
  g.out_offsets_.assign(n + 1, 0);
  g.in_offsets_.assign(n + 1, 0);
  g.out_targets_.resize(edges.size());
  g.in_sources_.resize(edges.size());

  for (const auto& [u, v] : edges) {
    ++g.out_offsets_[u + 1];
    ++g.in_offsets_[v + 1];
  }
  for (NodeId i = 0; i < n; ++i) {
    g.out_offsets_[i + 1] += g.out_offsets_[i];
    g.in_offsets_[i + 1] += g.in_offsets_[i];
  }
  // Edges are sorted by (u, v): the out-CSR fills strictly left to right and
  // every row ends up sorted. The in-CSR rows also end up sorted because for
  // a fixed target v the sources arrive in ascending order.
  std::vector<uint64_t> out_cursor(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
  std::vector<uint64_t> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    g.out_targets_[out_cursor[u]++] = v;
    g.in_sources_[in_cursor[v]++] = u;
  }

  if (labels_) {
    g.labels_ = std::shared_ptr<const LabelMap>(std::move(labels_));
    labels_.reset();
  }
  min_nodes_ = 0;
  g.memory_bytes_ = g.ComputeMemoryBytes();
  return g;
}

Result<GraphPtr> GraphBuilder::BuildShared(const GraphBuildOptions& options) {
  CYCLERANK_ASSIGN_OR_RETURN(Graph g, Build(options));
  return GraphPtr(std::make_shared<Graph>(std::move(g)));
}

}  // namespace cyclerank
