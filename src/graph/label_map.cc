#include "graph/label_map.h"

namespace cyclerank {

NodeId LabelMap::GetOrAdd(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), id);
  return id;
}

std::optional<NodeId> LabelMap::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cyclerank
