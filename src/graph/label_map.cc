#include "graph/label_map.h"

namespace cyclerank {

NodeId LabelMap::GetOrAdd(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), id);
  return id;
}

size_t LabelMap::MemoryBytes() const {
  size_t bytes = sizeof(LabelMap);
  for (const std::string& label : labels_) {
    // The labels_ slot plus the index_ entry that duplicates the key:
    // two string headers and payloads, the mapped id, and a hash-node's
    // worth of pointer overhead.
    bytes += 2 * (sizeof(std::string) + label.size());
    bytes += sizeof(NodeId) + 2 * sizeof(void*);
  }
  return bytes;
}

std::optional<NodeId> LabelMap::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace cyclerank
