#ifndef CYCLERANK_GRAPH_IO_PAJEK_H_
#define CYCLERANK_GRAPH_IO_PAJEK_H_

#include <iosfwd>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace cyclerank {

/// Pajek `.net` support — the second upload format of the demo (§IV-B).
///
/// Grammar handled (case-insensitive keywords, 1-based vertex numbers):
/// ```
///   *Vertices N
///   1 "Label one"
///   2 "Label two"      ; labels optional
///   *Arcs              ; directed edges "u v [weight]"
///   1 2
///   *Edges             ; undirected edges -> emitted in both directions
///   2 3 1.5
/// ```
/// `%` starts a comment line. Weights are accepted and ignored (the demo's
/// algorithms are unweighted). `*Arcslist` / `*Edgeslist` adjacency-list
/// sections are also handled.
Result<Graph> ReadPajek(std::istream& in, const GraphBuildOptions& build = {});

/// Serializes `g` as `*Vertices` (+labels) and `*Arcs`.
Status WritePajek(const Graph& g, std::ostream& out);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_IO_PAJEK_H_
