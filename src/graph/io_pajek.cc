#include "graph/io_pajek.h"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/strings.h"

namespace cyclerank {
namespace {

enum class Section { kNone, kVertices, kArcs, kEdges, kArcsList, kEdgesList };

// Extracts an optional quoted label from a vertex line such as
//   3 "Fake news" 0.5 0.5
// Returns an empty view when no quoted label is present.
std::string_view ExtractQuotedLabel(std::string_view line) {
  const size_t open = line.find('"');
  if (open == std::string_view::npos) return {};
  const size_t close = line.find('"', open + 1);
  if (close == std::string_view::npos) return {};
  return line.substr(open + 1, close - open - 1);
}

Status BadLine(size_t line_no, const std::string& what) {
  return Status::ParseError("pajek line " + std::to_string(line_no) + ": " +
                            what);
}

}  // namespace

Result<Graph> ReadPajek(std::istream& in, const GraphBuildOptions& build) {
  GraphBuilder builder;
  Section section = Section::kNone;
  int64_t declared_vertices = -1;
  std::vector<std::string> labels;  // 0-based; empty string = unlabeled
  bool any_label = false;

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view data = StripAsciiWhitespace(line);
    if (data.empty() || data[0] == '%') continue;

    if (data[0] == '*') {
      const std::string keyword = AsciiToLower(data.substr(1));
      const auto tokens = SplitWhitespace(keyword);
      if (tokens.empty()) return BadLine(line_no, "empty section header");
      const std::string head(tokens[0]);
      if (head == "vertices") {
        if (tokens.size() < 2) {
          return BadLine(line_no, "*Vertices requires a count");
        }
        CYCLERANK_ASSIGN_OR_RETURN(declared_vertices, ParseInt64(tokens[1]));
        if (declared_vertices < 0) {
          return BadLine(line_no, "negative vertex count");
        }
        labels.assign(static_cast<size_t>(declared_vertices), "");
        section = Section::kVertices;
      } else if (head == "arcs") {
        section = Section::kArcs;
      } else if (head == "edges") {
        section = Section::kEdges;
      } else if (head == "arcslist") {
        section = Section::kArcsList;
      } else if (head == "edgeslist") {
        section = Section::kEdgesList;
      } else {
        return BadLine(line_no, "unknown section '*" + head + "'");
      }
      continue;
    }

    switch (section) {
      case Section::kNone:
        return BadLine(line_no, "data before any section header");
      case Section::kVertices: {
        const auto tokens = SplitWhitespace(data);
        CYCLERANK_ASSIGN_OR_RETURN(int64_t idx, ParseInt64(tokens[0]));
        if (idx < 1 || idx > declared_vertices) {
          return BadLine(line_no, "vertex id out of range");
        }
        const std::string_view label = ExtractQuotedLabel(data);
        if (!label.empty()) {
          labels[static_cast<size_t>(idx - 1)] = std::string(label);
          any_label = true;
        }
        break;
      }
      case Section::kArcs:
      case Section::kEdges: {
        const auto tokens = SplitWhitespace(data);
        if (tokens.size() < 2) return BadLine(line_no, "expected 'u v'");
        CYCLERANK_ASSIGN_OR_RETURN(int64_t u, ParseInt64(tokens[0]));
        CYCLERANK_ASSIGN_OR_RETURN(int64_t v, ParseInt64(tokens[1]));
        if (u < 1 || v < 1 ||
            (declared_vertices >= 0 &&
             (u > declared_vertices || v > declared_vertices))) {
          return BadLine(line_no, "endpoint out of range");
        }
        const NodeId a = static_cast<NodeId>(u - 1);
        const NodeId b = static_cast<NodeId>(v - 1);
        builder.AddEdge(a, b);
        if (section == Section::kEdges) builder.AddEdge(b, a);
        break;
      }
      case Section::kArcsList:
      case Section::kEdgesList: {
        const auto tokens = SplitWhitespace(data);
        if (tokens.size() < 2) return BadLine(line_no, "expected 'u v...'");
        CYCLERANK_ASSIGN_OR_RETURN(int64_t u, ParseInt64(tokens[0]));
        if (u < 1) return BadLine(line_no, "endpoint out of range");
        for (size_t i = 1; i < tokens.size(); ++i) {
          CYCLERANK_ASSIGN_OR_RETURN(int64_t v, ParseInt64(tokens[i]));
          if (v < 1) return BadLine(line_no, "endpoint out of range");
          const NodeId a = static_cast<NodeId>(u - 1);
          const NodeId b = static_cast<NodeId>(v - 1);
          builder.AddEdge(a, b);
          if (section == Section::kEdgesList) builder.AddEdge(b, a);
        }
        break;
      }
    }
  }
  if (in.bad()) return Status::IOError("stream error while reading pajek");
  if (declared_vertices < 0) {
    return Status::ParseError("pajek: missing *Vertices section");
  }

  builder.ReserveNodes(static_cast<NodeId>(declared_vertices));
  if (any_label) {
    // Re-register labels so ids align: vertex i-1 must get id i-1. AddNode
    // assigns ids densely in insertion order, so insert in vertex order and
    // fall back to a synthetic label for unlabeled vertices.
    GraphBuilder labeled;
    for (size_t i = 0; i < labels.size(); ++i) {
      labeled.AddNode(labels[i].empty() ? "v" + std::to_string(i + 1)
                                        : labels[i]);
    }
    CYCLERANK_ASSIGN_OR_RETURN(Graph unlabeled, builder.Build(build));
    for (NodeId u = 0; u < unlabeled.num_nodes(); ++u) {
      for (NodeId v : unlabeled.OutNeighbors(u)) labeled.AddEdge(u, v);
    }
    labeled.ReserveNodes(static_cast<NodeId>(declared_vertices));
    return labeled.Build(build);
  }
  return builder.Build(build);
}

Status WritePajek(const Graph& g, std::ostream& out) {
  out << "*Vertices " << g.num_nodes() << '\n';
  if (g.labels() != nullptr) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      out << (u + 1) << " \"" << g.NodeName(u) << "\"\n";
    }
  }
  out << "*Arcs\n";
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      out << (u + 1) << ' ' << (v + 1) << '\n';
    }
  }
  if (!out) return Status::IOError("stream error while writing pajek");
  return Status::OK();
}

}  // namespace cyclerank
