#ifndef CYCLERANK_GRAPH_TRAVERSAL_H_
#define CYCLERANK_GRAPH_TRAVERSAL_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

class ShardedGraph;

/// Distance value for unreachable nodes.
inline constexpr uint32_t kUnreachable = std::numeric_limits<uint32_t>::max();

/// Direction of a traversal.
enum class Direction {
  kForward,   ///< follow edges u→v
  kBackward,  ///< follow edges v→u (predecessors)
};

/// Breadth-first distances from `source`, bounded by `max_depth`
/// (inclusive). Nodes farther than `max_depth` (or unreachable) get
/// `kUnreachable`. `max_depth = kUnreachable` means unbounded.
///
/// The backward variant computes, for every node v, the length of the
/// shortest path v→…→source — exactly the quantity CycleRank's pruning
/// needs (DESIGN.md §4).
///
/// Runs level-synchronously on the frontier engine (`common/frontier.h`):
/// each BFS wave is expanded in parallel on the shared compute pool when
/// `num_threads > 1` (0 = every pool worker). Distances are identical at
/// every thread count — BFS waves assign the same depth regardless of
/// expansion order.
///
/// `sharded`, when non-null, must be a view of `g` (validated) and makes
/// the expansion stream shard-local CSR rows; distances are identical with
/// or without it (BFS depth assignment is order-independent, and the
/// engine's merge order doesn't depend on the shard refinement).
Result<std::vector<uint32_t>> BfsDistances(const Graph& g, NodeId source,
                                           Direction direction,
                                           uint32_t max_depth = kUnreachable,
                                           uint32_t num_threads = 1,
                                           const ShardedGraph* sharded =
                                               nullptr);

/// Ids of nodes with finite distance from `source` within `max_depth`,
/// ascending. Includes `source` itself (distance 0).
Result<std::vector<NodeId>> ReachableSet(const Graph& g, NodeId source,
                                         Direction direction,
                                         uint32_t max_depth = kUnreachable,
                                         uint32_t num_threads = 1,
                                         const ShardedGraph* sharded =
                                             nullptr);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_TRAVERSAL_H_
