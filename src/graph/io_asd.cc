#include "graph/io_asd.h"

#include <istream>
#include <ostream>
#include <string>

#include "common/strings.h"

namespace cyclerank {
namespace {

bool NextDataLine(std::istream& in, std::string* line, size_t* line_no) {
  while (std::getline(in, *line)) {
    ++*line_no;
    std::string_view data = StripAsciiWhitespace(*line);
    if (!data.empty() && data[0] != '#') return true;
  }
  return false;
}

}  // namespace

Result<Graph> ReadAsd(std::istream& in, const GraphBuildOptions& build) {
  std::string line;
  size_t line_no = 0;
  if (!NextDataLine(in, &line, &line_no)) {
    return Status::ParseError("asd: missing 'N M' header");
  }
  const auto header = SplitWhitespace(line);
  if (header.size() != 2) {
    return Status::ParseError("asd line " + std::to_string(line_no) +
                              ": header must be 'N M'");
  }
  CYCLERANK_ASSIGN_OR_RETURN(int64_t n, ParseInt64(header[0]));
  CYCLERANK_ASSIGN_OR_RETURN(int64_t m, ParseInt64(header[1]));
  if (n < 0 || m < 0) {
    return Status::ParseError("asd: negative count in header");
  }

  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(n));
  int64_t read = 0;
  while (read < m) {
    if (!NextDataLine(in, &line, &line_no)) {
      return Status::ParseError("asd: expected " + std::to_string(m) +
                                " edges, found " + std::to_string(read));
    }
    const auto tokens = SplitWhitespace(line);
    if (tokens.size() != 2) {
      return Status::ParseError("asd line " + std::to_string(line_no) +
                                ": expected 'u v'");
    }
    CYCLERANK_ASSIGN_OR_RETURN(int64_t u, ParseInt64(tokens[0]));
    CYCLERANK_ASSIGN_OR_RETURN(int64_t v, ParseInt64(tokens[1]));
    if (u < 0 || v < 0 || u >= n || v >= n) {
      return Status::ParseError("asd line " + std::to_string(line_no) +
                                ": endpoint out of range [0, " +
                                std::to_string(n) + ")");
    }
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
    ++read;
  }
  if (NextDataLine(in, &line, &line_no)) {
    return Status::ParseError("asd: trailing data after " +
                              std::to_string(m) + " edges (line " +
                              std::to_string(line_no) + ")");
  }
  if (in.bad()) return Status::IOError("stream error while reading asd");
  return builder.Build(build);
}

Status WriteAsd(const Graph& g, std::ostream& out) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) out << u << ' ' << v << '\n';
  }
  if (!out) return Status::IOError("stream error while writing asd");
  return Status::OK();
}

}  // namespace cyclerank
