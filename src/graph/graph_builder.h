#ifndef CYCLERANK_GRAPH_GRAPH_BUILDER_H_
#define CYCLERANK_GRAPH_GRAPH_BUILDER_H_

#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/label_map.h"

namespace cyclerank {

/// Options controlling `GraphBuilder::Build`.
struct GraphBuildOptions {
  /// Collapse parallel edges into one. The relevance algorithms treat the
  /// graph as simple (the paper's datasets are link graphs), so this
  /// defaults to true.
  bool deduplicate = true;

  /// Drop u→u edges. Self-loops never participate in cycles of length ≥ 2
  /// and distort PageRank's out-degree normalization, so they are dropped
  /// by default; readers expose the flag for faithful round-trips.
  bool drop_self_loops = true;
};

/// Accumulates edges and produces an immutable CSR `Graph`.
///
/// Two usage styles, which may be mixed only in the sense that labeled
/// builders may also receive numeric ids that were obtained from
/// `AddNode`/`AddEdge(label, label)`:
///
///  * numeric: `AddEdge(NodeId, NodeId)` — the node count is
///    `max(id) + 1` (or an explicit `ReserveNodes` floor);
///  * labeled: `AddEdge("Pasta", "Italy")` — ids are assigned densely in
///    first-appearance order and the resulting graph carries a `LabelMap`.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Ensures the built graph has at least `n` nodes (isolated nodes are
  /// permitted — a Wikipedia snapshot may contain articles with no links).
  void ReserveNodes(NodeId n);

  /// Appends the edge u→v using numeric ids.
  void AddEdge(NodeId u, NodeId v);

  /// Registers `label` (if new) and returns its id.
  NodeId AddNode(std::string_view label);

  /// Appends the edge `from`→`to` by label, registering labels as needed.
  void AddEdge(std::string_view from, std::string_view to);

  /// Number of edges accumulated so far (before dedup / self-loop drops).
  size_t PendingEdges() const { return edges_.size(); }

  /// Finalizes the graph. The builder is left empty and reusable.
  /// Fails with InvalidArgument when an explicit node reservation is
  /// exceeded by an edge endpoint in labeled mode mismatch cases; numeric
  /// ids always widen the node range.
  Result<Graph> Build(const GraphBuildOptions& options = {});

  /// Convenience: `Build` wrapped into a shared pointer.
  Result<GraphPtr> BuildShared(const GraphBuildOptions& options = {});

 private:
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::unique_ptr<LabelMap> labels_;
  NodeId min_nodes_ = 0;
};

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_GRAPH_BUILDER_H_
