#ifndef CYCLERANK_GRAPH_IO_METIS_H_
#define CYCLERANK_GRAPH_IO_METIS_H_

#include <iosfwd>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace cyclerank {

/// METIS graph format — added beyond the paper's three upload formats
/// ("we support three dataset formats and we plan to add new ones in the
/// future", §V).
///
/// Grammar handled (unweighted subset):
/// ```
///   % comment
///   N M          <- node count, *undirected* edge count
///   v1 v2 ...    <- line i (1-based): the neighbours of node i
/// ```
/// METIS is an undirected format: each edge appears in both endpoint
/// lines; the reader emits one directed edge per listed neighbour, so a
/// well-formed METIS file round-trips into a symmetric directed graph.
/// The optional `fmt`/`ncon` header fields (weights) are rejected as
/// unsupported rather than silently misread.
Result<Graph> ReadMetis(std::istream& in, const GraphBuildOptions& build = {});

/// Serializes `g` as METIS. The graph must be symmetric (u→v iff v→u),
/// since the format cannot represent one-directional edges; fails with
/// InvalidArgument otherwise.
Status WriteMetis(const Graph& g, std::ostream& out);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_IO_METIS_H_
