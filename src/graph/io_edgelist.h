#ifndef CYCLERANK_GRAPH_IO_EDGELIST_H_
#define CYCLERANK_GRAPH_IO_EDGELIST_H_

#include <iosfwd>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace cyclerank {

/// Options for the edgelist (CSV) reader — the first of the three upload
/// formats supported by the demo (paper §IV-B).
struct EdgeListReadOptions {
  /// Field separator; `'\0'` auto-detects per line: comma, semicolon, tab,
  /// or runs of spaces, in that order of preference.
  char delimiter = '\0';

  /// When true, endpoint tokens are treated as labels even if they all look
  /// numeric; when false they must parse as non-negative integers. The
  /// default auto mode (nullopt semantics via `force_labeled=false` +
  /// fallback) treats a file as numeric iff every endpoint token parses as
  /// an integer, matching Gephi's CSV behaviour.
  bool force_labeled = false;

  GraphBuildOptions build;
};

/// Parses an edgelist: one `source<sep>target` pair per line. Lines starting
/// with `#` or `%` and blank lines are ignored.
Result<Graph> ReadEdgeList(std::istream& in,
                           const EdgeListReadOptions& options = {});

/// Serializes `g` as `u,v` lines (labels when present, ids otherwise).
Status WriteEdgeList(const Graph& g, std::ostream& out, char delimiter = ',');

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_IO_EDGELIST_H_
