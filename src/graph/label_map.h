#ifndef CYCLERANK_GRAPH_LABEL_MAP_H_
#define CYCLERANK_GRAPH_LABEL_MAP_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cyclerank {

/// Dense node identifier. Nodes of a graph with `n` nodes are `[0, n)`.
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Bidirectional mapping between human-readable node labels (Wikipedia
/// article titles, Amazon product names, Twitter handles) and dense
/// `NodeId`s.
///
/// Labels are unique. Ids are assigned densely in insertion order, which
/// keeps the map directly usable as the id space of a `Graph` built in the
/// same order.
class LabelMap {
 public:
  LabelMap() = default;

  /// Returns the id for `label`, inserting a fresh one if absent.
  NodeId GetOrAdd(std::string_view label);

  /// Returns the id for `label` if present.
  std::optional<NodeId> Find(std::string_view label) const;

  /// Returns the label of `id`; `id` must be `< size()`.
  const std::string& LabelOf(NodeId id) const { return labels_[id]; }

  /// Number of labels (== max id + 1).
  size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// All labels in id order.
  const std::vector<std::string>& labels() const { return labels_; }

  /// Estimated resident bytes: label characters plus per-entry container
  /// bookkeeping for both directions of the mapping. Deterministic
  /// (counts elements, not allocator capacity) so byte-budget accounting
  /// agrees across platforms.
  size_t MemoryBytes() const;

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, NodeId> index_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_LABEL_MAP_H_
