#include "graph/graph.h"

#include <algorithm>
#include <utility>

#include "common/binary_io.h"

namespace cyclerank {

namespace {

/// Magic + version prefix of the binary graph encoding. Bump the digit on
/// any layout change; `Deserialize` rejects unknown versions outright.
constexpr std::string_view kGraphMagic = "CYGR1\n";

Status GraphCorrupt(const std::string& detail) {
  return Status::ParseError("graph codec: " + detail);
}

}  // namespace

std::string Graph::Serialize() const {
  std::string out;
  // CSR arrays dominate; reserve their exact footprint plus slack for the
  // label section.
  out.reserve(kGraphMagic.size() + 64 +
              (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t) +
              (out_targets_.size() + in_sources_.size()) * sizeof(NodeId));
  out.append(kGraphMagic);
  binio::AppendArray(&out, out_offsets_);
  binio::AppendArray(&out, out_targets_);
  binio::AppendArray(&out, in_offsets_);
  binio::AppendArray(&out, in_sources_);
  const bool labeled = labels_ != nullptr;
  binio::AppendU32(&out, labeled ? 1 : 0);
  if (labeled) {
    binio::AppendU64(&out, labels_->size());
    for (const std::string& label : labels_->labels()) {
      binio::AppendString(&out, label);
    }
  }
  return out;
}

Result<Graph> Graph::Deserialize(std::string_view bytes) {
  if (bytes.substr(0, kGraphMagic.size()) != kGraphMagic) {
    return GraphCorrupt("bad magic (not a serialized graph, or an "
                        "incompatible codec version)");
  }
  binio::Reader reader(bytes.substr(kGraphMagic.size()));
  Graph g;
  if (!reader.ReadArray(&g.out_offsets_) || !reader.ReadArray(&g.out_targets_) ||
      !reader.ReadArray(&g.in_offsets_) || !reader.ReadArray(&g.in_sources_)) {
    return GraphCorrupt("truncated CSR section");
  }
  // Re-validate the CSR invariants the builder guarantees: a corrupted
  // buffer must fail parsing, never produce spans that fault the kernels.
  if (g.out_offsets_.size() != g.in_offsets_.size()) {
    return GraphCorrupt("offset arrays disagree on the node count");
  }
  const size_t n = g.out_offsets_.empty() ? 0 : g.out_offsets_.size() - 1;
  const auto check_csr = [n](const std::vector<uint64_t>& offsets,
                             const std::vector<NodeId>& adjacency) {
    if (offsets.empty()) return adjacency.empty();
    if (offsets.front() != 0 || offsets.back() != adjacency.size()) return false;
    for (size_t i = 0; i + 1 < offsets.size(); ++i) {
      if (offsets[i] > offsets[i + 1]) return false;
    }
    for (const NodeId v : adjacency) {
      if (v >= n) return false;
    }
    return true;
  };
  if (!check_csr(g.out_offsets_, g.out_targets_) ||
      !check_csr(g.in_offsets_, g.in_sources_)) {
    return GraphCorrupt("CSR invariants violated (offsets or neighbor ids)");
  }
  uint32_t labeled = 0;
  if (!reader.ReadU32(&labeled) || labeled > 1) {
    return GraphCorrupt("truncated or invalid label marker");
  }
  if (labeled == 1) {
    uint64_t count = 0;
    if (!reader.ReadU64(&count) || count > n) {
      return GraphCorrupt("label count exceeds the node count");
    }
    auto labels = std::make_shared<LabelMap>();
    std::string label;
    for (uint64_t i = 0; i < count; ++i) {
      if (!reader.ReadString(&label)) return GraphCorrupt("truncated label");
      if (labels->GetOrAdd(label) != i) {
        return GraphCorrupt("duplicate label '" + label + "'");
      }
    }
    g.labels_ = std::move(labels);
  }
  if (!reader.AtEnd()) return GraphCorrupt("trailing bytes after the graph");
  g.memory_bytes_ = g.ComputeMemoryBytes();
  return g;
}

size_t Graph::ComputeMemoryBytes() const {
  size_t bytes = sizeof(Graph);
  bytes += (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t);
  bytes += (out_targets_.size() + in_sources_.size()) * sizeof(NodeId);
  if (labels_) bytes += labels_->MemoryBytes();
  return bytes;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (!IsValidNode(u) || !IsValidNode(v)) return false;
  const auto row = OutNeighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::string Graph::NodeName(NodeId u) const {
  if (labels_ && u < labels_->size()) return labels_->LabelOf(u);
  return std::to_string(u);
}

NodeId Graph::FindNode(std::string_view label) const {
  if (!labels_) return kInvalidNode;
  auto id = labels_->Find(label);
  if (!id.has_value() || *id >= num_nodes()) return kInvalidNode;
  return *id;
}

}  // namespace cyclerank
