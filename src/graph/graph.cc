#include "graph/graph.h"

#include <algorithm>

namespace cyclerank {

size_t Graph::ComputeMemoryBytes() const {
  size_t bytes = sizeof(Graph);
  bytes += (out_offsets_.size() + in_offsets_.size()) * sizeof(uint64_t);
  bytes += (out_targets_.size() + in_sources_.size()) * sizeof(NodeId);
  if (labels_) bytes += labels_->MemoryBytes();
  return bytes;
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (!IsValidNode(u) || !IsValidNode(v)) return false;
  const auto row = OutNeighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::string Graph::NodeName(NodeId u) const {
  if (labels_ && u < labels_->size()) return labels_->LabelOf(u);
  return std::to_string(u);
}

NodeId Graph::FindNode(std::string_view label) const {
  if (!labels_) return kInvalidNode;
  auto id = labels_->Find(label);
  if (!id.has_value() || *id >= num_nodes()) return kInvalidNode;
  return *id;
}

}  // namespace cyclerank
