#ifndef CYCLERANK_GRAPH_TRANSFORMS_H_
#define CYCLERANK_GRAPH_TRANSFORMS_H_

#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

/// Structural transforms used by the algorithm suite and the dataset tools.

/// Returns the transpose Gᵀ (every edge u→v becomes v→u). Labels are
/// preserved. CheiRank on G equals PageRank on Transpose(G); the library
/// normally uses the in-adjacency view instead, and tests use this to
/// cross-check the two paths.
Result<Graph> Transpose(const Graph& g);

/// Returns the subgraph induced by `nodes` (ids into `g`), with nodes
/// re-indexed densely in the order given. Duplicate ids are rejected.
/// Labels of the kept nodes are preserved.
Result<Graph> InducedSubgraph(const Graph& g, const std::vector<NodeId>& nodes);

/// Adds the reverse of every edge (symmetrization). Used to view an
/// interaction network as undirected-ish for exploratory stats.
Result<Graph> Symmetrize(const Graph& g);

/// Relabels nodes: node i of the result is node `order[i]` of `g`.
/// `order` must be a permutation of [0, n).
Result<Graph> Permute(const Graph& g, const std::vector<NodeId>& order);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_TRANSFORMS_H_
