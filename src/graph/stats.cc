#include "graph/stats.h"

#include <algorithm>
#include <sstream>

#include "graph/scc.h"

namespace cyclerank {

std::string GraphStats::ToString() const {
  std::ostringstream os;
  os << "nodes: " << num_nodes << "\n"
     << "edges: " << num_edges << "\n"
     << "avg degree: " << avg_degree << "\n"
     << "max out-degree: " << max_out_degree << "\n"
     << "max in-degree: " << max_in_degree << "\n"
     << "dangling nodes: " << dangling_nodes << "\n"
     << "source nodes: " << source_nodes << "\n"
     << "isolated nodes: " << isolated_nodes << "\n"
     << "reciprocity: " << reciprocity << "\n"
     << "SCCs: " << num_sccs << " (largest " << largest_scc_size << ")";
  return os.str();
}

GraphStats ComputeGraphStats(const Graph& g) {
  GraphStats stats;
  stats.num_nodes = g.num_nodes();
  stats.num_edges = g.num_edges();
  if (stats.num_nodes > 0) {
    stats.avg_degree =
        static_cast<double>(stats.num_edges) / static_cast<double>(stats.num_nodes);
  }
  uint64_t reciprocal = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const uint32_t out_deg = g.OutDegree(u);
    const uint32_t in_deg = g.InDegree(u);
    stats.max_out_degree = std::max(stats.max_out_degree, out_deg);
    stats.max_in_degree = std::max(stats.max_in_degree, in_deg);
    if (out_deg == 0) ++stats.dangling_nodes;
    if (in_deg == 0) ++stats.source_nodes;
    if (out_deg == 0 && in_deg == 0) ++stats.isolated_nodes;
    for (NodeId v : g.OutNeighbors(u)) {
      if (g.HasEdge(v, u)) ++reciprocal;
    }
  }
  if (stats.num_edges > 0) {
    stats.reciprocity =
        static_cast<double>(reciprocal) / static_cast<double>(stats.num_edges);
  }
  const SccResult scc = StronglyConnectedComponents(g);
  stats.num_sccs = scc.num_components;
  const auto sizes = scc.ComponentSizes();
  stats.largest_scc_size =
      sizes.empty() ? 0 : *std::max_element(sizes.begin(), sizes.end());
  return stats;
}

namespace {

std::vector<uint64_t> DegreeHistogram(const Graph& g, bool out) {
  uint32_t max_degree = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_degree = std::max(max_degree, out ? g.OutDegree(u) : g.InDegree(u));
  }
  std::vector<uint64_t> hist(max_degree + 1, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ++hist[out ? g.OutDegree(u) : g.InDegree(u)];
  }
  return hist;
}

}  // namespace

std::vector<uint64_t> OutDegreeHistogram(const Graph& g) {
  return DegreeHistogram(g, /*out=*/true);
}

std::vector<uint64_t> InDegreeHistogram(const Graph& g) {
  return DegreeHistogram(g, /*out=*/false);
}

}  // namespace cyclerank
