#ifndef CYCLERANK_GRAPH_IO_ASD_H_
#define CYCLERANK_GRAPH_IO_ASD_H_

#include <iosfwd>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace cyclerank {

/// ASD format — the demo authors' own format (§IV-B), matching the input of
/// the original `cyclerank` C++ implementation (spec in DESIGN.md §8):
/// ```
///   # optional comments
///   N M          <- node count, edge count
///   u v          <- M lines, 0-based endpoints, u,v < N
/// ```
Result<Graph> ReadAsd(std::istream& in, const GraphBuildOptions& build = {});

/// Serializes `g` in ASD form (`N M` header + 0-based edge lines).
Status WriteAsd(const Graph& g, std::ostream& out);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_IO_ASD_H_
