#ifndef CYCLERANK_GRAPH_SCC_H_
#define CYCLERANK_GRAPH_SCC_H_

#include <vector>

#include "graph/graph.h"

namespace cyclerank {

/// Strongly connected component decomposition.
///
/// CycleRank scores are non-zero only for nodes in the same SCC as the
/// reference node (a cycle through r and i implies mutual reachability), so
/// SCC structure is both a correctness oracle in tests and a useful
/// dataset statistic.
struct SccResult {
  /// Component id per node, in [0, num_components). Components are numbered
  /// in reverse topological order of the condensation (Tarjan's property:
  /// a component is numbered before any component it can reach).
  std::vector<uint32_t> component;
  uint32_t num_components = 0;

  /// Nodes of the largest component, ascending.
  std::vector<NodeId> LargestComponent() const;

  /// Size of each component, indexed by component id.
  std::vector<uint32_t> ComponentSizes() const;
};

/// Tarjan's algorithm, iterative (no recursion — safe for deep graphs).
SccResult StronglyConnectedComponents(const Graph& g);

/// True iff `a` and `b` are strongly connected (same SCC).
bool InSameScc(const SccResult& scc, NodeId a, NodeId b);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_SCC_H_
