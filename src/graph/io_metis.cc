#include "graph/io_metis.h"

#include <istream>
#include <ostream>
#include <string>

#include "common/strings.h"

namespace cyclerank {
namespace {

bool NextDataLine(std::istream& in, std::string* line, size_t* line_no) {
  while (std::getline(in, *line)) {
    ++*line_no;
    std::string_view data = StripAsciiWhitespace(*line);
    if (!data.empty() && data[0] != '%') return true;
  }
  return false;
}

// Adjacency rows: blank lines are meaningful (a vertex with no
// neighbours), so only comment lines are skipped here.
bool NextAdjacencyLine(std::istream& in, std::string* line, size_t* line_no) {
  while (std::getline(in, *line)) {
    ++*line_no;
    std::string_view data = StripAsciiWhitespace(*line);
    if (data.empty() || data[0] != '%') return true;
  }
  return false;
}

}  // namespace

Result<Graph> ReadMetis(std::istream& in, const GraphBuildOptions& build) {
  std::string line;
  size_t line_no = 0;
  if (!NextDataLine(in, &line, &line_no)) {
    return Status::ParseError("metis: missing header");
  }
  const auto header = SplitWhitespace(line);
  if (header.size() < 2) {
    return Status::ParseError("metis: header must be 'N M'");
  }
  if (header.size() > 2) {
    return Status::Unimplemented(
        "metis: weighted graphs (fmt/ncon header fields) are not supported");
  }
  CYCLERANK_ASSIGN_OR_RETURN(int64_t n, ParseInt64(header[0]));
  CYCLERANK_ASSIGN_OR_RETURN(int64_t m, ParseInt64(header[1]));
  if (n < 0 || m < 0) {
    return Status::ParseError("metis: negative count in header");
  }

  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(n));
  uint64_t listed = 0;
  for (int64_t u = 0; u < n; ++u) {
    if (!NextAdjacencyLine(in, &line, &line_no)) {
      return Status::ParseError("metis: expected " + std::to_string(n) +
                                " adjacency lines, found " +
                                std::to_string(u));
    }
    for (std::string_view token : SplitWhitespace(line)) {
      CYCLERANK_ASSIGN_OR_RETURN(int64_t v, ParseInt64(token));
      if (v < 1 || v > n) {
        return Status::ParseError("metis line " + std::to_string(line_no) +
                                  ": neighbour " + std::to_string(v) +
                                  " out of range [1, " + std::to_string(n) +
                                  "]");
      }
      builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v - 1));
      ++listed;
    }
  }
  if (NextDataLine(in, &line, &line_no)) {  // trailing blanks are fine
    return Status::ParseError("metis: trailing data at line " +
                              std::to_string(line_no));
  }
  if (in.bad()) return Status::IOError("stream error while reading metis");
  // Each undirected edge is listed from both endpoints (self-loops once).
  if (listed != 2 * static_cast<uint64_t>(m) &&
      listed != static_cast<uint64_t>(m)) {
    // Accept both the strict METIS convention (2m listings) and the lax
    // one-directional variant some tools emit, but reject anything else.
    return Status::ParseError(
        "metis: header declares " + std::to_string(m) + " edges but " +
        std::to_string(listed) + " neighbour entries were listed");
  }
  return builder.Build(build);
}

Status WriteMetis(const Graph& g, std::ostream& out) {
  // Verify symmetry: METIS cannot express one-directional edges.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      if (!g.HasEdge(v, u)) {
        return Status::InvalidArgument(
            "metis: graph is not symmetric (edge " + std::to_string(u) +
            "->" + std::to_string(v) + " has no reverse); Symmetrize() it "
            "first");
      }
    }
  }
  out << g.num_nodes() << ' ' << g.num_edges() / 2 << '\n';
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    bool first = true;
    for (NodeId v : g.OutNeighbors(u)) {
      if (!first) out << ' ';
      out << (v + 1);
      first = false;
    }
    out << '\n';
  }
  if (!out) return Status::IOError("stream error while writing metis");
  return Status::OK();
}

}  // namespace cyclerank
