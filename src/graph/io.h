#ifndef CYCLERANK_GRAPH_IO_H_
#define CYCLERANK_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace cyclerank {

/// The three upload formats supported by the demo (paper §IV-B), plus
/// METIS — implementing the paper's "we plan to add new [formats] in the
/// future" (§V). METIS is never auto-sniffed (its header is ambiguous with
/// ASD); select it explicitly or via the .metis extension.
enum class GraphFormat { kEdgeList, kPajek, kAsd, kMetis };

std::string_view GraphFormatToString(GraphFormat format);

/// Maps a file extension to a format:
/// `.csv/.edges/.edgelist/.txt` → edgelist, `.net/.pajek` → pajek,
/// `.asd` → ASD.
Result<GraphFormat> GraphFormatFromPath(std::string_view path);

/// Heuristically detects the format of serialized `content`:
/// a `*Vertices` header → pajek; an `N M` numeric header whose edge count
/// matches → ASD; otherwise edgelist.
GraphFormat SniffGraphFormat(std::string_view content);

/// Parses `content` in the given (or sniffed) format.
Result<Graph> ReadGraphFromString(std::string_view content,
                                  GraphFormat format,
                                  const GraphBuildOptions& build = {});
Result<Graph> ReadGraphFromString(std::string_view content,
                                  const GraphBuildOptions& build = {});

/// Loads a graph file, inferring the format from the extension unless
/// `format` is given.
Result<Graph> ReadGraphFile(const std::string& path,
                            const GraphBuildOptions& build = {});
Result<Graph> ReadGraphFile(const std::string& path, GraphFormat format,
                            const GraphBuildOptions& build = {});

/// Serializes `g` to a string / file in `format`.
Result<std::string> WriteGraphToString(const Graph& g, GraphFormat format);
Status WriteGraphFile(const Graph& g, const std::string& path,
                      GraphFormat format);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_IO_H_
