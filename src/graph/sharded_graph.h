#ifndef CYCLERANK_GRAPH_SHARDED_GRAPH_H_
#define CYCLERANK_GRAPH_SHARDED_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

/// Splits a graph's vertex set into `num_shards` contiguous id ranges —
/// the pluggable policy behind `ShardedGraph::Build`. A partition is a
/// bounds vector of `num_shards + 1` ascending node ids with
/// `bounds[0] == 0` and `bounds[P] == num_nodes()`; shard s owns
/// `[bounds[s], bounds[s+1])` (empty shards are legal, e.g. more shards
/// than nodes).
///
/// Contiguity is a contract, not an implementation detail: the frontier
/// engine's shard-aware chunking and the PageRank chunk→shard map both
/// locate a node's shard by binary-searching the bounds, and the
/// shard-local CSR views are contiguous row copies. Policies that want a
/// different *assignment* (degree-balanced, NUMA-aware) express it by
/// moving the cut points, not by scattering ids.
///
/// Implementations must be deterministic and stateless: two calls with
/// the same graph and shard count must return the same bounds (the
/// partition participates in bit-identity guarantees).
class GraphPartitioner {
 public:
  virtual ~GraphPartitioner() = default;

  /// Policy name for logs and stats, e.g. "contiguous_range".
  virtual std::string_view name() const = 0;

  /// Computes the bounds vector (see class comment). `num_shards` ≥ 1.
  virtual Result<std::vector<NodeId>> Partition(const Graph& g,
                                                uint32_t num_shards) const = 0;
};

/// Equal *vertex-count* ranges: `bounds[s] = floor(n·s / P)`. The zero-cost
/// default — no graph scan at all — and the policy the platform uses for
/// the `shards=` request parameter.
class ContiguousRangePartitioner final : public GraphPartitioner {
 public:
  std::string_view name() const override { return "contiguous_range"; }
  Result<std::vector<NodeId>> Partition(const Graph& g,
                                        uint32_t num_shards) const override;
};

/// Equal *degree-weight* ranges: greedy prefix cuts over the per-node
/// weight `1 + out_degree + in_degree`, so shards carry comparable edge
/// work even on skewed (power-law) graphs where equal vertex counts put
/// most edges in the low-id shards. Proves the partitioner seam is real;
/// a NUMA-aware policy would slot in the same way.
class DegreeBalancedPartitioner final : public GraphPartitioner {
 public:
  std::string_view name() const override { return "degree_balanced"; }
  Result<std::vector<NodeId>> Partition(const Graph& g,
                                        uint32_t num_shards) const override;
};

/// P shard-local CSR views over one immutable parent `Graph`, plus a
/// boundary-edge index. Each shard owns a contiguous vertex range and a
/// *copy* of its rows (out-targets and in-sources, global ids, same sorted
/// order as the parent) packed into compact shard-local arrays: a kernel
/// working one shard streams that shard's edges from a contiguous block
/// instead of striding the monolithic CSR. Row *contents* are
/// byte-identical to the parent's, which is what lets every sharded kernel
/// stay bit-identical to the unsharded path.
///
/// The boundary index counts, per shard, the edges whose far endpoint lies
/// outside the shard (out- and in-direction separately) and materializes
/// the *halo* — the sorted, deduplicated set of external nodes the shard's
/// out-edges reach. Today these feed locality accounting (bench counters,
/// logs); they are the shape a multi-process worker needs to size its
/// cross-worker delta traffic.
///
/// Instances are immutable after `Build` and hold a `GraphPtr` pin on the
/// parent, so a view can never outlive the CSR its row copies mirror (and
/// callers may validate `parent().get()` against the graph they were
/// handed — the platform's executor does). Like `Graph`, a `ShardedGraph`
/// is shared across threads without synchronization.
class ShardedGraph {
 public:
  /// Partitions `graph` into `num_shards` ranges with `partitioner` and
  /// materializes the shard-local views. Errors: InvalidArgument for a
  /// null graph or `num_shards == 0`, plus anything the partitioner
  /// rejects; a malformed bounds vector (wrong size, non-monotone, not
  /// spanning `[0, n]`) is an InvalidArgument naming the policy.
  static Result<ShardedGraph> Build(GraphPtr graph, uint32_t num_shards,
                                    const GraphPartitioner& partitioner);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }

  /// The partition bounds, `num_shards() + 1` entries (see
  /// `GraphPartitioner`). Stable for the view's lifetime — the frontier
  /// engine borrows this span for a whole run.
  std::span<const NodeId> bounds() const { return bounds_; }

  /// The shard owning node `u` (valid `u` only). O(log P).
  uint32_t ShardOf(NodeId u) const;

  /// Successors of `u` from shard `shard`'s local arrays. `u` must lie in
  /// the shard's range; ids are global and the span equals the parent's
  /// `OutNeighbors(u)` element-for-element.
  std::span<const NodeId> OutNeighbors(uint32_t shard, NodeId u) const {
    const Shard& s = shards_[shard];
    const NodeId local = u - s.begin;
    return {s.out_targets.data() + s.out_offsets[local],
            s.out_targets.data() + s.out_offsets[local + 1]};
  }

  /// Predecessors of `u` from shard `shard`'s local arrays (same contract
  /// as `OutNeighbors`).
  std::span<const NodeId> InNeighbors(uint32_t shard, NodeId u) const {
    const Shard& s = shards_[shard];
    const NodeId local = u - s.begin;
    return {s.in_sources.data() + s.in_offsets[local],
            s.in_sources.data() + s.in_offsets[local + 1]};
  }

  /// Out-edges of `shard` whose target lies outside the shard's range.
  uint64_t BoundaryOutEdges(uint32_t shard) const {
    return shards_[shard].boundary_out;
  }
  /// In-edges of `shard` whose source lies outside the shard's range.
  uint64_t BoundaryInEdges(uint32_t shard) const {
    return shards_[shard].boundary_in;
  }
  /// Sorted, deduplicated external nodes reached by `shard`'s out-edges.
  std::span<const NodeId> Halo(uint32_t shard) const {
    return shards_[shard].halo;
  }

  /// Total boundary out-edges over all shards — the edge-cut size of the
  /// partition (each cut edge counted once, at its source shard).
  uint64_t TotalBoundaryEdges() const { return total_boundary_out_; }

  /// Bytes the view keeps resident beyond the parent graph: the per-shard
  /// offset/row/halo arrays plus the object itself. Element counts, not
  /// allocator capacity — deterministic, like `Graph::MemoryBytes()`; the
  /// graph store charges this figure against its byte budget when it
  /// caches a view next to its parent. O(1): computed once at build time.
  size_t MemoryBytes() const { return memory_bytes_; }

  /// The pinned parent graph.
  const GraphPtr& parent() const { return parent_; }

  /// Name of the partitioner that produced the bounds (logs/stats).
  const std::string& partitioner_name() const { return partitioner_name_; }

 private:
  struct Shard {
    NodeId begin = 0;
    NodeId end = 0;  // exclusive
    std::vector<uint64_t> out_offsets;  // size end-begin+1, local
    std::vector<NodeId> out_targets;    // global ids, parent row order
    std::vector<uint64_t> in_offsets;   // size end-begin+1, local
    std::vector<NodeId> in_sources;     // global ids, parent row order
    std::vector<NodeId> halo;           // sorted unique external out-targets
    uint64_t boundary_out = 0;
    uint64_t boundary_in = 0;
  };

  ShardedGraph() = default;

  GraphPtr parent_;
  std::vector<NodeId> bounds_;  // num_shards + 1
  std::vector<Shard> shards_;
  std::string partitioner_name_;
  uint64_t total_boundary_out_ = 0;
  size_t memory_bytes_ = 0;
};

/// Shared handle to an immutable sharded view; what the graph store caches
/// and the executor threads into kernel requests.
using ShardedGraphPtr = std::shared_ptr<const ShardedGraph>;

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_SHARDED_GRAPH_H_
