#include "graph/traversal.h"

#include <deque>

namespace cyclerank {

Result<std::vector<uint32_t>> BfsDistances(const Graph& g, NodeId source,
                                           Direction direction,
                                           uint32_t max_depth) {
  if (!g.IsValidNode(source)) {
    return Status::OutOfRange("BfsDistances: source " +
                              std::to_string(source) + " out of range");
  }
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    if (dist[u] >= max_depth) continue;
    const auto neighbors = direction == Direction::kForward
                               ? g.OutNeighbors(u)
                               : g.InNeighbors(u);
    for (NodeId v : neighbors) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

Result<std::vector<NodeId>> ReachableSet(const Graph& g, NodeId source,
                                         Direction direction,
                                         uint32_t max_depth) {
  CYCLERANK_ASSIGN_OR_RETURN(std::vector<uint32_t> dist,
                             BfsDistances(g, source, direction, max_depth));
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dist[u] != kUnreachable) out.push_back(u);
  }
  return out;
}

}  // namespace cyclerank
