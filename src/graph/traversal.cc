#include "graph/traversal.h"

#include <span>

#include "common/frontier.h"
#include "graph/sharded_graph.h"

namespace cyclerank {

Result<std::vector<uint32_t>> BfsDistances(const Graph& g, NodeId source,
                                           Direction direction,
                                           uint32_t max_depth,
                                           uint32_t num_threads,
                                           const ShardedGraph* sharded) {
  if (!g.IsValidNode(source)) {
    return Status::OutOfRange("BfsDistances: source " +
                              std::to_string(source) + " out of range");
  }
  if (sharded != nullptr && sharded->parent().get() != &g) {
    return Status::InvalidArgument(
        "BfsDistances: sharded view does not belong to this graph");
  }
  std::vector<uint32_t> dist(g.num_nodes(), kUnreachable);
  dist[source] = 0;
  if (max_depth == 0) return dist;

  FrontierEngine::Options options;
  options.num_threads = num_threads;
  if (sharded != nullptr) options.shard_bounds = sharded->bounds();
  FrontierEngine engine(g.num_nodes(), options);
  engine.Seed(source);

  // Every node of round r's frontier has distance r, so candidates of
  // round r get distance r+1 — the same value no matter which chunk (or
  // thread) proposed them first. `dist` doubles as the visited structure:
  // the expansion-side check is a best-effort filter, the merge-side check
  // is authoritative.
  uint32_t depth = 0;
  std::vector<uint32_t> degrees(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    degrees[u] =
        direction == Direction::kForward ? g.OutDegree(u) : g.InDegree(u);
  }
  FrontierEngine::Callbacks callbacks;
  callbacks.node_weights = degrees;
  callbacks.expand = [&](std::span<const uint32_t> chunk, uint32_t shard,
                         FrontierEngine::Emitter& out) {
    for (uint32_t u : chunk) {
      // Shard-local rows when a view is attached (element-equal to the
      // parent's rows, so the candidate stream is unchanged).
      const auto neighbors =
          sharded != nullptr
              ? (direction == Direction::kForward
                     ? sharded->OutNeighbors(shard, u)
                     : sharded->InNeighbors(shard, u))
              : (direction == Direction::kForward ? g.OutNeighbors(u)
                                                  : g.InNeighbors(u));
      for (NodeId v : neighbors) {
        if (dist[v] == kUnreachable) out.Candidate(v);
      }
    }
  };
  callbacks.candidates = [&](std::span<const uint32_t> chunk_candidates) {
    for (uint32_t v : chunk_candidates) {
      if (dist[v] == kUnreachable) {
        dist[v] = depth + 1;
        engine.Next(v);
      }
    }
  };
  callbacks.round_done = [&](uint32_t round) {
    depth = round + 1;
    return round + 1 < max_depth;
  };
  engine.Run(callbacks);
  return dist;
}

Result<std::vector<NodeId>> ReachableSet(const Graph& g, NodeId source,
                                         Direction direction,
                                         uint32_t max_depth,
                                         uint32_t num_threads,
                                         const ShardedGraph* sharded) {
  CYCLERANK_ASSIGN_OR_RETURN(
      std::vector<uint32_t> dist,
      BfsDistances(g, source, direction, max_depth, num_threads, sharded));
  std::vector<NodeId> out;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (dist[u] != kUnreachable) out.push_back(u);
  }
  return out;
}

}  // namespace cyclerank
