#include "graph/io_edgelist.h"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/strings.h"

namespace cyclerank {
namespace {

bool IsCommentOrBlank(std::string_view line) {
  line = StripAsciiWhitespace(line);
  return line.empty() || line[0] == '#' || line[0] == '%';
}

char DetectDelimiter(std::string_view line) {
  if (line.find(',') != std::string_view::npos) return ',';
  if (line.find(';') != std::string_view::npos) return ';';
  if (line.find('\t') != std::string_view::npos) return '\t';
  return ' ';
}

// Splits one data line into exactly two endpoint tokens.
Status SplitPair(std::string_view line, char delimiter, size_t line_no,
                 std::string_view* src, std::string_view* dst) {
  std::vector<std::string_view> fields;
  if (delimiter == ' ') {
    fields = SplitWhitespace(line);
  } else {
    for (std::string_view f : SplitString(line, delimiter)) {
      f = StripAsciiWhitespace(f);
      if (!f.empty()) fields.push_back(f);
    }
  }
  if (fields.size() != 2) {
    return Status::ParseError("edgelist line " + std::to_string(line_no) +
                              ": expected 2 fields, got " +
                              std::to_string(fields.size()));
  }
  *src = fields[0];
  *dst = fields[1];
  return Status::OK();
}

}  // namespace

Result<Graph> ReadEdgeList(std::istream& in,
                           const EdgeListReadOptions& options) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::string line;
  size_t line_no = 0;
  char delimiter = options.delimiter;
  bool all_numeric = !options.force_labeled;

  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::string_view data = StripAsciiWhitespace(line);
    if (delimiter == '\0') delimiter = DetectDelimiter(data);
    std::string_view src, dst;
    CYCLERANK_RETURN_NOT_OK(SplitPair(data, delimiter, line_no, &src, &dst));
    if (all_numeric &&
        (!ParseInt64(src).ok() || !ParseInt64(dst).ok())) {
      all_numeric = false;
    }
    pairs.emplace_back(std::string(src), std::string(dst));
  }
  if (in.bad()) return Status::IOError("stream error while reading edgelist");

  GraphBuilder builder;
  if (all_numeric) {
    for (const auto& [s, d] : pairs) {
      auto sv = ParseInt64(s);
      auto dv = ParseInt64(d);
      if (*sv < 0 || *dv < 0) {
        return Status::ParseError("edgelist: negative node id");
      }
      builder.AddEdge(static_cast<NodeId>(*sv), static_cast<NodeId>(*dv));
    }
  } else {
    for (const auto& [s, d] : pairs) builder.AddEdge(s, d);
  }
  return builder.Build(options.build);
}

Status WriteEdgeList(const Graph& g, std::ostream& out, char delimiter) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      out << g.NodeName(u) << delimiter << g.NodeName(v) << '\n';
    }
  }
  if (!out) return Status::IOError("stream error while writing edgelist");
  return Status::OK();
}

}  // namespace cyclerank
