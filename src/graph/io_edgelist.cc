#include "graph/io_edgelist.h"

#include <charconv>
#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace cyclerank {
namespace {

bool IsCommentOrBlank(std::string_view line) {
  line = StripAsciiWhitespace(line);
  return line.empty() || line[0] == '#' || line[0] == '%';
}

char DetectDelimiter(std::string_view line) {
  if (line.find(',') != std::string_view::npos) return ',';
  if (line.find(';') != std::string_view::npos) return ';';
  if (line.find('\t') != std::string_view::npos) return '\t';
  return ' ';
}

// Splits one data line into exactly two endpoint tokens.
Status SplitPair(std::string_view line, char delimiter, size_t line_no,
                 std::string_view* src, std::string_view* dst) {
  std::vector<std::string_view> fields;
  if (delimiter == ' ') {
    fields = SplitWhitespace(line);
  } else {
    for (std::string_view f : SplitString(line, delimiter)) {
      f = StripAsciiWhitespace(f);
      if (!f.empty()) fields.push_back(f);
    }
  }
  if (fields.size() != 2) {
    return Status::ParseError("edgelist line " + std::to_string(line_no) +
                              ": expected 2 fields, got " +
                              std::to_string(fields.size()));
  }
  *src = fields[0];
  *dst = fields[1];
  return Status::OK();
}

/// Single-pass parser state. Large edgelists are overwhelmingly numeric,
/// so the reader starts in numeric mode, keeping each edge as one
/// `int64_t` pair (16 bytes) instead of two heap strings. The first
/// non-integer token demotes the whole file to labeled mode: the numeric
/// backlog is replayed as labels (original spellings preserved — the rare
/// token whose text is not the canonical decimal rendering, e.g. "007",
/// is kept verbatim on the side) and every later edge streams straight
/// into the builder.
class EdgeListParser {
 public:
  explicit EdgeListParser(bool force_labeled) : numeric_(!force_labeled) {}

  void Accept(std::string_view src, std::string_view dst,
              GraphBuilder* builder) {
    if (!numeric_) {
      builder->AddEdge(src, dst);
      return;
    }
    const Result<int64_t> s = ParseInt64(src);
    const Result<int64_t> d = ParseInt64(dst);
    if (!s.ok() || !d.ok()) {
      DemoteToLabeled(builder);
      builder->AddEdge(src, dst);
      return;
    }
    RememberSpelling(src, *s, 2 * numeric_edges_.size());
    RememberSpelling(dst, *d, 2 * numeric_edges_.size() + 1);
    numeric_edges_.emplace_back(*s, *d);
  }

  /// Flushes the numeric backlog into `builder`. Out-of-range ids are only
  /// an error for an all-numeric file — a labeled file may legitimately
  /// use "-1" as a label — which is why the check happens at finish time.
  Status Finish(GraphBuilder* builder) {
    if (!numeric_) return Status::OK();
    // kInvalidNode is the reserved sentinel, so the largest usable id is
    // one below it; anything bigger would silently wrap in the NodeId
    // cast and build a wrong graph.
    constexpr int64_t kMaxId = static_cast<int64_t>(kInvalidNode) - 1;
    for (const auto& [s, d] : numeric_edges_) {
      if (s < 0 || d < 0) {
        return Status::ParseError("edgelist: negative node id");
      }
      if (s > kMaxId || d > kMaxId) {
        return Status::ParseError("edgelist: node id " +
                                  std::to_string(s > kMaxId ? s : d) +
                                  " exceeds the 32-bit id range");
      }
      builder->AddEdge(static_cast<NodeId>(s), static_cast<NodeId>(d));
    }
    return Status::OK();
  }

 private:
  void RememberSpelling(std::string_view token, int64_t value,
                        size_t position) {
    // Canonical-spelling compare without materializing a std::string —
    // this runs twice per edge on the numeric fast path.
    char canonical[20];
    const auto [end, ec] =
        std::to_chars(canonical, canonical + sizeof(canonical), value);
    (void)ec;  // int64 always fits 20 chars
    if (token != std::string_view(canonical,
                                  static_cast<size_t>(end - canonical))) {
      spellings_.emplace_back(position, std::string(token));
    }
  }

  void DemoteToLabeled(GraphBuilder* builder) {
    numeric_ = false;
    size_t next_spelling = 0;
    auto label_at = [&](size_t position, int64_t value) -> std::string {
      if (next_spelling < spellings_.size() &&
          spellings_[next_spelling].first == position) {
        return std::move(spellings_[next_spelling++].second);
      }
      return std::to_string(value);
    };
    for (size_t i = 0; i < numeric_edges_.size(); ++i) {
      const auto [s, d] = numeric_edges_[i];
      builder->AddEdge(label_at(2 * i, s), label_at(2 * i + 1, d));
    }
    numeric_edges_.clear();
    numeric_edges_.shrink_to_fit();
    spellings_.clear();
  }

  bool numeric_;
  std::vector<std::pair<int64_t, int64_t>> numeric_edges_;
  // (token position, original text) for numeric tokens whose spelling is
  // not canonical; ascending by construction, usually empty.
  std::vector<std::pair<size_t, std::string>> spellings_;
};

}  // namespace

Result<Graph> ReadEdgeList(std::istream& in,
                           const EdgeListReadOptions& options) {
  GraphBuilder builder;
  EdgeListParser parser(options.force_labeled);
  std::string line;
  size_t line_no = 0;
  char delimiter = options.delimiter;

  while (std::getline(in, line)) {
    ++line_no;
    if (IsCommentOrBlank(line)) continue;
    std::string_view data = StripAsciiWhitespace(line);
    if (delimiter == '\0') delimiter = DetectDelimiter(data);
    std::string_view src, dst;
    CYCLERANK_RETURN_NOT_OK(SplitPair(data, delimiter, line_no, &src, &dst));
    parser.Accept(src, dst, &builder);
  }
  if (in.bad()) return Status::IOError("stream error while reading edgelist");
  CYCLERANK_RETURN_NOT_OK(parser.Finish(&builder));
  return builder.Build(options.build);
}

Status WriteEdgeList(const Graph& g, std::ostream& out, char delimiter) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      out << g.NodeName(u) << delimiter << g.NodeName(v) << '\n';
    }
  }
  if (!out) return Status::IOError("stream error while writing edgelist");
  return Status::OK();
}

}  // namespace cyclerank
