#include "graph/transforms.h"

#include <algorithm>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

// Copies the label dictionary of `g` for the node subset `keep` (in order)
// into `builder`, registering nodes so ids align with the new numbering.
void CarryLabels(const Graph& g, const std::vector<NodeId>& keep,
                 GraphBuilder* builder) {
  if (g.labels() == nullptr) return;
  for (NodeId old_id : keep) builder->AddNode(g.NodeName(old_id));
}

void CarryAllLabels(const Graph& g, GraphBuilder* builder) {
  if (g.labels() == nullptr) return;
  for (NodeId u = 0; u < g.num_nodes(); ++u) builder->AddNode(g.NodeName(u));
}

}  // namespace

Result<Graph> Transpose(const Graph& g) {
  GraphBuilder builder;
  CarryAllLabels(g, &builder);
  builder.ReserveNodes(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) builder.AddEdge(v, u);
  }
  GraphBuildOptions options;
  options.deduplicate = false;   // input is already simple
  options.drop_self_loops = false;
  return builder.Build(options);
}

Result<Graph> InducedSubgraph(const Graph& g,
                              const std::vector<NodeId>& nodes) {
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (!g.IsValidNode(nodes[i])) {
      return Status::OutOfRange("InducedSubgraph: node id " +
                                std::to_string(nodes[i]) + " out of range");
    }
    if (!remap.emplace(nodes[i], static_cast<NodeId>(i)).second) {
      return Status::InvalidArgument("InducedSubgraph: duplicate node id " +
                                     std::to_string(nodes[i]));
    }
  }
  GraphBuilder builder;
  CarryLabels(g, nodes, &builder);
  builder.ReserveNodes(static_cast<NodeId>(nodes.size()));
  for (size_t i = 0; i < nodes.size(); ++i) {
    for (NodeId v : g.OutNeighbors(nodes[i])) {
      auto it = remap.find(v);
      if (it != remap.end()) {
        builder.AddEdge(static_cast<NodeId>(i), it->second);
      }
    }
  }
  GraphBuildOptions options;
  options.deduplicate = false;
  options.drop_self_loops = false;
  return builder.Build(options);
}

Result<Graph> Symmetrize(const Graph& g) {
  GraphBuilder builder;
  CarryAllLabels(g, &builder);
  builder.ReserveNodes(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      builder.AddEdge(u, v);
      builder.AddEdge(v, u);
    }
  }
  GraphBuildOptions options;
  options.deduplicate = true;
  options.drop_self_loops = false;
  return builder.Build(options);
}

Result<Graph> Permute(const Graph& g, const std::vector<NodeId>& order) {
  if (order.size() != g.num_nodes()) {
    return Status::InvalidArgument("Permute: order size != node count");
  }
  std::vector<NodeId> inverse(order.size(), kInvalidNode);
  for (size_t i = 0; i < order.size(); ++i) {
    if (!g.IsValidNode(order[i]) || inverse[order[i]] != kInvalidNode) {
      return Status::InvalidArgument("Permute: order is not a permutation");
    }
    inverse[order[i]] = static_cast<NodeId>(i);
  }
  GraphBuilder builder;
  CarryLabels(g, order, &builder);
  builder.ReserveNodes(g.num_nodes());
  for (NodeId new_u = 0; new_u < g.num_nodes(); ++new_u) {
    const NodeId old_u = order[new_u];
    for (NodeId old_v : g.OutNeighbors(old_u)) {
      builder.AddEdge(new_u, inverse[old_v]);
    }
  }
  GraphBuildOptions options;
  options.deduplicate = false;
  options.drop_self_loops = false;
  return builder.Build(options);
}

}  // namespace cyclerank
