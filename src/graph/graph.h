#ifndef CYCLERANK_GRAPH_GRAPH_H_
#define CYCLERANK_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/label_map.h"

namespace cyclerank {

/// Immutable directed graph in Compressed Sparse Row form.
///
/// Both the out-adjacency (successors) and the in-adjacency (predecessors)
/// are materialized, because the algorithm suite walks the graph in both
/// directions: PageRank pulls scores along in-edges, CheiRank is PageRank on
/// the transpose, and CycleRank's pruning runs a *backward* BFS. Neighbor
/// lists are sorted ascending, which makes `HasEdge` a binary search and
/// guarantees deterministic iteration order.
///
/// Instances are produced by `GraphBuilder` (or the readers in
/// `graph/io_*.h`) and never mutated afterwards — they can be shared across
/// executor threads without synchronization.
class Graph {
 public:
  /// An empty graph (0 nodes, 0 edges).
  Graph() = default;

  /// Number of nodes; valid ids are `[0, num_nodes())`.
  NodeId num_nodes() const { return static_cast<NodeId>(out_offsets_.empty()
                                                            ? 0
                                                            : out_offsets_.size() - 1); }

  /// Number of directed edges.
  uint64_t num_edges() const { return out_targets_.size(); }

  /// Successors of `u` (targets of edges u→v), ascending.
  std::span<const NodeId> OutNeighbors(NodeId u) const {
    return {out_targets_.data() + out_offsets_[u],
            out_targets_.data() + out_offsets_[u + 1]};
  }

  /// Predecessors of `u` (sources of edges v→u), ascending.
  std::span<const NodeId> InNeighbors(NodeId u) const {
    return {in_sources_.data() + in_offsets_[u],
            in_sources_.data() + in_offsets_[u + 1]};
  }

  uint32_t OutDegree(NodeId u) const {
    return static_cast<uint32_t>(out_offsets_[u + 1] - out_offsets_[u]);
  }
  uint32_t InDegree(NodeId u) const {
    return static_cast<uint32_t>(in_offsets_[u + 1] - in_offsets_[u]);
  }

  /// True iff the edge u→v exists. O(log out_degree(u)).
  bool HasEdge(NodeId u, NodeId v) const;

  /// Bytes this graph keeps resident: the four CSR arrays plus the label
  /// dictionary (when present) plus the object itself. Counts elements, not
  /// allocator capacity, so the figure is deterministic across platforms —
  /// it is the accounting unit of the datastore's byte-budgeted dataset
  /// retention (`PlatformOptions::graph_store_bytes`). O(1): computed once
  /// at build time (executors render it per task).
  size_t MemoryBytes() const { return memory_bytes_; }

  /// True iff `u` is a valid node id.
  bool IsValidNode(NodeId u) const { return u < num_nodes(); }

  /// Optional label dictionary. Graphs built from labeled sources carry
  /// one; purely numeric graphs return nullptr.
  const LabelMap* labels() const { return labels_.get(); }

  /// Label of `u`, or its decimal id when the graph is unlabeled.
  std::string NodeName(NodeId u) const;

  /// Finds a node by label; `kInvalidNode` when unlabeled or absent.
  NodeId FindNode(std::string_view label) const;

  /// Compact binary encoding of the whole graph (CSR arrays + label
  /// dictionary): the storage layer's spill-to-disk format. Little-endian
  /// fixed-width fields, so the bytes are platform-independent and
  /// `Deserialize(g.Serialize())` reproduces `g` bit-identically —
  /// including `MemoryBytes()`, which is recomputed from the same
  /// deterministic element-count walk the builder uses.
  std::string Serialize() const;

  /// Decodes a `Serialize()` buffer. The CSR invariants are re-validated
  /// (consistent array sizes, monotone offsets, in-range neighbor ids), so
  /// a truncated or corrupted buffer yields `kParseError`, never a graph
  /// that would fault the kernels.
  static Result<Graph> Deserialize(std::string_view bytes);

 private:
  friend class GraphBuilder;

  /// The element-count walk behind `MemoryBytes()`; `GraphBuilder::Build`
  /// calls it once and caches the result.
  size_t ComputeMemoryBytes() const;

  std::vector<uint64_t> out_offsets_;  // size n+1
  std::vector<NodeId> out_targets_;    // size m, sorted per row
  std::vector<uint64_t> in_offsets_;   // size n+1
  std::vector<NodeId> in_sources_;     // size m, sorted per row
  std::shared_ptr<const LabelMap> labels_;
  size_t memory_bytes_ = sizeof(Graph);  // cached; default = empty graph
};

/// Shared handle to an immutable graph; what the datastore hands out.
using GraphPtr = std::shared_ptr<const Graph>;

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_GRAPH_H_
