#ifndef CYCLERANK_GRAPH_STATS_H_
#define CYCLERANK_GRAPH_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace cyclerank {

/// Summary statistics of a directed graph, shown by the demo's dataset
/// pages and used by the dataset-comparison use case (§IV-D).
struct GraphStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint32_t max_out_degree = 0;
  uint32_t max_in_degree = 0;
  double avg_degree = 0.0;        ///< m / n
  uint64_t dangling_nodes = 0;    ///< out-degree 0 (PageRank sinks)
  uint64_t source_nodes = 0;      ///< in-degree 0
  uint64_t isolated_nodes = 0;    ///< in == out == 0
  double reciprocity = 0.0;       ///< fraction of edges whose reverse exists
  uint64_t num_sccs = 0;
  uint64_t largest_scc_size = 0;

  /// Multi-line human-readable rendering.
  std::string ToString() const;
};

/// Computes all fields of `GraphStats` in O(n + m log d).
GraphStats ComputeGraphStats(const Graph& g);

/// Histogram of a degree sequence: `hist[d]` = number of nodes with degree
/// `d`, up to the max degree.
std::vector<uint64_t> OutDegreeHistogram(const Graph& g);
std::vector<uint64_t> InDegreeHistogram(const Graph& g);

}  // namespace cyclerank

#endif  // CYCLERANK_GRAPH_STATS_H_
