#include "graph/scc.h"

#include <algorithm>

namespace cyclerank {

std::vector<NodeId> SccResult::LargestComponent() const {
  const std::vector<uint32_t> sizes = ComponentSizes();
  if (sizes.empty()) return {};
  const uint32_t best = static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<NodeId> out;
  for (NodeId u = 0; u < component.size(); ++u) {
    if (component[u] == best) out.push_back(u);
  }
  return out;
}

std::vector<uint32_t> SccResult::ComponentSizes() const {
  std::vector<uint32_t> sizes(num_components, 0);
  for (uint32_t c : component) ++sizes[c];
  return sizes;
}

SccResult StronglyConnectedComponents(const Graph& g) {
  const NodeId n = g.num_nodes();
  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);

  SccResult result;
  result.component.assign(n, kUnvisited);

  std::vector<uint32_t> index(n, kUnvisited);
  std::vector<uint32_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<NodeId> stack;          // Tarjan's SCC stack
  uint32_t next_index = 0;

  // Explicit DFS frame: node + position within its adjacency row.
  struct Frame {
    NodeId node;
    uint32_t edge_pos;
  };
  std::vector<Frame> dfs;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      const NodeId u = frame.node;
      const auto row = g.OutNeighbors(u);
      if (frame.edge_pos < row.size()) {
        const NodeId v = row[frame.edge_pos++];
        if (index[v] == kUnvisited) {
          index[v] = lowlink[v] = next_index++;
          stack.push_back(v);
          on_stack[v] = true;
          dfs.push_back({v, 0});
        } else if (on_stack[v]) {
          lowlink[u] = std::min(lowlink[u], index[v]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          const NodeId parent = dfs.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[u]);
        }
        if (lowlink[u] == index[u]) {
          // u is the root of a component: pop it off the SCC stack.
          while (true) {
            const NodeId w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            result.component[w] = result.num_components;
            if (w == u) break;
          }
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

bool InSameScc(const SccResult& scc, NodeId a, NodeId b) {
  return a < scc.component.size() && b < scc.component.size() &&
         scc.component[a] == scc.component[b];
}

}  // namespace cyclerank
