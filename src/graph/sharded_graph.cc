#include "graph/sharded_graph.h"

#include <algorithm>
#include <string>
#include <utility>

namespace cyclerank {
namespace {

/// Validates the partitioner contract (ascending bounds spanning [0, n])
/// so a buggy policy fails loudly instead of producing views with holes.
Status ValidateBounds(const std::vector<NodeId>& bounds, uint32_t num_shards,
                      NodeId num_nodes, std::string_view policy) {
  if (bounds.size() != static_cast<size_t>(num_shards) + 1) {
    return Status::InvalidArgument(
        "sharded graph: partitioner '" + std::string(policy) + "' returned " +
        std::to_string(bounds.size()) + " bounds for " +
        std::to_string(num_shards) + " shards (want num_shards + 1)");
  }
  if (bounds.front() != 0 || bounds.back() != num_nodes) {
    return Status::InvalidArgument(
        "sharded graph: partitioner '" + std::string(policy) +
        "' bounds do not span [0, " + std::to_string(num_nodes) + "]");
  }
  for (size_t s = 0; s + 1 < bounds.size(); ++s) {
    if (bounds[s] > bounds[s + 1]) {
      return Status::InvalidArgument(
          "sharded graph: partitioner '" + std::string(policy) +
          "' bounds are not ascending at index " + std::to_string(s));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<NodeId>> ContiguousRangePartitioner::Partition(
    const Graph& g, uint32_t num_shards) const {
  if (num_shards == 0) {
    return Status::InvalidArgument(
        "contiguous_range partitioner: num_shards must be >= 1");
  }
  // 128-bit intermediate: n·s can brush 2^64 at the uint32 extremes.
  const unsigned __int128 n = g.num_nodes();
  std::vector<NodeId> bounds(static_cast<size_t>(num_shards) + 1);
  for (uint32_t s = 0; s <= num_shards; ++s) {
    bounds[s] = static_cast<NodeId>(n * s / num_shards);
  }
  return bounds;
}

Result<std::vector<NodeId>> DegreeBalancedPartitioner::Partition(
    const Graph& g, uint32_t num_shards) const {
  if (num_shards == 0) {
    return Status::InvalidArgument(
        "degree_balanced partitioner: num_shards must be >= 1");
  }
  const NodeId n = g.num_nodes();
  // Total weight: one unit per node plus one per incident edge (each edge
  // counted at both endpoints, matching the per-node weight below).
  const unsigned __int128 total =
      static_cast<uint64_t>(n) + 2 * g.num_edges();
  std::vector<NodeId> bounds;
  bounds.reserve(static_cast<size_t>(num_shards) + 1);
  bounds.push_back(0);
  // Greedy prefix cuts: close shard s once the accumulated weight reaches
  // s+1 shares of the total. Deterministic, one O(n) pass; a shard is cut
  // at a node boundary so ranges stay contiguous.
  uint64_t acc = 0;
  NodeId u = 0;
  for (uint32_t s = 1; s < num_shards; ++s) {
    const uint64_t target = static_cast<uint64_t>(total * s / num_shards);
    while (u < n && acc < target) {
      acc += 1 + g.OutDegree(u) + g.InDegree(u);
      ++u;
    }
    bounds.push_back(u);
  }
  bounds.push_back(n);
  return bounds;
}

uint32_t ShardedGraph::ShardOf(NodeId u) const {
  // bounds_[s] <= u < bounds_[s+1]; upper_bound finds the first bound > u.
  const auto it = std::upper_bound(bounds_.begin(), bounds_.end(), u);
  return static_cast<uint32_t>(it - bounds_.begin()) - 1;
}

Result<ShardedGraph> ShardedGraph::Build(GraphPtr graph, uint32_t num_shards,
                                         const GraphPartitioner& partitioner) {
  if (!graph) {
    return Status::InvalidArgument("sharded graph: graph must not be null");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("sharded graph: num_shards must be >= 1");
  }
  const Graph& g = *graph;
  const NodeId n = g.num_nodes();
  CYCLERANK_ASSIGN_OR_RETURN(std::vector<NodeId> bounds,
                             partitioner.Partition(g, num_shards));
  CYCLERANK_RETURN_NOT_OK(
      ValidateBounds(bounds, num_shards, n, partitioner.name()));

  ShardedGraph out;
  out.parent_ = std::move(graph);
  out.bounds_ = std::move(bounds);
  out.partitioner_name_ = std::string(partitioner.name());
  out.shards_.resize(num_shards);

  size_t bytes = sizeof(ShardedGraph);
  for (uint32_t s = 0; s < num_shards; ++s) {
    Shard& shard = out.shards_[s];
    shard.begin = out.bounds_[s];
    shard.end = out.bounds_[s + 1];
    const NodeId count = shard.end - shard.begin;

    // Size the row arrays exactly, then copy the parent rows verbatim —
    // global ids, parent order — so a shard-local span is element-equal
    // to the parent's and kernels can switch spans without changing
    // results.
    uint64_t out_edges = 0;
    uint64_t in_edges = 0;
    for (NodeId u = shard.begin; u < shard.end; ++u) {
      out_edges += g.OutDegree(u);
      in_edges += g.InDegree(u);
    }
    shard.out_offsets.reserve(count + 1);
    shard.out_targets.reserve(out_edges);
    shard.in_offsets.reserve(count + 1);
    shard.in_sources.reserve(in_edges);
    shard.out_offsets.push_back(0);
    shard.in_offsets.push_back(0);
    for (NodeId u = shard.begin; u < shard.end; ++u) {
      const auto row = g.OutNeighbors(u);
      shard.out_targets.insert(shard.out_targets.end(), row.begin(),
                               row.end());
      shard.out_offsets.push_back(shard.out_targets.size());
      for (NodeId v : row) {
        if (v < shard.begin || v >= shard.end) {
          ++shard.boundary_out;
          shard.halo.push_back(v);
        }
      }
      const auto in_row = g.InNeighbors(u);
      shard.in_sources.insert(shard.in_sources.end(), in_row.begin(),
                              in_row.end());
      shard.in_offsets.push_back(shard.in_sources.size());
      for (NodeId v : in_row) {
        if (v < shard.begin || v >= shard.end) ++shard.boundary_in;
      }
    }
    std::sort(shard.halo.begin(), shard.halo.end());
    shard.halo.erase(std::unique(shard.halo.begin(), shard.halo.end()),
                     shard.halo.end());
    out.total_boundary_out_ += shard.boundary_out;

    bytes += sizeof(Shard);
    bytes += shard.out_offsets.size() * sizeof(uint64_t);
    bytes += shard.out_targets.size() * sizeof(NodeId);
    bytes += shard.in_offsets.size() * sizeof(uint64_t);
    bytes += shard.in_sources.size() * sizeof(NodeId);
    bytes += shard.halo.size() * sizeof(NodeId);
  }
  bytes += out.bounds_.size() * sizeof(NodeId);
  bytes += out.partitioner_name_.size();
  out.memory_bytes_ = bytes;
  return out;
}

}  // namespace cyclerank
