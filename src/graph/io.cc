#include "graph/io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "graph/io_asd.h"
#include "graph/io_edgelist.h"
#include "graph/io_metis.h"
#include "graph/io_pajek.h"

namespace cyclerank {

std::string_view GraphFormatToString(GraphFormat format) {
  switch (format) {
    case GraphFormat::kEdgeList:
      return "edgelist";
    case GraphFormat::kPajek:
      return "pajek";
    case GraphFormat::kAsd:
      return "asd";
    case GraphFormat::kMetis:
      return "metis";
  }
  return "?";
}

Result<GraphFormat> GraphFormatFromPath(std::string_view path) {
  const size_t dot = path.rfind('.');
  if (dot == std::string_view::npos) {
    return Status::InvalidArgument("no file extension in '" +
                                   std::string(path) + "'");
  }
  const std::string ext = AsciiToLower(path.substr(dot + 1));
  if (ext == "csv" || ext == "edges" || ext == "edgelist" || ext == "txt") {
    return GraphFormat::kEdgeList;
  }
  if (ext == "net" || ext == "pajek") return GraphFormat::kPajek;
  if (ext == "asd") return GraphFormat::kAsd;
  if (ext == "metis") return GraphFormat::kMetis;
  return Status::InvalidArgument("unknown graph extension '." + ext + "'");
}

GraphFormat SniffGraphFormat(std::string_view content) {
  // First non-blank, non-comment line decides.
  for (std::string_view line : SplitString(content, '\n')) {
    line = StripAsciiWhitespace(line);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    if (line[0] == '*') return GraphFormat::kPajek;
    const auto tokens = SplitWhitespace(line);
    if (tokens.size() == 2 && ParseInt64(tokens[0]).ok() &&
        ParseInt64(tokens[1]).ok() &&
        line.find(',') == std::string_view::npos) {
      // Could be ASD ("N M") or a whitespace edgelist. ASD's header promises
      // exactly M data lines; count them.
      size_t data_lines = 0;
      bool first = true;
      for (std::string_view l2 : SplitString(content, '\n')) {
        l2 = StripAsciiWhitespace(l2);
        if (l2.empty() || l2[0] == '#' || l2[0] == '%') continue;
        if (first) {
          first = false;
          continue;
        }
        ++data_lines;
      }
      const auto m = ParseInt64(tokens[1]);
      if (m.ok() && static_cast<int64_t>(data_lines) == *m) {
        return GraphFormat::kAsd;
      }
    }
    return GraphFormat::kEdgeList;
  }
  return GraphFormat::kEdgeList;
}

Result<Graph> ReadGraphFromString(std::string_view content, GraphFormat format,
                                  const GraphBuildOptions& build) {
  std::istringstream in{std::string(content)};
  switch (format) {
    case GraphFormat::kEdgeList: {
      EdgeListReadOptions options;
      options.build = build;
      return ReadEdgeList(in, options);
    }
    case GraphFormat::kPajek:
      return ReadPajek(in, build);
    case GraphFormat::kAsd:
      return ReadAsd(in, build);
    case GraphFormat::kMetis:
      return ReadMetis(in, build);
  }
  return Status::Internal("unreachable graph format");
}

Result<Graph> ReadGraphFromString(std::string_view content,
                                  const GraphBuildOptions& build) {
  return ReadGraphFromString(content, SniffGraphFormat(content), build);
}

Result<Graph> ReadGraphFile(const std::string& path,
                            const GraphBuildOptions& build) {
  CYCLERANK_ASSIGN_OR_RETURN(GraphFormat format, GraphFormatFromPath(path));
  return ReadGraphFile(path, format, build);
}

Result<Graph> ReadGraphFile(const std::string& path, GraphFormat format,
                            const GraphBuildOptions& build) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  switch (format) {
    case GraphFormat::kEdgeList: {
      EdgeListReadOptions options;
      options.build = build;
      return ReadEdgeList(in, options);
    }
    case GraphFormat::kPajek:
      return ReadPajek(in, build);
    case GraphFormat::kAsd:
      return ReadAsd(in, build);
    case GraphFormat::kMetis:
      return ReadMetis(in, build);
  }
  return Status::Internal("unreachable graph format");
}

Result<std::string> WriteGraphToString(const Graph& g, GraphFormat format) {
  std::ostringstream out;
  Status st;
  switch (format) {
    case GraphFormat::kEdgeList:
      st = WriteEdgeList(g, out);
      break;
    case GraphFormat::kPajek:
      st = WritePajek(g, out);
      break;
    case GraphFormat::kAsd:
      st = WriteAsd(g, out);
      break;
    case GraphFormat::kMetis:
      st = WriteMetis(g, out);
      break;
  }
  if (!st.ok()) return st;
  return out.str();
}

Status WriteGraphFile(const Graph& g, const std::string& path,
                      GraphFormat format) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  switch (format) {
    case GraphFormat::kEdgeList:
      return WriteEdgeList(g, out);
    case GraphFormat::kPajek:
      return WritePajek(g, out);
    case GraphFormat::kAsd:
      return WriteAsd(g, out);
    case GraphFormat::kMetis:
      return WriteMetis(g, out);
  }
  return Status::Internal("unreachable graph format");
}

}  // namespace cyclerank
