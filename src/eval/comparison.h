#ifndef CYCLERANK_EVAL_COMPARISON_H_
#define CYCLERANK_EVAL_COMPARISON_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/ranking.h"
#include "graph/graph.h"

namespace cyclerank {

/// One column of a side-by-side comparison table (one algorithm run).
struct ComparisonColumn {
  std::string header;   ///< e.g. "Cyclerank (K=3, sigma=e^-n)"
  RankedList ranking;   ///< full or truncated ranking
};

/// Options for rendering a comparison table in the style of the paper's
/// Tables I-III.
struct ComparisonTableOptions {
  size_t top_k = 5;

  /// Node to omit from every column (Tables II-III omit the reference
  /// node; Table I keeps it). `kInvalidNode` omits nothing.
  NodeId skip_node = kInvalidNode;

  /// Render "-" for exhausted columns (the paper's nl / pl cells).
  std::string empty_cell = "-";

  /// Show scores next to names.
  bool show_scores = false;
};

/// Renders an aligned text table: one row per rank position 1..top_k, one
/// column per algorithm, mirroring the layout of the paper's Tables I-III.
std::string RenderComparisonTable(const Graph& g,
                                  const std::vector<ComparisonColumn>& columns,
                                  const ComparisonTableOptions& options = {});

/// Pairwise metric summary between two columns (used by the ablation bench
/// and the algorithm-comparison example).
struct PairwiseComparison {
  std::string left;
  std::string right;
  double jaccard_top_k = 0.0;
  double overlap_top_k = 0.0;
  double rbo = 0.0;
};

/// Computes pairwise metrics for every pair of columns at depth `k`.
std::vector<PairwiseComparison> ComparePairwise(
    const std::vector<ComparisonColumn>& columns, size_t k);

/// Renders the pairwise summary as an aligned text block.
std::string RenderPairwise(const std::vector<PairwiseComparison>& pairs);

}  // namespace cyclerank

#endif  // CYCLERANK_EVAL_COMPARISON_H_
