#include "eval/rank_metrics.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace cyclerank {
namespace {

std::unordered_set<NodeId> TopKSet(const RankedList& list, size_t k) {
  std::unordered_set<NodeId> out;
  const size_t limit = k == 0 ? list.size() : std::min(k, list.size());
  for (size_t i = 0; i < limit; ++i) out.insert(list[i].node);
  return out;
}

/// Positions of nodes common to both rankings, as two parallel arrays of
/// ranks. Common = appears in both lists.
struct CommonRanks {
  std::vector<double> rank_a;
  std::vector<double> rank_b;
};

CommonRanks CommonNodeRanks(const RankedList& a, const RankedList& b) {
  std::unordered_map<NodeId, size_t> pos_b;
  pos_b.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) pos_b.emplace(b[i].node, i);
  CommonRanks out;
  for (size_t i = 0; i < a.size(); ++i) {
    auto it = pos_b.find(a[i].node);
    if (it == pos_b.end()) continue;
    out.rank_a.push_back(static_cast<double>(i));
    out.rank_b.push_back(static_cast<double>(it->second));
  }
  return out;
}

}  // namespace

double JaccardAtK(const RankedList& a, const RankedList& b, size_t k) {
  const auto set_a = TopKSet(a, k);
  const auto set_b = TopKSet(b, k);
  if (set_a.empty() && set_b.empty()) return 1.0;
  size_t intersection = 0;
  for (NodeId u : set_a) {
    if (set_b.count(u)) ++intersection;
  }
  const size_t unions = set_a.size() + set_b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(unions);
}

double OverlapAtK(const RankedList& a, const RankedList& b, size_t k) {
  if (k == 0) return JaccardAtK(a, b, 0);
  const auto set_a = TopKSet(a, k);
  const auto set_b = TopKSet(b, k);
  size_t intersection = 0;
  for (NodeId u : set_a) {
    if (set_b.count(u)) ++intersection;
  }
  return static_cast<double>(intersection) / static_cast<double>(k);
}

Result<double> RankBiasedOverlap(const RankedList& a, const RankedList& b,
                                 double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::InvalidArgument("RBO: persistence p must be in (0,1)");
  }
  const size_t depth = std::max(a.size(), b.size());
  if (depth == 0) return 1.0;
  // Extrapolated RBO_ext over the observed prefixes.
  std::unordered_set<NodeId> seen_a, seen_b;
  size_t overlap = 0;
  double sum = 0.0;
  double weight = 1.0 - p;  // (1-p) * p^(d-1) at depth d, starting d=1
  for (size_t d = 0; d < depth; ++d) {
    if (d < a.size()) {
      if (seen_b.count(a[d].node)) ++overlap;
      seen_a.insert(a[d].node);
    }
    if (d < b.size()) {
      // A node present at the same depth in both lists is counted exactly
      // once here: the symmetric check above ran before it entered seen_b.
      if (seen_a.count(b[d].node)) ++overlap;
      seen_b.insert(b[d].node);
    }
    const double agreement =
        static_cast<double>(overlap) / static_cast<double>(d + 1);
    sum += agreement * weight;
    weight *= p;
  }
  // Extrapolate the final agreement over the unseen tail.
  const double final_agreement =
      static_cast<double>(overlap) / static_cast<double>(depth);
  sum += final_agreement * std::pow(p, static_cast<double>(depth));
  return sum;
}

Result<double> KendallTau(const RankedList& a, const RankedList& b) {
  const CommonRanks common = CommonNodeRanks(a, b);
  const size_t n = common.rank_a.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "KendallTau: need at least 2 common nodes, got " + std::to_string(n));
  }
  // O(n^2) pair scan — rankings compared in the demo are top-k lists, so n
  // is small; positions within each ranking are distinct (no ties).
  int64_t concordant = 0, discordant = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double da = common.rank_a[i] - common.rank_a[j];
      const double db = common.rank_b[i] - common.rank_b[j];
      const double prod = da * db;
      if (prod > 0) {
        ++concordant;
      } else if (prod < 0) {
        ++discordant;
      }
    }
  }
  const double total = static_cast<double>(n) * (n - 1) / 2.0;
  return (static_cast<double>(concordant) - discordant) / total;
}

Result<double> SpearmanRho(const RankedList& a, const RankedList& b) {
  const CommonRanks common = CommonNodeRanks(a, b);
  const size_t n = common.rank_a.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "SpearmanRho: need at least 2 common nodes, got " + std::to_string(n));
  }
  // Re-rank the common subsequences 0..n-1 to keep ρ well-defined when the
  // common nodes sit at scattered absolute positions.
  auto rerank = [](std::vector<double> v) {
    std::vector<size_t> idx(v.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> out(v.size());
    for (size_t r = 0; r < idx.size(); ++r) out[idx[r]] = static_cast<double>(r);
    return out;
  };
  const std::vector<double> ra = rerank(common.rank_a);
  const std::vector<double> rb = rerank(common.rank_b);
  double d2 = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = ra[i] - rb[i];
    d2 += d * d;
  }
  const double nn = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (nn * (nn * nn - 1.0));
}

Result<double> SpearmanFootrule(const RankedList& a, const RankedList& b) {
  const CommonRanks common = CommonNodeRanks(a, b);
  const size_t n = common.rank_a.size();
  if (n < 2) {
    return Status::InvalidArgument(
        "SpearmanFootrule: need at least 2 common nodes, got " +
        std::to_string(n));
  }
  auto rerank = [](std::vector<double> v) {
    std::vector<size_t> idx(v.size());
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](size_t x, size_t y) { return v[x] < v[y]; });
    std::vector<double> out(v.size());
    for (size_t r = 0; r < idx.size(); ++r) out[idx[r]] = static_cast<double>(r);
    return out;
  };
  const std::vector<double> ra = rerank(common.rank_a);
  const std::vector<double> rb = rerank(common.rank_b);
  double dist = 0.0;
  for (size_t i = 0; i < n; ++i) dist += std::fabs(ra[i] - rb[i]);
  // Maximum footrule distance: floor(n^2 / 2).
  const double max_dist = std::floor(static_cast<double>(n) * n / 2.0);
  return max_dist == 0.0 ? 0.0 : dist / max_dist;
}

}  // namespace cyclerank
