#include "eval/comparison.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/strings.h"
#include "eval/rank_metrics.h"

namespace cyclerank {
namespace {

/// Cell content for rank position `row` of `column`, honoring skip_node.
std::string CellAt(const Graph& g, const ComparisonColumn& column, size_t row,
                   const ComparisonTableOptions& options) {
  size_t seen = 0;
  for (const ScoredNode& entry : column.ranking) {
    if (entry.node == options.skip_node) continue;
    if (seen == row) {
      std::string cell = g.NodeName(entry.node);
      if (options.show_scores) {
        cell += " (" + FormatDouble(entry.score, 4) + ")";
      }
      return cell;
    }
    ++seen;
  }
  return options.empty_cell;
}

}  // namespace

std::string RenderComparisonTable(const Graph& g,
                                  const std::vector<ComparisonColumn>& columns,
                                  const ComparisonTableOptions& options) {
  // Materialize all cells first to compute column widths.
  std::vector<std::vector<std::string>> cells(columns.size());
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) {
    widths[c] = columns[c].header.size();
    for (size_t r = 0; r < options.top_k; ++r) {
      cells[c].push_back(CellAt(g, columns[c], r, options));
      widths[c] = std::max(widths[c], cells[c].back().size());
    }
  }
  std::ostringstream os;
  os << std::left << "  #  ";
  for (size_t c = 0; c < columns.size(); ++c) {
    os << "| " << std::setw(static_cast<int>(widths[c])) << columns[c].header
       << ' ';
  }
  os << '\n';
  os << "  ---";
  for (size_t c = 0; c < columns.size(); ++c) {
    os << "+" << std::string(widths[c] + 2, '-');
  }
  os << '\n';
  for (size_t r = 0; r < options.top_k; ++r) {
    os << "  " << std::setw(3) << (r + 1);
    for (size_t c = 0; c < columns.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(widths[c])) << cells[c][r]
         << ' ';
    }
    os << '\n';
  }
  return os.str();
}

std::vector<PairwiseComparison> ComparePairwise(
    const std::vector<ComparisonColumn>& columns, size_t k) {
  std::vector<PairwiseComparison> out;
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = i + 1; j < columns.size(); ++j) {
      PairwiseComparison pair;
      pair.left = columns[i].header;
      pair.right = columns[j].header;
      pair.jaccard_top_k = JaccardAtK(columns[i].ranking, columns[j].ranking, k);
      pair.overlap_top_k = OverlapAtK(columns[i].ranking, columns[j].ranking, k);
      pair.rbo =
          RankBiasedOverlap(columns[i].ranking, columns[j].ranking).value_or(0.0);
      out.push_back(std::move(pair));
    }
  }
  return out;
}

std::string RenderPairwise(const std::vector<PairwiseComparison>& pairs) {
  std::ostringstream os;
  for (const PairwiseComparison& pair : pairs) {
    os << "  " << pair.left << " vs " << pair.right
       << ": jaccard=" << FormatDouble(pair.jaccard_top_k, 3)
       << " overlap=" << FormatDouble(pair.overlap_top_k, 3)
       << " rbo=" << FormatDouble(pair.rbo, 3) << '\n';
  }
  return os.str();
}

}  // namespace cyclerank
