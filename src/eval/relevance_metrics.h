#ifndef CYCLERANK_EVAL_RELEVANCE_METRICS_H_
#define CYCLERANK_EVAL_RELEVANCE_METRICS_H_

#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/ranking.h"
#include "graph/graph.h"

namespace cyclerank {

/// Ground-truth-based retrieval metrics: given a set (or graded list) of
/// nodes known to be relevant to a query, score how well a ranking
/// retrieves them. Complements the ranking-agreement metrics in
/// `rank_metrics.h` for studies where a gold standard exists (e.g. the
/// "see also" links of a Wikipedia article as relevance labels — the
/// evaluation protocol of the CycleRank journal paper).

/// Fraction of the top-k entries that are relevant. k > 0.
Result<double> PrecisionAtK(const RankedList& ranking,
                            const std::unordered_set<NodeId>& relevant,
                            size_t k);

/// Fraction of the relevant set found in the top-k. k > 0; the relevant
/// set must be non-empty.
Result<double> RecallAtK(const RankedList& ranking,
                         const std::unordered_set<NodeId>& relevant,
                         size_t k);

/// Mean reciprocal rank: 1/(position of the first relevant entry + 1),
/// or 0 when none is ranked.
double ReciprocalRank(const RankedList& ranking,
                      const std::unordered_set<NodeId>& relevant);

/// Average precision over the full ranking (AP; the building block of MAP).
/// The relevant set must be non-empty.
Result<double> AveragePrecision(const RankedList& ranking,
                                const std::unordered_set<NodeId>& relevant);

/// Normalized discounted cumulative gain at depth k with binary gains
/// (relevant = 1). k > 0; the relevant set must be non-empty.
Result<double> NdcgAtK(const RankedList& ranking,
                       const std::unordered_set<NodeId>& relevant, size_t k);

}  // namespace cyclerank

#endif  // CYCLERANK_EVAL_RELEVANCE_METRICS_H_
