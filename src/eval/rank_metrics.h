#ifndef CYCLERANK_EVAL_RANK_METRICS_H_
#define CYCLERANK_EVAL_RANK_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "core/ranking.h"
#include "graph/graph.h"

namespace cyclerank {

/// Rank-comparison metrics powering the demo's *algorithm comparison* use
/// case (§IV-D): quantitative summaries of how two relevance rankings
/// (dis)agree.

/// |top-k(a) ∩ top-k(b)| / |top-k(a) ∪ top-k(b)| — the Jaccard similarity
/// of the two top-k sets. 1 when identical sets, 0 when disjoint.
/// `k = 0` uses the full rankings.
double JaccardAtK(const RankedList& a, const RankedList& b, size_t k);

/// |top-k(a) ∩ top-k(b)| / k — overlap@k (a.k.a. intersection metric).
double OverlapAtK(const RankedList& a, const RankedList& b, size_t k);

/// Rank-biased overlap (Webber, Moffat & Zobel 2010) with persistence
/// `p ∈ (0,1)`: a top-weighted similarity of indefinite rankings that
/// handles non-conjoint lists. 1 = identical order, → 0 = unrelated.
Result<double> RankBiasedOverlap(const RankedList& a, const RankedList& b,
                                 double p = 0.9);

/// Kendall rank correlation τ-b over the nodes present in *both* rankings
/// (ties in score handled by the b-variant correction). Returns an error
/// when fewer than two common nodes exist.
Result<double> KendallTau(const RankedList& a, const RankedList& b);

/// Spearman rank correlation ρ over the common nodes.
Result<double> SpearmanRho(const RankedList& a, const RankedList& b);

/// Normalized Spearman footrule distance over the common nodes:
/// Σ|pos_a - pos_b| / max; 0 = identical order, 1 = reversed.
Result<double> SpearmanFootrule(const RankedList& a, const RankedList& b);

}  // namespace cyclerank

#endif  // CYCLERANK_EVAL_RANK_METRICS_H_
