#include "eval/relevance_metrics.h"

#include <algorithm>
#include <cmath>

namespace cyclerank {
namespace {

Status CheckK(size_t k) {
  if (k == 0) return Status::InvalidArgument("metric: k must be >= 1");
  return Status::OK();
}

Status CheckRelevant(const std::unordered_set<NodeId>& relevant) {
  if (relevant.empty()) {
    return Status::InvalidArgument("metric: relevant set must be non-empty");
  }
  return Status::OK();
}

}  // namespace

Result<double> PrecisionAtK(const RankedList& ranking,
                            const std::unordered_set<NodeId>& relevant,
                            size_t k) {
  CYCLERANK_RETURN_NOT_OK(CheckK(k));
  size_t hits = 0;
  const size_t limit = std::min(k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(ranking[i].node)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

Result<double> RecallAtK(const RankedList& ranking,
                         const std::unordered_set<NodeId>& relevant,
                         size_t k) {
  CYCLERANK_RETURN_NOT_OK(CheckK(k));
  CYCLERANK_RETURN_NOT_OK(CheckRelevant(relevant));
  size_t hits = 0;
  const size_t limit = std::min(k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(ranking[i].node)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(relevant.size());
}

double ReciprocalRank(const RankedList& ranking,
                      const std::unordered_set<NodeId>& relevant) {
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (relevant.count(ranking[i].node)) {
      return 1.0 / static_cast<double>(i + 1);
    }
  }
  return 0.0;
}

Result<double> AveragePrecision(const RankedList& ranking,
                                const std::unordered_set<NodeId>& relevant) {
  CYCLERANK_RETURN_NOT_OK(CheckRelevant(relevant));
  size_t hits = 0;
  double sum = 0.0;
  for (size_t i = 0; i < ranking.size(); ++i) {
    if (relevant.count(ranking[i].node)) {
      ++hits;
      sum += static_cast<double>(hits) / static_cast<double>(i + 1);
    }
  }
  return sum / static_cast<double>(relevant.size());
}

Result<double> NdcgAtK(const RankedList& ranking,
                       const std::unordered_set<NodeId>& relevant, size_t k) {
  CYCLERANK_RETURN_NOT_OK(CheckK(k));
  CYCLERANK_RETURN_NOT_OK(CheckRelevant(relevant));
  double dcg = 0.0;
  const size_t limit = std::min(k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    if (relevant.count(ranking[i].node)) {
      dcg += 1.0 / std::log2(static_cast<double>(i) + 2.0);
    }
  }
  // Ideal DCG: all relevant entries at the head.
  double ideal = 0.0;
  const size_t ideal_limit = std::min(k, relevant.size());
  for (size_t i = 0; i < ideal_limit; ++i) {
    ideal += 1.0 / std::log2(static_cast<double>(i) + 2.0);
  }
  return ideal == 0.0 ? 0.0 : dcg / ideal;
}

}  // namespace cyclerank
