#include "datasets/generators.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

#include "common/rng.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Status CheckNodes(NodeId n) {
  if (n == 0) return Status::InvalidArgument("generator: num_nodes must be >= 1");
  return Status::OK();
}

Status CheckProb(double p, const char* what) {
  if (p < 0.0 || p > 1.0) {
    return Status::InvalidArgument(std::string("generator: ") + what +
                                   " must be in [0,1], got " +
                                   std::to_string(p));
  }
  return Status::OK();
}

}  // namespace

Result<Graph> GenerateErdosRenyi(const ErdosRenyiConfig& config) {
  CYCLERANK_RETURN_NOT_OK(CheckNodes(config.num_nodes));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.edge_prob, "edge_prob"));
  Rng rng(config.seed);
  GraphBuilder builder;
  builder.ReserveNodes(config.num_nodes);
  // Geometric skipping: iterate over potential edges in O(#edges) expected
  // time instead of O(n^2).
  const double p = config.edge_prob;
  if (p > 0.0) {
    const uint64_t total =
        static_cast<uint64_t>(config.num_nodes) * config.num_nodes;
    uint64_t idx = 0;
    while (true) {
      // Skip ~Geometric(p) slots.
      const double u = rng.NextDouble();
      const uint64_t skip =
          p >= 1.0 ? 0
                   : static_cast<uint64_t>(std::log1p(-u) / std::log1p(-p));
      idx += skip;
      if (idx >= total) break;
      const NodeId from = static_cast<NodeId>(idx / config.num_nodes);
      const NodeId to = static_cast<NodeId>(idx % config.num_nodes);
      if (from != to) builder.AddEdge(from, to);
      ++idx;
    }
  }
  return builder.Build();
}

Result<Graph> GenerateErdosRenyiM(NodeId num_nodes, uint64_t num_edges,
                                  uint64_t seed) {
  CYCLERANK_RETURN_NOT_OK(CheckNodes(num_nodes));
  const uint64_t max_edges =
      static_cast<uint64_t>(num_nodes) * (num_nodes - 1);
  if (num_edges > max_edges) {
    return Status::InvalidArgument(
        "GenerateErdosRenyiM: num_edges exceeds n*(n-1)");
  }
  Rng rng(seed);
  GraphBuilder builder;
  builder.ReserveNodes(num_nodes);
  std::unordered_set<uint64_t> chosen;
  chosen.reserve(num_edges * 2);
  while (chosen.size() < num_edges) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(num_nodes));
    if (u == v) continue;
    const uint64_t key = static_cast<uint64_t>(u) * num_nodes + v;
    if (chosen.insert(key).second) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertConfig& config) {
  CYCLERANK_RETURN_NOT_OK(CheckNodes(config.num_nodes));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.reciprocity, "reciprocity"));
  if (config.edges_per_node == 0) {
    return Status::InvalidArgument(
        "GenerateBarabasiAlbert: edges_per_node must be >= 1");
  }
  Rng rng(config.seed);
  GraphBuilder builder;
  builder.ReserveNodes(config.num_nodes);

  // `attachment` holds one entry per (in-degree + 1) unit of mass, so a
  // uniform draw realizes preferential attachment.
  std::vector<NodeId> attachment;
  attachment.reserve(static_cast<size_t>(config.num_nodes) *
                     (config.edges_per_node + 1));
  const NodeId seed_nodes =
      std::min<NodeId>(config.num_nodes, config.edges_per_node + 1);
  // Seed clique-ish core: a directed ring so the attachment pool is nonempty
  // and the core is cyclic.
  for (NodeId u = 0; u < seed_nodes; ++u) {
    builder.AddEdge(u, (u + 1) % seed_nodes);
    attachment.push_back(u);
    attachment.push_back((u + 1) % seed_nodes);
  }
  for (NodeId t = seed_nodes; t < config.num_nodes; ++t) {
    // Draw order, not a hash set: the loop below consumes RNG per target,
    // so iterating in implementation-defined unordered_set order would
    // make the generated graph differ across standard libraries. A linear
    // scan dedups a handful of targets cheaply and keeps edge order (and
    // every downstream RNG draw) identical everywhere.
    std::vector<NodeId> targets;
    targets.reserve(config.edges_per_node);
    uint32_t guard = 0;
    while (targets.size() < config.edges_per_node &&
           guard < 50u * config.edges_per_node) {
      const NodeId cand = attachment[rng.NextBounded(attachment.size())];
      if (cand != t &&
          std::find(targets.begin(), targets.end(), cand) == targets.end()) {
        targets.push_back(cand);
      }
      ++guard;
    }
    for (NodeId v : targets) {
      builder.AddEdge(t, v);
      attachment.push_back(v);  // v gained in-degree
      if (rng.NextBool(config.reciprocity)) {
        builder.AddEdge(v, t);
        attachment.push_back(t);
      }
    }
    attachment.push_back(t);  // base mass for newcomer
  }
  return builder.Build();
}

Result<Graph> GenerateWattsStrogatz(const WattsStrogatzConfig& config) {
  CYCLERANK_RETURN_NOT_OK(CheckNodes(config.num_nodes));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.rewire_prob, "rewire_prob"));
  if (config.k == 0 || config.k >= config.num_nodes) {
    return Status::InvalidArgument(
        "GenerateWattsStrogatz: k must be in [1, n)");
  }
  Rng rng(config.seed);
  GraphBuilder builder;
  builder.ReserveNodes(config.num_nodes);
  for (NodeId u = 0; u < config.num_nodes; ++u) {
    for (uint32_t j = 1; j <= config.k; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % config.num_nodes);
      if (rng.NextBool(config.rewire_prob)) {
        v = static_cast<NodeId>(rng.NextBounded(config.num_nodes));
        if (v == u) v = static_cast<NodeId>((u + 1) % config.num_nodes);
      }
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Result<Graph> GenerateSbm(const SbmConfig& config) {
  if (config.block_sizes.empty()) {
    return Status::InvalidArgument("GenerateSbm: no blocks");
  }
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.intra_prob, "intra_prob"));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.inter_prob, "inter_prob"));
  NodeId n = 0;
  std::vector<uint32_t> block_of;
  for (size_t b = 0; b < config.block_sizes.size(); ++b) {
    for (NodeId i = 0; i < config.block_sizes[b]; ++i) {
      block_of.push_back(static_cast<uint32_t>(b));
    }
    n += config.block_sizes[b];
  }
  CYCLERANK_RETURN_NOT_OK(CheckNodes(n));
  Rng rng(config.seed);
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      if (u == v) continue;
      const double p =
          block_of[u] == block_of[v] ? config.intra_prob : config.inter_prob;
      if (rng.NextBool(p)) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Result<Graph> GenerateWikiLike(const WikiLikeConfig& config) {
  const NodeId n_articles =
      static_cast<NodeId>(config.num_clusters) * config.cluster_size;
  const NodeId n = n_articles + config.num_hubs;
  CYCLERANK_RETURN_NOT_OK(CheckNodes(n));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.intra_reciprocity, "intra_reciprocity"));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.hub_attachment, "hub_attachment"));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.inter_cluster_prob, "inter_cluster_prob"));
  Rng rng(config.seed);
  GraphBuilder builder;
  builder.ReserveNodes(n);
  // Nodes [0, n_articles) are topical articles grouped in clusters of
  // `cluster_size`; nodes [n_articles, n) are the global hubs.
  for (NodeId u = 0; u < n_articles; ++u) {
    const NodeId cluster = u / config.cluster_size;
    const NodeId base = cluster * config.cluster_size;
    // Topical links inside the cluster, often reciprocated.
    for (uint32_t j = 0; j < config.intra_out_degree; ++j) {
      NodeId v = base + static_cast<NodeId>(
                            rng.NextBounded(config.cluster_size));
      if (v == u) v = base + (u - base + 1) % config.cluster_size;
      if (v == u) continue;  // cluster of size 1
      builder.AddEdge(u, v);
      if (rng.NextBool(config.intra_reciprocity)) builder.AddEdge(v, u);
    }
    // Links to globally central hub articles (rarely returned).
    for (uint32_t h = 0; h < config.num_hubs; ++h) {
      if (rng.NextBool(config.hub_attachment)) {
        builder.AddEdge(u, n_articles + h);
      }
    }
    // Occasional cross-cluster link.
    if (rng.NextBool(config.inter_cluster_prob)) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n_articles));
      if (v != u) builder.AddEdge(u, v);
    }
  }
  // Hubs have few outgoing links, mostly to other hubs and random articles.
  for (uint32_t h = 0; h < config.num_hubs; ++h) {
    const NodeId hub = n_articles + h;
    for (uint32_t j = 0; j < config.hub_out_degree; ++j) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (v != hub) builder.AddEdge(hub, v);
    }
  }
  return builder.Build();
}

Result<Graph> GenerateAmazonLike(const AmazonLikeConfig& config) {
  const NodeId n_items =
      static_cast<NodeId>(config.num_genres) * config.genre_size;
  const NodeId n = n_items + config.num_bestsellers;
  CYCLERANK_RETURN_NOT_OK(CheckNodes(n));
  CYCLERANK_RETURN_NOT_OK(
      CheckProb(config.copurchase_reciprocity, "copurchase_reciprocity"));
  CYCLERANK_RETURN_NOT_OK(
      CheckProb(config.bestseller_attachment, "bestseller_attachment"));
  Rng rng(config.seed);
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId u = 0; u < n_items; ++u) {
    const NodeId genre = u / config.genre_size;
    const NodeId base = genre * config.genre_size;
    for (uint32_t j = 0; j < config.copurchase_out_degree; ++j) {
      NodeId v =
          base + static_cast<NodeId>(rng.NextBounded(config.genre_size));
      if (v == u) v = base + (u - base + 1) % config.genre_size;
      if (v == u) continue;
      builder.AddEdge(u, v);
      if (rng.NextBool(config.copurchase_reciprocity)) builder.AddEdge(v, u);
    }
    for (uint32_t b = 0; b < config.num_bestsellers; ++b) {
      if (rng.NextBool(config.bestseller_attachment)) {
        builder.AddEdge(u, n_items + b);
      }
    }
  }
  // Bestsellers co-purchase each other (they sit in everyone's cart).
  for (uint32_t a = 0; a < config.num_bestsellers; ++a) {
    for (uint32_t b = 0; b < config.num_bestsellers; ++b) {
      if (a != b) builder.AddEdge(n_items + a, n_items + b);
    }
  }
  return builder.Build();
}

Result<Graph> GenerateTwitterLike(const TwitterLikeConfig& config) {
  const NodeId n_users =
      static_cast<NodeId>(config.num_communities) * config.community_size;
  const NodeId n = n_users + config.num_celebrities;
  CYCLERANK_RETURN_NOT_OK(CheckNodes(n));
  CYCLERANK_RETURN_NOT_OK(CheckProb(config.reciprocity, "reciprocity"));
  CYCLERANK_RETURN_NOT_OK(
      CheckProb(config.celebrity_attachment, "celebrity_attachment"));
  Rng rng(config.seed);
  GraphBuilder builder;
  builder.ReserveNodes(n);
  for (NodeId u = 0; u < n_users; ++u) {
    const NodeId comm = u / config.community_size;
    const NodeId base = comm * config.community_size;
    // Zipf-scaled activity: user rank-within-community r gets activity
    // ~ interactions_per_user * H / (r+1) where H normalizes roughly.
    const NodeId rank = u - base;
    const uint32_t activity = std::max<uint32_t>(
        1, static_cast<uint32_t>(config.interactions_per_user * 2.0 /
                                 static_cast<double>(rank + 1)));
    for (uint32_t j = 0; j < activity; ++j) {
      NodeId v =
          base + static_cast<NodeId>(rng.NextBounded(config.community_size));
      if (v == u) v = base + (u - base + 1) % config.community_size;
      if (v == u) continue;
      builder.AddEdge(u, v);
      if (rng.NextBool(config.reciprocity)) builder.AddEdge(v, u);
    }
    for (uint32_t c = 0; c < config.num_celebrities; ++c) {
      if (rng.NextBool(config.celebrity_attachment)) {
        builder.AddEdge(u, n_users + c);  // mention/retweet of a celebrity
      }
    }
  }
  // Celebrities interact among themselves and reply to a few users.
  for (uint32_t a = 0; a < config.num_celebrities; ++a) {
    const NodeId celeb = n_users + a;
    for (uint32_t b = 0; b < config.num_celebrities; ++b) {
      if (a != b && rng.NextBool(0.5)) builder.AddEdge(celeb, n_users + b);
    }
    for (uint32_t j = 0; j < 5; ++j) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n_users));
      builder.AddEdge(celeb, v);
    }
  }
  return builder.Build();
}

}  // namespace cyclerank
