#include <string>
#include <vector>

#include "datasets/corpus.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

/// One language edition of the "Fake news" miniature.
///
/// `items` lists the articles that must appear in the CycleRank top list,
/// strongest first. The builder wires, for n = items.size():
///   * n=5: ref↔each item, plus item-item edges A→B, B→A, A→C, A→D, B→C,
///     giving triangle counts (4,3,2,1,0) and strictly decreasing scores;
///   * n=4: ref↔each, edges A→B, B→A, A→C → counts (3,2,1,0);
///   * n=3: ref↔A, ref↔B, and C participates only through the triangle
///     ref→A→C→ref (C has no 2-cycle) → scores .185 > .135 > .0498.
/// The paper's nl and pl editions list fewer than five results; the n=4 and
/// n=3 wirings leave exactly that many nodes with non-zero CycleRank.
struct EditionSpec {
  const char* language;
  const char* title;                   // local "Fake news" article name
  std::vector<const char*> items;      // expected top list, strongest first
  std::vector<const char*> background; // zero-score satellite articles
};

const std::vector<EditionSpec>& Editions() {
  static const std::vector<EditionSpec>* specs = new std::vector<EditionSpec>{
      {"de",
       "Fake News",
       {"Barack Obama", "Tagesschau.de", "Desinformation", "Fake",
        "Donald Trump"},
       {"Journalismus", "Soziale Medien", "Propaganda", "Lügenpresse",
        "Satire"}},
      {"en",
       "Fake news",
       {"CNN", "Facebook", "US pres. election, 2016", "Propaganda",
        "Social media"},
       {"Misinformation", "Donald Trump", "Journalism", "Twitter",
        "Clickbait"}},
      {"fr",
       "Fake news",
       {"Ère post-vérité", "Donald Trump", "Facebook", "Hoax",
        "Alex Jones (complotiste)"},
       {"Désinformation", "Journalisme", "Théorie du complot",
        "Réseaux sociaux", "Infox"}},
      {"it",
       "Fake news",
       {"Disinformazione", "Post-verità", "Bufala", "Debunker", "Clickbait"},
       {"Giornalismo", "Social media", "Propaganda", "Donald Trump",
        "Complottismo"}},
      {"nl",
       "Nepnieuws",
       {"Facebook", "Journalistiek", "Hoax", "Donald Trump"},
       {"Desinformatie", "Sociale media", "Propaganda", "Twitter",
        "Complottheorie"}},
      {"pl",
       "Fake news",
       {"Dezinformacja", "Propaganda", "Media społecznościowe"},
       {"Dziennikarstwo", "Donald Trump", "Facebook", "Teoria spiskowa",
        "Postprawda"}},
  };
  return *specs;
}

void WireEdition(const EditionSpec& spec, GraphBuilder& b) {
  const char* ref = spec.title;
  const auto& it = spec.items;
  if (it.size() >= 4) {
    // 2-cycles with every item; triangle edges produce strictly decreasing
    // triangle counts (see struct comment).
    for (const char* item : it) {
      b.AddEdge(ref, item);
      b.AddEdge(item, ref);
    }
    b.AddEdge(it[0], it[1]);
    b.AddEdge(it[1], it[0]);
    b.AddEdge(it[0], it[2]);
    if (it.size() >= 5) {
      b.AddEdge(it[0], it[3]);
      b.AddEdge(it[1], it[2]);
    }
  } else {
    // n=3 wiring: third item has no 2-cycle, only the ref→A→C→ref triangle.
    b.AddEdge(ref, it[0]);
    b.AddEdge(it[0], ref);
    b.AddEdge(ref, it[1]);
    b.AddEdge(it[1], ref);
    b.AddEdge(it[0], it[2]);
    b.AddEdge(it[2], ref);
  }
  // Background articles: kept on one-directional paths only, so they sit on
  // no cycle through the reference (CycleRank score 0) while still being
  // visible to PageRank / PPR. Even-indexed backgrounds are downstream of
  // the reference (ref→bg), odd-indexed are upstream (bg→ref); links never
  // cross from the downstream group back toward the reference.
  for (size_t i = 0; i < spec.background.size(); ++i) {
    if (i % 2 == 0) {
      b.AddEdge(ref, spec.background[i]);
      if (i + 2 < spec.background.size()) {
        b.AddEdge(spec.background[i], spec.background[i + 2]);
      }
    } else {
      b.AddEdge(spec.background[i], ref);
      // Upstream articles also point at the strongest item — in-degree
      // realism that cannot form a cycle because nothing reachable from the
      // reference leads into them.
      b.AddEdge(spec.background[i], spec.items[0]);
      if (i + 2 < spec.background.size()) {
        b.AddEdge(spec.background[i + 2], spec.background[i]);
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& FakeNewsLanguages() {
  static const std::vector<std::string>* langs =
      new std::vector<std::string>{"de", "en", "fr", "it", "nl", "pl"};
  return *langs;
}

Result<Graph> FakeNewsEdition(std::string_view language) {
  for (const EditionSpec& spec : Editions()) {
    if (language == spec.language) {
      GraphBuilder b;
      WireEdition(spec, b);
      return b.Build();
    }
  }
  return Status::NotFound("no Fake news edition for language '" +
                          std::string(language) + "'");
}

Result<std::string> FakeNewsTitle(std::string_view language) {
  for (const EditionSpec& spec : Editions()) {
    if (language == spec.language) return std::string(spec.title);
  }
  return Status::NotFound("no Fake news edition for language '" +
                          std::string(language) + "'");
}

}  // namespace cyclerank
