#include <string>

#include "datasets/corpus.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

/// Reciprocal co-purchase link ("customers who bought X also bought Y" in
/// both directions).
void CoPurchase(GraphBuilder& b, const char* x, const char* y) {
  b.AddEdge(x, y);
  b.AddEdge(y, x);
}

/// Global layer of the Amazon miniature: the paper's PageRank top-5
/// ("Good to Great", "The Catcher in the Rye", "DSM-IV", "The Great
/// Gatsby", "Lord of the Flies") are category hubs that whole genres of
/// filler books point at.
void AddGlobalLayer(GraphBuilder& b) {
  constexpr int kBusiness = 55;
  for (int i = 0; i < kBusiness; ++i) {
    const std::string name = "Business book " + std::to_string(i + 1);
    b.AddEdge(name, "Good to Great");
    b.AddEdge(name, "Business book " + std::to_string((i + 1) % kBusiness + 1));
  }
  constexpr int kPsych = 40;
  for (int i = 0; i < kPsych; ++i) {
    const std::string name = "Psychology text " + std::to_string(i + 1);
    b.AddEdge(name, "DSM-IV");
    b.AddEdge(name, "Good to Great");
  }
  // School reading lists: many editions point at the canonical classics.
  constexpr int kSchool = 26;
  for (int i = 0; i < kSchool; ++i) {
    const std::string name = "Study guide " + std::to_string(i + 1);
    b.AddEdge(name, "The Catcher in the Rye");
    if (i % 2 == 0) b.AddEdge(name, "The Great Gatsby");
    if (i % 3 == 0) b.AddEdge(name, "Lord of the Flies");
  }
  // Jazz-age criticism shelf: feeds "The Great Gatsby" specifically.
  constexpr int kCritics = 12;
  for (int i = 0; i < kCritics; ++i) {
    b.AddEdge("Literary criticism " + std::to_string(i + 1),
              "The Great Gatsby");
  }
  // "Good to Great" and "DSM-IV" have no outgoing co-purchases: category
  // hubs park their rank (an out-degree-1 hub would funnel it all onward).
  b.AddEdge("The Great Gatsby", "The Catcher in the Rye");
}

/// Dystopian-classics cluster around "1984" (Table II, left half).
/// CycleRank (K=5) target order: Animal Farm > Fahrenheit 451 >
/// The Catcher in the Rye > Brave New World > Lord of the Flies.
/// PPR (α=.85) target order: The Catcher in the Rye > Lord of the Flies >
/// Animal Farm > Fahrenheit 451 > To Kill a Mockingbird.
void AddDystopiaCluster(GraphBuilder& b) {
  const char* kNineteen = "1984";
  // Reciprocal co-purchases with the reference book: the strong cycle
  // cluster. "Brave New World" and "Lord of the Flies" are deliberately
  // *not* reciprocal with 1984 — their CycleRank comes from longer cycles
  // (BNW links back to 1984, LotF only forward), keeping them at ranks 4-5.
  CoPurchase(b, kNineteen, "Animal Farm");
  CoPurchase(b, kNineteen, "Fahrenheit 451");
  CoPurchase(b, kNineteen, "The Catcher in the Rye");
  b.AddEdge(kNineteen, "Lord of the Flies");
  b.AddEdge("Brave New World", kNineteen);
  // Intra-cluster structure (Orwell pairings strongest).
  CoPurchase(b, "Animal Farm", "Fahrenheit 451");
  CoPurchase(b, "Animal Farm", "Brave New World");
  b.AddEdge("Animal Farm", "The Catcher in the Rye");
  b.AddEdge("Fahrenheit 451", "Brave New World");
  b.AddEdge("Fahrenheit 451", "Lord of the Flies");
  // Popular-classics tail: one-directional co-purchase flow.
  b.AddEdge("Lord of the Flies", "The Catcher in the Rye");
  b.AddEdge("Lord of the Flies", "To Kill a Mockingbird");
  b.AddEdge("The Catcher in the Rye", "Lord of the Flies");
  b.AddEdge("The Catcher in the Rye", "To Kill a Mockingbird");
  b.AddEdge("To Kill a Mockingbird", "The Catcher in the Rye");
  // Author pages: rank escape hatches for the densely reciprocal cluster
  // (no backlinks, so no cycles and no CycleRank effect).
  b.AddEdge("Animal Farm", "George Orwell");
  b.AddEdge("Fahrenheit 451", "Ray Bradbury");
  b.AddEdge("Brave New World", "Aldous Huxley");
  b.AddEdge("The Catcher in the Rye", "J.D. Salinger");
  b.AddEdge("Lord of the Flies", "William Golding");
  b.AddEdge("To Kill a Mockingbird", "Harper Lee");
  b.AddEdge("The Great Gatsby", "F. Scott Fitzgerald");
}

/// Tolkien cluster around "The Fellowship of the Ring" (Table II, right
/// half). CycleRank (K=5) target: The Hobbit > The Return of the King >
/// The Silmarillion > The Two Towers > Unfinished Tales. PPR (α=.85)
/// target: The Silmarillion > The Hobbit > Harry Potter (Book 1) >
/// Harry Potter (Book 2) > The Return of the King — the Harry Potter
/// bestsellers enter through one-directional co-purchase links and are the
/// pathology CycleRank avoids (§IV-D).
void AddTolkienCluster(GraphBuilder& b) {
  const char* kFellowship = "The Fellowship of the Ring";
  CoPurchase(b, kFellowship, "The Hobbit");
  CoPurchase(b, kFellowship, "The Return of the King");
  CoPurchase(b, kFellowship, "The Silmarillion");
  CoPurchase(b, kFellowship, "The Two Towers");
  CoPurchase(b, kFellowship, "Unfinished Tales");
  // Intra-cluster structure: the Hobbit pairs with everything, the
  // trilogy volumes pair with each other, the Silmarillion with the
  // Hobbit and Unfinished Tales.
  CoPurchase(b, "The Hobbit", "The Return of the King");
  CoPurchase(b, "The Hobbit", "The Silmarillion");
  CoPurchase(b, "The Return of the King", "The Two Towers");
  // One-directional Harry Potter co-purchases: every Tolkien reader also
  // bought them, but HP buyers move on to HP sequels, not back to Tolkien.
  b.AddEdge(kFellowship, "Harry Potter (Book 1)");
  b.AddEdge(kFellowship, "Harry Potter (Book 2)");
  b.AddEdge("The Hobbit", "Harry Potter (Book 1)");
  b.AddEdge("The Silmarillion", "Harry Potter (Book 1)");
  b.AddEdge("The Return of the King", "Harry Potter (Book 2)");
  b.AddEdge("The Two Towers", "Harry Potter (Book 2)");
  CoPurchase(b, "Harry Potter (Book 1)", "Harry Potter (Book 2)");
  // Escape links keep the HP pair from trapping probability mass.
  for (const char* sequel : {"Harry Potter (Book 3)", "Harry Potter (Book 4)",
                             "Harry Potter (Book 5)"}) {
    b.AddEdge("Harry Potter (Book 1)", sequel);
    b.AddEdge("Harry Potter (Book 2)", sequel);
  }
  // Bestseller gravity from the global layer.
  for (int i = 0; i < 6; ++i) {
    const std::string name = "Bestseller reader pick " + std::to_string(i + 1);
    b.AddEdge(name, "Harry Potter (Book 1)");
    if (i % 2 == 0) b.AddEdge(name, "Harry Potter (Book 2)");
  }
  // The Silmarillion's PPR edge: deep-lore readers funnel into it.
  b.AddEdge("Unfinished Tales", "The Silmarillion");
}

}  // namespace

Result<Graph> AmazonBooksMini() {
  GraphBuilder b;
  AddGlobalLayer(b);
  AddDystopiaCluster(b);
  AddTolkienCluster(b);
  return b.Build();
}

}  // namespace cyclerank
