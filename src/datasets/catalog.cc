#include "datasets/catalog.h"

#include <memory>
#include <utility>

#include "common/mutex.h"
#include "datasets/corpus.h"
#include "datasets/generators.h"

namespace cyclerank {

DatasetCatalog& DatasetCatalog::BuiltIn() {
  static DatasetCatalog* catalog = [] {
    auto* c = new DatasetCatalog;
    RegisterBuiltInDatasets(*c);
    return c;
  }();
  return *catalog;
}

Status DatasetCatalog::Register(DatasetInfo info, Factory factory) {
  if (info.name.empty()) {
    return Status::InvalidArgument("dataset name must not be empty");
  }
  if (!factory) {
    return Status::InvalidArgument("dataset factory must not be null");
  }
  MutexLock lock(mu_);
  // Copy the key first: reading info.name in the same full expression that
  // moves `info` would be order-dependent.
  std::string name = info.name;
  auto [it, inserted] = entries_.emplace(
      std::move(name), Entry{std::move(info), std::move(factory), nullptr});
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + it->first +
                                 "' already registered");
  }
  return Status::OK();
}

std::vector<DatasetInfo> DatasetCatalog::List() const {
  MutexLock lock(mu_);
  std::vector<DatasetInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.info);
  return out;
}

Result<DatasetInfo> DatasetCatalog::Info(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    return Status::NotFound("dataset '" + name + "' not found");
  }
  return it->second.info;
}

Result<GraphPtr> DatasetCatalog::Load(const std::string& name) {
  Factory factory;
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it == entries_.end()) {
      return Status::NotFound("dataset '" + name + "' not found");
    }
    if (it->second.cached) return it->second.cached;
    factory = it->second.factory;
  }
  // Build outside the lock: factories can be slow (generators).
  CYCLERANK_ASSIGN_OR_RETURN(Graph g, factory());
  auto shared = std::make_shared<Graph>(std::move(g));
  {
    MutexLock lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end() && !it->second.cached) {
      it->second.cached = shared;
    }
  }
  return GraphPtr(shared);
}

size_t DatasetCatalog::size() const {
  MutexLock lock(mu_);
  return entries_.size();
}

namespace {

uint64_t MixSeed(uint64_t a, uint64_t b) { return a * 1000003 + b; }

void RegisterWikiLink(DatasetCatalog& catalog) {
  const char* languages[] = {"de", "en", "es", "fr", "it",
                             "nl", "pl", "ru", "sv"};
  const int years[] = {2003, 2008, 2013, 2018};
  uint64_t lang_idx = 0;
  for (const char* lang : languages) {
    ++lang_idx;
    for (int year : years) {
      WikiLikeConfig config;
      // Later snapshots are larger, mirroring WikiLinkGraphs growth;
      // English is the largest edition.
      const uint32_t growth = static_cast<uint32_t>((year - 2003) / 5 + 1);
      config.num_clusters = 6 * growth;
      config.cluster_size = lang == std::string("en") ? 60 : 40;
      config.num_hubs = 4 + growth;
      config.seed = MixSeed(lang_idx, static_cast<uint64_t>(year));
      const std::string name =
          "wikilink-" + std::string(lang) + "-" + std::to_string(year);
      DatasetInfo info{
          name, "wikipedia",
          "Wiki-like link graph, " + std::string(lang) + " edition, " +
              std::to_string(year) + " snapshot (synthetic stand-in for "
              "WikiLinkGraphs)"};
      (void)catalog.Register(std::move(info),
                             [config] { return GenerateWikiLike(config); });
    }
  }
}

}  // namespace

void RegisterBuiltInDatasets(DatasetCatalog& catalog) {
  RegisterWikiLink(catalog);

  (void)catalog.Register(
      {"enwiki-mini-2018", "wikipedia",
       "Embedded labeled enwiki miniature (Freddie Mercury / Pasta clusters "
       "+ global hubs) — Table I corpus"},
      [] { return EnwikiMini(); });

  (void)catalog.Register(
      {"amazon-books-mini", "amazon",
       "Embedded labeled Amazon books co-purchase miniature (1984 / "
       "Fellowship clusters + bestseller hubs) — Table II corpus"},
      [] { return AmazonBooksMini(); });

  for (const std::string& lang : FakeNewsLanguages()) {
    (void)catalog.Register(
        {"fakenews-" + lang, "wikipedia",
         "Embedded 'Fake news' neighbourhood of the " + lang +
             " Wikipedia edition — Table III corpus"},
        [lang] { return FakeNewsEdition(lang); });
  }

  (void)catalog.Register(
      {"amazon-copurchase", "amazon",
       "Amazon-like co-purchase network (genre clusters, bestseller hubs)"},
      [] {
        AmazonLikeConfig config;
        config.seed = 7;
        return GenerateAmazonLike(config);
      });

  (void)catalog.Register(
      {"twitter-cop27", "twitter",
       "Twitter-like interaction network for the COP27 topic (synthetic "
       "stand-in for the cop27 dataset)"},
      [] {
        TwitterLikeConfig config;
        config.seed = 27;
        return GenerateTwitterLike(config);
      });

  (void)catalog.Register(
      {"twitter-8m", "twitter",
       "Twitter-like interaction network for the March 8 topic (synthetic "
       "stand-in for the 8m dataset)"},
      [] {
        TwitterLikeConfig config;
        config.seed = 8;
        config.num_communities = 8;
        return GenerateTwitterLike(config);
      });

  (void)catalog.Register(
      {"ba-1k", "synthetic",
       "Directed Barabási–Albert graph, 1000 nodes, reciprocity 0.3"},
      [] {
        BarabasiAlbertConfig config;
        config.seed = 11;
        return GenerateBarabasiAlbert(config);
      });

  (void)catalog.Register({"er-1k", "synthetic",
                          "Directed Erdős–Rényi G(1000, 0.01) graph"},
                         [] {
                           ErdosRenyiConfig config;
                           config.seed = 12;
                           return GenerateErdosRenyi(config);
                         });

  (void)catalog.Register(
      {"ws-1k", "synthetic",
       "Directed Watts–Strogatz ring (1000 nodes, k=4, rewire 0.1)"},
      [] {
        WattsStrogatzConfig config;
        config.seed = 13;
        return GenerateWattsStrogatz(config);
      });

  (void)catalog.Register(
      {"sbm-1k", "synthetic",
       "Stochastic block model, 4 blocks of 250 nodes"},
      [] {
        SbmConfig config;
        config.seed = 14;
        return GenerateSbm(config);
      });
}

}  // namespace cyclerank
