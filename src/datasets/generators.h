#ifndef CYCLERANK_DATASETS_GENERATORS_H_
#define CYCLERANK_DATASETS_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

/// Synthetic directed-graph generators.
///
/// The paper's pre-loaded datasets (WikiLinkGraphs, Amazon co-purchase,
/// Twitter interaction networks — §IV-B) are either huge or not publicly
/// redistributable, so the benchmark harness runs on synthetic graphs whose
/// structure matches the properties the experiments depend on (hubs,
/// clusters, reciprocity — see DESIGN.md §2). All generators are
/// deterministic in their seed.

/// G(n, p): every ordered pair (u,v), u≠v, becomes an edge with
/// probability `edge_prob`.
struct ErdosRenyiConfig {
  NodeId num_nodes = 1000;
  double edge_prob = 0.01;
  uint64_t seed = 1;
};
Result<Graph> GenerateErdosRenyi(const ErdosRenyiConfig& config);

/// G(n, m): exactly `num_edges` distinct directed edges chosen uniformly.
Result<Graph> GenerateErdosRenyiM(NodeId num_nodes, uint64_t num_edges,
                                  uint64_t seed);

/// Directed preferential attachment: node t attaches `edges_per_node` out-
/// edges to targets sampled with probability ∝ (in-degree + 1); each target
/// reciprocates with probability `reciprocity` (needed for cycles — a DAG
/// has CycleRank 0 everywhere).
struct BarabasiAlbertConfig {
  NodeId num_nodes = 1000;
  uint32_t edges_per_node = 5;
  double reciprocity = 0.3;
  uint64_t seed = 1;
};
Result<Graph> GenerateBarabasiAlbert(const BarabasiAlbertConfig& config);

/// Directed Watts–Strogatz: ring where each node points to its `k` clockwise
/// successors; every edge is rewired to a uniform target with probability
/// `rewire_prob`.
struct WattsStrogatzConfig {
  NodeId num_nodes = 1000;
  uint32_t k = 4;
  double rewire_prob = 0.1;
  uint64_t seed = 1;
};
Result<Graph> GenerateWattsStrogatz(const WattsStrogatzConfig& config);

/// Stochastic block model: directed edges appear with `intra_prob` inside a
/// block and `inter_prob` across blocks.
struct SbmConfig {
  std::vector<NodeId> block_sizes = {250, 250, 250, 250};
  double intra_prob = 0.05;
  double inter_prob = 0.001;
  uint64_t seed = 1;
};
Result<Graph> GenerateSbm(const SbmConfig& config);

/// Wikipedia-like link graph: topical clusters with reciprocal links plus a
/// small set of globally-central hub articles that almost everything links
/// to but that rarely link back — the structure behind the paper's
/// "United States appears in every PPR top list" pathology (§I).
struct WikiLikeConfig {
  uint32_t num_clusters = 20;
  NodeId cluster_size = 50;
  uint32_t num_hubs = 5;           ///< globally central articles
  uint32_t intra_out_degree = 6;   ///< links to own-cluster articles
  double intra_reciprocity = 0.5;  ///< chance a topical link is returned
  double hub_attachment = 0.8;     ///< chance an article links to each hub
  uint32_t hub_out_degree = 10;    ///< few outgoing links from hubs
  double inter_cluster_prob = 0.01;
  uint64_t seed = 1;
};
Result<Graph> GenerateWikiLike(const WikiLikeConfig& config);

/// Amazon-co-purchase-like graph: genre clusters with high reciprocity
/// ("customers who bought X also bought Y" is nearly symmetric inside a
/// genre) plus bestseller nodes that receive links from every genre without
/// reciprocating — the "Harry Potter" effect of Table II.
struct AmazonLikeConfig {
  uint32_t num_genres = 15;
  NodeId genre_size = 60;
  uint32_t num_bestsellers = 8;
  uint32_t copurchase_out_degree = 5;
  double copurchase_reciprocity = 0.7;
  double bestseller_attachment = 0.5;
  uint64_t seed = 1;
};
Result<Graph> GenerateAmazonLike(const AmazonLikeConfig& config);

/// Twitter-interaction-like graph: communities of users with Zipf-distributed
/// activity, celebrity accounts that get mentioned from everywhere, low
/// reciprocity (retweets/mentions are one-directional), mirroring the
/// cop27 / 8m datasets (§IV-B).
struct TwitterLikeConfig {
  uint32_t num_communities = 10;
  NodeId community_size = 100;
  uint32_t num_celebrities = 6;
  uint32_t interactions_per_user = 8;  ///< mean; actual is Zipf-scaled
  double celebrity_attachment = 0.3;
  double reciprocity = 0.15;
  uint64_t seed = 1;
};
Result<Graph> GenerateTwitterLike(const TwitterLikeConfig& config);

}  // namespace cyclerank

#endif  // CYCLERANK_DATASETS_GENERATORS_H_
