#ifndef CYCLERANK_DATASETS_CATALOG_H_
#define CYCLERANK_DATASETS_CATALOG_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"

namespace cyclerank {

/// Metadata of one pre-loaded dataset.
struct DatasetInfo {
  std::string name;         ///< unique key, e.g. "wikilink-en-2018"
  std::string source;       ///< "wikipedia", "amazon", "twitter", "synthetic"
  std::string description;  ///< one-line human-readable summary
};

/// Registry of named datasets, mirroring the demo's "50 pre-loaded
/// datasets from Wikipedia, Twitter, and Amazon" (abstract, §IV-B).
///
/// `BuiltIn()` registers:
///  * `wikilink-<lang>-<year>` — 9 languages × 4 snapshot years (2003,
///    2008, 2013, 2018) of the wiki-like generator, sized up with the year
///    (WikiLinkGraphs role);
///  * `enwiki-mini-2018`, `amazon-books-mini`, `fakenews-<lang>` ×6 —
///    the embedded labeled corpora behind Tables I–III;
///  * `amazon-copurchase`, `twitter-cop27`, `twitter-8m` — domain
///    generators;
///  * `ba-1k`, `er-1k`, `ws-1k`, `sbm-1k` — plain synthetic graphs.
///
/// Loading is lazy and cached; the cache hands out shared immutable
/// `GraphPtr`s, so concurrent executors can load the same dataset safely.
/// `Register` adds user datasets at runtime (the demo's upload path).
class DatasetCatalog {
 public:
  using Factory = std::function<Result<Graph>()>;

  DatasetCatalog() = default;
  DatasetCatalog(const DatasetCatalog&) = delete;
  DatasetCatalog& operator=(const DatasetCatalog&) = delete;

  /// The catalog of built-in datasets (≈50 entries). Thread-safe.
  static DatasetCatalog& BuiltIn();

  /// Registers a dataset; fails with AlreadyExists on a duplicate name.
  Status Register(DatasetInfo info, Factory factory) CYR_EXCLUDES(mu_);

  /// All registered datasets, sorted by name.
  std::vector<DatasetInfo> List() const CYR_EXCLUDES(mu_);

  /// Metadata for `name`.
  Result<DatasetInfo> Info(const std::string& name) const
      CYR_EXCLUDES(mu_);

  /// Loads (and caches) the dataset `name`.
  Result<GraphPtr> Load(const std::string& name) CYR_EXCLUDES(mu_);

  /// Number of registered datasets.
  size_t size() const CYR_EXCLUDES(mu_);

 private:
  struct Entry {
    DatasetInfo info;
    Factory factory;
    GraphPtr cached;  // filled on first Load
  };

  /// Factories run *outside* this lock (Load drops it first) — a slow
  /// generator must never serialize unrelated catalog lookups.
  mutable Mutex mu_{lock_rank::kCatalogMu, "DatasetCatalog::mu_"};
  std::map<std::string, Entry> entries_ CYR_GUARDED_BY(mu_);
};

/// Registers the built-in entries into `catalog` (used by `BuiltIn()` and
/// by tests that want a fresh catalog).
void RegisterBuiltInDatasets(DatasetCatalog& catalog);

}  // namespace cyclerank

#endif  // CYCLERANK_DATASETS_CATALOG_H_
