#include <string>

#include "datasets/corpus.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

/// Adds the globally-central part of the enwiki miniature: the paper's
/// PageRank top-5 ("United States", "Animal", "Arthropod", "Association
/// football", "Insect") as hub articles fed by generic filler articles.
/// The taxonomy chain Insect → Arthropod → Animal concentrates rank
/// upstream, which is how those pages reach the global top on the real
/// snapshot.
void AddGlobalHubs(GraphBuilder& b) {
  // Generic articles: every one links to United States (the canonical
  // "everything links to it" page) and to one or two peers.
  constexpr int kFillers = 70;
  for (int i = 0; i < kFillers; ++i) {
    const std::string name = "Article " + std::to_string(i + 1);
    b.AddEdge(name, "United States");
    b.AddEdge(name, "Article " + std::to_string((i + 1) % kFillers + 1));
  }
  // Species articles feed the taxonomy chain.
  constexpr int kInsects = 26;
  for (int i = 0; i < kInsects; ++i) {
    const std::string name = "Insect species " + std::to_string(i + 1);
    b.AddEdge(name, "Insect");
    b.AddEdge(name, "United States");
  }
  constexpr int kArthropods = 16;
  for (int i = 0; i < kArthropods; ++i) {
    const std::string name = "Arthropod species " + std::to_string(i + 1);
    b.AddEdge(name, "Arthropod");
    b.AddEdge(name, "United States");
  }
  constexpr int kAnimals = 18;
  for (int i = 0; i < kAnimals; ++i) {
    const std::string name = "Animal species " + std::to_string(i + 1);
    b.AddEdge(name, "Animal");
    b.AddEdge(name, "United States");
  }
  b.AddEdge("Insect", "Arthropod");
  b.AddEdge("Arthropod", "Animal");
  // Football players and clubs feed "Association football".
  constexpr int kPlayers = 34;
  for (int i = 0; i < kPlayers; ++i) {
    const std::string name = "Footballer " + std::to_string(i + 1);
    b.AddEdge(name, "Association football");
    b.AddEdge(name, "United States");
  }
  // Hubs are rank sinks: overview articles link out to almost nothing.
  // (A hub with out-degree 1 would funnel its whole rank into one target;
  // dangling hubs let PageRank redistribute it uniformly instead.)
}

/// The Queen cluster around "Freddie Mercury" (Table I, left half).
///
/// Cycle design (K=3, σ=e^-n), targeting the paper's CycleRank order
/// Queen (band) > Brian May > Roger Taylor > John Deacon:
///   Queen (band): 2-cycle + 8 triangles      -> .534
///   Brian May:    2-cycle + 4 triangles      -> .334
///   Roger Taylor: 2-cycle + 3 triangles      -> .285
///   John Deacon:  2-cycle + 2 triangles      -> .235
/// and the paper's PPR (α=.3) order Queen > The FM Tribute Concert >
/// HIV/AIDS > Queen II, driven by in-link counts / out-degree splits of the
/// pages one and two hops from Freddie Mercury.
void AddQueenCluster(GraphBuilder& b) {
  const char* kFreddie = "Freddie Mercury";
  // Freddie's out-links (his article's wiki links).
  for (const char* to : {"Queen (band)", "Brian May", "Roger Taylor",
                         "John Deacon", "The FM Tribute Concert", "HIV/AIDS",
                         "Queen II"}) {
    b.AddEdge(kFreddie, to);
  }
  // Reciprocal band links (2-cycles with Freddie).
  for (const char* from :
       {"Queen (band)", "Brian May", "Roger Taylor", "John Deacon"}) {
    b.AddEdge(from, kFreddie);
  }
  // Queen (band) article links.
  b.AddEdge("Queen (band)", "Brian May");
  b.AddEdge("Queen (band)", "Roger Taylor");
  b.AddEdge("Queen (band)", "John Deacon");
  b.AddEdge("Queen (band)", "Queen II");
  // Band members link back to the band page -> triangles through Freddie.
  b.AddEdge("Brian May", "Queen (band)");
  b.AddEdge("Roger Taylor", "Queen (band)");
  b.AddEdge("John Deacon", "Queen (band)");
  // Songs lift Brian May (+2 triangles) and Roger Taylor (+1), one
  // orientation each so they gain no 2-cycle with Freddie themselves.
  b.AddEdge("Brian May", "Bohemian Rhapsody");
  b.AddEdge("Bohemian Rhapsody", kFreddie);
  b.AddEdge("Brian May", "We Will Rock You");
  b.AddEdge("We Will Rock You", kFreddie);
  b.AddEdge("Roger Taylor", "Radio Ga Ga");
  b.AddEdge("Radio Ga Ga", kFreddie);
  // Tribute concert: linked from the band members, links onwards to
  // HIV/AIDS (the concert's cause) and back to Freddie.
  b.AddEdge("Brian May", "The FM Tribute Concert");
  b.AddEdge("Roger Taylor", "The FM Tribute Concert");
  b.AddEdge("John Deacon", "The FM Tribute Concert");
  b.AddEdge("The FM Tribute Concert", "HIV/AIDS");
  b.AddEdge("The FM Tribute Concert", "Queen (band)");
  // Queen II funnels back to the band page and is co-referenced by May.
  b.AddEdge("Queen II", "Queen (band)");
  b.AddEdge("Brian May", "Queen II");
  // Light links into the global layer (realism; kept two hops out so they
  // cannot disturb the personalized top-5).
  b.AddEdge("Brian May", "United States");
  b.AddEdge("Roger Taylor", "United States");
  b.AddEdge("HIV/AIDS", "United States");
}

/// The Italian-food cluster around "Pasta" (Table I, right half).
///
/// CycleRank targets (K=3): Italian cuisine > Italy > Spaghetti > Flour.
/// PPR (α=.3) targets: Bolognese sauce > Carbonara > Durum > Italy, with
/// the cuisine pages trailing — Bolognese/Carbonara/Durum are out-links of
/// Pasta that never link back (no cycles), but they collect second-hop
/// probability mass from the cluster.
void AddPastaCluster(GraphBuilder& b) {
  const char* kPasta = "Pasta";
  for (const char* to : {"Italian cuisine", "Italy", "Spaghetti", "Flour",
                         "Bolognese sauce", "Carbonara", "Durum"}) {
    b.AddEdge(kPasta, to);
  }
  for (const char* from : {"Italian cuisine", "Italy", "Spaghetti", "Flour"}) {
    b.AddEdge(from, kPasta);
  }
  // Triangles (K=3 cycles) through Pasta:
  //   Italian cuisine: 4 (via Italy x2, via Spaghetti x2)
  //   Italy: 3 (via Italian cuisine x2, via Flour)
  //   Spaghetti: 2 (via Italian cuisine x2)
  //   Flour: 1 (via Italy)
  b.AddEdge("Italian cuisine", "Italy");
  b.AddEdge("Italy", "Italian cuisine");
  b.AddEdge("Italian cuisine", "Spaghetti");
  b.AddEdge("Spaghetti", "Italian cuisine");
  b.AddEdge("Flour", "Italy");
  // One-directional sauce/ingredient pages: no cycles, strong 2nd-hop mass.
  b.AddEdge("Spaghetti", "Bolognese sauce");
  b.AddEdge("Spaghetti", "Carbonara");
  b.AddEdge("Italian cuisine", "Bolognese sauce");
  b.AddEdge("Italian cuisine", "Carbonara");
  b.AddEdge("Flour", "Durum");
  b.AddEdge("Durum", "Bolognese sauce");
  b.AddEdge("Italy", "Carbonara");
  b.AddEdge("Italian cuisine", "Durum");
  // Italy's extra out-links dilute its contribution to Italian cuisine;
  // Bolognese's satellite pages route a little mass onward to Carbonara and
  // Durum. None of these pages link back toward Pasta (no new cycles).
  b.AddEdge("Italy", "Rome");
  b.AddEdge("Italy", "Vatican City");
  for (const char* dish : {"Carbonara", "Durum", "Ragù", "Tagliatelle",
                           "Lasagne", "Fettuccine", "Penne", "Gnocchi"}) {
    b.AddEdge("Bolognese sauce", dish);
  }
  // Italy is also a mid-size hub of the global layer.
  b.AddEdge("Italy", "United States");
  b.AddEdge("Footballer 1", "Italy");
  b.AddEdge("Footballer 2", "Italy");
  b.AddEdge("Article 1", "Italy");
  b.AddEdge("Article 2", "Italy");
}

}  // namespace

Result<Graph> EnwikiMini() {
  GraphBuilder b;
  AddGlobalHubs(b);
  AddQueenCluster(b);
  AddPastaCluster(b);
  return b.Build();
}

}  // namespace cyclerank
