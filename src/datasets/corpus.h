#ifndef CYCLERANK_DATASETS_CORPUS_H_
#define CYCLERANK_DATASETS_CORPUS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"

namespace cyclerank {

/// Embedded, hand-authored labeled corpora.
///
/// These miniature graphs reproduce — at ~10² scale — the *structure* behind
/// the paper's Tables I–III: globally central hub articles that dominate
/// PageRank and leak into every Personalized PageRank ranking, versus
/// topical clusters whose members form short cycles with the reference
/// node (which is what CycleRank rewards). Node labels are the actual
/// article / product names from the tables so the generated tables are
/// directly comparable with the paper. DESIGN.md §2 documents the
/// substitution in full.

/// English Wikipedia miniature (snapshot role: enwiki 2018-03-01).
/// Contains the "Freddie Mercury" / Queen cluster, the "Pasta" / Italian
/// cuisine cluster, and the global hubs from the paper's PageRank top-5
/// ("United States", "Animal", "Arthropod", "Association football",
/// "Insect"). Used by the Table I bench.
Result<Graph> EnwikiMini();

/// Amazon books co-purchase miniature. Contains the dystopian-classics
/// cluster around "1984", the Tolkien cluster around "The Fellowship of
/// the Ring", the Harry Potter bestseller hub, and the business/psychology
/// books from the paper's PageRank column ("Good to Great", "DSM-IV", …).
/// Used by the Table II bench.
Result<Graph> AmazonBooksMini();

/// Wikipedia language editions supported by the Table III experiment.
const std::vector<std::string>& FakeNewsLanguages();  // de en fr it nl pl

/// Miniature wikilink graph of one language edition around its "Fake news"
/// article. The local article name matches the edition ("Fake News" in de,
/// "Nepnieuws" in nl, …), and the cycle structure yields the paper's
/// per-language top-5 (with fewer than five cycle-mates in nl and pl, as in
/// the paper where the remaining cells are empty). Used by the Table III
/// bench.
Result<Graph> FakeNewsEdition(std::string_view language);

/// The title of the "Fake news" article in `language` (the reference node
/// of the Table III experiment).
Result<std::string> FakeNewsTitle(std::string_view language);

}  // namespace cyclerank

#endif  // CYCLERANK_DATASETS_CORPUS_H_
