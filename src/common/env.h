#ifndef CYCLERANK_COMMON_ENV_H_
#define CYCLERANK_COMMON_ENV_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace cyclerank {

/// The filesystem operation classes a fault schedule can match on.
enum class EnvOp {
  kAny = 0,      ///< matches every operation (fault schedules only)
  kCreateDirs,
  kListDir,
  kFileSize,
  kRead,         ///< `ReadFile` and `ReadFilePrefix`
  kWrite,        ///< `WriteFile` (open + write + fsync + close)
  kRename,
  kRemove,
};

std::string_view EnvOpToString(EnvOp op);

/// Virtual filesystem used by the storage stack (`SpillTier`) for *all*
/// of its I/O. Production code talks to the process-wide `Env::Default()`
/// (a `PosixEnv`); tests substitute a `FaultInjectingEnv` to make disk
/// failure a deterministic, reproducible input instead of an untestable
/// `if (!ok)` branch. `tools/lint.py` bans direct `<filesystem>` /
/// `<fstream>` use in `src/platform/` so the seam cannot erode.
///
/// The interface is whole-file-at-a-time on purpose: the spill tier writes
/// immutable blobs via tmp + rename, so streaming handles would only add
/// state to inject faults into. `WriteFile` performs open, write, fsync,
/// and close as one operation — a torn write injected there models a crash
/// mid-write exactly like a real power cut under POSIX semantics.
///
/// Implementations must be thread-safe: tiers call concurrently from
/// caller threads and their flush threads.
class Env {
 public:
  virtual ~Env() = default;

  /// Creates `dir` and any missing parents; OK when it already exists.
  virtual Status CreateDirs(const std::string& dir) = 0;

  /// The plain filenames (no directory prefix) of the regular files in
  /// `dir`, sorted — deterministic input for recovery scans.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// Size in bytes of the regular file at `path`.
  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// The whole content of `path`.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// The first `max_bytes` bytes of `path` (fewer when the file is
  /// shorter) — header probes without paying for the payload.
  virtual Result<std::string> ReadFilePrefix(const std::string& path,
                                             size_t max_bytes) = 0;

  /// Replaces `path` with `data`: open, write, fsync, close. Any failure
  /// leaves no guarantee about the file's content (it may be torn) —
  /// callers write to a temp name and `Rename` into place.
  virtual Status WriteFile(const std::string& path, std::string_view data) = 0;

  /// Atomically renames `from` to `to` (POSIX rename semantics).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  /// Deletes `path`; OK when it does not exist (idempotent).
  virtual Status Remove(const std::string& path) = 0;

  /// The process-wide production environment (a `PosixEnv`). Never null.
  static Env* Default();
};

/// `Env` backed by the real filesystem via `std::filesystem` / streams.
class PosixEnv : public Env {
 public:
  Status CreateDirs(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadFilePrefix(const std::string& path,
                                     size_t max_bytes) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
};

/// One scheduled fault. Matches a call when the operation matches `op`
/// (`kAny` matches all), the path contains `path_substring` (empty matches
/// all; `Rename` matches on either name), and it is the `nth` such
/// matching call (1-based) since the fault was armed.
struct EnvFault {
  enum class Kind {
    /// Fail the matching call once with `kIOError`, then disarm — the
    /// "EIO once" a retry must absorb.
    kTransient,
    /// Fail the matching call and every later matching call until
    /// `ClearFaults` — ENOSPC-style, what trips a circuit breaker.
    kPersistent,
    /// For `kWrite`: write a deterministic strict prefix of the data,
    /// then fail — the file is left torn on disk. For other ops this
    /// degrades to `kTransient`. Disarms after firing.
    kTornWrite,
    /// Abandon the process's view mid-operation: a matching `kWrite`
    /// leaves a torn prefix, any other matching op does nothing; the
    /// environment then enters the crashed state, where every call fails.
    /// Recovery is modeled by re-opening the directory through a fresh
    /// (or cleared) environment.
    kCrashPoint,
  };

  Kind kind = Kind::kTransient;
  EnvOp op = EnvOp::kAny;
  std::string path_substring;
  uint64_t nth = 1;
};

/// Counters exposed by `FaultInjectingEnv` for assertions and logs.
struct FaultInjectionStats {
  uint64_t ops = 0;       ///< calls that reached the injector
  uint64_t injected = 0;  ///< calls answered with an injected failure
};

/// A deterministic fault-injection decorator over another `Env`.
///
/// Two modes, composable:
///  - an explicit schedule (`AddFault`): fire a specific fault on the Nth
///    call matching an op/path pattern — for pinpoint scenarios ("the
///    rename after the second tmp write fails");
///  - a seeded random rate (`SetRandomFaultRate`): every mutating call
///    (write/rename/remove) fails transiently with probability `p`, drawn
///    from the constructor seed — for churn sweeps. The decision sequence
///    depends only on the seed and the call order, so a single-threaded
///    test replays bit-identically.
///
/// `ClearFaults` models the disk healing: it disarms every scheduled
/// fault, zeroes the random rate, and lifts the crashed state.
class FaultInjectingEnv final : public Env {
 public:
  /// Does not take ownership of `base`; `base` must outlive this.
  explicit FaultInjectingEnv(Env* base, uint64_t seed = 0);

  void AddFault(EnvFault fault);
  void SetRandomFaultRate(double probability);
  void ClearFaults();

  bool crashed() const;
  FaultInjectionStats stats() const;

  Status CreateDirs(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Result<std::string> ReadFilePrefix(const std::string& path,
                                     size_t max_bytes) override;
  Status WriteFile(const std::string& path, std::string_view data) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;

 private:
  struct Armed {
    EnvFault fault;
    uint64_t matches = 0;  ///< matching calls seen while armed
    bool spent = false;    ///< one-shot kinds that already fired
  };

  /// The injection decision for one call. `torn_prefix_bytes` is set (to a
  /// strict prefix length) when a torn write should hit the disk first.
  struct Decision {
    bool fail = false;
    bool crash = false;
    size_t torn_prefix_bytes = 0;
    std::string reason;
  };

  Decision Decide(EnvOp op, const std::string& path, size_t write_bytes)
      CYR_EXCLUDES(mu_);

  Status InjectedError(EnvOp op, const std::string& path,
                       const std::string& reason) const;

  Env* const base_;
  mutable Mutex mu_{lock_rank::kEnvMu, "FaultInjectingEnv::mu_"};
  std::vector<Armed> armed_ CYR_GUARDED_BY(mu_);
  Rng rng_ CYR_GUARDED_BY(mu_);
  double random_rate_ CYR_GUARDED_BY(mu_) = 0.0;
  bool crashed_ CYR_GUARDED_BY(mu_) = false;
  FaultInjectionStats stats_ CYR_GUARDED_BY(mu_);
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_ENV_H_
