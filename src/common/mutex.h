#ifndef CYCLERANK_COMMON_MUTEX_H_
#define CYCLERANK_COMMON_MUTEX_H_

/// Annotated mutex wrappers — the only place in `src/` where the raw
/// standard-library synchronization types may appear (`tools/lint.py`
/// enforces this).
///
/// `std::mutex` is not a Clang thread-safety *capability*, so guarded
/// fields and `*Locked()` helpers cannot be checked against it. `Mutex`
/// wraps it with the `CYR_CAPABILITY` attribute (making `CYR_GUARDED_BY`,
/// `CYR_REQUIRES`, `CYR_EXCLUDES` provable at compile time) and, in Debug
/// and sanitized builds, registers a lock *rank* with the runtime
/// deadlock checker (`common/lock_rank.h`) — out-of-order acquisition
/// aborts with both lock names. Release builds compile both layers out:
/// `Mutex` is exactly a `std::mutex`.
///
/// Conventions:
///  - every long-lived mutex is constructed with a rank and a name:
///      `mutable Mutex mu_{lock_rank::kGraphStoreMu, "GraphStore::mu_"};`
///  - lock with the RAII `MutexLock` (never `mu_.Lock()` manually in new
///    code); release early with `MutexLock::Unlock()` when a blocking call
///    must not be covered;
///  - wait on a `CondVar` while holding the `Mutex` via `MutexLock`; the
///    capability (and the rank) stays held across the wait, which is the
///    correct per-thread view of the ordering discipline.

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace cyclerank {

/// An annotated `std::mutex` with optional lock-rank registration.
class CYR_CAPABILITY("mutex") Mutex {
 public:
  /// An unranked mutex — exempt from order checking. Prefer the ranked
  /// constructor for any mutex that can nest with another.
  Mutex() = default;

  /// A ranked mutex: acquiring it while holding a lock of equal or higher
  /// rank aborts in checked builds (see common/lock_rank.h). `name` must
  /// outlive the mutex (string literals do).
  explicit Mutex([[maybe_unused]] int rank, [[maybe_unused]] const char* name)
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
      : rank_(rank), name_(name)
#endif
  {
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() CYR_ACQUIRE() {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
    // Before blocking: the *intent* to acquire out of order is the bug;
    // waiting for the lock first could deadlock before reporting it.
    lock_rank::NoteAcquire(rank_, name_, this);
#endif
    mu_.lock();
  }

  void Unlock() CYR_RELEASE() {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
    // Before the physical unlock: the instant `mu_.unlock()` returns, a
    // blocked destroyer (e.g. Drain → ~Scheduler) may free this object, so
    // no member may be read after it.
    lock_rank::NoteRelease(rank_, name_);
#endif
    mu_.unlock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
  const int rank_ = lock_rank::kUnranked;
  const char* const name_ = "unranked Mutex";
#endif
};

/// An annotated `std::shared_mutex` (reader/writer) with the same rank
/// integration. Not used by the platform yet; it exists so the first
/// reader/writer lock added lands annotated instead of raw.
class CYR_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex([[maybe_unused]] int rank,
                       [[maybe_unused]] const char* name)
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
      : rank_(rank), name_(name)
#endif
  {
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() CYR_ACQUIRE() {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
    lock_rank::NoteAcquire(rank_, name_, this);
#endif
    mu_.lock();
  }

  void Unlock() CYR_RELEASE() {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
    lock_rank::NoteRelease(rank_, name_);  // before unlock — see Mutex
#endif
    mu_.unlock();
  }

  void LockShared() CYR_ACQUIRE_SHARED() {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
    // Shared acquisition participates in the same order: a reader that
    // nests out of rank deadlocks against writers just the same.
    lock_rank::NoteAcquire(rank_, name_, this);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() CYR_RELEASE_SHARED() {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
    lock_rank::NoteRelease(rank_, name_);  // before unlock — see Mutex
#endif
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
  const int rank_ = lock_rank::kUnranked;
  const char* const name_ = "unranked SharedMutex";
#endif
};

/// RAII exclusive lock on a `Mutex` — the `std::lock_guard` of this
/// codebase, visible to the thread-safety analysis.
class CYR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CYR_ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }

  /// Releases the lock early — for scopes where a blocking call (file IO,
  /// a condition wait on another mutex) must not be covered. The
  /// destructor then does nothing.
  void Unlock() CYR_RELEASE() {
    mu_->Unlock();
    mu_ = nullptr;
  }

  ~MutexLock() CYR_RELEASE() {
    if (mu_ != nullptr) mu_->Unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// RAII shared (reader) lock on a `SharedMutex`.
class CYR_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu) CYR_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.LockShared();
  }
  ~SharedMutexLock() CYR_RELEASE() { mu_.UnlockShared(); }

  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII exclusive (writer) lock on a `SharedMutex`.
class CYR_SCOPED_CAPABILITY SharedMutexWriterLock {
 public:
  explicit SharedMutexWriterLock(SharedMutex& mu) CYR_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~SharedMutexWriterLock() CYR_RELEASE() { mu_.Unlock(); }

  SharedMutexWriterLock(const SharedMutexWriterLock&) = delete;
  SharedMutexWriterLock& operator=(const SharedMutexWriterLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable paired with `Mutex`. The caller holds the mutex (via
/// `MutexLock`) across `Wait`; the capability — and, in checked builds,
/// the rank — stays held for the duration of the wait, which matches the
/// per-thread ordering semantics (a blocked thread acquires nothing).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) CYR_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's MutexLock
  }

  template <typename Predicate>
  void Wait(Mutex& mu, Predicate pred) CYR_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native, std::move(pred));
    native.release();
  }

  /// Returns the predicate's value after the wait (false = timed out).
  template <typename Rep, typename Period, typename Predicate>
  bool WaitFor(Mutex& mu, const std::chrono::duration<Rep, Period>& timeout,
               Predicate pred) CYR_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const bool satisfied = cv_.wait_for(native, timeout, std::move(pred));
    native.release();
    return satisfied;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_MUTEX_H_
