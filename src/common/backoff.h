#ifndef CYCLERANK_COMMON_BACKOFF_H_
#define CYCLERANK_COMMON_BACKOFF_H_

#include <algorithm>
#include <cstdint>
#include <optional>

namespace cyclerank {

/// Deterministic bounded exponential backoff: `initial_ms`, doubled per
/// retry, capped at `cap_ms`, for at most `max_retries` retries. No jitter
/// on purpose — retry timing must replay bit-identically under the fault
/// harness, and the callers (one spill tier per directory) have no
/// thundering-herd problem for jitter to solve.
///
/// Usage:
/// ```
///   ExponentialBackoff backoff(policy);
///   Status s = op();
///   while (!s.ok()) {
///     std::optional<uint64_t> delay = backoff.NextDelayMs();
///     if (!delay.has_value()) break;  // retries exhausted
///     SleepMs(*delay);
///     s = op();
///   }
/// ```
class ExponentialBackoff {
 public:
  struct Policy {
    uint64_t initial_ms = 1;  ///< delay before the first retry (0 = none)
    uint64_t cap_ms = 100;    ///< upper bound on any single delay
    int max_retries = 3;      ///< retries after the initial attempt
  };

  explicit ExponentialBackoff(Policy policy) : policy_(policy) {}

  /// The delay to sleep before the next retry, or nullopt when the retry
  /// budget is spent. The sequence is initial, 2*initial, 4*initial, ...
  /// capped at `cap_ms`.
  std::optional<uint64_t> NextDelayMs() {
    if (retries_done_ >= policy_.max_retries) return std::nullopt;
    const uint64_t delay = std::min(
        policy_.cap_ms, policy_.initial_ms << std::min(retries_done_, 62));
    ++retries_done_;
    return delay;
  }

  /// Retries handed out so far.
  int retries_done() const { return retries_done_; }

 private:
  const Policy policy_;
  int retries_done_ = 0;
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_BACKOFF_H_
