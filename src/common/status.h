#ifndef CYCLERANK_COMMON_STATUS_H_
#define CYCLERANK_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace cyclerank {

/// Machine-readable category of a `Status`.
///
/// The set mirrors the error taxonomy used by storage-engine style C++
/// libraries (Arrow, RocksDB, LevelDB): a small closed enum so callers can
/// branch on the class of failure, with a free-form message for humans.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed a malformed or out-of-domain value.
  kNotFound = 2,          ///< A named entity (node, dataset, task) is missing.
  kAlreadyExists = 3,     ///< Unique-key insertion collided.
  kOutOfRange = 4,        ///< Index or parameter outside the valid interval.
  kFailedPrecondition = 5,///< Object is not in the required state.
  kIOError = 6,           ///< Filesystem / stream failure.
  kParseError = 7,        ///< Input text does not conform to the grammar.
  kUnimplemented = 8,     ///< Declared but not (yet) supported path.
  kCancelled = 9,         ///< Cooperative cancellation was observed.
  kInternal = 10,         ///< Invariant violation inside the library.
  kExpired = 11,          ///< Entity existed but was evicted by retention.
  kDeadlineExceeded = 12, ///< The caller's deadline passed before completion.
  kUnavailable = 13,      ///< Transiently overloaded/degraded; retry later.
};

/// Returns the canonical spelling of `code`, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// Cheap value type describing the outcome of an operation.
///
/// `Status` is returned by every fallible public API in this library instead
/// of throwing exceptions (see DESIGN.md §7). An OK status carries no
/// allocation; error statuses carry a code and a human-readable message.
///
/// Typical use:
/// ```
///   Status s = store.PutDataset(name, graph);
///   if (!s.ok()) return s;  // propagate
/// ```
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with an explicit code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per error class.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Expired(std::string msg) {
    return Status(StatusCode::kExpired, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code; `StatusCode::kOk` for success.
  StatusCode code() const { return code_; }

  /// Human-readable detail; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  /// Two statuses compare equal when code and message match.
  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller. Mirrors Arrow's
/// `ARROW_RETURN_NOT_OK`.
#define CYCLERANK_RETURN_NOT_OK(expr)                \
  do {                                               \
    ::cyclerank::Status _st = (expr);                \
    if (!_st.ok()) return _st;                       \
  } while (false)

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_STATUS_H_
