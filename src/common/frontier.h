#ifndef CYCLERANK_COMMON_FRONTIER_H_
#define CYCLERANK_COMMON_FRONTIER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/workspace.h"

namespace cyclerank {

/// Deterministic level-synchronous frontier engine on the process-wide
/// compute pool — the decomposition for traversal kernels that
/// `ParallelFor` alone cannot express (BFS waves, forward-push PPR), where
/// the work list of each step is produced by the previous one.
///
/// Each round:
///
///  1. The current frontier is partitioned into contiguous, weight-balanced
///     *canonical* chunks. Chunk boundaries are a pure function of the
///     frontier and the per-node weights (typically out-degrees), never of
///     the thread count, the pool scheduling — or the shard count (the cut
///     algorithm ignores `shard_bounds` entirely).
///  2. When `Options::shard_bounds` is set, each canonical chunk is further
///     refined into *execution sub-chunks*, cut wherever the owning shard
///     of consecutive frontier nodes changes. Every sub-chunk therefore
///     lies in exactly one shard — the `expand` callback receives its
///     shard id and can stream that shard's local CSR rows. Workers expand
///     sub-chunks concurrently (caller-runs `ParallelFor`, so running
///     inside a pool task cannot deadlock). Expansion emits next-frontier
///     *candidates* — deduplicated per sub-chunk through a per-worker
///     epoch-stamped sparse buffer (`workspace.h`) — and numeric *deltas*,
///     logged per sub-chunk in emission order as groups of targets sharing
///     one value. A group stores a *reference* to the caller's target
///     array (for a push that spreads one share over an adjacency row of
///     an immutable CSR graph, logging costs one 24-byte header — no
///     per-edge copy). Delta logs are deliberately append-only: a per-edge
///     dedup/accumulate pass was measured to cost more in random-access
///     traffic than the duplicates it saves, so accumulation belongs to
///     the (cache-friendly, serial) merge.
///  3. The calling thread merges in ascending *canonical* chunk order —
///     an ascending (shard-refined sub-chunk within ascending chunk)
///     merge. A canonical chunk split across sub-chunks has their
///     candidate and delta partials concatenated in sub-chunk order and
///     handed to the merge callbacks as **one** batch, exactly the batch
///     the unsharded run would have produced (sub-chunks partition the
///     chunk's node sequence contiguously, and expansion appends per node
///     in frontier order, so the concatenated delta log is byte-identical;
///     an unsplit chunk — always, when unsharded — passes its partials
///     through zero-copy). Merge batch granularity is therefore a pure
///     function of the frontier, *independent of the shard count*, so any
///     per-batch policy in the callbacks (forward-push's tier filing) and
///     any numeric state folded in the merge are **bit-identical at every
///     (threads × shards) combination, including 1×unsharded** (the serial
///     unsharded path runs the same chunking and merge).
///
/// One sharded-vs-unsharded asymmetry is deliberate: candidate dedup runs
/// per *sub*-chunk, so a canonical chunk split by sharding can hand the
/// merge a duplicate candidate that the unsharded chunk would have
/// collapsed. First occurrences keep their exact positions (dedup only
/// ever removes later repeats), so admission order — and thus the next
/// round's frontier — is unchanged; merge callbacks must already tolerate
/// cross-chunk duplicates, and cross-sub-chunk ones arrive the same way.
///
/// The next frontier is whatever the merge callbacks admit via `Next()` —
/// plus anything `round_done` seeds for admission-policy traversals — in
/// admission order, cross-chunk deduplicated. That makes round R+1's
/// chunking a pure function of the input too.
class FrontierEngine {
 public:
  struct Options {
    /// Worker budget on the global pool; 0 = every pool worker. The value
    /// affects latency only, never results.
    uint32_t num_threads = 1;

    /// Target Σ(1 + weight(u)) per chunk. Chunking depends only on this
    /// constant and the frontier, so changing it *does* change floating
    /// point accumulation order — it is a compile-time-style tuning knob,
    /// not a runtime one.
    uint64_t chunk_weight = kDefaultChunkWeight;

    /// Shard partition bounds (P+1 ascending node ids, `bounds[0] == 0`,
    /// `bounds[P] == num_nodes` — `ShardedGraph::bounds()`); must outlive
    /// the engine. Empty, or a single shard, disables refinement: `expand`
    /// then always receives shard 0 and the engine runs the exact
    /// unsharded code path. The bounds refine execution granularity only —
    /// merge batches never depend on them (see steps 2–3 above), so
    /// results are bit-identical at every shard count.
    std::span<const uint32_t> shard_bounds;
  };
  static constexpr uint64_t kDefaultChunkWeight = 2048;

  /// One run of logged deltas sharing a value. `targets` points into
  /// caller-owned memory (an adjacency row, typically) that must stay
  /// valid until the round's merge; a single-target delta is stored
  /// inline as `targets == nullptr`, with the node id in `count`.
  struct DeltaGroup {
    double value;
    const uint32_t* targets;  // nullptr = single inline target
    uint32_t count;           // target count, or the node id when inline
  };

  /// Iterates a chunk's delta log — `fn(target, value)` per logged delta,
  /// emission order. Inline so the loop fuses into the caller.
  template <typename Fn>
  static void ForEachDelta(std::span<const DeltaGroup> groups, const Fn& fn) {
    for (const DeltaGroup& group : groups) {
      if (group.targets == nullptr) {
        fn(group.count, group.value);
        continue;
      }
      for (uint32_t i = 0; i < group.count; ++i) {
        fn(group.targets[i], group.value);
      }
    }
  }

  /// Per-worker expansion scratch: the candidate-dedup stamp array is
  /// sized lazily on the worker's first `Candidate()` (delta-only
  /// traversals like forward push never pay its O(num_nodes) allocation)
  /// and reset per chunk in O(1) (epochs).
  struct Scratch {
    explicit Scratch(uint32_t graph_num_nodes) : num_nodes(graph_num_nodes) {}

    void BeginChunk() { candidate_seen.NewEpoch(); }

    void EnsureCandidateSet() {
      if (candidate_seen.size() != num_nodes) candidate_seen.Resize(num_nodes);
    }

    const uint32_t num_nodes;
    EpochSet candidate_seen;
  };

  /// Expansion-side sink. Valid only during the `expand` callback; methods
  /// touch the worker's own buffers, never shared engine state. Defined
  /// inline — `Delta` runs once per traversed edge.
  class Emitter {
   public:
    /// Proposes `v` for the next frontier (deduplicated within the chunk).
    void Candidate(uint32_t v) {
      scratch_->EnsureCandidateSet();
      if (scratch_->candidate_seen.Contains(v)) return;
      scratch_->candidate_seen.Add(v);
      candidates_->push_back(v);
    }

    /// Logs a delta of `x` for `v` — a sequential append; the merge
    /// callback sees every emission and owns the accumulation.
    void Delta(uint32_t v, double x) {
      delta_groups_->push_back({x, nullptr, v});
    }

    /// Logs a delta of `x` for every node of `targets` — one group header
    /// referencing the caller's array (which must stay valid until the
    /// round's merge): the zero-copy fast path for pushes that spread one
    /// share over an adjacency row of an immutable graph.
    void Deltas(std::span<const uint32_t> targets, double x) {
      if (targets.empty()) return;
      delta_groups_->push_back(
          {x, targets.data(), static_cast<uint32_t>(targets.size())});
    }

   private:
    friend class FrontierEngine;
    Emitter(Scratch* scratch, std::vector<uint32_t>* candidates,
            std::vector<DeltaGroup>* delta_groups)
        : scratch_(scratch),
          candidates_(candidates),
          delta_groups_(delta_groups) {}
    Scratch* scratch_;
    std::vector<uint32_t>* candidates_;
    std::vector<DeltaGroup>* delta_groups_;
  };

  /// Hooks of one traversal. `expand` is required; the rest are optional.
  /// The merge callbacks receive whole per-chunk batches (one call per
  /// non-empty chunk, not per entry) so their inner loops live — and
  /// inline — in the caller's translation unit.
  struct Callbacks {
    /// Expands every node of `chunk`, all owned by shard `shard` (always 0
    /// without `shard_bounds`). Runs concurrently for distinct chunks; may
    /// read shared traversal state and write per-frontier-node state (each
    /// node appears in exactly one chunk), but must route all cross-node
    /// effects through `out`.
    std::function<void(std::span<const uint32_t>, uint32_t shard, Emitter&)>
        expand;

    /// One chunk's candidates (chunk-deduplicated, emission order), merge
    /// order across chunks. Cross-chunk duplicates are the callback's job
    /// (typically a visited check before `Next()`).
    std::function<void(std::span<const uint32_t>)> candidates;

    /// One chunk's delta log (emission order, duplicates preserved), merge
    /// order across chunks. Iterate with `ForEachDelta`.
    std::function<void(std::span<const DeltaGroup>)> deltas;

    /// Invoked after round `round`'s merge (round 0 expands the seeds).
    /// Return false to stop before the next round — the hook for depth
    /// bounds and round-boundary work caps. May call `Seed` to admit
    /// nodes the merge deferred (admission-policy traversals).
    std::function<bool(uint32_t round)> round_done;

    /// Expansion weights for the chunk partition, indexed by node id
    /// (typically a degree table; must outlive `Run`). The partitioner
    /// reads one entry per frontier node per round, so a span beats a
    /// per-node `std::function` call. Empty = unit weights.
    std::span<const uint32_t> node_weights;
  };

  FrontierEngine(uint32_t num_nodes, const Options& options);
  ~FrontierEngine();

  /// Appends `v` to the upcoming round's frontier (deduplicated against
  /// admissions of the same round). Call before `Run`, or from
  /// `round_done` to implement a custom admission policy.
  void Seed(uint32_t v);

  /// `Seed` without the dedup probe, for admission policies that already
  /// guarantee uniqueness (e.g. a pending set). Mixing with `Seed`/`Next`
  /// in the same round forfeits the dedup guarantee for this node.
  void SeedUnchecked(uint32_t v) { frontier_.push_back(v); }

  /// Admits `v` into the next round's frontier (cross-chunk deduplicated).
  /// Only valid from within the merge callbacks (`candidates` / `deltas`).
  void Next(uint32_t v);

  /// Runs rounds until the frontier is empty or `round_done` stops it.
  void Run(const Callbacks& callbacks);

 private:
  struct ChunkPartial {
    std::vector<uint32_t> candidates;
    std::vector<DeltaGroup> delta_groups;
  };

  /// Cuts `frontier_` into weight-balanced canonical chunks
  /// (`chunk_offsets_`), then refines them at shard crossings into the
  /// execution sub-chunks (`sub_offsets_` / `sub_shard_` /
  /// `chunk_sub_begin_`). Without `shard_bounds` the refinement is the
  /// identity (one sub-chunk per chunk, shard 0).
  void PartitionFrontier(const Callbacks& callbacks);

  const uint32_t num_nodes_;
  const Options options_;
  const uint32_t resolved_threads_;

  std::vector<uint32_t> frontier_;
  std::vector<uint32_t> next_;
  EpochSet next_seen_;

  std::vector<size_t> chunk_offsets_;  // chunk c = [offsets[c], offsets[c+1])
  /// Shard refinement: sub-chunk s covers frontier indices
  /// [sub_offsets_[s], sub_offsets_[s+1]) and lies entirely in shard
  /// sub_shard_[s]; canonical chunk c owns sub-chunks
  /// [chunk_sub_begin_[c], chunk_sub_begin_[c+1]).
  std::vector<size_t> sub_offsets_;
  std::vector<uint32_t> sub_shard_;
  std::vector<size_t> chunk_sub_begin_;
  std::vector<ChunkPartial> partials_;  // one per sub-chunk
  /// Concatenation scratch for canonical chunks split across sub-chunks
  /// (never used on the unsharded path).
  std::vector<uint32_t> merge_candidates_;
  std::vector<DeltaGroup> merge_groups_;
  WorkspacePool<Scratch> scratch_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_FRONTIER_H_
