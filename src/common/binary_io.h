#ifndef CYCLERANK_COMMON_BINARY_IO_H_
#define CYCLERANK_COMMON_BINARY_IO_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace cyclerank {
namespace binio {

/// Little-endian binary encoding helpers shared by the compact codecs
/// (`Graph::Serialize`, the `TaskResult` codec in platform/result_io.h, the
/// spill-tier file format). Fixed-width little-endian fields make the byte
/// streams platform-independent and the round trips bit-exact; doubles
/// travel as their IEEE-754 bit patterns, never through text.

inline void AppendU32(std::string* out, uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out->append(bytes, 4);
}

inline void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffull));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

inline void AppendDouble(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

/// Length-prefixed (u64) byte string.
inline void AppendString(std::string* out, std::string_view s) {
  AppendU64(out, s.size());
  out->append(s.data(), s.size());
}

/// Length-prefixed element array; bulk-copied on little-endian hosts.
template <typename T>
inline void AppendArray(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_same_v<T, uint32_t> || std::is_same_v<T, uint64_t>);
  AppendU64(out, v.size());
  if (v.empty()) return;  // data() may be null on empty vectors
  if constexpr (std::endian::native == std::endian::little) {
    out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  } else {
    for (const T x : v) {
      if constexpr (sizeof(T) == 4) {
        AppendU32(out, x);
      } else {
        AppendU64(out, x);
      }
    }
  }
}

/// Sequential reader over an encoded buffer. Every `Read*` returns false
/// (and reads nothing) once the buffer is exhausted or a length prefix
/// exceeds the remaining bytes — a truncated or corrupt stream can never
/// over-allocate or read out of bounds.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  bool ReadU32(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + i]);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo)) return false;
    if (!ReadU32(&hi)) return false;
    *out = (static_cast<uint64_t>(hi) << 32) | lo;
    return true;
  }

  bool ReadDouble(double* out) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadString(std::string* out) {
    uint64_t len = 0;
    if (!ReadU64(&len)) return false;
    if (len > remaining()) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* out) {
    static_assert(std::is_same_v<T, uint32_t> || std::is_same_v<T, uint64_t>);
    uint64_t count = 0;
    if (!ReadU64(&count)) return false;
    if (count > remaining() / sizeof(T)) return false;
    out->resize(count);
    if (count == 0) return true;  // data() may be null on empty vectors
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data(), data_.data() + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    } else {
      for (uint64_t i = 0; i < count; ++i) {
        if constexpr (sizeof(T) == 4) {
          uint32_t v;
          ReadU32(&v);
          (*out)[i] = v;
        } else {
          uint64_t v;
          ReadU64(&v);
          (*out)[i] = v;
        }
      }
    }
    return true;
  }

  /// Skips `n` bytes; false when fewer remain.
  bool Skip(size_t n) {
    if (n > remaining()) return false;
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — the spill tier's payload checksum. Not
/// cryptographic; it guards against torn writes and bit rot, not attackers.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

}  // namespace binio
}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_BINARY_IO_H_
