#ifndef CYCLERANK_COMMON_BINARY_IO_H_
#define CYCLERANK_COMMON_BINARY_IO_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace cyclerank {
namespace binio {

/// Little-endian binary encoding helpers shared by the compact codecs
/// (`Graph::Serialize`, the `TaskResult` codec in platform/result_io.h, the
/// spill-tier file format). Fixed-width little-endian fields make the byte
/// streams platform-independent and the round trips bit-exact; doubles
/// travel as their IEEE-754 bit patterns, never through text.

inline void AppendU32(std::string* out, uint32_t v) {
  const char bytes[4] = {
      static_cast<char>(v & 0xff), static_cast<char>((v >> 8) & 0xff),
      static_cast<char>((v >> 16) & 0xff), static_cast<char>((v >> 24) & 0xff)};
  out->append(bytes, 4);
}

inline void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xffffffffull));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

inline void AppendDouble(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

/// Length-prefixed (u64) byte string.
inline void AppendString(std::string* out, std::string_view s) {
  AppendU64(out, s.size());
  out->append(s.data(), s.size());
}

/// LEB128-style varint (7 bits per byte, little-endian groups).
inline void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Length-prefixed element array; bulk-copied on little-endian hosts.
template <typename T>
inline void AppendArray(std::string* out, const std::vector<T>& v) {
  static_assert(std::is_same_v<T, uint32_t> || std::is_same_v<T, uint64_t>);
  AppendU64(out, v.size());
  if (v.empty()) return;  // data() may be null on empty vectors
  if constexpr (std::endian::native == std::endian::little) {
    out->append(reinterpret_cast<const char*>(v.data()), v.size() * sizeof(T));
  } else {
    for (const T x : v) {
      if constexpr (sizeof(T) == 4) {
        AppendU32(out, x);
      } else {
        AppendU64(out, x);
      }
    }
  }
}

/// Sequential reader over an encoded buffer. Every `Read*` returns false
/// (and reads nothing) once the buffer is exhausted or a length prefix
/// exceeds the remaining bytes — a truncated or corrupt stream can never
/// over-allocate or read out of bounds.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  bool ReadU32(uint32_t* out) {
    if (remaining() < 4) return false;
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | static_cast<unsigned char>(data_[pos_ + i]);
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  bool ReadU64(uint64_t* out) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo)) return false;
    if (!ReadU32(&hi)) return false;
    *out = (static_cast<uint64_t>(hi) << 32) | lo;
    return true;
  }

  bool ReadDouble(double* out) {
    uint64_t bits = 0;
    if (!ReadU64(&bits)) return false;
    *out = std::bit_cast<double>(bits);
    return true;
  }

  bool ReadString(std::string* out) {
    uint64_t len = 0;
    if (!ReadU64(&len)) return false;
    if (len > remaining()) return false;
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }

  bool ReadByte(uint8_t* out) {
    if (remaining() < 1) return false;
    *out = static_cast<unsigned char>(data_[pos_++]);
    return true;
  }

  /// LEB128-style varint; false on truncation or a value past 64 bits.
  bool ReadVarint(uint64_t* out) {
    uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t byte = 0;
      if (!ReadByte(&byte)) return false;
      v |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) {
        *out = v;
        return true;
      }
    }
    return false;
  }

  /// Appends the next `n` raw bytes to `*out`; false when fewer remain.
  bool ReadBytes(size_t n, std::string* out) {
    if (n > remaining()) return false;
    out->append(data_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  template <typename T>
  bool ReadArray(std::vector<T>* out) {
    static_assert(std::is_same_v<T, uint32_t> || std::is_same_v<T, uint64_t>);
    uint64_t count = 0;
    if (!ReadU64(&count)) return false;
    if (count > remaining() / sizeof(T)) return false;
    out->resize(count);
    if (count == 0) return true;  // data() may be null on empty vectors
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out->data(), data_.data() + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    } else {
      for (uint64_t i = 0; i < count; ++i) {
        if constexpr (sizeof(T) == 4) {
          uint32_t v;
          ReadU32(&v);
          (*out)[i] = v;
        } else {
          uint64_t v;
          ReadU64(&v);
          (*out)[i] = v;
        }
      }
    }
    return true;
  }

  /// Skips `n` bytes; false when fewer remain.
  bool Skip(size_t n) {
    if (n > remaining()) return false;
    pos_ += n;
    return true;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// FNV-1a 64-bit hash — the spill tier's payload checksum. Not
/// cryptographic; it guards against torn writes and bit rot, not attackers.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

// -------------------------------------------------------------------------
// Block compression — the spill tier's payload codec (PR 6).
//
// A small, dependency-free LZ77 scheme in the LZ4 spirit: greedy
// hash-table matching over a 64 KiB window, byte-oriented output, built
// for CSR arrays and score vectors (long runs of near-identical little-
// endian words). Incompressible input falls back to a stored block, so
// `DecompressBlock(CompressBlock(x)) == x` for every input and the
// encoded form is never much larger than the raw bytes.
//
// Block layout:
//   mode byte            0 = stored, 1 = LZ
//   varint raw_size
//   stored: raw bytes verbatim
//   LZ:     sequences of { varint literal_count, literal bytes,
//           varint match_len (0 terminates the stream; otherwise >= 4),
//           u16-LE match offset in [1, bytes_decoded_so_far] }
//
// The decoder bounds-checks every length and offset against the declared
// raw size and the remaining input, so a corrupt block yields `false`,
// never an overrun or an allocation bomb.
// -------------------------------------------------------------------------

namespace compress_internal {
inline uint32_t Load32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, 4);
  return v;
}
}  // namespace compress_internal

inline constexpr char kBlockStored = 0;
inline constexpr char kBlockLz = 1;

inline std::string CompressBlock(std::string_view raw) {
  std::string stored;
  stored.reserve(raw.size() + 10);
  stored.push_back(kBlockStored);
  AppendVarint(&stored, raw.size());
  stored.append(raw.data(), raw.size());
  // Too small for matches to pay off, or too large for the 32-bit match
  // positions — either way the stored block is the right answer.
  if (raw.size() < 32 || raw.size() > 0xffffffffu) return stored;

  std::string lz;
  lz.reserve(raw.size() / 2 + 16);
  lz.push_back(kBlockLz);
  AppendVarint(&lz, raw.size());
  constexpr size_t kHashBits = 15;
  std::vector<uint32_t> table(size_t{1} << kHashBits, 0xffffffffu);
  const char* base = raw.data();
  const size_t n = raw.size();
  // Stop matching with a 12-byte tail margin: room for the 4-byte load
  // plus a final literal run, mirroring the classic LZ4 bound.
  const size_t limit = n - 12;
  size_t pos = 0;
  size_t anchor = 0;
  while (pos < limit) {
    const uint32_t v = compress_internal::Load32(base + pos);
    const uint32_t h = (v * 2654435761u) >> (32 - kHashBits);
    const uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(pos);
    if (cand == 0xffffffffu || pos - cand > 0xffff ||
        compress_internal::Load32(base + cand) != v) {
      ++pos;
      continue;
    }
    size_t match_len = 4;
    while (pos + match_len < n && base[cand + match_len] == base[pos + match_len]) {
      ++match_len;
    }
    AppendVarint(&lz, pos - anchor);
    lz.append(base + anchor, pos - anchor);
    AppendVarint(&lz, match_len);
    const uint32_t offset = static_cast<uint32_t>(pos - cand);
    lz.push_back(static_cast<char>(offset & 0xff));
    lz.push_back(static_cast<char>(offset >> 8));
    pos += match_len;
    anchor = pos;
    if (lz.size() + 16 >= stored.size()) return stored;  // not compressing
  }
  AppendVarint(&lz, n - anchor);
  lz.append(base + anchor, n - anchor);
  AppendVarint(&lz, 0);  // end of stream
  return lz.size() < stored.size() ? lz : stored;
}

/// Decodes a `CompressBlock` buffer into `*out` (overwritten). Returns
/// false on any truncation, bad length, or bad offset.
inline bool DecompressBlock(std::string_view block, std::string* out) {
  out->clear();
  Reader reader(block);
  uint8_t mode = 0;
  uint64_t raw_size = 0;
  if (!reader.ReadByte(&mode) || !reader.ReadVarint(&raw_size)) return false;
  if (mode == kBlockStored) {
    if (reader.remaining() != raw_size) return false;
    return reader.ReadBytes(raw_size, out);
  }
  if (mode != kBlockLz) return false;
  // Reserve conservatively: a corrupt header may declare an absurd size,
  // and every copy below is bounded by it before executing anyway.
  out->reserve(static_cast<size_t>(
      std::min<uint64_t>(raw_size, 1ull << 26)));
  for (;;) {
    uint64_t literals = 0;
    if (!reader.ReadVarint(&literals)) return false;
    if (literals > reader.remaining() || out->size() + literals > raw_size) {
      return false;
    }
    if (!reader.ReadBytes(literals, out)) return false;
    uint64_t match_len = 0;
    if (!reader.ReadVarint(&match_len)) return false;
    if (match_len == 0) break;
    if (match_len < 4 || out->size() + match_len > raw_size) return false;
    uint8_t lo = 0, hi = 0;
    if (!reader.ReadByte(&lo) || !reader.ReadByte(&hi)) return false;
    const size_t offset = static_cast<size_t>(lo) | (static_cast<size_t>(hi) << 8);
    if (offset == 0 || offset > out->size()) return false;
    // Byte-wise on purpose: matches may overlap their own output (RLE).
    size_t src = out->size() - offset;
    for (uint64_t i = 0; i < match_len; ++i) {
      out->push_back((*out)[src++]);
    }
  }
  return out->size() == raw_size && reader.AtEnd();
}

}  // namespace binio
}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_BINARY_IO_H_
