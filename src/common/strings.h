#ifndef CYCLERANK_COMMON_STRINGS_H_
#define CYCLERANK_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace cyclerank {

/// Text helpers shared by the graph readers, the parameter parser and the
/// table renderers. All functions are pure and allocation-conscious
/// (`string_view` in, owning strings out only where required).

/// Removes ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty fields ("a,,b" → {"a","","b"}).
std::vector<std::string_view> SplitString(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// ASCII lower-casing (locale independent).
std::string AsciiToLower(std::string_view s);

/// True iff `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strict integer / floating-point parsers: the whole trimmed token must be
/// consumed, otherwise a ParseError is returned.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Formats `value` with `precision` significant digits (for tables).
std::string FormatDouble(double value, int precision = 6);

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_STRINGS_H_
