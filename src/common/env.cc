#include "common/env.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <utility>

#include <fcntl.h>
#include <unistd.h>

namespace fs = std::filesystem;

namespace cyclerank {

std::string_view EnvOpToString(EnvOp op) {
  switch (op) {
    case EnvOp::kAny:
      return "any";
    case EnvOp::kCreateDirs:
      return "create-dirs";
    case EnvOp::kListDir:
      return "list-dir";
    case EnvOp::kFileSize:
      return "file-size";
    case EnvOp::kRead:
      return "read";
    case EnvOp::kWrite:
      return "write";
    case EnvOp::kRename:
      return "rename";
    case EnvOp::kRemove:
      return "remove";
  }
  return "unknown";
}

// ---------------------------------------------------------------- PosixEnv --

Status PosixEnv::CreateDirs(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + ec.message());
  }
  return Status::OK();
}

Result<std::vector<std::string>> PosixEnv::ListDir(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) {
    return Status::IOError("cannot list directory '" + dir +
                           "': " + ec.message());
  }
  for (const auto& entry : it) {
    std::error_code type_ec;
    if (entry.is_regular_file(type_ec) && !type_ec) {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<uint64_t> PosixEnv::FileSize(const std::string& path) {
  std::error_code ec;
  const uint64_t bytes = fs::file_size(path, ec);
  if (ec) {
    return Status::IOError("cannot stat '" + path + "': " + ec.message());
  }
  return bytes;
}

Result<std::string> PosixEnv::ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IOError("read of '" + path + "' failed");
  }
  return data;
}

Result<std::string> PosixEnv::ReadFilePrefix(const std::string& path,
                                             size_t max_bytes) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string data(max_bytes, '\0');
  in.read(data.data(), static_cast<std::streamsize>(max_bytes));
  if (in.bad()) {
    return Status::IOError("read of '" + path + "' failed");
  }
  data.resize(static_cast<size_t>(in.gcount()));
  return data;
}

Status PosixEnv::WriteFile(const std::string& path, std::string_view data) {
  // Raw POSIX so the durability point (fsync before close) is explicit —
  // iostreams cannot express it. This is the one sanctioned place for it.
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path + "' for writing");
  }
  size_t written = 0;
  while (written < data.size()) {
    const ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      ::close(fd);
      return Status::IOError("write to '" + path + "' failed");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("fsync of '" + path + "' failed");
  }
  if (::close(fd) != 0) {
    return Status::IOError("close of '" + path + "' failed");
  }
  return Status::OK();
}

Status PosixEnv::Rename(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("cannot rename '" + from + "' to '" + to +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status PosixEnv::Remove(const std::string& path) {
  std::error_code ec;
  fs::remove(path, ec);  // false-without-error when missing: idempotent OK
  if (ec) {
    return Status::IOError("cannot remove '" + path + "': " + ec.message());
  }
  return Status::OK();
}

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked: outlives static dtors
  return env;
}

// ------------------------------------------------------ FaultInjectingEnv --

FaultInjectingEnv::FaultInjectingEnv(Env* base, uint64_t seed)
    : base_(base), rng_(seed) {}

void FaultInjectingEnv::AddFault(EnvFault fault) {
  MutexLock lock(mu_);
  armed_.push_back(Armed{std::move(fault), 0, false});
}

void FaultInjectingEnv::SetRandomFaultRate(double probability) {
  MutexLock lock(mu_);
  random_rate_ = probability;
}

void FaultInjectingEnv::ClearFaults() {
  MutexLock lock(mu_);
  armed_.clear();
  random_rate_ = 0.0;
  crashed_ = false;
}

bool FaultInjectingEnv::crashed() const {
  MutexLock lock(mu_);
  return crashed_;
}

FaultInjectionStats FaultInjectingEnv::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

FaultInjectingEnv::Decision FaultInjectingEnv::Decide(
    EnvOp op, const std::string& path, size_t write_bytes) {
  MutexLock lock(mu_);
  ++stats_.ops;
  Decision decision;
  if (crashed_) {
    ++stats_.injected;
    decision.fail = true;
    decision.reason = "environment is in the crashed state";
    return decision;
  }
  // Every armed fault that matches this call counts it, so two faults
  // watching the same operation keep independent Nth-call positions; the
  // first one whose turn has come fires.
  for (Armed& armed : armed_) {
    if (armed.spent) continue;
    const EnvFault& fault = armed.fault;
    if (fault.op != EnvOp::kAny && fault.op != op) continue;
    if (!fault.path_substring.empty() &&
        path.find(fault.path_substring) == std::string::npos) {
      continue;
    }
    ++armed.matches;
    if (decision.fail) continue;  // an earlier fault already fired
    switch (fault.kind) {
      case EnvFault::Kind::kTransient:
        if (armed.matches == fault.nth) {
          armed.spent = true;
          decision.fail = true;
          decision.reason = "transient fault";
        }
        break;
      case EnvFault::Kind::kPersistent:
        if (armed.matches >= fault.nth) {
          decision.fail = true;
          decision.reason = "persistent fault";
        }
        break;
      case EnvFault::Kind::kTornWrite:
        if (armed.matches == fault.nth) {
          armed.spent = true;
          decision.fail = true;
          decision.reason = "torn write";
          if (op == EnvOp::kWrite) {
            decision.torn_prefix_bytes = write_bytes / 2;
          }
        }
        break;
      case EnvFault::Kind::kCrashPoint:
        if (armed.matches == fault.nth) {
          armed.spent = true;
          decision.fail = true;
          decision.crash = true;
          decision.reason = "crash point";
          if (op == EnvOp::kWrite) {
            decision.torn_prefix_bytes = write_bytes / 2;
          }
        }
        break;
    }
  }
  if (!decision.fail && random_rate_ > 0.0 &&
      (op == EnvOp::kWrite || op == EnvOp::kRename || op == EnvOp::kRemove)) {
    if (rng_.NextDouble() < random_rate_) {
      decision.fail = true;
      decision.reason = "seeded random fault";
    }
  }
  if (decision.fail) {
    ++stats_.injected;
    if (decision.crash) crashed_ = true;
  }
  return decision;
}

Status FaultInjectingEnv::InjectedError(EnvOp op, const std::string& path,
                                        const std::string& reason) const {
  return Status::IOError("injected fault (" + reason + ") on " +
                         std::string(EnvOpToString(op)) + " '" + path + "'");
}

Status FaultInjectingEnv::CreateDirs(const std::string& dir) {
  const Decision d = Decide(EnvOp::kCreateDirs, dir, 0);
  if (d.fail) return InjectedError(EnvOp::kCreateDirs, dir, d.reason);
  return base_->CreateDirs(dir);
}

Result<std::vector<std::string>> FaultInjectingEnv::ListDir(
    const std::string& dir) {
  const Decision d = Decide(EnvOp::kListDir, dir, 0);
  if (d.fail) return InjectedError(EnvOp::kListDir, dir, d.reason);
  return base_->ListDir(dir);
}

Result<uint64_t> FaultInjectingEnv::FileSize(const std::string& path) {
  const Decision d = Decide(EnvOp::kFileSize, path, 0);
  if (d.fail) return InjectedError(EnvOp::kFileSize, path, d.reason);
  return base_->FileSize(path);
}

Result<std::string> FaultInjectingEnv::ReadFile(const std::string& path) {
  const Decision d = Decide(EnvOp::kRead, path, 0);
  if (d.fail) return InjectedError(EnvOp::kRead, path, d.reason);
  return base_->ReadFile(path);
}

Result<std::string> FaultInjectingEnv::ReadFilePrefix(const std::string& path,
                                                      size_t max_bytes) {
  const Decision d = Decide(EnvOp::kRead, path, 0);
  if (d.fail) return InjectedError(EnvOp::kRead, path, d.reason);
  return base_->ReadFilePrefix(path, max_bytes);
}

Status FaultInjectingEnv::WriteFile(const std::string& path,
                                    std::string_view data) {
  const Decision d = Decide(EnvOp::kWrite, path, data.size());
  if (d.fail) {
    if (d.torn_prefix_bytes != 0) {
      // The torn prefix reaches the real disk — exactly what a crash
      // mid-write leaves behind for the next recovery scan to survive.
      (void)base_->WriteFile(path, data.substr(0, d.torn_prefix_bytes));
    }
    return InjectedError(EnvOp::kWrite, path, d.reason);
  }
  return base_->WriteFile(path, data);
}

Status FaultInjectingEnv::Rename(const std::string& from,
                                 const std::string& to) {
  // Match the substring against either name: schedules usually target the
  // ".tmp" source or the final destination.
  const Decision d = Decide(EnvOp::kRename, from + "\n" + to, 0);
  if (d.fail) return InjectedError(EnvOp::kRename, from, d.reason);
  return base_->Rename(from, to);
}

Status FaultInjectingEnv::Remove(const std::string& path) {
  const Decision d = Decide(EnvOp::kRemove, path, 0);
  if (d.fail) return InjectedError(EnvOp::kRemove, path, d.reason);
  return base_->Remove(path);
}

}  // namespace cyclerank
