#ifndef CYCLERANK_COMMON_WORKSPACE_H_
#define CYCLERANK_COMMON_WORKSPACE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cyclerank {

/// A set over `[0, size)` with O(1) clear, for per-branch / per-query
/// scratch state that is reset far more often than it is populated.
///
/// Membership is an epoch stamp per element: `Add` stamps the current
/// epoch, `NewEpoch` invalidates every stamp at once by bumping the epoch
/// counter instead of touching the array. The rare counter wrap is handled
/// by one full clear.
class EpochSet {
 public:
  EpochSet() = default;
  explicit EpochSet(size_t size) : stamps_(size, 0) {}

  /// Grows/shrinks to `size` and leaves the set empty.
  void Resize(size_t size) {
    stamps_.assign(size, 0);
    epoch_ = 1;
  }

  size_t size() const { return stamps_.size(); }

  /// Empties the set in O(1).
  void NewEpoch() {
    if (++epoch_ == 0) {  // wrapped: stale stamps would alias epoch 0
      stamps_.assign(stamps_.size(), 0);
      epoch_ = 1;
    }
  }

  bool Contains(size_t i) const { return stamps_[i] == epoch_; }
  void Add(size_t i) { stamps_[i] = epoch_; }
  void Remove(size_t i) { stamps_[i] = 0; }  // epoch_ is never 0

 private:
  std::vector<uint32_t> stamps_;
  uint32_t epoch_ = 1;
};

/// Pool of reusable per-thread scratch workspaces.
///
/// `ParallelFor` worker threads acquire a lease per chunk; because a lease
/// is returned to the free list on release, a thread processing many
/// chunks keeps getting the same warmed-up workspace back instead of
/// allocating fresh scratch per chunk. At most one workspace exists per
/// concurrently-active worker. `ForEach` visits every workspace ever
/// created — the merge step of deterministic reductions; callers must
/// ensure no leases are outstanding by then.
template <typename T>
class WorkspacePool {
 public:
  explicit WorkspacePool(std::function<std::unique_ptr<T>()> factory)
      : factory_(std::move(factory)) {}

  class Lease {
   public:
    Lease(WorkspacePool* pool, T* workspace)
        : pool_(pool), workspace_(workspace) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->Release(workspace_);
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept
        : pool_(std::exchange(other.pool_, nullptr)),
          workspace_(std::exchange(other.workspace_, nullptr)) {}
    Lease& operator=(Lease&&) = delete;

    T* get() const { return workspace_; }
    T& operator*() const { return *workspace_; }
    T* operator->() const { return workspace_; }

   private:
    WorkspacePool* pool_;
    T* workspace_;
  };

  /// Hands out a free workspace, creating one when none is available.
  Lease Acquire() CYR_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      if (!free_.empty()) {
        T* workspace = free_.back();
        free_.pop_back();
        return Lease(this, workspace);
      }
    }
    // Construct outside the lock: factories can be expensive (O(n) scratch).
    std::unique_ptr<T> fresh = factory_();
    T* raw = fresh.get();
    MutexLock lock(mu_);
    all_.push_back(std::move(fresh));
    return Lease(this, raw);
  }

  /// Visits every workspace created so far (merge/teardown step). `fn`
  /// runs under the pool lock and must not touch the pool re-entrantly.
  template <typename Fn>
  void ForEach(Fn&& fn) CYR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    for (const std::unique_ptr<T>& workspace : all_) fn(*workspace);
  }

 private:
  void Release(T* workspace) CYR_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    free_.push_back(workspace);
  }

  std::function<std::unique_ptr<T>()> factory_;
  Mutex mu_{lock_rank::kWorkspacePoolMu, "WorkspacePool::mu_"};
  std::vector<std::unique_ptr<T>> all_ CYR_GUARDED_BY(mu_);
  std::vector<T*> free_ CYR_GUARDED_BY(mu_);
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_WORKSPACE_H_
