#ifndef CYCLERANK_COMMON_PARALLEL_FOR_H_
#define CYCLERANK_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/thread_pool.h"

namespace cyclerank {

/// The process-wide compute pool shared by query-level parallelism (the
/// platform `Scheduler`) and kernel-level parallelism (`ParallelFor` inside
/// the ranking algorithms). Sharing one substrate keeps the number of
/// runnable threads bounded by the hardware instead of multiplying the two
/// levels together (oversubscription).
///
/// Sized from `CYCLERANK_NUM_THREADS` when set, otherwise from
/// `std::thread::hardware_concurrency()`. Created on first use; alive for
/// the rest of the process (it is never shut down — helper tasks are short
/// and non-blocking by construction).
ThreadPool* GlobalComputePool();

/// Resolves a user-facing thread-count knob: 0 means "all workers of the
/// global pool", anything else is taken literally (minimum 1).
uint32_t ResolveThreadCount(uint32_t requested);

/// Runs `fn(chunk_index, begin, end)` over the fixed-grain chunking of
/// `[0, total)` — chunk c covers `[c*grain, min((c+1)*grain, total))`.
///
/// Chunk boundaries depend only on `total` and `grain`, never on
/// `max_threads` or the pool size, so per-chunk results (and any reduction
/// over them done in chunk order) are bit-identical at every thread count.
///
/// Scheduling is caller-runs: up to `max_threads - 1` helper tasks are
/// posted to `pool`, and the calling thread claims chunks alongside them
/// from a shared atomic cursor. The caller always makes progress even when
/// the pool is saturated — helpers that start after all chunks are claimed
/// simply exit — so calling this from *inside* a pool task (query-level
/// parallelism) cannot deadlock. Returns once every chunk has finished.
///
/// `fn` must be safe to invoke concurrently for distinct chunks.
void ParallelFor(ThreadPool* pool, size_t total, size_t grain,
                 uint32_t max_threads,
                 const std::function<void(size_t, size_t, size_t)>& fn);

/// Number of chunks `ParallelFor` produces for (`total`, `grain`); use it
/// to size per-chunk result buffers.
inline size_t NumChunks(size_t total, size_t grain) {
  if (grain == 0) grain = 1;
  return (total + grain - 1) / grain;
}

/// Maps every `ParallelFor` chunk of (`total`, `grain`) to the shard that
/// fully contains it, or -1 for a chunk straddling a shard boundary.
/// `bounds` is a shard partition as produced by `GraphPartitioner` — P+1
/// ascending values spanning `[0, total)` (`ShardedGraph::bounds()`).
///
/// This is how dense (index-space) kernels become shard-aware without
/// touching their chunking: the chunk grid stays exactly as before — so
/// per-chunk reductions keep their boundaries and results stay
/// bit-identical — and a chunk mapped to shard s may stream shard s's
/// local rows, falling back to the monolithic arrays for the at-most-P-1
/// straddling chunks. O(num_chunks · log P).
std::vector<int32_t> BuildChunkShardMap(std::span<const uint32_t> bounds,
                                        size_t total, size_t grain);

/// Deterministic pairwise (tree) reduction of per-chunk partials. The
/// combination order is a pure function of `values.size()`, so the result
/// is bit-identical at every thread count — and the balanced tree loses
/// less precision than a left fold on long inputs.
double DeterministicSum(std::span<const double> values);

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_PARALLEL_FOR_H_
