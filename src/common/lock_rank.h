#ifndef CYCLERANK_COMMON_LOCK_RANK_H_
#define CYCLERANK_COMMON_LOCK_RANK_H_

/// Runtime lock-rank (lock-ordering) deadlock checker.
///
/// Every `Mutex` (common/mutex.h) may register a *rank* and a name at
/// construction. In checked builds a thread-local stack records the ranks a
/// thread currently holds, and acquiring a mutex whose rank is not
/// *strictly greater* than every held rank aborts the process, printing
/// both lock names — the canonical cross-layer deadlock (two threads
/// nesting two locks in opposite orders) is caught on the *first* wrong
/// nesting, on any single thread, without needing the deadly interleaving.
/// This covers what Clang's static `-Wthread-safety` analysis cannot see:
/// lock order across call chains, condition-variable waits, and the
/// write-behind backpressure paths.
///
/// Checked builds: Debug and sanitized configurations (the CMake option
/// `CYCLERANK_LOCK_RANK_CHECKS`, AUTO by default). Release builds compile
/// the bookkeeping out entirely — `Mutex` is exactly a `std::mutex`, zero
/// overhead.
///
/// ## The platform's lock hierarchy (low rank = acquired first / outermost)
///
/// The ranks below encode every real nesting in the platform; see
/// src/platform/README.md ("Lock hierarchy") for the prose version.
/// Outer layers (gateway → scheduler → datastore facade) have low ranks;
/// the stores come next; the spill tier's two locks (write-behind buffer
/// before disk index — the documented fixed order) sit below those because
/// every store calls into its spill tier while holding its own lock; the
/// thread pool, workspace pool, and logging are leaf-most — they are
/// acquired from under almost everything (the scheduler posts to the pool
/// while holding `mu_`; warnings are logged under store locks).
///
/// Unranked mutexes (`kUnranked`) do not participate — they may nest
/// anywhere. Rank a mutex as soon as it acquires a second lock underneath.

#include <cstdint>

namespace cyclerank {
namespace lock_rank {

/// Exempt from order checking (the default for a plain `Mutex()`).
inline constexpr int kUnranked = 0;

// ---- Platform hierarchy (see the header comment) -------------------------

/// `NetServer` lifecycle state (src/net/server.cc) — Start/Shutdown
/// bookkeeping. Ranked above even the gateway: the server calls the whole
/// gateway surface on behalf of remote clients. (The server's cross-thread
/// mailbox mutex is deliberately *unranked*: terminal-state listeners may
/// fire from under `Scheduler::mu_`, so the mailbox must be free to nest
/// under any rank; its critical sections only append to a vector and write
/// one pipe byte.)
inline constexpr int kNetServerMu = 50;

/// `ApiGateway::mu_` — comparison bookkeeping; wraps nothing today, ranked
/// outermost of the in-process platform because the gateway is the topmost
/// layer (only the network server sits above it).
inline constexpr int kGatewayMu = 100;

/// `Scheduler::mu_` — dispatch/single-flight state. Holds while probing
/// the result cache, posting to the pool, and (on the degenerate
/// pool-refused shutdown path) while running the whole executor stack.
inline constexpr int kSchedulerMu = 200;

/// `Datastore::put_mu_` — orders result-write + log-erase pairs; holds
/// while calling the result store, log store, and result spill tier.
inline constexpr int kDatastorePutMu = 300;

/// The individually-locked stores. They never nest with each other (the
/// facade's `put_mu_` is what orders multi-store operations), so their
/// relative order is free; each calls into its spill tier and the logger.
inline constexpr int kGraphStoreMu = 400;
inline constexpr int kResultStoreMu = 410;
inline constexpr int kResultCacheMu = 420;
inline constexpr int kLogStoreMu = 430;
inline constexpr int kCatalogMu = 440;
inline constexpr int kRegistryMu = 450;
inline constexpr int kStatusServiceMu = 460;

/// `SpillTier::buffer_mu_` then `SpillTier::mu_` — the tier's documented
/// fixed internal order (write-behind buffer before disk index). Below the
/// stores: eviction/demotion calls `SpillTier::Put` under the owning
/// store's lock. Tiers never nest with each other (the facade flushes them
/// sequentially), so all tiers share these two ranks.
inline constexpr int kSpillBufferMu = 500;
inline constexpr int kSpillIndexMu = 510;

/// `SpillTier::breaker_mu_` — circuit-breaker state and retry counters.
/// Taken briefly around every guarded disk operation, which may itself run
/// under `mu_` (sync Put, Get) — so it must rank below the index lock; the
/// Env call happens with it released.
inline constexpr int kSpillBreakerMu = 520;

/// Leaf-most concurrency plumbing: the shared compute pool (posted to
/// under the scheduler lock), per-kernel workspace pools and `ParallelFor`
/// completion latches (acquired from inside pool tasks), and finally the
/// logging sink mutex — log lines are emitted under store and spill locks,
/// so logging must nest under everything.
inline constexpr int kThreadPoolMu = 600;
inline constexpr int kWorkspacePoolMu = 610;
inline constexpr int kParallelForMu = 620;

/// `FaultInjectingEnv::mu_` — fault-schedule bookkeeping. Every Env call
/// happens from under spill-tier (and sometimes store) locks, so the Env's
/// own lock must nest below them; it wraps nothing but the logger.
inline constexpr int kEnvMu = 650;

inline constexpr int kLoggingMu = 700;

/// True when this build carries the runtime checks (Debug / sanitizers).
/// Tests use it to skip the death tests in Release.
bool ChecksEnabled();

#if defined(CYCLERANK_LOCK_RANK_CHECKS)

/// Records `rank` as held by this thread; aborts with both lock names (and
/// instance addresses, to tell two same-named mutexes apart) when `rank`
/// is not strictly greater than every rank already held. Called by
/// `Mutex::Lock` before blocking on the underlying mutex — the *intent* to
/// acquire is what deadlocks, so the check must not wait for success.
/// `kUnranked` is a no-op. `addr` identifies the mutex instance in the
/// diagnostic only; it does not participate in the ordering check.
void NoteAcquire(int rank, const char* name, const void* addr);

/// Removes `rank` from this thread's held set. `kUnranked` is a no-op.
void NoteRelease(int rank, const char* name);

#endif  // CYCLERANK_LOCK_RANK_CHECKS

/// Aborts (in checked builds) when this thread still holds a ranked lock,
/// printing the held names. Placed at ownership boundaries where a held
/// lock is a structural bug — e.g. a thread-pool task returning to the
/// worker loop. A no-op in unchecked builds.
void AssertNoneHeld(const char* where);

}  // namespace lock_rank
}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_LOCK_RANK_H_
