#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace cyclerank {
namespace {

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

}  // namespace

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && IsAsciiSpace(s[b])) ++b;
  size_t e = s.size();
  while (e > b && IsAsciiSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> SplitString(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsAsciiSpace(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsAsciiSpace(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::ParseError("empty integer token");
  int64_t value = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("invalid integer: '" + std::string(s) + "'");
  }
  return value;
}

Result<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::ParseError("empty floating-point token");
  double value = 0.0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc() || ptr != last) {
    return Status::ParseError("invalid double: '" + std::string(s) + "'");
  }
  return value;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  return buf;
}

}  // namespace cyclerank
