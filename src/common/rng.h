#ifndef CYCLERANK_COMMON_RNG_H_
#define CYCLERANK_COMMON_RNG_H_

#include <cstdint>
#include <limits>

namespace cyclerank {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Used by the dataset generators and the Monte-Carlo PPR estimator. We ship
/// our own generator rather than `std::mt19937_64` so that generated
/// datasets are bit-identical across standard library implementations —
/// a requirement for reproducible experiment tables.
///
/// Satisfies the `UniformRandomBitGenerator` concept, so it can be plugged
/// into `<algorithm>` facilities such as `std::shuffle`.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the state deterministically from `seed` via SplitMix64, which
  /// guarantees a non-zero, well-mixed initial state for any input.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64-bit draw.
  uint64_t operator()() { return Next(); }
  uint64_t Next();

  /// Uniform integer in `[0, bound)`. `bound` must be positive. Uses
  /// Lemire's multiply-shift rejection method (unbiased).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in `[lo, hi]` inclusive. Requires `lo <= hi`.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in `[0, 1)` with 53 bits of entropy.
  double NextDouble();

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBool(double p = 0.5);

  /// Standard normal deviate (Marsaglia polar method).
  double NextGaussian();

  /// Jump: advances the state by 2^128 draws, producing a stream that does
  /// not overlap the current one. Used to derive per-thread generators.
  void Jump();

 private:
  uint64_t s_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_RNG_H_
