#include "common/uuid.h"

#include <cstdio>
#include <random>

namespace cyclerank {
namespace {

uint64_t EntropySeed() {
  std::random_device rd;
  return (static_cast<uint64_t>(rd()) << 32) ^ rd();
}

bool IsLowerHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

}  // namespace

UuidGenerator::UuidGenerator(uint64_t seed)
    : rng_(seed == 0 ? EntropySeed() : seed) {}

std::string UuidGenerator::Generate() {
  uint64_t hi = rng_.Next();
  uint64_t lo = rng_.Next();
  // Set the version nibble (4) and the RFC-4122 variant bits (10xx).
  hi = (hi & 0xFFFFFFFFFFFF0FFFull) | 0x0000000000004000ull;
  lo = (lo & 0x3FFFFFFFFFFFFFFFull) | 0x8000000000000000ull;
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<unsigned>(hi >> 32),
                static_cast<unsigned>((hi >> 16) & 0xFFFF),
                static_cast<unsigned>(hi & 0xFFFF),
                static_cast<unsigned>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xFFFFFFFFFFFFull));
  return buf;
}

bool IsValidUuid(const std::string& s) {
  if (s.size() != 36) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (i == 8 || i == 13 || i == 18 || i == 23) {
      if (s[i] != '-') return false;
    } else if (!IsLowerHex(s[i])) {
      return false;
    }
  }
  if (s[14] != '4') return false;                      // version nibble
  const char variant = s[19];
  return variant == '8' || variant == '9' || variant == 'a' || variant == 'b';
}

}  // namespace cyclerank
