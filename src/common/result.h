#ifndef CYCLERANK_COMMON_RESULT_H_
#define CYCLERANK_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace cyclerank {

/// `Result<T>` holds either a value of type `T` or an error `Status`.
///
/// This is the value-returning companion of `Status` (Arrow's
/// `arrow::Result`, abseil's `absl::StatusOr`). Construction from a `T`
/// yields an OK result; construction from a non-OK `Status` yields an error.
/// Accessing the value of an error result is a programming bug and is
/// guarded by an assertion in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value — enables `return my_value;`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status — enables
  /// `return Status::NotFound(...)`. Constructing from an OK status is a
  /// bug (there would be no value) and degrades to an Internal error.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    if (std::get<Status>(payload_).ok()) {
      payload_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Value accessors. Must only be called when `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  /// Returns the value, or `fallback` when this result is an error.
  T value_or(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

/// Assigns the value of a `Result` expression to `lhs`, or propagates the
/// error. Usage: `CYCLERANK_ASSIGN_OR_RETURN(auto g, LoadGraph(path));`
#define CYCLERANK_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                    \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#define CYCLERANK_ASSIGN_OR_RETURN(lhs, expr)                                 \
  CYCLERANK_ASSIGN_OR_RETURN_IMPL(                                            \
      CYCLERANK_CONCAT_(_result_tmp_, __LINE__), lhs, expr)

#define CYCLERANK_CONCAT_IMPL_(a, b) a##b
#define CYCLERANK_CONCAT_(a, b) CYCLERANK_CONCAT_IMPL_(a, b)

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_RESULT_H_
