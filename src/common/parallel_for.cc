#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cyclerank {
namespace {

size_t GlobalPoolSize() {
  if (const char* env = std::getenv("CYCLERANK_NUM_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool* GlobalComputePool() {
  // Intentionally leaked: worker threads must stay joinable for the whole
  // process lifetime, and static-destruction order against other globals
  // that might still post work is otherwise unknowable.
  static ThreadPool* pool = new ThreadPool(GlobalPoolSize());
  return pool;
}

uint32_t ResolveThreadCount(uint32_t requested) {
  if (requested == 0) {
    return static_cast<uint32_t>(GlobalComputePool()->num_threads());
  }
  return requested;
}

void ParallelFor(ThreadPool* pool, size_t total, size_t grain,
                 uint32_t max_threads,
                 const std::function<void(size_t, size_t, size_t)>& fn) {
  if (total == 0) return;
  if (grain == 0) grain = 1;
  const size_t num_chunks = NumChunks(total, grain);

  if (max_threads <= 1 || num_chunks <= 1 || pool == nullptr) {
    for (size_t c = 0; c < num_chunks; ++c) {
      fn(c, c * grain, std::min(total, (c + 1) * grain));
    }
    return;
  }

  // Shared between the caller and helper tasks. Held by shared_ptr because
  // a queued helper can outlive this call: once the caller has seen every
  // chunk complete it returns, and a late helper merely reads `next`,
  // finds no work, and drops its reference.
  struct Ctx {
    const std::function<void(size_t, size_t, size_t)>* fn;
    size_t total, grain, num_chunks;
    std::atomic<size_t> next{0};
    Mutex mu{lock_rank::kParallelForMu, "ParallelFor::Ctx::mu"};
    CondVar all_done;
    size_t done CYR_GUARDED_BY(mu) = 0;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->fn = &fn;
  ctx->total = total;
  ctx->grain = grain;
  ctx->num_chunks = num_chunks;

  auto drain = [](const std::shared_ptr<Ctx>& c) {
    size_t completed = 0;
    while (true) {
      const size_t chunk = c->next.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= c->num_chunks) break;
      // `*c->fn` is only dereferenced for a claimed chunk, and the caller
      // cannot return before every claimed chunk is reported done — so the
      // referenced callable is still alive here.
      (*c->fn)(chunk, chunk * c->grain,
               std::min(c->total, (chunk + 1) * c->grain));
      ++completed;
    }
    if (completed > 0) {
      MutexLock lock(c->mu);
      c->done += completed;
      if (c->done == c->num_chunks) c->all_done.NotifyAll();
    }
  };

  const size_t helpers =
      std::min<size_t>({static_cast<size_t>(max_threads) - 1, num_chunks - 1,
                        pool->num_threads()});
  for (size_t h = 0; h < helpers; ++h) {
    pool->Post([ctx, drain] { drain(ctx); });
  }
  drain(ctx);

  MutexLock lock(ctx->mu);
  ctx->all_done.Wait(ctx->mu, [&]() CYR_REQUIRES(ctx->mu) {
    return ctx->done == ctx->num_chunks;
  });
}

std::vector<int32_t> BuildChunkShardMap(std::span<const uint32_t> bounds,
                                        size_t total, size_t grain) {
  if (grain == 0) grain = 1;
  const size_t num_chunks = NumChunks(total, grain);
  std::vector<int32_t> map(num_chunks, -1);
  if (bounds.size() < 2) return map;
  for (size_t c = 0; c < num_chunks; ++c) {
    const size_t begin = c * grain;
    const size_t end = std::min(total, (c + 1) * grain);
    // Shard of the chunk's first element; the chunk is contained iff its
    // exclusive end stays within that shard's range.
    const auto it = std::upper_bound(bounds.begin(), bounds.end(),
                                     static_cast<uint32_t>(begin));
    const size_t s = static_cast<size_t>(it - bounds.begin()) - 1;
    if (s + 1 < bounds.size() && end <= bounds[s + 1]) {
      map[c] = static_cast<int32_t>(s);
    }
  }
  return map;
}

double DeterministicSum(std::span<const double> values) {
  const size_t n = values.size();
  if (n == 0) return 0.0;
  if (n == 1) return values[0];
  if (n <= 8) {
    double sum = values[0];
    for (size_t i = 1; i < n; ++i) sum += values[i];
    return sum;
  }
  std::vector<double> level(values.begin(), values.end());
  while (level.size() > 1) {
    size_t out = 0;
    for (size_t i = 0; i + 1 < level.size(); i += 2) {
      level[out++] = level[i] + level[i + 1];
    }
    if (level.size() % 2 == 1) level[out++] = level.back();
    level.resize(out);
  }
  return level[0];
}

}  // namespace cyclerank
