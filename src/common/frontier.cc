#include "common/frontier.h"

#include <memory>

#include "common/parallel_for.h"

namespace cyclerank {

FrontierEngine::FrontierEngine(uint32_t num_nodes, const Options& options)
    : num_nodes_(num_nodes),
      options_(options),
      resolved_threads_(ResolveThreadCount(options.num_threads)),
      next_seen_(num_nodes),
      scratch_([num_nodes] { return std::make_unique<Scratch>(num_nodes); }) {}

FrontierEngine::~FrontierEngine() = default;

void FrontierEngine::Seed(uint32_t v) {
  if (next_seen_.Contains(v)) return;
  next_seen_.Add(v);
  frontier_.push_back(v);
}

void FrontierEngine::Next(uint32_t v) {
  if (next_seen_.Contains(v)) return;
  next_seen_.Add(v);
  next_.push_back(v);
}

void FrontierEngine::PartitionFrontier(const Callbacks& callbacks) {
  chunk_offsets_.clear();
  chunk_offsets_.push_back(0);
  const uint64_t target =
      options_.chunk_weight == 0 ? 1 : options_.chunk_weight;
  const std::span<const uint32_t> weights = callbacks.node_weights;
  uint64_t acc = 0;
  for (size_t i = 0; i < frontier_.size(); ++i) {
    acc += 1 + (weights.empty() ? 0 : weights[frontier_[i]]);
    if (acc >= target && i + 1 < frontier_.size()) {
      chunk_offsets_.push_back(i + 1);
      acc = 0;
    }
  }
  chunk_offsets_.push_back(frontier_.size());
}

void FrontierEngine::Run(const Callbacks& callbacks) {
  ThreadPool* pool = resolved_threads_ > 1 ? GlobalComputePool() : nullptr;

  for (uint32_t round = 0; !frontier_.empty(); ++round) {
    PartitionFrontier(callbacks);
    const size_t num_chunks = chunk_offsets_.size() - 1;
    partials_.resize(num_chunks);
    for (ChunkPartial& partial : partials_) {
      partial.candidates.clear();
      partial.delta_groups.clear();
    }

    ParallelFor(pool, num_chunks, /*grain=*/1, resolved_threads_,
                [&](size_t c, size_t, size_t) {
                  auto lease = scratch_.Acquire();
                  Scratch& scratch = *lease;
                  scratch.BeginChunk();
                  ChunkPartial& partial = partials_[c];
                  Emitter emitter(&scratch, &partial.candidates,
                                  &partial.delta_groups);
                  callbacks.expand(
                      std::span<const uint32_t>(
                          frontier_.data() + chunk_offsets_[c],
                          chunk_offsets_[c + 1] - chunk_offsets_[c]),
                      emitter);
                });

    // Serial merge in ascending chunk order: the only writer of shared
    // numeric state, so its fixed iteration order pins the floating-point
    // result for every thread count.
    next_.clear();
    next_seen_.NewEpoch();
    for (size_t c = 0; c < num_chunks; ++c) {
      if (callbacks.candidates && !partials_[c].candidates.empty()) {
        callbacks.candidates(partials_[c].candidates);
      }
      if (callbacks.deltas && !partials_[c].delta_groups.empty()) {
        callbacks.deltas(partials_[c].delta_groups);
      }
    }
    frontier_.swap(next_);

    if (callbacks.round_done && !callbacks.round_done(round)) break;
  }
}

}  // namespace cyclerank
