#include "common/frontier.h"

#include <algorithm>
#include <memory>

#include "common/parallel_for.h"

namespace cyclerank {

FrontierEngine::FrontierEngine(uint32_t num_nodes, const Options& options)
    : num_nodes_(num_nodes),
      options_(options),
      resolved_threads_(ResolveThreadCount(options.num_threads)),
      next_seen_(num_nodes),
      scratch_([num_nodes] { return std::make_unique<Scratch>(num_nodes); }) {}

FrontierEngine::~FrontierEngine() = default;

void FrontierEngine::Seed(uint32_t v) {
  if (next_seen_.Contains(v)) return;
  next_seen_.Add(v);
  frontier_.push_back(v);
}

void FrontierEngine::Next(uint32_t v) {
  if (next_seen_.Contains(v)) return;
  next_seen_.Add(v);
  next_.push_back(v);
}

void FrontierEngine::PartitionFrontier(const Callbacks& callbacks) {
  // Canonical weight-balanced cuts — deliberately blind to shard_bounds,
  // so merge batch boundaries (and with them every bit of downstream
  // floating-point state) are identical at every shard count.
  chunk_offsets_.clear();
  chunk_offsets_.push_back(0);
  const uint64_t target =
      options_.chunk_weight == 0 ? 1 : options_.chunk_weight;
  const std::span<const uint32_t> weights = callbacks.node_weights;
  uint64_t acc = 0;
  for (size_t i = 0; i < frontier_.size(); ++i) {
    acc += 1 + (weights.empty() ? 0 : weights[frontier_[i]]);
    if (acc >= target && i + 1 < frontier_.size()) {
      chunk_offsets_.push_back(i + 1);
      acc = 0;
    }
  }
  chunk_offsets_.push_back(frontier_.size());

  // Shard refinement: cut each canonical chunk where the owning shard of
  // consecutive frontier nodes changes, so every execution sub-chunk can
  // stream one shard's local rows.
  const size_t num_chunks = chunk_offsets_.size() - 1;
  sub_offsets_.clear();
  sub_shard_.clear();
  chunk_sub_begin_.clear();
  const std::span<const uint32_t> bounds = options_.shard_bounds;
  if (bounds.size() <= 2) {
    // Unsharded (or a single shard): the refinement is the identity and
    // the engine runs exactly the historical chunk-per-chunk path.
    for (size_t c = 0; c < num_chunks; ++c) {
      chunk_sub_begin_.push_back(c);
      sub_offsets_.push_back(chunk_offsets_[c]);
      sub_shard_.push_back(0);
    }
    chunk_sub_begin_.push_back(num_chunks);
    sub_offsets_.push_back(frontier_.size());
    return;
  }
  const auto shard_of = [&bounds](uint32_t v) {
    // bounds[s] <= v < bounds[s+1]; empty shards collapse to equal bounds
    // that upper_bound skips past.
    return static_cast<uint32_t>(
               std::upper_bound(bounds.begin(), bounds.end(), v) -
               bounds.begin()) -
           1;
  };
  for (size_t c = 0; c < num_chunks; ++c) {
    chunk_sub_begin_.push_back(sub_shard_.size());
    const size_t begin = chunk_offsets_[c];
    const size_t end = chunk_offsets_[c + 1];
    if (begin == end) continue;
    uint32_t current = shard_of(frontier_[begin]);
    sub_offsets_.push_back(begin);
    sub_shard_.push_back(current);
    for (size_t i = begin + 1; i < end; ++i) {
      const uint32_t shard = shard_of(frontier_[i]);
      if (shard != current) {
        sub_offsets_.push_back(i);
        sub_shard_.push_back(shard);
        current = shard;
      }
    }
  }
  chunk_sub_begin_.push_back(sub_shard_.size());
  sub_offsets_.push_back(frontier_.size());
}

void FrontierEngine::Run(const Callbacks& callbacks) {
  ThreadPool* pool = resolved_threads_ > 1 ? GlobalComputePool() : nullptr;

  for (uint32_t round = 0; !frontier_.empty(); ++round) {
    PartitionFrontier(callbacks);
    const size_t num_chunks = chunk_offsets_.size() - 1;
    const size_t num_subs = sub_shard_.size();
    partials_.resize(num_subs);
    for (ChunkPartial& partial : partials_) {
      partial.candidates.clear();
      partial.delta_groups.clear();
    }

    ParallelFor(pool, num_subs, /*grain=*/1, resolved_threads_,
                [&](size_t s, size_t, size_t) {
                  auto lease = scratch_.Acquire();
                  Scratch& scratch = *lease;
                  scratch.BeginChunk();
                  ChunkPartial& partial = partials_[s];
                  Emitter emitter(&scratch, &partial.candidates,
                                  &partial.delta_groups);
                  callbacks.expand(
                      std::span<const uint32_t>(
                          frontier_.data() + sub_offsets_[s],
                          sub_offsets_[s + 1] - sub_offsets_[s]),
                      sub_shard_[s], emitter);
                });

    // Serial merge in ascending canonical chunk order: the only writer of
    // shared numeric state, so its fixed iteration order — and fixed batch
    // granularity, independent of the shard refinement — pins the
    // floating-point result for every thread and shard count.
    next_.clear();
    next_seen_.NewEpoch();
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t sub_begin = chunk_sub_begin_[c];
      const size_t sub_end = chunk_sub_begin_[c + 1];
      if (sub_end == sub_begin) continue;
      if (sub_end == sub_begin + 1) {
        // Unsplit chunk (always, when unsharded): zero-copy pass-through.
        const ChunkPartial& partial = partials_[sub_begin];
        if (callbacks.candidates && !partial.candidates.empty()) {
          callbacks.candidates(partial.candidates);
        }
        if (callbacks.deltas && !partial.delta_groups.empty()) {
          callbacks.deltas(partial.delta_groups);
        }
        continue;
      }
      // Split chunk: concatenate the sub-chunk partials in sub-chunk
      // (frontier) order so the callbacks see the exact batch the
      // unsharded run would have produced.
      merge_candidates_.clear();
      merge_groups_.clear();
      for (size_t s = sub_begin; s < sub_end; ++s) {
        merge_candidates_.insert(merge_candidates_.end(),
                                 partials_[s].candidates.begin(),
                                 partials_[s].candidates.end());
        merge_groups_.insert(merge_groups_.end(),
                             partials_[s].delta_groups.begin(),
                             partials_[s].delta_groups.end());
      }
      if (callbacks.candidates && !merge_candidates_.empty()) {
        callbacks.candidates(merge_candidates_);
      }
      if (callbacks.deltas && !merge_groups_.empty()) {
        callbacks.deltas(merge_groups_);
      }
    }
    frontier_.swap(next_);

    if (callbacks.round_done && !callbacks.round_done(round)) break;
  }
}

}  // namespace cyclerank
