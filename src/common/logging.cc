#include "common/logging.h"

#include <iostream>

#include "common/mutex.h"

namespace cyclerank {
namespace {

void StderrSink(LogLevel level, std::string_view message) {
  std::cerr << "[" << LogLevelToString(level) << "] " << message << "\n";
}

}  // namespace

std::string_view LogLevelToString(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

Logger::Logger() : min_level_(LogLevel::kInfo), sink_(StderrSink) {}

Logger& Logger::Global() {
  static Logger* logger = new Logger;
  return *logger;
}

void Logger::set_sink(Sink sink) {
  MutexLock lock(mu_);
  sink_ = sink ? std::move(sink) : Sink(StderrSink);
}

void Logger::Log(LogLevel level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(min_level())) return;
  MutexLock lock(mu_);
  sink_(level, message);
}

}  // namespace cyclerank
