#include "common/rng.h"

#include <cmath>

namespace cyclerank {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // xoshiro's all-zero state is absorbing; SplitMix64 cannot produce four
  // zero outputs in a row, but guard anyway for safety.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

void Rng::Jump() {
  static constexpr uint64_t kJump[] = {0x180EC6D33CFD0ABAull,
                                       0xD5A61266F0C9392Cull,
                                       0xA9582618E03FC9AAull,
                                       0x39ABDC4529B1661Cull};
  uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      Next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace cyclerank
