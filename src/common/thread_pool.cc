#include "common/thread_pool.h"

namespace cyclerank {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
  return true;
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ must be true: drain finished, exit.
        return;
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace cyclerank
