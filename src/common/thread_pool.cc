#include "common/thread_pool.h"

#include "common/mutex.h"

namespace cyclerank {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Post(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    if (shutdown_) return false;
    queue_.push_back(std::move(fn));
  }
  work_available_.NotifyOne();
  return true;
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() CYR_REQUIRES(mu_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    if (shutdown_) return;
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> fn;
    {
      MutexLock lock(mu_);
      work_available_.Wait(mu_, [this]() CYR_REQUIRES(mu_) {
        return shutdown_ || !queue_.empty();
      });
      if (queue_.empty()) {
        // shutdown_ must be true: drain finished, exit.
        return;
      }
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    fn();
    // A task returning with a ranked lock held would poison this worker's
    // ordering state for every later task; catch it at the boundary.
    lock_rank::AssertNoneHeld("thread-pool task returned");
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace cyclerank
