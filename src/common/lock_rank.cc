#include "common/lock_rank.h"

#if defined(CYCLERANK_LOCK_RANK_CHECKS)
#include <cstdio>
#include <cstdlib>
#include <vector>

#if defined(__GLIBC__)
#include <execinfo.h>
#endif
#endif

namespace cyclerank {
namespace lock_rank {

bool ChecksEnabled() {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
  return true;
#else
  return false;
#endif
}

#if defined(CYCLERANK_LOCK_RANK_CHECKS)

namespace {

struct Held {
  int rank;
  const char* name;
  const void* addr;
};

/// The ranks this thread currently holds, acquisition order. Small (a
/// thread nests a handful of locks at most), so a vector scan is fine —
/// this code exists only in Debug/sanitized builds.
thread_local std::vector<Held> tl_held;

}  // namespace

void NoteAcquire(int rank, const char* name, const void* addr) {
  if (rank == kUnranked) return;
  for (const Held& held : tl_held) {
    if (held.rank >= rank) {
      // Equal ranks abort too: two same-ranked locks may never nest (the
      // hierarchy assigns shared ranks only to locks that are provably
      // never held together, e.g. the per-tier spill locks).
      std::fprintf(
          stderr,
          "lock-rank violation: acquiring '%s' (rank %d, %p) while holding "
          "'%s' (rank %d, %p); locks must be acquired in strictly "
          "increasing rank order — see common/lock_rank.h for the "
          "hierarchy\n",
          name, rank, addr, held.name, held.rank, held.addr);
#if defined(__GLIBC__)
      // Symbolized only when the binary is linked with -rdynamic; raw
      // addresses still feed addr2line either way.
      void* frames[64];
      const int depth = backtrace(frames, 64);
      backtrace_symbols_fd(frames, depth, /*fd=*/2);
#endif
      std::abort();
    }
  }
  tl_held.push_back(Held{rank, name, addr});
}

void NoteRelease(int rank, const char* /*name*/) {
  if (rank == kUnranked) return;
  // At most one lock of a given rank can be held (NoteAcquire aborts on
  // equal ranks), so the rank identifies the entry. Scan from the back:
  // release order is almost always LIFO.
  for (auto it = tl_held.rbegin(); it != tl_held.rend(); ++it) {
    if (it->rank == rank) {
      tl_held.erase(std::next(it).base());
      return;
    }
  }
}

#endif  // CYCLERANK_LOCK_RANK_CHECKS

void AssertNoneHeld([[maybe_unused]] const char* where) {
#if defined(CYCLERANK_LOCK_RANK_CHECKS)
  if (tl_held.empty()) return;
  std::fprintf(stderr,
               "lock-rank violation: %s with ranked locks still held:\n",
               where);
  for (const Held& held : tl_held) {
    std::fprintf(stderr, "  '%s' (rank %d, %p)\n", held.name, held.rank,
                 held.addr);
  }
#if defined(__GLIBC__)
  void* frames[64];
  const int depth = backtrace(frames, 64);
  backtrace_symbols_fd(frames, depth, /*fd=*/2);
#endif
  std::abort();
#endif  // CYCLERANK_LOCK_RANK_CHECKS
}

}  // namespace lock_rank
}  // namespace cyclerank
