#ifndef CYCLERANK_COMMON_THREAD_ANNOTATIONS_H_
#define CYCLERANK_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (the `-Wthread-safety` capability
/// analysis), compiled to nothing on every other compiler.
///
/// The platform's locking discipline is a *compile-time* property: every
/// mutex-holding class annotates which mutex guards which field
/// (`CYR_GUARDED_BY`), which private helpers expect the lock already held
/// (`CYR_REQUIRES` on the `*Locked()` methods), and which public entry
/// points must be called without it (`CYR_EXCLUDES`). Clang then proves,
/// on every build and for every interleaving, that no guarded field is
/// touched without its mutex — the same shift from testing to proving that
/// the bit-identical-determinism guarantee relies on. CI builds with
/// `-Werror=thread-safety` (the `static-analysis` job), so a violation is
/// a compile error, not a TSan roll of the dice.
///
/// Use the annotated wrappers in `common/mutex.h` (`Mutex`, `MutexLock`,
/// `CondVar`, …) — a raw `std::mutex` is not a Clang capability and is
/// rejected by `tools/lint.py` outside that header.
///
/// Macro names follow the Clang documentation's canonical set, prefixed
/// `CYR_` (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html).

#if defined(__clang__)
#define CYR_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define CYR_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Declares a class to be a capability ("mutex"); `Mutex` carries it.
#define CYR_CAPABILITY(x) CYR_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares an RAII class that acquires a capability at construction and
/// releases it at destruction (`MutexLock`).
#define CYR_SCOPED_CAPABILITY CYR_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define CYR_GUARDED_BY(x) CYR_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer field whose *pointee* may only be touched while holding `x`.
#define CYR_PT_GUARDED_BY(x) CYR_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// Documented acquisition order between mutexes (checked by Clang where it
/// can; the runtime lock-rank checker in `common/lock_rank.h` covers the
/// rest).
#define CYR_ACQUIRED_BEFORE(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#define CYR_ACQUIRED_AFTER(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

/// Function requires the listed capabilities held on entry (and does not
/// release them) — the `*Locked()` helper convention.
#define CYR_REQUIRES(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#define CYR_REQUIRES_SHARED(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability and holds it past the return.
#define CYR_ACQUIRE(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#define CYR_ACQUIRE_SHARED(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define CYR_RELEASE(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))
#define CYR_RELEASE_SHARED(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

/// Function attempts the acquisition; first argument is the success value.
#define CYR_TRY_ACQUIRE(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// Caller must NOT hold the listed capabilities — the public-entry-point
/// convention; catches self-deadlock at compile time.
#define CYR_EXCLUDES(...) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code Clang cannot
/// follow, e.g. across a callback boundary).
#define CYR_ASSERT_CAPABILITY(x) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))
#define CYR_ASSERT_SHARED_CAPABILITY(x) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(assert_shared_capability(x))

/// Function returns a reference to the mutex guarding its result.
#define CYR_RETURN_CAPABILITY(x) \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Must not appear
/// in `src/` (the CI gate requires zero suppressions); it exists for
/// tests that deliberately misuse locks (e.g. the lock-rank death tests).
#define CYR_NO_THREAD_SAFETY_ANALYSIS \
  CYR_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // CYCLERANK_COMMON_THREAD_ANNOTATIONS_H_
