#ifndef CYCLERANK_COMMON_TIMER_H_
#define CYCLERANK_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace cyclerank {

/// Monotonic wall-clock stopwatch used by the scheduler, benches and tests.
///
/// The timer starts at construction; `Restart()` rewinds it. All readings are
/// taken against `std::chrono::steady_clock` so they are immune to system
/// clock adjustments.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Rewinds the stopwatch to zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last `Restart()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_TIMER_H_
