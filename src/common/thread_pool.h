#ifndef CYCLERANK_COMMON_THREAD_POOL_H_
#define CYCLERANK_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cyclerank {

/// Fixed-size worker pool with a FIFO task queue.
///
/// This is the execution substrate behind the platform's computational
/// nodes (paper Fig. 1: "computational nodes … can be scaled up or down
/// depending on the system's workload"). Tasks are `void()` callables;
/// `Submit` additionally returns a future for result plumbing.
///
/// Shutdown semantics: the destructor (or `Shutdown()`) stops accepting new
/// work, drains the queue, and joins all workers. Tasks submitted after
/// shutdown are rejected (the returned future is invalid / `Post` returns
/// false).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; returns false when the pool is shut down.
  bool Post(std::function<void()> fn) CYR_EXCLUDES(mu_);

  /// Enqueues `fn` and returns a future for its result. When the pool is
  /// already shut down the returned future is default-constructed
  /// (`!future.valid()`).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (!Post([task]() { (*task)(); })) return std::future<R>();
    return future;
  }

  /// Blocks until every queued task has finished. New work may still be
  /// posted afterwards.
  void WaitIdle() CYR_EXCLUDES(mu_);

  /// Drains the queue and joins the workers; idempotent.
  void Shutdown() CYR_EXCLUDES(mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Number of tasks currently queued (excluding running ones).
  size_t QueueDepth() const CYR_EXCLUDES(mu_);

 private:
  void WorkerLoop() CYR_EXCLUDES(mu_);

  mutable Mutex mu_{lock_rank::kThreadPoolMu, "ThreadPool::mu_"};
  CondVar work_available_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ CYR_GUARDED_BY(mu_);
  // Filled in the constructor, joined by Shutdown outside the lock (a
  // worker blocked on the queue could never be joined under it); not
  // guarded — after construction the vector itself is never mutated.
  std::vector<std::thread> workers_;
  size_t active_ CYR_GUARDED_BY(mu_) = 0;
  bool shutdown_ CYR_GUARDED_BY(mu_) = false;
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_THREAD_POOL_H_
