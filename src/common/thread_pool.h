#ifndef CYCLERANK_COMMON_THREAD_POOL_H_
#define CYCLERANK_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cyclerank {

/// Fixed-size worker pool with a FIFO task queue.
///
/// This is the execution substrate behind the platform's computational
/// nodes (paper Fig. 1: "computational nodes … can be scaled up or down
/// depending on the system's workload"). Tasks are `void()` callables;
/// `Submit` additionally returns a future for result plumbing.
///
/// Shutdown semantics: the destructor (or `Shutdown()`) stops accepting new
/// work, drains the queue, and joins all workers. Tasks submitted after
/// shutdown are rejected (the returned future is invalid / `Post` returns
/// false).
class ThreadPool {
 public:
  /// Creates `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn`; returns false when the pool is shut down.
  bool Post(std::function<void()> fn);

  /// Enqueues `fn` and returns a future for its result. When the pool is
  /// already shut down the returned future is default-constructed
  /// (`!future.valid()`).
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (!Post([task]() { (*task)(); })) return std::future<R>();
    return future;
  }

  /// Blocks until every queued task has finished. New work may still be
  /// posted afterwards.
  void WaitIdle();

  /// Drains the queue and joins the workers; idempotent.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }

  /// Number of tasks currently queued (excluding running ones).
  size_t QueueDepth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_THREAD_POOL_H_
