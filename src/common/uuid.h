#ifndef CYCLERANK_COMMON_UUID_H_
#define CYCLERANK_COMMON_UUID_H_

#include <string>

#include "common/rng.h"

namespace cyclerank {

/// Generates RFC-4122 version-4 UUID strings.
///
/// The demo assigns every submitted query set a UUID that serves as a
/// permalink (paper §IV-C, "a unique identifier is assigned to it, serving
/// as a permalink to retrieve its results"). The platform uses this
/// generator for comparison ids and task ids.
class UuidGenerator {
 public:
  /// `seed == 0` draws entropy from `std::random_device`; any other value
  /// produces a deterministic sequence (used by tests).
  explicit UuidGenerator(uint64_t seed = 0);

  /// Returns a fresh lowercase UUID like
  /// "3a73ff34-8720-4ce8-859e-34e70f339907".
  std::string Generate();

 private:
  Rng rng_;
};

/// True iff `s` is syntactically a version-4 UUID (8-4-4-4-12 lowercase hex
/// with the version / variant nibbles set).
bool IsValidUuid(const std::string& s);

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_UUID_H_
