#ifndef CYCLERANK_COMMON_LOGGING_H_
#define CYCLERANK_COMMON_LOGGING_H_

#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cyclerank {

/// Severity of a log record, ordered from chattiest to most severe.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

std::string_view LogLevelToString(LogLevel level);

/// Process-wide logging configuration.
///
/// The library logs through a single sink function so embedding applications
/// (and the platform `Datastore`, which persists per-task logs) can capture
/// records. The default sink writes `[LEVEL] message` to stderr. All methods
/// are safe to call concurrently; sink installation is expected to happen at
/// startup before concurrent logging begins.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Returns the process-wide logger.
  static Logger& Global();

  /// Minimum level that will be forwarded to the sink. Atomic: the level
  /// is read on every `Log` call, concurrently with `set_min_level` from
  /// other threads (tests dial verbosity up and down mid-run) — a plain
  /// field here was a data race.
  void set_min_level(LogLevel level) {
    min_level_.store(level, std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return min_level_.load(std::memory_order_relaxed);
  }

  /// Replaces the sink. Passing a null function restores the stderr sink.
  void set_sink(Sink sink) CYR_EXCLUDES(mu_);

  /// Forwards `message` to the sink when `level >= min_level()`.
  void Log(LogLevel level, std::string_view message) CYR_EXCLUDES(mu_);

 private:
  Logger();

  /// Leaf-most rank: log lines are emitted while holding store and spill
  /// locks, so the sink mutex must nest under everything.
  mutable Mutex mu_{lock_rank::kLoggingMu, "Logger::mu_"};
  std::atomic<LogLevel> min_level_;
  Sink sink_ CYR_GUARDED_BY(mu_);
};

namespace internal_logging {

/// Stream-style collector that emits on destruction; enables
/// `CYCLERANK_LOG(kInfo) << "x=" << x;`.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Global().Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define CYCLERANK_LOG(level)       \
  ::cyclerank::internal_logging::LogMessage(::cyclerank::LogLevel::level)

}  // namespace cyclerank

#endif  // CYCLERANK_COMMON_LOGGING_H_
