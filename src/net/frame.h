#ifndef CYCLERANK_NET_FRAME_H_
#define CYCLERANK_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace cyclerank {
namespace net {

/// CYRQ1 message framing — the length-prefixed binary envelope every byte
/// on a platform TCP connection travels in. Normative spec:
/// docs/PROTOCOL.md (§ "Frame layout"); this header is its implementation.
///
/// Layout (all multi-byte integers little-endian, as everywhere in
/// common/binary_io.h):
///
///   offset  size     field
///   0       4        magic "CYRQ"
///   4       1        protocol version (0x01)
///   5       1        message type (net/messages.h)
///   6       1..10    payload length, LEB128 varint
///   ...     8        FNV-1a 64-bit checksum of the payload bytes
///   ...     length   payload
///
/// The checksum guards against stream corruption (same posture as the
/// spill-tier file format): a frame whose payload hashes differently is a
/// protocol error, never a silently-wrong message.

/// The 4 magic bytes opening every frame.
inline constexpr char kFrameMagic[4] = {'C', 'Y', 'R', 'Q'};

/// The protocol version this build speaks. Frames declaring any other
/// version are rejected with `kUnimplemented` — see docs/PROTOCOL.md
/// (§ "Versioning") for the compatibility policy.
inline constexpr uint8_t kProtocolVersion = 1;

/// Magic + version + type — the fixed bytes before the varint length.
inline constexpr size_t kFrameFixedHeaderBytes = 6;

/// One decoded frame: the type tag and its raw payload (already
/// checksum-verified). Decode the payload with the codecs in
/// net/messages.h.
struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Appends one encoded frame (header + checksum + payload) to `*out`.
void AppendFrame(uint8_t type, std::string_view payload, std::string* out);

/// `AppendFrame` into a fresh string.
std::string EncodeFrame(uint8_t type, std::string_view payload);

/// Incremental decoder over a TCP byte stream. Feed whatever `read()`
/// produced, then drain complete frames with `Next()`. Single-owner: the
/// server keeps one per connection on the event-loop thread, the client
/// one per socket; not thread-safe.
///
/// Every protocol violation — bad magic, unsupported version, a declared
/// length past `max_frame_bytes`, a checksum mismatch, a malformed length
/// varint — *poisons* the decoder: `Next()` reports the error (once with
/// the detailed status, then repeats it) and no further bytes are
/// interpreted. Resynchronizing inside a corrupt byte stream is guesswork,
/// so the peer is expected to answer an ERROR frame and close; see
/// docs/PROTOCOL.md (§ "Protocol errors").
class FrameDecoder {
 public:
  /// `max_frame_bytes` bounds the *declared payload length*, checked
  /// before any payload allocation. 0 = unbounded (client side, where the
  /// peer is the trusted server).
  explicit FrameDecoder(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  FrameDecoder(const FrameDecoder&) = delete;
  FrameDecoder& operator=(const FrameDecoder&) = delete;
  FrameDecoder(FrameDecoder&&) = default;
  FrameDecoder& operator=(FrameDecoder&&) = default;

  /// Appends raw stream bytes. Cheap; decoding happens in `Next()`.
  void Feed(std::string_view bytes);

  enum class Outcome {
    kFrame,          ///< `*frame` holds the next complete, verified frame
    kNeedMoreBytes,  ///< the buffered prefix is a valid partial frame
    kProtocolError,  ///< the stream is corrupt; `*error` says how
  };

  /// Extracts the next frame. Call in a loop after each `Feed` until it
  /// stops returning `kFrame`.
  Outcome Next(Frame* frame, Status* error);

  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  Outcome Poison(Status status, Status* error);

  size_t max_frame_bytes_;  ///< const in spirit; non-const to stay movable
  std::string buffer_;
  size_t consumed_ = 0;  ///< decoded prefix of `buffer_`, reclaimed lazily
  bool poisoned_ = false;
  Status poison_status_;
};

}  // namespace net
}  // namespace cyclerank

#endif  // CYCLERANK_NET_FRAME_H_
