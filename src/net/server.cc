#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/messages.h"

namespace cyclerank {
namespace net {

namespace {

using SteadyClock = std::chrono::steady_clock;

/// How long a graceful drain may take before connections are closed with
/// unflushed bytes — a peer that stopped reading must not wedge SIGTERM.
constexpr std::chrono::seconds kDrainDeadline{5};

std::string ErrnoMessage(const char* what) {
  return std::string("net: ") + what + " failed: " + std::strerror(errno);
}

/// One work item marshalled to the event-loop thread.
struct MailItem {
  enum Kind {
    kResponse,  ///< a handler thread finished; `frame` goes to `conn_id`
    kTerminal,  ///< a task entered a terminal state (from the listener)
    kShutdown,  ///< begin the graceful drain
  };
  Kind kind = kResponse;
  uint64_t conn_id = 0;
  std::string frame;    ///< kResponse: encoded response frame
  std::string task_id;  ///< kTerminal
};

/// The cross-thread mailbox: handler threads and the gateway's
/// terminal-state listener append here and poke the self-pipe; the loop
/// thread drains it. The mutex is deliberately *unranked* — the listener
/// may fire while the caller holds `Scheduler::mu_` (rank 200), so this
/// lock must be free to nest under any rank; its critical sections only
/// move a vector entry and write one pipe byte. Owned by `shared_ptr` so
/// a listener invocation in flight after `Shutdown` hits a closed mailbox
/// instead of freed memory.
struct Mailbox {
  Mutex mu;
  std::vector<MailItem> items CYR_GUARDED_BY(mu);
  int wake_fd CYR_GUARDED_BY(mu) = -1;
  bool closed CYR_GUARDED_BY(mu) = false;

  void Push(MailItem item) {
    MutexLock lock(mu);
    if (closed) return;
    items.push_back(std::move(item));
    if (wake_fd >= 0) {
      const char byte = 1;
      // Nonblocking pipe: EAGAIN just means a wakeup is already pending.
      (void)::write(wake_fd, &byte, 1);
    }
  }
};

/// Per-connection state. Owned exclusively by the event-loop thread —
/// no lock anywhere near it.
struct Connection {
  Connection(int fd_in, uint64_t id_in, size_t max_frame_bytes)
      : fd(fd_in), id(id_in), decoder(max_frame_bytes) {}

  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  std::string out;      ///< pending write bytes
  size_t out_pos = 0;   ///< flushed prefix of `out`
  bool close_after_flush = false;
  std::set<std::string> subscriptions;  ///< comparison ids (one-shot)
};

/// A parked WaitForCompletion, matured by terminal-state mail or its
/// deadline.
struct PendingWait {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  std::string comparison_id;
  bool has_deadline = false;
  SteadyClock::time_point deadline;
};

}  // namespace

struct NetServer::Impl {
  Impl(ApiGateway* gateway_in, const PlatformOptions& options_in)
      : gateway(gateway_in), options(options_in) {}

  ApiGateway* const gateway;
  const PlatformOptions options;

  /// Lifecycle state only (Start/Shutdown); never held while the loop
  /// runs. Ranked above the gateway: Start registers the listener (and
  /// thus reaches StatusService) under it.
  Mutex mu{lock_rank::kNetServerMu, "NetServer::mu"};
  bool started CYR_GUARDED_BY(mu) = false;
  bool shut_down CYR_GUARDED_BY(mu) = false;

  std::shared_ptr<Mailbox> mailbox = std::make_shared<Mailbox>();
  std::unique_ptr<ThreadPool> handler_pool;
  std::unique_ptr<ThreadPool> loop_pool;  ///< exactly one thread: the loop
  std::future<void> loop_done;

  int listen_fd = -1;
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  uint64_t listener_token = 0;
  std::atomic<uint16_t> bound_port{0};
  std::atomic<int> outstanding_handlers{0};

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_rejected{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_sent{0};
  std::atomic<uint64_t> protocol_errors{0};
  std::atomic<uint64_t> events_pushed{0};

  // ---- Event-loop-thread-owned state (no lock by design) ----------------
  std::map<uint64_t, std::unique_ptr<Connection>> conns;
  std::vector<PendingWait> waits;
  uint64_t next_conn_id = 1;
  bool draining = false;
  SteadyClock::time_point drain_deadline;

  // ---- Loop plumbing ----------------------------------------------------

  void SendFrame(Connection& conn, std::string frame_bytes) {
    conn.out += frame_bytes;
    frames_sent.fetch_add(1, std::memory_order_relaxed);
  }

  void SendError(Connection& conn, uint64_t request_id, Status status) {
    protocol_errors.fetch_add(1, std::memory_order_relaxed);
    SendFrame(conn, EncodeErrorMessage({request_id, std::move(status)}));
  }

  bool MailboxEmpty() {
    MutexLock lock(mailbox->mu);
    return mailbox->items.empty();
  }

  void DrainWakePipe() {
    char buf[256];
    while (::read(wake_read_fd, buf, sizeof(buf)) > 0) {
    }
  }

  void CloseConnection(uint64_t id) {
    auto it = conns.find(id);
    if (it == conns.end()) return;
    ::close(it->second->fd);
    conns.erase(it);
    for (auto wit = waits.begin(); wit != waits.end();) {
      wit = wit->conn_id == id ? waits.erase(wit) : std::next(wit);
    }
  }

  // ---- Slow requests: decode + gateway call on a handler thread ---------

  void DispatchToPool(Connection& conn, std::string payload,
                      std::function<std::string(std::string_view)> handler) {
    const uint64_t request_id = PeekRequestId(payload);
    const uint64_t conn_id = conn.id;
    auto mb = mailbox;
    outstanding_handlers.fetch_add(1);
    const bool posted = handler_pool->Post(
        [this, conn_id, mb, payload = std::move(payload),
         handler = std::move(handler)] {
          std::string response = handler(payload);
          mb->Push({MailItem::kResponse, conn_id, std::move(response), {}});
          // Decrement after the push: the drain condition is
          // "no outstanding handlers AND empty mailbox", and this order
          // makes the pair appear at-least-once to the loop.
          outstanding_handlers.fetch_sub(1);
        });
    if (!posted) {
      outstanding_handlers.fetch_sub(1);
      SendError(conn, request_id,
                Status::Unavailable("net: server shutting down"));
    }
  }

  void DispatchUpload(Connection& conn, std::string payload) {
    ApiGateway* gw = gateway;
    DispatchToPool(conn, std::move(payload),
                   [gw](std::string_view bytes) -> std::string {
                     auto req = DecodeUploadDatasetRequest(bytes);
                     if (!req.ok()) {
                       return EncodeErrorMessage(
                           {PeekRequestId(bytes), req.status()});
                     }
                     const Status status = gw->datastore()->UploadDataset(
                         req->name, req->content);
                     return EncodeAckResponse(kUploadDatasetResp,
                                              {req->request_id, status});
                   });
  }

  void DispatchSubmit(Connection& conn, std::string payload) {
    ApiGateway* gw = gateway;
    DispatchToPool(conn, std::move(payload),
                   [gw](std::string_view bytes) -> std::string {
                     auto req = DecodeSubmitQuerySetRequest(bytes);
                     if (!req.ok()) {
                       return EncodeErrorMessage(
                           {PeekRequestId(bytes), req.status()});
                     }
                     auto id = gw->SubmitQuerySet(req->query_set);
                     SubmitQuerySetResponse resp;
                     resp.request_id = req->request_id;
                     if (id.ok()) {
                       resp.comparison_id = *id;
                     } else {
                       resp.status = id.status();
                     }
                     return EncodeSubmitQuerySetResponse(resp);
                   });
  }

  void DispatchGetResults(Connection& conn, std::string payload) {
    ApiGateway* gw = gateway;
    DispatchToPool(conn, std::move(payload),
                   [gw](std::string_view bytes) -> std::string {
                     auto req = DecodeComparisonRequest(bytes);
                     if (!req.ok()) {
                       return EncodeErrorMessage(
                           {PeekRequestId(bytes), req.status()});
                     }
                     auto results = gw->GetResults(req->comparison_id);
                     GetResultsResponse resp;
                     resp.request_id = req->request_id;
                     if (results.ok()) {
                       resp.results = std::move(results).value();
                     } else {
                       resp.status = results.status();
                     }
                     return EncodeGetResultsResponse(resp);
                   });
  }

  // ---- Fast requests: inline on the loop thread -------------------------

  void HandleGetStatus(Connection& conn, std::string_view payload) {
    auto req = DecodeComparisonRequest(payload);
    if (!req.ok()) {
      SendError(conn, PeekRequestId(payload), req.status());
      return;
    }
    auto status = gateway->GetStatus(req->comparison_id);
    GetStatusResponse resp;
    resp.request_id = req->request_id;
    if (status.ok()) {
      resp.comparison = std::move(status).value();
    } else {
      resp.status = status.status();
    }
    SendFrame(conn, EncodeGetStatusResponse(resp));
  }

  void HandleCancel(Connection& conn, std::string_view payload) {
    auto req = DecodeComparisonRequest(payload);
    if (!req.ok()) {
      SendError(conn, PeekRequestId(payload), req.status());
      return;
    }
    const Status status = gateway->Cancel(req->comparison_id);
    SendFrame(conn,
              EncodeAckResponse(kCancelResp, {req->request_id, status}));
  }

  void HandleSubscribe(Connection& conn, std::string_view payload) {
    auto req = DecodeComparisonRequest(payload);
    if (!req.ok()) {
      SendError(conn, PeekRequestId(payload), req.status());
      return;
    }
    auto status = gateway->GetStatus(req->comparison_id);
    if (!status.ok()) {
      SendFrame(conn, EncodeAckResponse(kSubscribeResp,
                                        {req->request_id, status.status()}));
      return;
    }
    SendFrame(conn, EncodeAckResponse(kSubscribeResp,
                                      {req->request_id, Status::OK()}));
    if (status->done) {
      // Already terminal: push immediately instead of parking a
      // subscription no event will ever mature.
      events_pushed.fetch_add(1, std::memory_order_relaxed);
      SendFrame(conn, EncodeEventMessage({std::move(status).value()}));
    } else {
      conn.subscriptions.insert(req->comparison_id);
    }
  }

  void HandleWait(Connection& conn, std::string_view payload) {
    auto req = DecodeWaitRequest(payload);
    if (!req.ok()) {
      SendError(conn, PeekRequestId(payload), req.status());
      return;
    }
    auto status = gateway->GetStatus(req->comparison_id);
    WaitResponse resp;
    resp.request_id = req->request_id;
    if (!status.ok()) {
      resp.status = status.status();
      SendFrame(conn, EncodeWaitResponse(resp));
      return;
    }
    if (status->done) {
      resp.done = true;
      SendFrame(conn, EncodeWaitResponse(resp));
      return;
    }
    if (draining) {
      resp.status = Status::Unavailable("net: server draining");
      SendFrame(conn, EncodeWaitResponse(resp));
      return;
    }
    PendingWait wait;
    wait.conn_id = conn.id;
    wait.request_id = req->request_id;
    wait.comparison_id = req->comparison_id;
    if (req->timeout_ms != 0) {
      wait.has_deadline = true;
      wait.deadline =
          SteadyClock::now() + std::chrono::milliseconds(req->timeout_ms);
    }
    waits.push_back(std::move(wait));
  }

  void HandleStats(Connection& conn, std::string_view payload) {
    auto req = DecodeStatsRequest(payload);
    if (!req.ok()) {
      SendError(conn, PeekRequestId(payload), req.status());
      return;
    }
    // Sorted keys, one per line — grep-friendly and deterministic.
    std::string text;
    const auto add = [&text](const char* key, uint64_t value) {
      text += std::string(key) + "=" + std::to_string(value) + "\n";
    };
    add("connections_accepted", connections_accepted.load());
    add("connections_active", conns.size());
    add("connections_rejected", connections_rejected.load());
    add("events_pushed", events_pushed.load());
    add("frames_received", frames_received.load());
    add("frames_sent", frames_sent.load());
    add("num_workers", gateway->num_workers());
    add("pending_waits", waits.size());
    add("protocol_errors", protocol_errors.load());
    add("stored_results", gateway->datastore()->NumStoredResults());
    add("uploaded_datasets", gateway->datastore()->UploadedDatasets().size());
    SendFrame(conn, EncodeStatsResponse(
                        {req->request_id, Status::OK(), std::move(text)}));
  }

  void HandleFrame(Connection& conn, Frame frame) {
    frames_received.fetch_add(1, std::memory_order_relaxed);
    switch (frame.type) {
      case kUploadDatasetReq:
        DispatchUpload(conn, std::move(frame.payload));
        break;
      case kSubmitQuerySetReq:
        DispatchSubmit(conn, std::move(frame.payload));
        break;
      case kGetResultsReq:
        DispatchGetResults(conn, std::move(frame.payload));
        break;
      case kGetStatusReq:
        HandleGetStatus(conn, frame.payload);
        break;
      case kWaitReq:
        HandleWait(conn, frame.payload);
        break;
      case kCancelReq:
        HandleCancel(conn, frame.payload);
        break;
      case kSubscribeReq:
        HandleSubscribe(conn, frame.payload);
        break;
      case kStatsReq:
        HandleStats(conn, frame.payload);
        break;
      default:
        // Well-framed but unknown: answer ERROR and keep the connection —
        // a newer client probing an optional message must not be
        // disconnected (docs/PROTOCOL.md § "Versioning").
        SendError(conn, PeekRequestId(frame.payload),
                  Status::Unimplemented("net: unknown frame type " +
                                        std::to_string(frame.type)));
        break;
    }
  }

  /// Reads everything available, decodes frames, dispatches. Returns
  /// false when the connection must close now (EOF or fatal error).
  bool ReadFromConnection(Connection& conn) {
    if (conn.close_after_flush) return true;  // ignore further input
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        conn.decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
        if (n < static_cast<ssize_t>(sizeof(buf))) break;
        continue;
      }
      if (n == 0) return false;  // peer closed
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    Frame frame;
    Status error;
    for (;;) {
      const FrameDecoder::Outcome outcome = conn.decoder.Next(&frame, &error);
      if (outcome == FrameDecoder::Outcome::kNeedMoreBytes) break;
      if (outcome == FrameDecoder::Outcome::kProtocolError) {
        // Corrupt stream: one ERROR frame naming the violation, then
        // close once it is flushed. Never a crash, never a guess at
        // resynchronization.
        SendError(conn, 0, error);
        conn.close_after_flush = true;
        break;
      }
      HandleFrame(conn, std::move(frame));
      if (conn.close_after_flush) break;
    }
    return true;
  }

  /// Writes as much buffered output as the socket accepts. Returns false
  /// on a fatal socket error.
  bool FlushConnection(Connection& conn) {
    while (conn.out_pos < conn.out.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.out.data() + conn.out_pos,
                 conn.out.size() - conn.out_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.out_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    if (conn.out_pos == conn.out.size()) {
      conn.out.clear();
      conn.out_pos = 0;
    } else if (conn.out_pos > (1u << 16)) {
      conn.out.erase(0, conn.out_pos);
      conn.out_pos = 0;
    }
    return true;
  }

  void AcceptNew() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN — drained the backlog
      }
      if (options.max_connections != 0 &&
          conns.size() >= options.max_connections) {
        connections_rejected.fetch_add(1, std::memory_order_relaxed);
        // Best-effort courtesy: say why before closing. A full socket
        // buffer just means the peer sees a bare close instead.
        const std::string err = EncodeErrorMessage(
            {0, Status::Unavailable(
                    "net: server at max_connections=" +
                    std::to_string(options.max_connections))});
        (void)::send(fd, err.data(), err.size(), MSG_NOSIGNAL);
        ::close(fd);
        continue;
      }
      connections_accepted.fetch_add(1, std::memory_order_relaxed);
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const uint64_t id = next_conn_id++;
      conns.emplace(id, std::make_unique<Connection>(
                            fd, id, options.max_frame_bytes));
    }
  }

  /// A comparison may have reached `done`: push events to subscribers and
  /// answer parked waits. Runs on the loop thread with no locks held, so
  /// the gateway call is rank-clean.
  void MaybeNotify(const std::string& comparison_id) {
    bool anyone_cares = false;
    for (const auto& [id, conn] : conns) {
      if (conn->subscriptions.count(comparison_id) != 0) {
        anyone_cares = true;
        break;
      }
    }
    if (!anyone_cares) {
      for (const PendingWait& wait : waits) {
        if (wait.comparison_id == comparison_id) {
          anyone_cares = true;
          break;
        }
      }
    }
    if (!anyone_cares) return;
    auto status = gateway->GetStatus(comparison_id);
    if (!status.ok()) {
      // The comparison vanished under its watchers (should not happen in
      // normal operation): fail the waits, drop the subscriptions.
      for (auto it = waits.begin(); it != waits.end();) {
        if (it->comparison_id != comparison_id) {
          ++it;
          continue;
        }
        auto cit = conns.find(it->conn_id);
        if (cit != conns.end()) {
          SendFrame(*cit->second,
                    EncodeWaitResponse(
                        {it->request_id, status.status(), false}));
        }
        it = waits.erase(it);
      }
      for (auto& [id, conn] : conns) conn->subscriptions.erase(comparison_id);
      return;
    }
    if (!status->done) return;  // another task of the set is still running
    for (auto& [id, conn] : conns) {
      if (conn->subscriptions.erase(comparison_id) != 0) {
        events_pushed.fetch_add(1, std::memory_order_relaxed);
        SendFrame(*conn, EncodeEventMessage({*status}));
      }
    }
    for (auto it = waits.begin(); it != waits.end();) {
      if (it->comparison_id != comparison_id) {
        ++it;
        continue;
      }
      auto cit = conns.find(it->conn_id);
      if (cit != conns.end()) {
        SendFrame(*cit->second,
                  EncodeWaitResponse({it->request_id, Status::OK(), true}));
      }
      it = waits.erase(it);
    }
  }

  void BeginDrain() {
    if (draining) return;
    draining = true;
    drain_deadline = SteadyClock::now() + kDrainDeadline;
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    for (const PendingWait& wait : waits) {
      auto it = conns.find(wait.conn_id);
      if (it == conns.end()) continue;
      SendFrame(*it->second,
                EncodeWaitResponse(
                    {wait.request_id,
                     Status::Unavailable("net: server draining"), false}));
    }
    waits.clear();
  }

  void ProcessMail() {
    std::vector<MailItem> items;
    {
      MutexLock lock(mailbox->mu);
      items.swap(mailbox->items);
    }
    std::set<std::string> terminal_comparisons;
    for (MailItem& item : items) {
      switch (item.kind) {
        case MailItem::kResponse: {
          auto it = conns.find(item.conn_id);
          if (it != conns.end()) {
            SendFrame(*it->second, std::move(item.frame));
          }
          break;
        }
        case MailItem::kTerminal: {
          // Task ids are "<comparison-id>/<index>"; watchers key on the
          // comparison. Batch-dedupe: N tasks of one comparison finishing
          // together cost one GetStatus, not N.
          const size_t slash = item.task_id.rfind('/');
          terminal_comparisons.insert(
              slash == std::string::npos ? item.task_id
                                         : item.task_id.substr(0, slash));
          break;
        }
        case MailItem::kShutdown:
          BeginDrain();
          break;
      }
    }
    for (const std::string& comparison_id : terminal_comparisons) {
      MaybeNotify(comparison_id);
    }
  }

  void ExpireWaits() {
    if (waits.empty()) return;
    const auto now = SteadyClock::now();
    for (auto it = waits.begin(); it != waits.end();) {
      if (!it->has_deadline || now < it->deadline) {
        ++it;
        continue;
      }
      auto cit = conns.find(it->conn_id);
      if (cit != conns.end()) {
        // Timeout mirrors WaitForCompletion: OK status, done=false.
        SendFrame(*cit->second,
                  EncodeWaitResponse({it->request_id, Status::OK(), false}));
      }
      it = waits.erase(it);
    }
  }

  int ComputeTimeoutMs() const {
    if (draining) return 20;
    bool any_deadline = false;
    auto nearest = SteadyClock::time_point::max();
    for (const PendingWait& wait : waits) {
      if (wait.has_deadline && wait.deadline < nearest) {
        any_deadline = true;
        nearest = wait.deadline;
      }
    }
    if (!any_deadline) return -1;  // the self-pipe wakes us for everything else
    const auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                           nearest - SteadyClock::now())
                           .count();
    if (delta <= 0) return 0;
    return static_cast<int>(std::min<long long>(delta + 1, 60'000));
  }

  void Loop() {
    for (;;) {
      std::vector<pollfd> fds;
      std::vector<uint64_t> fd_conn;  // conn id per index; 0 = not a conn
      fds.push_back({wake_read_fd, POLLIN, 0});
      fd_conn.push_back(0);
      const bool watch_listen = !draining && listen_fd >= 0;
      if (watch_listen) {
        fds.push_back({listen_fd, POLLIN, 0});
        fd_conn.push_back(0);
      }
      for (const auto& [id, conn] : conns) {
        short events = POLLIN;
        if (conn->out_pos < conn->out.size()) events |= POLLOUT;
        fds.push_back({conn->fd, events, 0});
        fd_conn.push_back(id);
      }
      (void)::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                   ComputeTimeoutMs());

      if ((fds[0].revents & POLLIN) != 0) DrainWakePipe();
      ProcessMail();
      size_t index = 1;
      if (watch_listen) {
        if (!draining && (fds[index].revents & POLLIN) != 0) AcceptNew();
        ++index;
      }
      std::vector<uint64_t> to_close;
      for (; index < fds.size(); ++index) {
        const uint64_t id = fd_conn[index];
        auto it = conns.find(id);
        if (it == conns.end()) continue;  // closed mid-iteration
        Connection& conn = *it->second;
        if ((fds[index].revents & POLLNVAL) != 0) {
          to_close.push_back(id);
          continue;
        }
        if ((fds[index].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
          if (!ReadFromConnection(conn)) {
            to_close.push_back(id);
            continue;
          }
        }
        if (conn.out_pos < conn.out.size()) {
          if (!FlushConnection(conn)) {
            to_close.push_back(id);
            continue;
          }
        }
        if (conn.close_after_flush && conn.out_pos >= conn.out.size()) {
          to_close.push_back(id);
        }
      }
      for (const uint64_t id : to_close) CloseConnection(id);
      ExpireWaits();

      if (draining) {
        ProcessMail();  // late handler responses
        const bool handlers_idle =
            outstanding_handlers.load() == 0 && MailboxEmpty();
        bool flushed = true;
        for (const auto& [id, conn] : conns) {
          if (conn->out_pos < conn->out.size()) {
            flushed = false;
            break;
          }
        }
        if ((handlers_idle && flushed) ||
            SteadyClock::now() >= drain_deadline) {
          break;
        }
      }
    }
    for (const auto& [id, conn] : conns) ::close(conn->fd);
    conns.clear();
    waits.clear();
  }
};

NetServer::NetServer(ApiGateway* gateway, const PlatformOptions& options)
    : impl_(std::make_unique<Impl>(gateway, options)) {}

NetServer::~NetServer() { Shutdown(); }

Status NetServer::Start() {
  Impl& impl = *impl_;
  MutexLock lock(impl.mu);
  if (impl.started || impl.shut_down) {
    return Status::FailedPrecondition(
        "net: server already started or shut down");
  }

  impl.listen_fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (impl.listen_fd < 0) return Status::Internal(ErrnoMessage("socket()"));
  int one = 1;
  (void)::setsockopt(impl.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(impl.options.listen_port);
  if (::bind(impl.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(impl.listen_fd, 128) != 0) {
    const Status status = Status::Unavailable(
        "net: cannot listen on port " +
        std::to_string(impl.options.listen_port) + ": " +
        std::strerror(errno));
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(impl.listen_fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status status = Status::Internal(ErrnoMessage("getsockname()"));
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return status;
  }
  impl.bound_port.store(ntohs(bound.sin_port));

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) != 0) {
    const Status status = Status::Internal(ErrnoMessage("pipe2()"));
    ::close(impl.listen_fd);
    impl.listen_fd = -1;
    return status;
  }
  impl.wake_read_fd = pipe_fds[0];
  impl.wake_write_fd = pipe_fds[1];
  {
    MutexLock mail_lock(impl.mailbox->mu);
    impl.mailbox->wake_fd = impl.wake_write_fd;
  }

  impl.handler_pool = std::make_unique<ThreadPool>(
      impl.options.io_threads == 0 ? 1 : impl.options.io_threads);
  impl.loop_pool = std::make_unique<ThreadPool>(1);
  // The listener only appends to the unranked mailbox and pokes the pipe —
  // the exact shape StatusService's locking contract demands, because it
  // may run under Scheduler::mu_.
  auto mb = impl.mailbox;
  impl.listener_token = impl.gateway->AddTerminalListener(
      [mb](const std::string& task_id, TaskState /*state*/) {
        mb->Push({MailItem::kTerminal, 0, {}, task_id});
      });
  Impl* raw = impl_.get();
  impl.loop_done = impl.loop_pool->Submit([raw] { raw->Loop(); });
  impl.started = true;
  return Status::OK();
}

void NetServer::Shutdown() {
  Impl& impl = *impl_;
  bool was_started = false;
  {
    MutexLock lock(impl.mu);
    if (impl.shut_down) return;
    impl.shut_down = true;
    was_started = impl.started;
  }
  if (!was_started) return;
  // Stop the event source first: no new terminal mail after this (an
  // invocation already in flight lands in the still-open mailbox and is
  // processed or discarded during the drain).
  impl.gateway->RemoveTerminalListener(impl.listener_token);
  impl.mailbox->Push({MailItem::kShutdown, 0, {}, {}});
  if (impl.loop_done.valid()) impl.loop_done.wait();
  {
    MutexLock lock(impl.mailbox->mu);
    impl.mailbox->closed = true;
    impl.mailbox->wake_fd = -1;
  }
  // Handler tasks still queued finish against the closed mailbox (their
  // responses are dropped — their connections are gone anyway).
  impl.handler_pool->Shutdown();
  impl.loop_pool->Shutdown();
  ::close(impl.wake_read_fd);
  ::close(impl.wake_write_fd);
  impl.wake_read_fd = impl.wake_write_fd = -1;
}

uint16_t NetServer::port() const { return impl_->bound_port.load(); }

NetServerStats NetServer::stats() const {
  const Impl& impl = *impl_;
  NetServerStats stats;
  stats.connections_accepted = impl.connections_accepted.load();
  stats.connections_rejected = impl.connections_rejected.load();
  stats.frames_received = impl.frames_received.load();
  stats.frames_sent = impl.frames_sent.load();
  stats.protocol_errors = impl.protocol_errors.load();
  stats.events_pushed = impl.events_pushed.load();
  return stats;
}

}  // namespace net
}  // namespace cyclerank
