#ifndef CYCLERANK_NET_SERVER_H_
#define CYCLERANK_NET_SERVER_H_

#include <cstdint>
#include <memory>

#include "common/result.h"
#include "platform/gateway.h"
#include "platform/platform_options.h"

namespace cyclerank {
namespace net {

/// Monitoring counters of one `NetServer` (all monotonic).
struct NetServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_rejected = 0;  ///< over `max_connections`
  uint64_t frames_received = 0;
  uint64_t frames_sent = 0;
  uint64_t protocol_errors = 0;  ///< poisoned streams + undecodable payloads
  uint64_t events_pushed = 0;    ///< SUBSCRIBE terminal-state pushes
};

/// The TCP front of the platform: a poll()-driven non-blocking event loop
/// speaking the CYRQ1 framed protocol (net/frame.h, net/messages.h,
/// docs/PROTOCOL.md) and serving the full `ApiGateway` surface to remote
/// clients. `cyclerankd` (tools/cyclerankd.cc) is the daemon wrapper; the
/// blocking `NetClient` (net/client.h) is the matching caller.
///
/// Threading model — one owner per piece of state, almost no locks:
///
///  - a single *event-loop thread* (a private 1-thread pool) owns every
///    connection: fds, read-side `FrameDecoder`s, write buffers, parked
///    waits, and subscriptions. No lock guards them — nothing else may
///    touch them;
///  - a pool of `PlatformOptions::io_threads` *handler threads* runs the
///    slow gateway calls (upload/parse, submit, result marshalling) so one
///    fat request cannot stall every connection; finished responses are
///    marshalled back via a mailbox + self-pipe wakeup;
///  - fast calls (status, cancel, subscribe, stats) run inline on the
///    loop;
///  - `WaitForCompletion` and SUBSCRIBE never block any thread: the
///    server parks them and matures them from the gateway's
///    terminal-state listener (`ApiGateway::AddTerminalListener`), whose
///    callback only appends to the mailbox and pokes the wakeup pipe —
///    the shape the listener's locking contract demands.
///
/// Overload posture matches the rest of the platform: a connection past
/// `max_connections` gets a `kUnavailable` ERROR frame and a close; a
/// frame past `max_frame_bytes` is rejected before allocation.
class NetServer {
 public:
  /// `gateway` must outlive the server. `options` supplies `listen_port`
  /// (0 = ephemeral), `max_connections`, `max_frame_bytes`, `io_threads`.
  NetServer(ApiGateway* gateway, const PlatformOptions& options);

  /// Calls `Shutdown()`.
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, registers the terminal-state listener, and starts
  /// the event loop. Fails (kUnavailable / kInternal) when the port is
  /// taken or socket setup fails; the server is then inert and may not be
  /// restarted.
  Status Start();

  /// Graceful drain, the SIGTERM path of `cyclerankd`: stop accepting,
  /// answer parked waits with `kUnavailable`, let in-flight handlers
  /// finish, flush write buffers (bounded — a peer that stops reading
  /// cannot wedge shutdown), close everything, join the loop. Idempotent;
  /// safe to call without a successful `Start()`.
  void Shutdown();

  /// The bound TCP port (after `Start()`; the useful form with
  /// `listen_port=0`).
  uint16_t port() const;

  /// Point-in-time counters (cheap, lock-free).
  NetServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace cyclerank

#endif  // CYCLERANK_NET_SERVER_H_
