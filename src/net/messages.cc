#include "net/messages.h"

#include <utility>

#include "common/binary_io.h"
#include "platform/params.h"
#include "platform/result_io.h"

namespace cyclerank {
namespace net {

namespace {

Status Malformed(const char* message, const char* field) {
  return Status::ParseError(std::string("net: malformed ") + message +
                            " payload (" + field + ")");
}

void AppendStatus(std::string* out, const Status& status) {
  out->push_back(static_cast<char>(status.code()));
  binio::AppendString(out, status.message());
}

bool ReadStatus(binio::Reader* reader, Status* out) {
  uint8_t code = 0;
  std::string message;
  if (!reader->ReadByte(&code) || !reader->ReadString(&message)) return false;
  if (code > static_cast<uint8_t>(StatusCode::kUnavailable)) return false;
  *out = Status(static_cast<StatusCode>(code), std::move(message));
  return true;
}

void AppendTaskSpec(std::string* out, const TaskSpec& spec) {
  binio::AppendString(out, spec.dataset);
  binio::AppendString(out, spec.algorithm);
  // Params travel in ParamMap's canonical sorted "k=v, k=v" text — the
  // exact form task fingerprints hash, so wire and in-process submissions
  // of the same spec coalesce in the scheduler's single-flight map.
  binio::AppendString(out, spec.params.ToString());
}

bool ReadTaskSpec(binio::Reader* reader, TaskSpec* out) {
  std::string params_text;
  if (!reader->ReadString(&out->dataset) ||
      !reader->ReadString(&out->algorithm) ||
      !reader->ReadString(&params_text)) {
    return false;
  }
  Result<ParamMap> params = ParamMap::Parse(params_text);
  if (!params.ok()) return false;
  out->params = std::move(params).value();
  return true;
}

void AppendComparisonStatus(std::string* out, const ComparisonStatus& status) {
  binio::AppendString(out, status.comparison_id);
  binio::AppendVarint(out, status.task_ids.size());
  for (size_t i = 0; i < status.task_ids.size(); ++i) {
    binio::AppendString(out, status.task_ids[i]);
    out->push_back(static_cast<char>(status.states[i]));
  }
  binio::AppendU64(out, status.completed);
  binio::AppendU64(out, status.failed);
  binio::AppendU64(out, status.cancelled);
  out->push_back(status.done ? 1 : 0);
}

bool ReadComparisonStatus(binio::Reader* reader, ComparisonStatus* out) {
  uint64_t count = 0;
  if (!reader->ReadString(&out->comparison_id) || !reader->ReadVarint(&count))
    return false;
  // Each entry is at least 9 bytes (length prefix + state byte), so this
  // bound rejects an absurd declared count before any reserve.
  if (count > reader->remaining()) return false;
  out->task_ids.clear();
  out->states.clear();
  out->task_ids.reserve(count);
  out->states.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string task_id;
    uint8_t state = 0;
    if (!reader->ReadString(&task_id) || !reader->ReadByte(&state))
      return false;
    if (state > static_cast<uint8_t>(TaskState::kCancelled)) return false;
    out->task_ids.push_back(std::move(task_id));
    out->states.push_back(static_cast<TaskState>(state));
  }
  uint64_t completed = 0, failed = 0, cancelled = 0;
  uint8_t done = 0;
  if (!reader->ReadU64(&completed) || !reader->ReadU64(&failed) ||
      !reader->ReadU64(&cancelled) || !reader->ReadByte(&done)) {
    return false;
  }
  if (done > 1) return false;
  out->completed = static_cast<size_t>(completed);
  out->failed = static_cast<size_t>(failed);
  out->cancelled = static_cast<size_t>(cancelled);
  out->done = done == 1;
  return true;
}

}  // namespace

uint64_t PeekRequestId(std::string_view payload) {
  binio::Reader reader(payload);
  uint64_t request_id = 0;
  if (!reader.ReadU64(&request_id)) return 0;
  return request_id;
}

// ---- Requests ------------------------------------------------------------

std::string EncodeUploadDatasetRequest(const UploadDatasetRequest& msg) {
  std::string payload;
  payload.reserve(32 + msg.name.size() + msg.content.size());
  binio::AppendU64(&payload, msg.request_id);
  binio::AppendString(&payload, msg.name);
  binio::AppendString(&payload, msg.content);
  return EncodeFrame(kUploadDatasetReq, payload);
}

Result<UploadDatasetRequest> DecodeUploadDatasetRequest(
    std::string_view payload) {
  binio::Reader reader(payload);
  UploadDatasetRequest msg;
  if (!reader.ReadU64(&msg.request_id) || !reader.ReadString(&msg.name) ||
      !reader.ReadString(&msg.content) || !reader.AtEnd()) {
    return Malformed("UPLOAD_DATASET request", "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeSubmitQuerySetRequest(const SubmitQuerySetRequest& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  binio::AppendVarint(&payload, msg.query_set.tasks.size());
  for (const TaskSpec& spec : msg.query_set.tasks) {
    AppendTaskSpec(&payload, spec);
  }
  return EncodeFrame(kSubmitQuerySetReq, payload);
}

Result<SubmitQuerySetRequest> DecodeSubmitQuerySetRequest(
    std::string_view payload) {
  binio::Reader reader(payload);
  SubmitQuerySetRequest msg;
  uint64_t count = 0;
  if (!reader.ReadU64(&msg.request_id) || !reader.ReadVarint(&count)) {
    return Malformed("SUBMIT_QUERY_SET request", "truncated header");
  }
  if (count > reader.remaining()) {
    return Malformed("SUBMIT_QUERY_SET request", "task count exceeds payload");
  }
  msg.query_set.tasks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TaskSpec spec;
    if (!ReadTaskSpec(&reader, &spec)) {
      return Malformed("SUBMIT_QUERY_SET request", "bad task spec");
    }
    msg.query_set.tasks.push_back(std::move(spec));
  }
  if (!reader.AtEnd()) {
    return Malformed("SUBMIT_QUERY_SET request", "trailing bytes");
  }
  return msg;
}

std::string EncodeComparisonRequest(uint8_t type,
                                    const ComparisonRequest& msg) {
  std::string payload;
  payload.reserve(16 + msg.comparison_id.size());
  binio::AppendU64(&payload, msg.request_id);
  binio::AppendString(&payload, msg.comparison_id);
  return EncodeFrame(type, payload);
}

Result<ComparisonRequest> DecodeComparisonRequest(std::string_view payload) {
  binio::Reader reader(payload);
  ComparisonRequest msg;
  if (!reader.ReadU64(&msg.request_id) ||
      !reader.ReadString(&msg.comparison_id) || !reader.AtEnd()) {
    return Malformed("comparison request", "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeWaitRequest(const WaitRequest& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  binio::AppendString(&payload, msg.comparison_id);
  binio::AppendU64(&payload, msg.timeout_ms);
  return EncodeFrame(kWaitReq, payload);
}

Result<WaitRequest> DecodeWaitRequest(std::string_view payload) {
  binio::Reader reader(payload);
  WaitRequest msg;
  if (!reader.ReadU64(&msg.request_id) ||
      !reader.ReadString(&msg.comparison_id) ||
      !reader.ReadU64(&msg.timeout_ms) || !reader.AtEnd()) {
    return Malformed("WAIT_FOR_COMPLETION request",
                     "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeStatsRequest(const StatsRequest& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  return EncodeFrame(kStatsReq, payload);
}

Result<StatsRequest> DecodeStatsRequest(std::string_view payload) {
  binio::Reader reader(payload);
  StatsRequest msg;
  if (!reader.ReadU64(&msg.request_id) || !reader.AtEnd()) {
    return Malformed("STATS request", "truncated or trailing bytes");
  }
  return msg;
}

// ---- Responses -----------------------------------------------------------

std::string EncodeAckResponse(uint8_t type, const AckResponse& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  AppendStatus(&payload, msg.status);
  return EncodeFrame(type, payload);
}

Result<AckResponse> DecodeAckResponse(std::string_view payload) {
  binio::Reader reader(payload);
  AckResponse msg;
  if (!reader.ReadU64(&msg.request_id) || !ReadStatus(&reader, &msg.status) ||
      !reader.AtEnd()) {
    return Malformed("ack response", "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeSubmitQuerySetResponse(const SubmitQuerySetResponse& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  AppendStatus(&payload, msg.status);
  binio::AppendString(&payload, msg.comparison_id);
  return EncodeFrame(kSubmitQuerySetResp, payload);
}

Result<SubmitQuerySetResponse> DecodeSubmitQuerySetResponse(
    std::string_view payload) {
  binio::Reader reader(payload);
  SubmitQuerySetResponse msg;
  if (!reader.ReadU64(&msg.request_id) || !ReadStatus(&reader, &msg.status) ||
      !reader.ReadString(&msg.comparison_id) || !reader.AtEnd()) {
    return Malformed("SUBMIT_QUERY_SET response",
                     "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeGetStatusResponse(const GetStatusResponse& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  AppendStatus(&payload, msg.status);
  AppendComparisonStatus(&payload, msg.comparison);
  return EncodeFrame(kGetStatusResp, payload);
}

Result<GetStatusResponse> DecodeGetStatusResponse(std::string_view payload) {
  binio::Reader reader(payload);
  GetStatusResponse msg;
  if (!reader.ReadU64(&msg.request_id) || !ReadStatus(&reader, &msg.status) ||
      !ReadComparisonStatus(&reader, &msg.comparison) || !reader.AtEnd()) {
    return Malformed("GET_STATUS response", "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeGetResultsResponse(const GetResultsResponse& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  AppendStatus(&payload, msg.status);
  binio::AppendVarint(&payload, msg.results.size());
  for (const TaskResult& result : msg.results) {
    // The lossless result_io codec, nested as one length-prefixed blob per
    // result: wire results decode bit-identical to in-process ones.
    binio::AppendString(&payload, SerializeTaskResult(result));
  }
  return EncodeFrame(kGetResultsResp, payload);
}

Result<GetResultsResponse> DecodeGetResultsResponse(
    std::string_view payload) {
  binio::Reader reader(payload);
  GetResultsResponse msg;
  uint64_t count = 0;
  if (!reader.ReadU64(&msg.request_id) || !ReadStatus(&reader, &msg.status) ||
      !reader.ReadVarint(&count)) {
    return Malformed("GET_RESULTS response", "truncated header");
  }
  if (count > reader.remaining()) {
    return Malformed("GET_RESULTS response", "result count exceeds payload");
  }
  msg.results.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string blob;
    if (!reader.ReadString(&blob)) {
      return Malformed("GET_RESULTS response", "truncated result blob");
    }
    Result<TaskResult> result = DeserializeTaskResult(blob);
    if (!result.ok()) return result.status();
    msg.results.push_back(std::move(result).value());
  }
  if (!reader.AtEnd()) {
    return Malformed("GET_RESULTS response", "trailing bytes");
  }
  return msg;
}

std::string EncodeWaitResponse(const WaitResponse& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  AppendStatus(&payload, msg.status);
  payload.push_back(msg.done ? 1 : 0);
  return EncodeFrame(kWaitResp, payload);
}

Result<WaitResponse> DecodeWaitResponse(std::string_view payload) {
  binio::Reader reader(payload);
  WaitResponse msg;
  uint8_t done = 0;
  if (!reader.ReadU64(&msg.request_id) || !ReadStatus(&reader, &msg.status) ||
      !reader.ReadByte(&done) || done > 1 || !reader.AtEnd()) {
    return Malformed("WAIT_FOR_COMPLETION response",
                     "truncated or trailing bytes");
  }
  msg.done = done == 1;
  return msg;
}

std::string EncodeStatsResponse(const StatsResponse& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  AppendStatus(&payload, msg.status);
  binio::AppendString(&payload, msg.text);
  return EncodeFrame(kStatsResp, payload);
}

Result<StatsResponse> DecodeStatsResponse(std::string_view payload) {
  binio::Reader reader(payload);
  StatsResponse msg;
  if (!reader.ReadU64(&msg.request_id) || !ReadStatus(&reader, &msg.status) ||
      !reader.ReadString(&msg.text) || !reader.AtEnd()) {
    return Malformed("STATS response", "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeEventMessage(const EventMessage& msg) {
  std::string payload;
  AppendComparisonStatus(&payload, msg.comparison);
  return EncodeFrame(kEvent, payload);
}

Result<EventMessage> DecodeEventMessage(std::string_view payload) {
  binio::Reader reader(payload);
  EventMessage msg;
  if (!ReadComparisonStatus(&reader, &msg.comparison) || !reader.AtEnd()) {
    return Malformed("EVENT", "truncated or trailing bytes");
  }
  return msg;
}

std::string EncodeErrorMessage(const ErrorMessage& msg) {
  std::string payload;
  binio::AppendU64(&payload, msg.request_id);
  AppendStatus(&payload, msg.status);
  return EncodeFrame(kError, payload);
}

Result<ErrorMessage> DecodeErrorMessage(std::string_view payload) {
  binio::Reader reader(payload);
  ErrorMessage msg;
  if (!reader.ReadU64(&msg.request_id) || !ReadStatus(&reader, &msg.status) ||
      !reader.AtEnd()) {
    return Malformed("ERROR", "truncated or trailing bytes");
  }
  return msg;
}

}  // namespace net
}  // namespace cyclerank
