#include "net/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <string>
#include <utility>

namespace cyclerank {
namespace net {

namespace {

Status NotConnected() {
  return Status::FailedPrecondition("net: client is not connected");
}

/// Converts a gateway-style seconds timeout to poll() milliseconds:
/// 0 = indefinite (-1), sub-millisecond positives round up so they still
/// bound the wait.
Result<int> TimeoutToMs(double timeout_seconds) {
  if (timeout_seconds < 0.0) {
    return Status::InvalidArgument("net: negative timeout");
  }
  if (timeout_seconds == 0.0) return -1;
  const double ms = std::ceil(timeout_seconds * 1000.0);
  if (ms > 2147483000.0) return 2147483000;
  return static_cast<int>(ms);
}

}  // namespace

Status NetClient::Connect(const std::string& host, uint16_t port) {
  if (fd_ >= 0) {
    return Status::FailedPrecondition("net: client already connected");
  }
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* addrs = nullptr;
  const int rc =
      ::getaddrinfo(host.c_str(), std::to_string(port).c_str(), &hints, &addrs);
  if (rc != 0) {
    return Status::Unavailable("net: cannot resolve " + host + ": " +
                               ::gai_strerror(rc));
  }
  int last_errno = 0;
  for (const addrinfo* ai = addrs; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                            ai->ai_protocol);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      int one = 1;
      (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      fd_ = fd;
      break;
    }
    last_errno = errno;
    ::close(fd);
  }
  ::freeaddrinfo(addrs);
  if (fd_ < 0) {
    return Status::Unavailable("net: cannot connect to " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(last_errno));
  }
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_events_.clear();
}

Status NetClient::SendAll(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Unavailable(std::string("net: send failed: ") +
                               std::strerror(errno));
  }
  return Status::OK();
}

Status NetClient::FillBuffer(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) {
      return Status::Unavailable(std::string("net: poll failed: ") +
                                 std::strerror(errno));
    }
    if (ready == 0) {
      return Status::DeadlineExceeded("net: timed out waiting for server");
    }
    break;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n > 0) {
      decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
      return Status::OK();
    }
    if (n == 0) {
      return Status::Unavailable("net: server closed the connection");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string("net: read failed: ") +
                               std::strerror(errno));
  }
}

Result<Frame> NetClient::RoundTrip(uint64_t request_id, std::string request,
                                   uint8_t expected_type) {
  if (fd_ < 0) return NotConnected();
  const Status sent = SendAll(request);
  if (!sent.ok()) return sent;
  Frame frame;
  Status protocol_error;
  for (;;) {
    const FrameDecoder::Outcome outcome =
        decoder_.Next(&frame, &protocol_error);
    if (outcome == FrameDecoder::Outcome::kProtocolError) {
      Close();  // the stream is unrecoverable past a framing violation
      return protocol_error;
    }
    if (outcome == FrameDecoder::Outcome::kNeedMoreBytes) {
      const Status filled = FillBuffer(/*timeout_ms=*/-1);
      if (!filled.ok()) {
        Close();
        return filled;
      }
      continue;
    }
    if (frame.type == kEvent) {
      // Unsolicited push racing our response: keep it for NextEvent().
      auto event = DecodeEventMessage(frame.payload);
      if (event.ok()) pending_events_.push_back(std::move(event).value());
      continue;
    }
    if (frame.type == kError) {
      auto error = DecodeErrorMessage(frame.payload);
      if (!error.ok()) return error.status();
      if (error->request_id != 0 && error->request_id != request_id) continue;
      return error->status;
    }
    if (frame.type == expected_type &&
        PeekRequestId(frame.payload) == request_id) {
      return frame;
    }
    // A response to a request we never sent — the server is confused or
    // the caller broke the one-outstanding-request rule.
    return Status::Internal("net: unexpected frame type " +
                            std::to_string(frame.type) + " from server");
  }
}

Status NetClient::UploadDataset(const std::string& name,
                                const std::string& content) {
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(
      id, EncodeUploadDatasetRequest({id, name, content}), kUploadDatasetResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeAckResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  return resp->status;
}

Result<std::string> NetClient::SubmitQuerySet(const QuerySet& query_set) {
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(id, EncodeSubmitQuerySetRequest({id, query_set}),
                         kSubmitQuerySetResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeSubmitQuerySetResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  if (!resp->status.ok()) return resp->status;
  return std::move(resp->comparison_id);
}

Result<ComparisonStatus> NetClient::GetStatus(
    const std::string& comparison_id) {
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(
      id, EncodeComparisonRequest(kGetStatusReq, {id, comparison_id}),
      kGetStatusResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeGetStatusResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  if (!resp->status.ok()) return resp->status;
  return std::move(resp->comparison);
}

Result<std::vector<TaskResult>> NetClient::GetResults(
    const std::string& comparison_id) {
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(
      id, EncodeComparisonRequest(kGetResultsReq, {id, comparison_id}),
      kGetResultsResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeGetResultsResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  if (!resp->status.ok()) return resp->status;
  return std::move(resp->results);
}

Result<bool> NetClient::WaitForCompletion(const std::string& comparison_id,
                                          double timeout_seconds) {
  if (timeout_seconds < 0.0) {
    // Same contract as ApiGateway::WaitForCompletion — reject before any
    // bytes hit the wire.
    return Status::InvalidArgument(
        "net: negative timeout in WaitForCompletion");
  }
  const uint64_t timeout_ms = static_cast<uint64_t>(
      std::ceil(timeout_seconds * 1000.0));
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(
      id, EncodeWaitRequest({id, comparison_id, timeout_ms}), kWaitResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeWaitResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  if (!resp->status.ok()) return resp->status;
  return resp->done;
}

Status NetClient::Cancel(const std::string& comparison_id) {
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(
      id, EncodeComparisonRequest(kCancelReq, {id, comparison_id}),
      kCancelResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeAckResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  return resp->status;
}

Status NetClient::Subscribe(const std::string& comparison_id) {
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(
      id, EncodeComparisonRequest(kSubscribeReq, {id, comparison_id}),
      kSubscribeResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeAckResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  return resp->status;
}

Result<EventMessage> NetClient::NextEvent(double timeout_seconds) {
  if (!pending_events_.empty()) {
    EventMessage event = std::move(pending_events_.front());
    pending_events_.pop_front();
    return event;
  }
  if (fd_ < 0) return NotConnected();
  CYCLERANK_ASSIGN_OR_RETURN(const int timeout_ms,
                             TimeoutToMs(timeout_seconds));
  Frame frame;
  Status protocol_error;
  for (;;) {
    const FrameDecoder::Outcome outcome =
        decoder_.Next(&frame, &protocol_error);
    if (outcome == FrameDecoder::Outcome::kProtocolError) {
      Close();
      return protocol_error;
    }
    if (outcome == FrameDecoder::Outcome::kNeedMoreBytes) {
      // Note: with a finite timeout this bounds each poll, not the total
      // wait — good enough for "did anything arrive", the only use here.
      const Status filled = FillBuffer(timeout_ms);
      if (!filled.ok()) return filled;
      continue;
    }
    if (frame.type == kEvent) {
      auto event = DecodeEventMessage(frame.payload);
      if (!event.ok()) return event.status();
      return std::move(event).value();
    }
    if (frame.type == kError) {
      auto error = DecodeErrorMessage(frame.payload);
      return error.ok() ? error->status : error.status();
    }
    return Status::Internal("net: unexpected frame type " +
                            std::to_string(frame.type) +
                            " while waiting for an event");
  }
}

Result<std::string> NetClient::Stats() {
  const uint64_t id = next_request_id_++;
  auto frame = RoundTrip(id, EncodeStatsRequest({id}), kStatsResp);
  if (!frame.ok()) return frame.status();
  auto resp = DecodeStatsResponse(frame->payload);
  if (!resp.ok()) return resp.status();
  if (!resp->status.ok()) return resp->status;
  return std::move(resp->text);
}

}  // namespace net
}  // namespace cyclerank
