#ifndef CYCLERANK_NET_CLIENT_H_
#define CYCLERANK_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "net/messages.h"
#include "platform/gateway.h"
#include "platform/task.h"

namespace cyclerank {
namespace net {

/// Blocking CYRQ1 client — the remote twin of `ApiGateway`: every method
/// mirrors a gateway call, with the same `Result`/`Status` shapes, so code
/// written against the in-process gateway ports to `--connect` mode by
/// swapping the object. One connection, one outstanding request at a time;
/// NOT thread-safe (wrap in your own lock or open one client per thread —
/// connections are cheap, the server multiplexes them on one loop).
///
/// Server-pushed EVENT frames arriving between calls are never lost: any
/// round trip that encounters one queues it for the next `NextEvent()`.
class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { Close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Movable so factories can hand out connected clients by value.
  NetClient(NetClient&& other) noexcept
      : fd_(other.fd_),
        next_request_id_(other.next_request_id_),
        decoder_(std::move(other.decoder_)),
        pending_events_(std::move(other.pending_events_)) {
    other.fd_ = -1;  // the moved-from client no longer owns the socket
  }
  NetClient& operator=(NetClient&&) = delete;

  /// Resolves `host` (name or dotted quad) and connects. Fails with
  /// `kUnavailable` when nothing listens there.
  Status Connect(const std::string& host, uint16_t port);

  /// Severs the connection; every later call fails `kFailedPrecondition`.
  /// Idempotent.
  void Close();

  bool connected() const { return fd_ >= 0; }

  // ---- The gateway surface, over the wire ------------------------------

  Status UploadDataset(const std::string& name, const std::string& content);
  Result<std::string> SubmitQuerySet(const QuerySet& query_set);
  Result<ComparisonStatus> GetStatus(const std::string& comparison_id);
  Result<std::vector<TaskResult>> GetResults(const std::string& comparison_id);

  /// Mirrors `ApiGateway::WaitForCompletion`: 0 waits indefinitely,
  /// negative is rejected client-side. The wait is parked server-side
  /// (WAIT frame); this thread blocks on the socket, the server blocks
  /// nobody.
  Result<bool> WaitForCompletion(const std::string& comparison_id,
                                 double timeout_seconds = 0.0);

  Status Cancel(const std::string& comparison_id);

  /// Registers this connection for a terminal-state push when
  /// `comparison_id` completes; collect it with `NextEvent()`. A
  /// comparison that is already done is pushed immediately.
  Status Subscribe(const std::string& comparison_id);

  /// Blocks until a pushed EVENT arrives (or `timeout_seconds`; 0 waits
  /// indefinitely). `kDeadlineExceeded` on timeout.
  Result<EventMessage> NextEvent(double timeout_seconds = 0.0);

  /// Server counters as sorted `key=value` lines.
  Result<std::string> Stats();

 private:
  /// Sends `request` and reads until the `expected_type` response with our
  /// request id arrives. EVENTs encountered on the way are queued; an
  /// ERROR frame becomes the returned status.
  Result<Frame> RoundTrip(uint64_t request_id, std::string request,
                          uint8_t expected_type);

  Status SendAll(std::string_view bytes);
  /// Reads more bytes into `decoder_`; `timeout_ms < 0` blocks forever.
  /// `kDeadlineExceeded` on poll timeout, `kUnavailable` on EOF.
  Status FillBuffer(int timeout_ms);

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  /// max_frame_bytes=0: the client trusts its server (which bounds its own
  /// side with `PlatformOptions::max_frame_bytes`).
  FrameDecoder decoder_{0};
  std::deque<EventMessage> pending_events_;
};

}  // namespace net
}  // namespace cyclerank

#endif  // CYCLERANK_NET_CLIENT_H_
