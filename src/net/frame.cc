#include "net/frame.h"

#include <cstring>
#include <string>
#include <utility>

#include "common/binary_io.h"

namespace cyclerank {
namespace net {

namespace {

/// The longest LEB128 encoding of a uint64 (10 bytes): past this many
/// continuation bytes the varint itself is malformed, not merely split
/// across reads.
constexpr size_t kMaxVarintBytes = 10;

}  // namespace

void AppendFrame(uint8_t type, std::string_view payload, std::string* out) {
  out->append(kFrameMagic, sizeof(kFrameMagic));
  out->push_back(static_cast<char>(kProtocolVersion));
  out->push_back(static_cast<char>(type));
  binio::AppendVarint(out, payload.size());
  binio::AppendU64(out, binio::Fnv1a64(payload));
  out->append(payload.data(), payload.size());
}

std::string EncodeFrame(uint8_t type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameFixedHeaderBytes + kMaxVarintBytes + 8 + payload.size());
  AppendFrame(type, payload, &out);
  return out;
}

void FrameDecoder::Feed(std::string_view bytes) {
  if (poisoned_) return;  // no point growing a buffer we will never decode
  // Reclaim the decoded prefix before appending, once it dominates the
  // buffer — amortized O(1) per byte, and a long-lived connection never
  // accretes an unbounded dead prefix.
  if (consumed_ > 4096 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes.data(), bytes.size());
}

FrameDecoder::Outcome FrameDecoder::Poison(Status status, Status* error) {
  poisoned_ = true;
  poison_status_ = std::move(status);
  buffer_.clear();
  consumed_ = 0;
  if (error != nullptr) *error = poison_status_;
  return Outcome::kProtocolError;
}

FrameDecoder::Outcome FrameDecoder::Next(Frame* frame, Status* error) {
  if (poisoned_) {
    if (error != nullptr) *error = poison_status_;
    return Outcome::kProtocolError;
  }
  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameFixedHeaderBytes) return Outcome::kNeedMoreBytes;

  if (std::memcmp(pending.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Poison(Status::ParseError(
                      "net: bad frame magic (not a CYRQ1 stream)"),
                  error);
  }
  const uint8_t version = static_cast<unsigned char>(pending[4]);
  if (version != kProtocolVersion) {
    // An unknown version may frame its bytes differently, so nothing after
    // this byte can be trusted — reject instead of guessing. The peer
    // answers with an ERROR frame (v1 framing, which any future version
    // must still parse far enough to read — see docs/PROTOCOL.md).
    return Poison(Status::Unimplemented(
                      "net: unsupported protocol version " +
                      std::to_string(version) + " (this build speaks " +
                      std::to_string(kProtocolVersion) + ")"),
                  error);
  }
  const uint8_t type = static_cast<unsigned char>(pending[5]);

  // Decode the length varint by hand: binio::Reader cannot distinguish "a
  // truncated buffer" (wait for more bytes) from "10 bytes without a
  // terminator" (malformed).
  uint64_t payload_len = 0;
  size_t varint_bytes = 0;
  bool varint_done = false;
  while (varint_bytes < kMaxVarintBytes) {
    const size_t index = kFrameFixedHeaderBytes + varint_bytes;
    if (index >= pending.size()) return Outcome::kNeedMoreBytes;
    const uint8_t byte = static_cast<unsigned char>(pending[index]);
    payload_len |= static_cast<uint64_t>(byte & 0x7f) << (7 * varint_bytes);
    ++varint_bytes;
    if ((byte & 0x80) == 0) {
      varint_done = true;
      break;
    }
  }
  if (!varint_done) {
    return Poison(
        Status::ParseError("net: frame length varint exceeds 10 bytes"),
        error);
  }
  // Enforced on the *declared* length, before any allocation: a hostile
  // 2^60-byte claim is rejected here with only header bytes buffered.
  if (max_frame_bytes_ != 0 && payload_len > max_frame_bytes_) {
    return Poison(Status::InvalidArgument(
                      "net: frame payload of " + std::to_string(payload_len) +
                      " bytes exceeds max_frame_bytes=" +
                      std::to_string(max_frame_bytes_)),
                  error);
  }

  const size_t header_bytes = kFrameFixedHeaderBytes + varint_bytes + 8;
  if (pending.size() < header_bytes ||
      pending.size() - header_bytes < payload_len) {
    return Outcome::kNeedMoreBytes;
  }
  binio::Reader checksum_reader(
      pending.substr(kFrameFixedHeaderBytes + varint_bytes, 8));
  uint64_t declared_checksum = 0;
  checksum_reader.ReadU64(&declared_checksum);  // 8 bytes present by now
  const std::string_view payload =
      pending.substr(header_bytes, static_cast<size_t>(payload_len));
  if (binio::Fnv1a64(payload) != declared_checksum) {
    return Poison(
        Status::ParseError("net: frame checksum mismatch (corrupt stream)"),
        error);
  }

  frame->type = type;
  frame->payload.assign(payload.data(), payload.size());
  consumed_ += header_bytes + static_cast<size_t>(payload_len);
  return Outcome::kFrame;
}

}  // namespace net
}  // namespace cyclerank
