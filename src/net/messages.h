#ifndef CYCLERANK_NET_MESSAGES_H_
#define CYCLERANK_NET_MESSAGES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "net/frame.h"
#include "platform/gateway.h"
#include "platform/task.h"

namespace cyclerank {
namespace net {

/// CYRQ1 message payloads — one struct + Encode/Decode pair per frame
/// type, covering the full gateway surface. Normative spec:
/// docs/PROTOCOL.md (§ "Message types"); field order there is field order
/// here.
///
/// Conventions:
///  - every *request* payload begins with a client-chosen u64 `request_id`,
///    echoed verbatim in the matching response, so clients may pipeline;
///  - every *response* payload begins with that echo plus the operation's
///    `Status` (code byte + message string) — transport success and
///    application failure travel in the same envelope;
///  - `Encode*` returns a complete frame (header + checksum + payload),
///    ready to write to a socket; `Decode*` takes the *payload* of an
///    already-verified frame and fails with `kParseError` on truncation
///    or out-of-domain values, never crashing on hostile input;
///  - `TaskResult`s travel in the lossless `result_io.h` binary codec, so
///    a result read over the wire is bit-identical to the in-process one.

// ---- Frame types ---------------------------------------------------------

/// Requests occupy 0x01..0x7f (0x70+ reserved for server-initiated
/// frames); each response is its request's type with the high bit set.
enum MsgType : uint8_t {
  kUploadDatasetReq = 0x01,
  kSubmitQuerySetReq = 0x02,
  kGetStatusReq = 0x03,
  kGetResultsReq = 0x04,
  kWaitReq = 0x05,
  kCancelReq = 0x06,
  kSubscribeReq = 0x07,
  kStatsReq = 0x08,

  /// Server-initiated terminal-state push (no request id: unsolicited).
  kEvent = 0x70,
  /// Protocol-level failure: undecodable payload, unknown type, overload.
  kError = 0x7f,

  kUploadDatasetResp = kUploadDatasetReq | 0x80,
  kSubmitQuerySetResp = kSubmitQuerySetReq | 0x80,
  kGetStatusResp = kGetStatusReq | 0x80,
  kGetResultsResp = kGetResultsReq | 0x80,
  kWaitResp = kWaitReq | 0x80,
  kCancelResp = kCancelReq | 0x80,
  kSubscribeResp = kSubscribeReq | 0x80,
  kStatsResp = kStatsReq | 0x80,
};

// ---- Requests ------------------------------------------------------------

/// `Datastore::UploadDataset`: raw dataset text (edgelist / pajek / ASD,
/// auto-sniffed server-side) stored under `name`.
struct UploadDatasetRequest {
  uint64_t request_id = 0;
  std::string name;
  std::string content;
};

/// `ApiGateway::SubmitQuerySet`: the whole query set batched into one
/// frame — one round trip per comparison, however many tasks it carries.
struct SubmitQuerySetRequest {
  uint64_t request_id = 0;
  QuerySet query_set;
};

/// Shared shape of GetStatus / GetResults / Cancel / Subscribe — the
/// frame type says which operation.
struct ComparisonRequest {
  uint64_t request_id = 0;
  std::string comparison_id;
};

/// `ApiGateway::WaitForCompletion`. `timeout_ms == 0` waits indefinitely
/// (the server answers only on completion); the server never blocks a
/// thread on it — waits are parked on the event loop and matured by
/// terminal-state pushes.
struct WaitRequest {
  uint64_t request_id = 0;
  std::string comparison_id;
  uint64_t timeout_ms = 0;
};

/// Server/platform counters as `key=value` lines.
struct StatsRequest {
  uint64_t request_id = 0;
};

// ---- Responses -----------------------------------------------------------

/// Upload / Cancel / Subscribe acknowledgment: just the echoed id and the
/// operation's Status.
struct AckResponse {
  uint64_t request_id = 0;
  Status status;
};

struct SubmitQuerySetResponse {
  uint64_t request_id = 0;
  Status status;
  std::string comparison_id;  ///< empty on failure
};

struct GetStatusResponse {
  uint64_t request_id = 0;
  Status status;
  ComparisonStatus comparison;  ///< default-constructed on failure
};

struct GetResultsResponse {
  uint64_t request_id = 0;
  Status status;
  std::vector<TaskResult> results;  ///< empty on failure
};

struct WaitResponse {
  uint64_t request_id = 0;
  Status status;
  bool done = false;  ///< false = timed out (mirrors WaitForCompletion)
};

struct StatsResponse {
  uint64_t request_id = 0;
  Status status;
  std::string text;  ///< sorted `key=value` lines
};

/// Terminal-state push: the comparison a SUBSCRIBE registered reached
/// `done` (every task terminal). Carries the full aggregate status so the
/// subscriber needs no follow-up poll.
struct EventMessage {
  ComparisonStatus comparison;
};

/// Protocol-level error. `request_id` echoes the offending request when
/// the server could still read its leading u64, 0 otherwise (e.g. a
/// corrupt stream, where the ERROR frame is the connection's last).
struct ErrorMessage {
  uint64_t request_id = 0;
  Status status;
};

// ---- Codecs --------------------------------------------------------------

std::string EncodeUploadDatasetRequest(const UploadDatasetRequest& msg);
Result<UploadDatasetRequest> DecodeUploadDatasetRequest(
    std::string_view payload);

std::string EncodeSubmitQuerySetRequest(const SubmitQuerySetRequest& msg);
Result<SubmitQuerySetRequest> DecodeSubmitQuerySetRequest(
    std::string_view payload);

/// `type` must be one of kGetStatusReq / kGetResultsReq / kCancelReq /
/// kSubscribeReq — the struct is shared, the frame type disambiguates.
std::string EncodeComparisonRequest(uint8_t type,
                                    const ComparisonRequest& msg);
Result<ComparisonRequest> DecodeComparisonRequest(std::string_view payload);

std::string EncodeWaitRequest(const WaitRequest& msg);
Result<WaitRequest> DecodeWaitRequest(std::string_view payload);

std::string EncodeStatsRequest(const StatsRequest& msg);
Result<StatsRequest> DecodeStatsRequest(std::string_view payload);

/// `type` must be one of kUploadDatasetResp / kCancelResp / kSubscribeResp.
std::string EncodeAckResponse(uint8_t type, const AckResponse& msg);
Result<AckResponse> DecodeAckResponse(std::string_view payload);

std::string EncodeSubmitQuerySetResponse(const SubmitQuerySetResponse& msg);
Result<SubmitQuerySetResponse> DecodeSubmitQuerySetResponse(
    std::string_view payload);

std::string EncodeGetStatusResponse(const GetStatusResponse& msg);
Result<GetStatusResponse> DecodeGetStatusResponse(std::string_view payload);

std::string EncodeGetResultsResponse(const GetResultsResponse& msg);
Result<GetResultsResponse> DecodeGetResultsResponse(std::string_view payload);

std::string EncodeWaitResponse(const WaitResponse& msg);
Result<WaitResponse> DecodeWaitResponse(std::string_view payload);

std::string EncodeStatsResponse(const StatsResponse& msg);
Result<StatsResponse> DecodeStatsResponse(std::string_view payload);

std::string EncodeEventMessage(const EventMessage& msg);
Result<EventMessage> DecodeEventMessage(std::string_view payload);

std::string EncodeErrorMessage(const ErrorMessage& msg);
Result<ErrorMessage> DecodeErrorMessage(std::string_view payload);

/// Best-effort read of a payload's leading `request_id`, for error replies
/// to requests whose body failed to decode. 0 when even that is missing.
uint64_t PeekRequestId(std::string_view payload);

}  // namespace net
}  // namespace cyclerank

#endif  // CYCLERANK_NET_MESSAGES_H_
