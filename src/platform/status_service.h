#ifndef CYCLERANK_PLATFORM_STATUS_SERVICE_H_
#define CYCLERANK_PLATFORM_STATUS_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "platform/task.h"

namespace cyclerank {

/// The Status component of Fig. 1: "while the computation is running, the
/// Status component polls the Executor node to monitor its progress".
///
/// In this in-process realization the executors push their state
/// transitions here and clients poll (or block on) the recorded states.
/// Thread-safe.
class StatusService {
 public:
  StatusService() = default;
  StatusService(const StatusService&) = delete;
  StatusService& operator=(const StatusService&) = delete;

  /// Registers a task in `kPending` state; fails on duplicate ids.
  Status Track(const std::string& task_id) CYR_EXCLUDES(mu_);

  /// Records a state transition. Transitions out of a terminal state are
  /// rejected (FailedPrecondition) — a cancelled task cannot complete.
  Status SetState(const std::string& task_id, TaskState state)
      CYR_EXCLUDES(mu_);

  /// Current state of `task_id`.
  Result<TaskState> GetState(const std::string& task_id) const
      CYR_EXCLUDES(mu_);

  /// States of several tasks at once (one poll, one lock).
  Result<std::vector<TaskState>> GetStates(
      const std::vector<std::string>& task_ids) const CYR_EXCLUDES(mu_);

  /// Blocks until every listed task reaches a terminal state.
  /// `timeout_seconds == 0` blocks indefinitely; a positive value bounds
  /// the wait and the call returns false on timeout. Negative timeouts are
  /// rejected as InvalidArgument — before, any `<= 0` value silently meant
  /// "wait forever", turning a caller's sign bug into an infinite hang.
  Result<bool> WaitUntilTerminal(const std::vector<std::string>& task_ids,
                                 double timeout_seconds = 0.0) const
      CYR_EXCLUDES(mu_);

  /// Number of tracked tasks.
  size_t size() const CYR_EXCLUDES(mu_);

  /// Callback fired when a tracked task *enters* a terminal state (the
  /// push counterpart of `WaitUntilTerminal`'s poll). Invoked after the
  /// state map is updated and `mu_` released, on whichever thread drove
  /// the transition.
  ///
  /// Locking contract (restrictive by design): the executing thread may
  /// already hold locks up to `kSchedulerMu` — on the pool-refused
  /// shutdown path the scheduler runs the executor, and thus this
  /// callback, under its own mutex. A listener must therefore never
  /// block and never acquire a *ranked* lock; the sanctioned shape is
  /// "append to an unranked mailbox, poke a wakeup fd, return"
  /// (see `net::NetServer`). Calling back into the gateway or this
  /// service from a listener deadlocks or aborts the rank checker.
  using TerminalListener =
      std::function<void(const std::string& task_id, TaskState state)>;

  /// Registers `listener`; returns a token for `RemoveTerminalListener`.
  uint64_t AddTerminalListener(TerminalListener listener) CYR_EXCLUDES(mu_);

  /// Unregisters a listener. An invocation already in flight on another
  /// thread may still complete after this returns — listeners that
  /// capture shared state must keep it alive independently (e.g. via
  /// `shared_ptr`) rather than rely on removal as a barrier.
  void RemoveTerminalListener(uint64_t token) CYR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lock_rank::kStatusServiceMu, "StatusService::mu_"};
  mutable CondVar changed_;
  std::map<std::string, TaskState> states_ CYR_GUARDED_BY(mu_);
  std::map<uint64_t, TerminalListener> listeners_ CYR_GUARDED_BY(mu_);
  uint64_t next_listener_token_ CYR_GUARDED_BY(mu_) = 1;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_STATUS_SERVICE_H_
