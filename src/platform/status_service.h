#ifndef CYCLERANK_PLATFORM_STATUS_SERVICE_H_
#define CYCLERANK_PLATFORM_STATUS_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "platform/task.h"

namespace cyclerank {

/// The Status component of Fig. 1: "while the computation is running, the
/// Status component polls the Executor node to monitor its progress".
///
/// In this in-process realization the executors push their state
/// transitions here and clients poll (or block on) the recorded states.
/// Thread-safe.
class StatusService {
 public:
  StatusService() = default;
  StatusService(const StatusService&) = delete;
  StatusService& operator=(const StatusService&) = delete;

  /// Registers a task in `kPending` state; fails on duplicate ids.
  Status Track(const std::string& task_id) CYR_EXCLUDES(mu_);

  /// Records a state transition. Transitions out of a terminal state are
  /// rejected (FailedPrecondition) — a cancelled task cannot complete.
  Status SetState(const std::string& task_id, TaskState state)
      CYR_EXCLUDES(mu_);

  /// Current state of `task_id`.
  Result<TaskState> GetState(const std::string& task_id) const
      CYR_EXCLUDES(mu_);

  /// States of several tasks at once (one poll, one lock).
  Result<std::vector<TaskState>> GetStates(
      const std::vector<std::string>& task_ids) const CYR_EXCLUDES(mu_);

  /// Blocks until every listed task reaches a terminal state.
  /// `timeout_seconds == 0` blocks indefinitely; a positive value bounds
  /// the wait and the call returns false on timeout. Negative timeouts are
  /// rejected as InvalidArgument — before, any `<= 0` value silently meant
  /// "wait forever", turning a caller's sign bug into an infinite hang.
  Result<bool> WaitUntilTerminal(const std::vector<std::string>& task_ids,
                                 double timeout_seconds = 0.0) const
      CYR_EXCLUDES(mu_);

  /// Number of tracked tasks.
  size_t size() const CYR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lock_rank::kStatusServiceMu, "StatusService::mu_"};
  mutable CondVar changed_;
  std::map<std::string, TaskState> states_ CYR_GUARDED_BY(mu_);
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_STATUS_SERVICE_H_
