#include "platform/graph_store.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"

namespace cyclerank {
namespace {

/// Defers `Graph::Serialize` to the spill tier's flush thread: eviction
/// enqueues the still-live snapshot in O(1) and the serialization cost
/// moves off the store lock entirely. The shared_ptr pins the graph until
/// the flush (or a buffered read) is done with it.
class GraphSpillPayload final : public SpillPayload {
 public:
  explicit GraphSpillPayload(GraphPtr graph) : graph_(std::move(graph)) {}
  std::string Serialize() const override { return graph_->Serialize(); }
  size_t ApproxBytes() const override { return graph_->MemoryBytes(); }

 private:
  const GraphPtr graph_;
};

}  // namespace

GraphStore::GraphStore(size_t max_bytes, SpillTier* spill)
    : max_bytes_(max_bytes), spill_(spill), lru_(max_bytes) {
  if (spill_ == nullptr) return;
  // Recovered spill entries carry the generations a previous process
  // assigned. Resuming the counter past the largest one keeps generations
  // process-unique *across* restarts: a fresh upload can never collide
  // with a recovered binding's fingerprint. (No thread can race the
  // constructor; the lock is taken so the guarded write is provably
  // consistent with the annotation.)
  MutexLock lock(mu_);
  next_generation_ = std::max(next_generation_, spill_->MaxMeta() + 1);
}

Status GraphStore::Put(const std::string& name, GraphPtr graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph store: dataset name must not be empty");
  }
  if (!graph) {
    return Status::InvalidArgument("graph store: graph must not be null");
  }
  const size_t bytes = graph->MemoryBytes();
  MutexLock lock(mu_);
  if (max_bytes_ != 0 && bytes > max_bytes_) {
    ++stats_.rejections;
    return Status::InvalidArgument(
        "graph store: dataset '" + name + "' needs " + std::to_string(bytes) +
        " bytes, larger than the entire graph-store budget of " +
        std::to_string(max_bytes_) + " bytes");
  }
  if (lru_.Contains(name)) {
    return Status::AlreadyExists("dataset '" + name + "' already uploaded");
  }
  // A dataset demoted to disk is still uploaded — merely colder. Letting a
  // re-upload silently replace it would make "can I re-use this name?"
  // depend on which tier the old binding happens to occupy.
  if (spill_ != nullptr && spill_->Contains(name)) {
    return Status::AlreadyExists("dataset '" + name +
                                 "' already uploaded (resident in the disk "
                                 "spill tier)");
  }
  // Re-uploading an evicted name revives it.
  evicted_.Revive(name);
  lru_.Insert(name, Slot{std::move(graph), next_generation_++, {}}, bytes);
  ++stats_.uploads;
  EvictLocked();
  return Status::OK();
}

Result<GraphPtr> GraphStore::Get(const std::string& name) {
  MutexLock lock(mu_);
  // Bump recency under the same lock as the lookup: a concurrent upload
  // deciding what to evict always observes a consistent LRU order.
  if (Slot* slot = lru_.Touch(name)) {
    ++stats_.hits;
    return slot->graph;
  }
  if (spill_ != nullptr) {
    GraphPtr reloaded = ReloadLocked(name);
    if (reloaded != nullptr) {
      ++stats_.hits;
      ++stats_.reloads;
      return reloaded;
    }
  }
  ++stats_.misses;
  if (spill_ != nullptr && spill_->WasPruned(name)) {
    return Status::Expired(
        "dataset '" + name +
        "' was evicted from memory, spilled to disk, and then pruned by "
        "the spill byte budget (" + std::to_string(spill_->max_bytes()) +
        " bytes); re-upload it to query again");
  }
  if (evicted_.Contains(name)) {
    return Status::Expired(
        "dataset '" + name +
        "' was evicted by the graph-store byte budget (" +
        std::to_string(max_bytes_) + " bytes); re-upload it to query again");
  }
  return Status::NotFound("dataset '" + name + "' not found");
}

size_t GraphStore::SlotBytes(const Slot& slot) {
  size_t bytes = slot.graph->MemoryBytes();
  for (const auto& [shards, view] : slot.sharded) bytes += view->MemoryBytes();
  return bytes;
}

Result<ShardedGraphPtr> GraphStore::GetSharded(const std::string& name,
                                               const GraphPtr& pinned,
                                               uint32_t num_shards) {
  if (!pinned) {
    return Status::InvalidArgument(
        "graph store: GetSharded needs a pinned graph");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument(
        "graph store: GetSharded needs num_shards >= 1");
  }
  {
    MutexLock lock(mu_);
    Slot* slot = lru_.Touch(name);
    // Identity, not name equality: the slot must still bind the caller's
    // snapshot, or the cached view would mirror a different binding.
    if (slot != nullptr && slot->graph == pinned) {
      auto it = slot->sharded.find(num_shards);
      if (it != slot->sharded.end()) {
        ++stats_.sharded_hits;
        return it->second;
      }
    }
  }

  // Build outside the lock: an O(nodes + edges) row copy must not stall
  // every Get/Put on the store.
  static const ContiguousRangePartitioner kPartitioner;
  CYCLERANK_ASSIGN_OR_RETURN(ShardedGraph built,
                             ShardedGraph::Build(pinned, num_shards,
                                                 kPartitioner));
  auto view = std::make_shared<const ShardedGraph>(std::move(built));

  MutexLock lock(mu_);
  ++stats_.sharded_builds;
  Slot* slot = lru_.Touch(name);
  if (slot == nullptr || slot->graph != pinned) {
    // The name was evicted/re-bound while we built, or it is a catalog
    // dataset the store never held: hand the view back uncached.
    return view;
  }
  if (auto it = slot->sharded.find(num_shards); it != slot->sharded.end()) {
    // A concurrent builder won the race; serve its view, drop ours.
    return it->second;
  }
  const size_t new_bytes = SlotBytes(*slot) + view->MemoryBytes();
  if (max_bytes_ != 0 && new_bytes > max_bytes_) {
    // Caching would make this slot alone overflow the budget (EvictLocked
    // could then never satisfy it). Serve the view transiently.
    return view;
  }
  slot->sharded[num_shards] = view;
  lru_.Recharge(name, new_bytes);
  // The grown slot may push the store over budget: demote colder datasets.
  // Touch above made this slot most-recent, so it is never its own victim.
  EvictLocked();
  return view;
}

GraphPtr GraphStore::ReloadLocked(const std::string& name) {
  Result<SpillTier::Loaded> loaded = spill_->Get(name);
  if (!loaded.ok()) return nullptr;
  Result<Graph> decoded = Graph::Deserialize(loaded->payload);
  if (!decoded.ok()) {
    // The checksum passed but the codec rejected the bytes — a stale or
    // foreign file. Drop it so the name degrades to plain expiry instead
    // of failing every future lookup.
    CYCLERANK_LOG(kWarning) << "graph store: dropping undecodable spill of '"
                            << name << "': " << decoded.status().ToString();
    spill_->Erase(name);
    return nullptr;
  }
  auto graph = std::make_shared<const Graph>(std::move(decoded).value());
  const size_t bytes = graph->MemoryBytes();
  if (max_bytes_ != 0 && bytes > max_bytes_) {
    // The memory budget shrank below this dataset since it was admitted
    // (options changed across a restart). Serve the pinned snapshot
    // without re-admitting it; the disk copy stays authoritative.
    return graph;
  }
  evicted_.Revive(name);
  const uint64_t generation = loaded->meta;
  next_generation_ = std::max(next_generation_, generation + 1);
  lru_.Insert(name, Slot{graph, generation, {}}, bytes);
  // Promotion copies up — the disk entry is kept, so a later eviction of a
  // clean entry skips re-serialization and a restart still recovers it.
  EvictLocked();
  return graph;
}

void GraphStore::EvictLocked() {
  if (max_bytes_ == 0) return;
  while (lru_.OverBudget() && lru_.size() > 1) {
    // The least-recently-queried dataset goes first; the entry just
    // inserted sits at the front and already fits the budget alone, so the
    // loop always terminates before reaching it. Dropping the store's
    // reference never frees a graph an executor still pins.
    std::optional<ByteBudgetedLru<Slot>::Entry> victim = lru_.PopLeastRecent();
    ++stats_.evictions;
    if (spill_ != nullptr) {
      // Demote to disk instead of destroying — unless the tier already
      // holds this exact binding (a promoted reload), in which case the
      // bytes on disk are already right.
      if (spill_->Meta(victim->key) == victim->value.generation) {
        ++stats_.spills;
      } else {
        // Hand the tier a deferred payload: in write-behind mode this
        // enqueues the GraphPtr and returns — serialization happens on
        // the flush thread, not under this store's lock.
        const Status spilled = spill_->Put(
            victim->key,
            std::make_shared<const GraphSpillPayload>(victim->value.graph),
            victim->value.generation);
        if (spilled.ok()) {
          ++stats_.spills;
        } else {
          CYCLERANK_LOG(kWarning)
              << "graph store: could not spill evicted dataset '"
              << victim->key << "': " << spilled.ToString()
              << "; dropping it instead";
        }
      }
    }
    evicted_.Mark(victim->key);
  }
  evicted_.Bound(kMaxEvictionMarkers);
}

uint64_t GraphStore::Generation(const std::string& name) const {
  MutexLock lock(mu_);
  if (const Slot* slot = lru_.Find(name)) return slot->generation;
  // A spilled dataset keeps its binding generation — it is the same
  // binding, merely demoted — so fingerprints (and cached results) survive
  // the round trip to disk.
  if (spill_ != nullptr) {
    if (std::optional<uint64_t> meta = spill_->Meta(name)) return *meta;
  }
  return 0;
}

std::vector<std::string> GraphStore::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out = lru_.Keys();
  if (spill_ != nullptr) {
    // Disk-resident datasets are uploaded too; merge the tiers.
    std::vector<std::string> spilled = spill_->Keys();
    out.insert(out.end(), spilled.begin(), spilled.end());
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

GraphStoreStats GraphStore::stats() const {
  MutexLock lock(mu_);
  GraphStoreStats snapshot = stats_;
  snapshot.entries = lru_.size();
  snapshot.bytes = lru_.bytes();
  return snapshot;
}

}  // namespace cyclerank
