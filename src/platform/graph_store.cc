#include "platform/graph_store.h"

#include <utility>

namespace cyclerank {

Status GraphStore::Put(const std::string& name, GraphPtr graph) {
  if (name.empty()) {
    return Status::InvalidArgument("graph store: dataset name must not be empty");
  }
  if (!graph) {
    return Status::InvalidArgument("graph store: graph must not be null");
  }
  const size_t bytes = graph->MemoryBytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (max_bytes_ != 0 && bytes > max_bytes_) {
    ++stats_.rejections;
    return Status::InvalidArgument(
        "graph store: dataset '" + name + "' needs " + std::to_string(bytes) +
        " bytes, larger than the entire graph-store budget of " +
        std::to_string(max_bytes_) + " bytes");
  }
  if (index_.count(name) != 0) {
    return Status::AlreadyExists("dataset '" + name + "' already uploaded");
  }
  // Re-uploading an evicted name revives it.
  evicted_.Revive(name);
  lru_.push_front(Entry{name, std::move(graph), bytes, next_generation_++});
  index_[name] = lru_.begin();
  bytes_ += bytes;
  ++stats_.uploads;
  EvictLocked();
  return Status::OK();
}

Result<GraphPtr> GraphStore::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  if (it != index_.end()) {
    // Bump recency under the same lock as the lookup: a concurrent upload
    // deciding what to evict always observes a consistent LRU order.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    return it->second->graph;
  }
  ++stats_.misses;
  if (evicted_.Contains(name)) {
    return Status::Expired(
        "dataset '" + name +
        "' was evicted by the graph-store byte budget (" +
        std::to_string(max_bytes_) + " bytes); re-upload it to query again");
  }
  return Status::NotFound("dataset '" + name + "' not found");
}

void GraphStore::EvictLocked() {
  if (max_bytes_ == 0) return;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    // The least-recently-queried dataset goes first; the entry just
    // inserted sits at the front and already fits the budget alone, so the
    // loop always terminates before reaching it. Dropping the store's
    // reference never frees a graph an executor still pins.
    Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    ++stats_.evictions;
    index_.erase(victim.name);
    evicted_.Mark(victim.name);
    lru_.pop_back();
  }
  evicted_.Bound(kMaxEvictionMarkers);
}

uint64_t GraphStore::Generation(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(name);
  return it == index_.end() ? 0 : it->second->generation;
}

std::vector<std::string> GraphStore::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [name, entry] : index_) out.push_back(name);
  return out;
}

GraphStoreStats GraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  GraphStoreStats snapshot = stats_;
  snapshot.entries = index_.size();
  snapshot.bytes = bytes_;
  return snapshot;
}

}  // namespace cyclerank
