#include "platform/scheduler.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/parallel_for.h"

namespace cyclerank {

Scheduler::Scheduler(Executor* executor, size_t num_workers, ThreadPool* pool)
    : executor_(executor),
      pool_(pool != nullptr ? pool : GlobalComputePool()),
      num_workers_(std::max<size_t>(num_workers, 1)) {}

Status Scheduler::Enqueue(const std::string& task_id, TaskSpec spec,
                          std::shared_ptr<std::atomic<bool>> cancelled) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("scheduler: already shut down");
  }
  waiting_.push_back({task_id, std::move(spec), std::move(cancelled)});
  DispatchLocked();
  return Status::OK();
}

void Scheduler::DispatchLocked() {
  while (in_flight_ < num_workers_ && !waiting_.empty()) {
    Pending pending = std::move(waiting_.front());
    waiting_.pop_front();
    ++in_flight_;
    const bool posted = pool_->Post([this, pending = std::move(pending)] {
      executor_->Execute(pending.task_id, pending.spec,
                         pending.cancelled.get());
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      DispatchLocked();
      if (in_flight_ == 0 && waiting_.empty()) idle_.notify_all();
    });
    if (!posted) {
      // The pool refused work (it is shutting down — only possible with an
      // injected pool). Nothing will ever be dispatched again, so every
      // accepted-but-undispatched task must still reach a terminal state:
      // run each through the executor's cancelled path (no computation,
      // records a Cancelled result + status) so pollers don't hang, and
      // leave `waiting_` empty so Drain/Shutdown can complete.
      --in_flight_;
      shutdown_ = true;
      std::deque<Pending> orphaned;
      orphaned.push_back(std::move(pending));
      orphaned.insert(orphaned.end(),
                      std::make_move_iterator(waiting_.begin()),
                      std::make_move_iterator(waiting_.end()));
      waiting_.clear();
      std::atomic<bool> refused{true};
      for (const Pending& task : orphaned) {
        executor_->Execute(task.task_id, task.spec, &refused);
      }
      if (in_flight_ == 0) idle_.notify_all();
      return;
    }
  }
}

void Scheduler::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0 && waiting_.empty(); });
}

void Scheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  Drain();
}

size_t Scheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_.size();
}

}  // namespace cyclerank
