#include "platform/scheduler.h"

#include <utility>

namespace cyclerank {

Status Scheduler::Enqueue(const std::string& task_id, TaskSpec spec,
                          std::shared_ptr<std::atomic<bool>> cancelled) {
  Executor* executor = executor_;
  const bool posted =
      pool_.Post([executor, task_id, spec = std::move(spec),
                  cancelled = std::move(cancelled)] {
        executor->Execute(task_id, spec, cancelled.get());
      });
  if (!posted) {
    return Status::FailedPrecondition("scheduler: already shut down");
  }
  return Status::OK();
}

}  // namespace cyclerank
