#include "platform/scheduler.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/parallel_for.h"

namespace cyclerank {

Scheduler::Scheduler(Executor* executor, const PlatformOptions& options,
                     ThreadPool* pool)
    : executor_(executor),
      pool_(pool != nullptr ? pool : GlobalComputePool()),
      num_workers_(options.ResolvedNumWorkers()),
      admission_queue_limit_(options.admission_queue_limit),
      default_deadline_ms_(options.default_deadline_ms) {}

Status Scheduler::Enqueue(const std::string& task_id, TaskSpec spec,
                          std::shared_ptr<std::atomic<bool>> cancelled,
                          std::string coalesce_key) {
  // The relative deadline becomes absolute *now*, at admission: queueing
  // time counts against it — that is the whole point of a deadline.
  // deadline_ms=0 explicitly opts out of a deployment default.
  Result<int64_t> deadline_ms = spec.params.GetInt(
      "deadline_ms", static_cast<int64_t>(default_deadline_ms_));
  if (!deadline_ms.ok()) return deadline_ms.status();
  if (*deadline_ms < 0) {
    return Status::InvalidArgument(
        "scheduler: deadline_ms must be >= 0, got " +
        std::to_string(*deadline_ms));
  }
  Deadline deadline;
  if (*deadline_ms > 0) {
    deadline = std::chrono::steady_clock::now() +
               std::chrono::milliseconds(*deadline_ms);
  }
  std::optional<TaskResult> hit;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("scheduler: already shut down");
    }
    if (!coalesce_key.empty()) {
      // Serve straight from the result cache: this computation already ran
      // and every kernel is deterministic, so the cached ranking is the
      // ranking a fresh run would produce. (Delivery happens below, after
      // the lock — it writes a full result copy through the datastore and
      // must not stall other enqueues and task completions.)
      hit = executor_->result_cache().Get(coalesce_key);
      if (!hit.has_value()) {
        // Single-flight: an identical task is already queued or running;
        // ride on its outcome instead of dispatching a duplicate run.
        // Followers are exempt from the admission bound — they occupy no
        // worker and no queue slot.
        auto it = inflight_.find(coalesce_key);
        if (it != inflight_.end()) {
          it->second.followers.push_back(
              {task_id, std::move(spec), std::move(cancelled), deadline});
          return Status::OK();
        }
      }
    }
    if (!hit.has_value()) {
      // Admission control: reject instead of queueing past the bound —
      // the caller learns about the overload now, synchronously, and no
      // state of this task survives the rejection. Checked before the
      // single-flight entry is created so a rejected leader leaves no
      // stale inflight_ record behind.
      if (admission_queue_limit_ != 0 &&
          waiting_.size() >= admission_queue_limit_) {
        return Status::Unavailable(
            "scheduler: overloaded — " + std::to_string(waiting_.size()) +
            " tasks already waiting (admission_queue_limit=" +
            std::to_string(admission_queue_limit_) + "); retry later");
      }
      if (!coalesce_key.empty()) {
        inflight_.emplace(coalesce_key, Inflight{task_id, {}});
      }
      waiting_.push_back({task_id, std::move(spec), std::move(cancelled),
                          std::move(coalesce_key), deadline});
      DispatchLocked();
      return Status::OK();
    }
  }
  executor_->Deliver(task_id, spec, *hit, "result cache");
  return Status::OK();
}

void Scheduler::DeliverFollowers(const std::vector<Follower>& fan_out,
                                 const TaskResult& outcome,
                                 const std::string& leader_id) {
  for (const Follower& follower : fan_out) {
    // A follower whose requester cancelled while it was coalesced gets its
    // own cancelled outcome, not the leader's result — same behavior as a
    // queued task observing its flag right before execution.
    if (follower.cancelled != nullptr &&
        follower.cancelled->load(std::memory_order_relaxed)) {
      TaskResult cancelled_outcome;
      cancelled_outcome.status =
          Status::Cancelled("cancelled while coalesced");
      executor_->Deliver(follower.task_id, follower.spec, cancelled_outcome,
                         "cancellation observed at single-flight fan-out");
      continue;
    }
    // Likewise a follower whose own deadline passed while coalesced: its
    // requester has given up, so even a ready-made result is refused —
    // deadline semantics must not depend on whether the work happened to
    // be coalesced.
    if (Expired(follower.deadline)) {
      TaskResult expired_outcome;
      expired_outcome.status = Status::DeadlineExceeded(
          "deadline expired while coalesced behind leader " + leader_id);
      executor_->Deliver(follower.task_id, follower.spec, expired_outcome,
                         "deadline observed at single-flight fan-out");
      continue;
    }
    executor_->Deliver(follower.task_id, follower.spec, outcome,
                       "single-flight leader " + leader_id);
  }
}

void Scheduler::DispatchLocked() {
  while (in_flight_ < num_workers_ && !waiting_.empty()) {
    Pending pending = std::move(waiting_.front());
    waiting_.pop_front();
    ++in_flight_;
    const bool posted = pool_->Post([this, pending = std::move(pending)] {
      TaskResult outcome;
      const bool keyed = !pending.key.empty();
      if (Expired(pending.deadline)) {
        // The deadline passed while the task waited for a worker: fast-fail
        // without touching the kernel — under overload this sheds exactly
        // the work whose answer nobody is still waiting for. Deliver gives
        // the task a stored result and a terminal state like any outcome.
        outcome.status = Status::DeadlineExceeded(
            "deadline expired while queued (before execution started)");
        executor_->Deliver(pending.task_id, pending.spec, outcome,
                           "deadline observed at dispatch");
      } else {
        executor_->Execute(pending.task_id, pending.spec,
                           pending.cancelled.get(),
                           keyed ? &outcome : nullptr, pending.key);
      }
      if (keyed) {
        // Fan the leader's outcome out to every coalesced follower while
        // this task still counts as in-flight, so Drain/Shutdown cannot
        // return before the followers are delivered.
        std::vector<Follower> fan_out;
        {
          MutexLock lock(mu_);
          CompleteKeyLocked(pending.key, pending.task_id, outcome, &fan_out);
        }
        DeliverFollowers(fan_out, outcome, pending.task_id);
      }
      MutexLock lock(mu_);
      --in_flight_;
      DispatchLocked();
      if (in_flight_ == 0 && waiting_.empty()) idle_.NotifyAll();
    });
    if (!posted) {
      // The pool refused work (it is shutting down — only possible with an
      // injected pool). Nothing will ever be dispatched again, so every
      // accepted-but-undispatched task must still reach a terminal state:
      // run each through the executor's cancelled path (no computation,
      // records a Cancelled result + status) so pollers don't hang, and
      // leave `waiting_` empty so Drain/Shutdown can complete. `shutdown_`
      // is set first so CompleteKeyLocked fans the cancellation out to
      // followers instead of promoting them into a dead queue.
      --in_flight_;
      shutdown_ = true;
      std::deque<Pending> orphaned;
      orphaned.push_back(std::move(pending));
      orphaned.insert(orphaned.end(),
                      std::make_move_iterator(waiting_.begin()),
                      std::make_move_iterator(waiting_.end()));
      waiting_.clear();
      std::atomic<bool> refused{true};
      for (const Pending& task : orphaned) {
        TaskResult outcome;
        const bool keyed = !task.key.empty();
        executor_->Execute(task.task_id, task.spec, &refused,
                           keyed ? &outcome : nullptr, task.key);
        if (keyed) {
          std::vector<Follower> fan_out;
          CompleteKeyLocked(task.key, task.task_id, outcome, &fan_out);
          DeliverFollowers(fan_out, outcome, task.task_id);
        }
      }
      if (in_flight_ == 0) idle_.NotifyAll();
      return;
    }
  }
}

void Scheduler::CompleteKeyLocked(const std::string& key,
                                  const std::string& task_id,
                                  const TaskResult& outcome,
                                  std::vector<Follower>* fan_out) {
  auto it = inflight_.find(key);
  if (it == inflight_.end() || it->second.leader_id != task_id) return;
  Inflight& entry = it->second;
  if ((outcome.status.code() == StatusCode::kCancelled ||
       outcome.status.code() == StatusCode::kDeadlineExceeded) &&
      !entry.followers.empty() && !shutdown_) {
    // The leader's requester cancelled — or its deadline ran out — but the
    // coalesced followers' did not: promote the first follower to a fresh
    // leader under its own cancellation flag and deadline. (Failures, by
    // contrast, are fanned out — the computation is deterministic, so a
    // re-run would fail identically.)
    Follower next = std::move(entry.followers.front());
    entry.followers.erase(entry.followers.begin());
    entry.leader_id = next.task_id;
    waiting_.push_back({std::move(next.task_id), std::move(next.spec),
                        std::move(next.cancelled), key, next.deadline});
    return;  // the caller's DispatchLocked pass picks the new leader up
  }
  *fan_out = std::move(entry.followers);
  inflight_.erase(it);
}

void Scheduler::Drain() {
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() CYR_REQUIRES(mu_) {
    return in_flight_ == 0 && waiting_.empty();
  });
}

void Scheduler::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  Drain();
}

size_t Scheduler::QueueDepth() const {
  MutexLock lock(mu_);
  return waiting_.size();
}

}  // namespace cyclerank
