#include "platform/scheduler.h"

#include <algorithm>
#include <iterator>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/parallel_for.h"

namespace cyclerank {

Scheduler::Scheduler(Executor* executor, const PlatformOptions& options,
                     ThreadPool* pool)
    : executor_(executor),
      pool_(pool != nullptr ? pool : GlobalComputePool()),
      num_workers_(options.ResolvedNumWorkers()) {}

Status Scheduler::Enqueue(const std::string& task_id, TaskSpec spec,
                          std::shared_ptr<std::atomic<bool>> cancelled,
                          std::string coalesce_key) {
  std::optional<TaskResult> hit;
  {
    MutexLock lock(mu_);
    if (shutdown_) {
      return Status::FailedPrecondition("scheduler: already shut down");
    }
    if (!coalesce_key.empty()) {
      // Serve straight from the result cache: this computation already ran
      // and every kernel is deterministic, so the cached ranking is the
      // ranking a fresh run would produce. (Delivery happens below, after
      // the lock — it writes a full result copy through the datastore and
      // must not stall other enqueues and task completions.)
      hit = executor_->result_cache().Get(coalesce_key);
      if (!hit.has_value()) {
        // Single-flight: an identical task is already queued or running;
        // ride on its outcome instead of dispatching a duplicate run.
        auto it = inflight_.find(coalesce_key);
        if (it != inflight_.end()) {
          it->second.followers.push_back(
              {task_id, std::move(spec), std::move(cancelled)});
          return Status::OK();
        }
        inflight_.emplace(coalesce_key, Inflight{task_id, {}});
      }
    }
    if (!hit.has_value()) {
      waiting_.push_back({task_id, std::move(spec), std::move(cancelled),
                          std::move(coalesce_key)});
      DispatchLocked();
      return Status::OK();
    }
  }
  executor_->Deliver(task_id, spec, *hit, "result cache");
  return Status::OK();
}

void Scheduler::DeliverFollowers(const std::vector<Follower>& fan_out,
                                 const TaskResult& outcome,
                                 const std::string& leader_id) {
  for (const Follower& follower : fan_out) {
    // A follower whose requester cancelled while it was coalesced gets its
    // own cancelled outcome, not the leader's result — same behavior as a
    // queued task observing its flag right before execution.
    if (follower.cancelled != nullptr &&
        follower.cancelled->load(std::memory_order_relaxed)) {
      TaskResult cancelled_outcome;
      cancelled_outcome.status =
          Status::Cancelled("cancelled while coalesced");
      executor_->Deliver(follower.task_id, follower.spec, cancelled_outcome,
                         "cancellation observed at single-flight fan-out");
      continue;
    }
    executor_->Deliver(follower.task_id, follower.spec, outcome,
                       "single-flight leader " + leader_id);
  }
}

void Scheduler::DispatchLocked() {
  while (in_flight_ < num_workers_ && !waiting_.empty()) {
    Pending pending = std::move(waiting_.front());
    waiting_.pop_front();
    ++in_flight_;
    const bool posted = pool_->Post([this, pending = std::move(pending)] {
      TaskResult outcome;
      const bool keyed = !pending.key.empty();
      executor_->Execute(pending.task_id, pending.spec,
                         pending.cancelled.get(),
                         keyed ? &outcome : nullptr, pending.key);
      if (keyed) {
        // Fan the leader's outcome out to every coalesced follower while
        // this task still counts as in-flight, so Drain/Shutdown cannot
        // return before the followers are delivered.
        std::vector<Follower> fan_out;
        {
          MutexLock lock(mu_);
          CompleteKeyLocked(pending.key, pending.task_id, outcome, &fan_out);
        }
        DeliverFollowers(fan_out, outcome, pending.task_id);
      }
      MutexLock lock(mu_);
      --in_flight_;
      DispatchLocked();
      if (in_flight_ == 0 && waiting_.empty()) idle_.NotifyAll();
    });
    if (!posted) {
      // The pool refused work (it is shutting down — only possible with an
      // injected pool). Nothing will ever be dispatched again, so every
      // accepted-but-undispatched task must still reach a terminal state:
      // run each through the executor's cancelled path (no computation,
      // records a Cancelled result + status) so pollers don't hang, and
      // leave `waiting_` empty so Drain/Shutdown can complete. `shutdown_`
      // is set first so CompleteKeyLocked fans the cancellation out to
      // followers instead of promoting them into a dead queue.
      --in_flight_;
      shutdown_ = true;
      std::deque<Pending> orphaned;
      orphaned.push_back(std::move(pending));
      orphaned.insert(orphaned.end(),
                      std::make_move_iterator(waiting_.begin()),
                      std::make_move_iterator(waiting_.end()));
      waiting_.clear();
      std::atomic<bool> refused{true};
      for (const Pending& task : orphaned) {
        TaskResult outcome;
        const bool keyed = !task.key.empty();
        executor_->Execute(task.task_id, task.spec, &refused,
                           keyed ? &outcome : nullptr, task.key);
        if (keyed) {
          std::vector<Follower> fan_out;
          CompleteKeyLocked(task.key, task.task_id, outcome, &fan_out);
          DeliverFollowers(fan_out, outcome, task.task_id);
        }
      }
      if (in_flight_ == 0) idle_.NotifyAll();
      return;
    }
  }
}

void Scheduler::CompleteKeyLocked(const std::string& key,
                                  const std::string& task_id,
                                  const TaskResult& outcome,
                                  std::vector<Follower>* fan_out) {
  auto it = inflight_.find(key);
  if (it == inflight_.end() || it->second.leader_id != task_id) return;
  Inflight& entry = it->second;
  if (outcome.status.code() == StatusCode::kCancelled &&
      !entry.followers.empty() && !shutdown_) {
    // The leader's requester cancelled, but the coalesced followers did
    // not: promote the first follower to a fresh leader under its own
    // cancellation flag. (Failures, by contrast, are fanned out — the
    // computation is deterministic, so a re-run would fail identically.)
    Follower next = std::move(entry.followers.front());
    entry.followers.erase(entry.followers.begin());
    entry.leader_id = next.task_id;
    waiting_.push_back({std::move(next.task_id), std::move(next.spec),
                        std::move(next.cancelled), key});
    return;  // the caller's DispatchLocked pass picks the new leader up
  }
  *fan_out = std::move(entry.followers);
  inflight_.erase(it);
}

void Scheduler::Drain() {
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() CYR_REQUIRES(mu_) {
    return in_flight_ == 0 && waiting_.empty();
  });
}

void Scheduler::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  Drain();
}

size_t Scheduler::QueueDepth() const {
  MutexLock lock(mu_);
  return waiting_.size();
}

}  // namespace cyclerank
