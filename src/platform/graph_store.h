#ifndef CYCLERANK_PLATFORM_GRAPH_STORE_H_
#define CYCLERANK_PLATFORM_GRAPH_STORE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "graph/graph.h"
#include "platform/expiry_markers.h"

namespace cyclerank {

/// Occupancy and effectiveness counters of a `GraphStore`.
struct GraphStoreStats {
  uint64_t uploads = 0;     ///< datasets accepted by `Put`
  uint64_t evictions = 0;   ///< datasets dropped to respect the byte budget
  uint64_t rejections = 0;  ///< uploads larger than the entire budget
  uint64_t hits = 0;  ///< `Get` calls that returned a graph
  /// `Get` calls answered NotFound or Expired. In a catalog-backed
  /// `Datastore` this includes lookups that resolve in the catalog
  /// instead, so size budgets by hits/evictions/bytes, not raw misses.
  uint64_t misses = 0;
  size_t entries = 0;       ///< live uploaded datasets
  size_t bytes = 0;         ///< sum of `Graph::MemoryBytes()` of live datasets
};

/// The uploaded-datasets third of the Datastore decomposition: a
/// byte-budgeted store of immutable graph snapshots with
/// least-recently-queried eviction.
///
/// `max_bytes` bounds the sum of `Graph::MemoryBytes()` over live entries
/// (0 = unbounded). Uploading past the budget evicts the
/// least-recently-queried datasets; a single graph larger than the whole
/// budget is rejected up front with a byte-stating `kInvalidArgument`.
/// Evicted names answer `kExpired` — distinguishable from never-uploaded
/// (`kNotFound`) — until the FIFO-bounded marker set forgets them;
/// re-uploading an evicted name revives it.
///
/// Eviction only drops the store's reference. Graphs are immutable and
/// handed out as `shared_ptr` snapshots, so an executor that fetched a
/// `GraphPtr` *pins* that snapshot: a concurrent eviction can never free a
/// graph out from under an in-flight kernel — the memory is reclaimed when
/// the last pin drops.
///
/// Thread-safe; `Get` bumps recency under the same lock as the lookup, so
/// LRU order is race-free.
class GraphStore {
 public:
  /// Bound on remembered evicted names: past it the oldest markers are
  /// forgotten FIFO (they then answer `kNotFound` again), keeping the
  /// marker set O(1) in the upload churn.
  static constexpr size_t kMaxEvictionMarkers = 4096;

  explicit GraphStore(size_t max_bytes = 0) : max_bytes_(max_bytes) {}

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Stores `graph` under `name`. Rejects empty names, null graphs,
  /// duplicate live names (`kAlreadyExists`), and graphs whose
  /// `MemoryBytes()` alone exceeds the budget (`kInvalidArgument`, stating
  /// both byte figures). May evict least-recently-queried datasets to make
  /// room; the new dataset is most-recent and never evicted by its own
  /// insertion.
  Status Put(const std::string& name, GraphPtr graph);

  /// Fetches `name`, bumping it to most-recently-queried under the lookup
  /// lock. `kExpired` for evicted names, `kNotFound` otherwise.
  Result<GraphPtr> Get(const std::string& name);

  /// Generation of `name`'s current binding: a process-unique counter
  /// assigned at every successful `Put`, 0 when the name is not live.
  /// Because eviction + re-upload can bind one *name* to different
  /// content, result-cache and single-flight keys qualify the dataset name
  /// with this generation — two bindings can never share a key.
  uint64_t Generation(const std::string& name) const;

  /// Names of live datasets, sorted.
  std::vector<std::string> Names() const;

  GraphStoreStats stats() const;
  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::string name;
    GraphPtr graph;
    size_t bytes = 0;
    uint64_t generation = 0;
  };

  /// Evicts least-recently-queried entries until the budget holds, then
  /// bounds the marker set; requires `mu_`.
  void EvictLocked();

  const size_t max_bytes_;  // 0 = unbounded
  mutable std::mutex mu_;
  std::list<Entry> lru_;  ///< front = most recently queried
  std::map<std::string, std::list<Entry>::iterator> index_;
  ExpiryMarkers evicted_;  ///< names answered with kExpired
  size_t bytes_ = 0;
  uint64_t next_generation_ = 1;  ///< 0 is reserved for "not live"
  GraphStoreStats stats_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_GRAPH_STORE_H_
