#ifndef CYCLERANK_PLATFORM_GRAPH_STORE_H_
#define CYCLERANK_PLATFORM_GRAPH_STORE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "graph/graph.h"
#include "graph/sharded_graph.h"
#include "platform/byte_lru.h"
#include "platform/expiry_markers.h"
#include "platform/spill_tier.h"

namespace cyclerank {

/// Occupancy and effectiveness counters of a `GraphStore`.
struct GraphStoreStats {
  uint64_t uploads = 0;     ///< datasets accepted by `Put`
  uint64_t evictions = 0;   ///< datasets dropped from memory to respect the
                            ///< byte budget (spilled ones count too)
  uint64_t rejections = 0;  ///< uploads larger than the entire budget
  uint64_t spills = 0;      ///< evictions demoted to the disk tier
  uint64_t reloads = 0;     ///< `Get` calls served by reloading from disk
  uint64_t hits = 0;  ///< `Get` calls that returned a graph
  /// `Get` calls answered NotFound or Expired. In a catalog-backed
  /// `Datastore` this includes lookups that resolve in the catalog
  /// instead, so size budgets by hits/evictions/bytes, not raw misses.
  uint64_t misses = 0;
  uint64_t sharded_builds = 0;  ///< `GetSharded` calls that built a view
  uint64_t sharded_hits = 0;    ///< `GetSharded` calls served from a slot
  size_t entries = 0;       ///< live uploaded datasets (in memory)
  /// Sum of `Graph::MemoryBytes()` of live datasets, plus the
  /// `ShardedGraph::MemoryBytes()` of every cached sharded view.
  size_t bytes = 0;
};

/// The uploaded-datasets third of the Datastore decomposition: a
/// byte-budgeted store of immutable graph snapshots with
/// least-recently-queried eviction, optionally backed by a disk
/// `SpillTier`.
///
/// `max_bytes` bounds the sum of `Graph::MemoryBytes()` over live entries
/// (0 = unbounded). Uploading past the budget evicts the
/// least-recently-queried datasets; a single graph larger than the whole
/// budget is rejected up front with a byte-stating `kInvalidArgument`.
///
/// **Without a spill tier** (the historical behavior) evicted names answer
/// `kExpired` — distinguishable from never-uploaded (`kNotFound`) — until
/// the FIFO-bounded marker set forgets them; re-uploading an evicted name
/// revives it.
///
/// **With a spill tier**, eviction *demotes* instead of destroying: the
/// victim is serialized (`Graph::Serialize`) to the tier together with its
/// binding generation, and a later `Get` transparently reloads it into the
/// memory tier as most-recently-queried — same bytes, same generation, so
/// results cached against the binding stay servable and never cross-serve
/// a different binding. The disk copy is kept on reload (the entry is
/// *promoted*, not moved), so a process restart recovers every spilled
/// dataset; the generation counter restarts past the largest recovered
/// generation. Only when the disk tier prunes the entry (its own byte
/// budget) does the name expire for real — with an error message that says
/// so. A name resident on disk counts as uploaded: re-`Put` answers
/// `kAlreadyExists`, exactly like a memory-resident name.
///
/// Eviction only drops the store's reference. Graphs are immutable and
/// handed out as `shared_ptr` snapshots, so an executor that fetched a
/// `GraphPtr` *pins* that snapshot: a concurrent eviction can never free a
/// graph out from under an in-flight kernel — the memory is reclaimed when
/// the last pin drops.
///
/// Thread-safe; `Get` bumps recency under the same lock as the lookup, so
/// LRU order is race-free.
class GraphStore {
 public:
  /// Bound on remembered evicted names: past it the oldest markers are
  /// forgotten FIFO (they then answer `kNotFound` again), keeping the
  /// marker set O(1) in the upload churn.
  static constexpr size_t kMaxEvictionMarkers = 4096;

  /// `spill` may be null (no disk tier) and must outlive the store. With a
  /// spill tier, construction resumes the generation counter past every
  /// recovered binding, so post-restart uploads can never collide with a
  /// recovered dataset's fingerprint.
  explicit GraphStore(size_t max_bytes = 0, SpillTier* spill = nullptr);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Stores `graph` under `name`. Rejects empty names, null graphs,
  /// duplicate live names (`kAlreadyExists` — disk-resident names count as
  /// live), and graphs whose `MemoryBytes()` alone exceeds the budget
  /// (`kInvalidArgument`, stating both byte figures). May evict
  /// least-recently-queried datasets to make room (demoting them to the
  /// spill tier when one is attached); the new dataset is most-recent and
  /// never evicted by its own insertion.
  Status Put(const std::string& name, GraphPtr graph) CYR_EXCLUDES(mu_);

  /// Fetches `name`, bumping it to most-recently-queried under the lookup
  /// lock; a spilled dataset is transparently reloaded from disk first.
  /// `kExpired` for names evicted (and, with a spill tier, pruned from
  /// disk — the message distinguishes the two), `kNotFound` otherwise.
  Result<GraphPtr> Get(const std::string& name) CYR_EXCLUDES(mu_);

  /// A `num_shards`-way sharded view of `pinned`, cached next to the
  /// dataset. `pinned` is the snapshot the caller already fetched via
  /// `Get` — passing it (instead of looking the name up again) makes the
  /// view provably belong to the caller's graph even when the name is
  /// concurrently evicted or re-bound.
  ///
  /// The view is built lazily (contiguous-range partition) outside the
  /// store lock and cached in the dataset's slot when the name still binds
  /// `pinned`; its `MemoryBytes()` is then re-charged against the byte
  /// budget (which may demote colder datasets). Cached views ride their
  /// parent's lifecycle: eviction and demotion drop them with the slot —
  /// the spill tier serializes only the parent graph, and a reload starts
  /// with no views (they rebuild on demand). When the name no longer binds
  /// `pinned` (eviction + re-upload race), the name is unknown (catalog
  /// datasets), or caching would alone overflow the budget, the freshly
  /// built view is returned *uncached* — correct, merely not reusable.
  ///
  /// Errors: InvalidArgument for a null graph or `num_shards == 0` (the
  /// executor resolves 0/1 to monolithic execution before calling).
  Result<ShardedGraphPtr> GetSharded(const std::string& name,
                                     const GraphPtr& pinned,
                                     uint32_t num_shards) CYR_EXCLUDES(mu_);

  /// Generation of `name`'s current binding: a process-unique counter
  /// assigned at every successful `Put`, 0 when the name is not live. A
  /// dataset demoted to the spill tier keeps its generation (it is the
  /// same binding, merely colder), so cached results survive the demotion.
  /// Because eviction + re-upload can bind one *name* to different
  /// content, result-cache and single-flight keys qualify the dataset name
  /// with this generation — two bindings can never share a key.
  uint64_t Generation(const std::string& name) const CYR_EXCLUDES(mu_);

  /// Names of live datasets (memory- or disk-resident), sorted.
  std::vector<std::string> Names() const CYR_EXCLUDES(mu_);

  GraphStoreStats stats() const CYR_EXCLUDES(mu_);
  size_t max_bytes() const { return max_bytes_; }

 private:
  /// What the store keeps per memory-resident dataset.
  struct Slot {
    GraphPtr graph;
    uint64_t generation = 0;
    /// Lazily built sharded views, keyed by shard count; dropped with the
    /// slot (never spilled — views rebuild from the parent on demand).
    std::map<uint32_t, ShardedGraphPtr> sharded;
  };

  /// `graph->MemoryBytes()` plus every cached view's — the slot's charge
  /// against the byte budget.
  static size_t SlotBytes(const Slot& slot);

  /// Evicts least-recently-queried entries until the budget holds —
  /// demoting them to the spill tier when one is attached — then bounds
  /// the marker set; requires `mu_`.
  void EvictLocked() CYR_REQUIRES(mu_);

  /// Reloads `name` from the spill tier into the memory tier (most-recent,
  /// original generation); requires `mu_`. Returns null on a spill miss or
  /// a corrupt/undecodable spill file (which is dropped with a warning).
  GraphPtr ReloadLocked(const std::string& name) CYR_REQUIRES(mu_);

  const size_t max_bytes_;  // 0 = unbounded
  SpillTier* const spill_;  // not owned, may be null
  /// Nests *inside* Datastore::put_mu_ and *outside* the spill tier's
  /// locks (EvictLocked demotes victims to `spill_` under it).
  mutable Mutex mu_{lock_rank::kGraphStoreMu, "GraphStore::mu_"};
  ByteBudgetedLru<Slot> lru_ CYR_GUARDED_BY(mu_);  ///< memory tier
  ExpiryMarkers evicted_ CYR_GUARDED_BY(mu_);  ///< names answering kExpired
  /// 0 is reserved for "not live".
  uint64_t next_generation_ CYR_GUARDED_BY(mu_) = 1;
  GraphStoreStats stats_ CYR_GUARDED_BY(mu_);
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_GRAPH_STORE_H_
