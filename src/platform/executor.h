#ifndef CYCLERANK_PLATFORM_EXECUTOR_H_
#define CYCLERANK_PLATFORM_EXECUTOR_H_

#include <atomic>
#include <string>

#include "platform/datastore.h"
#include "platform/registry.h"
#include "platform/status_service.h"
#include "platform/task.h"

namespace cyclerank {

/// One computational node (Fig. 1): fetches the dataset from the
/// datastore, resolves the algorithm, runs it, and writes result and logs
/// back — steps 2–4 of the paper's request flow (§III).
///
/// `Execute` is synchronous; the `Scheduler` runs it on worker threads.
/// The executor is stateless apart from its wiring, so one instance can be
/// shared by any number of threads.
class Executor {
 public:
  /// All dependencies are borrowed and must outlive the executor.
  Executor(Datastore* datastore, AlgorithmRegistry* registry,
           StatusService* status)
      : datastore_(datastore), registry_(registry), status_(status) {}

  /// Runs `spec` as task `task_id`:
  ///   pending → fetching → running → completed | failed | cancelled.
  /// A failure at any stage is recorded as a failed `TaskResult` carrying
  /// the error status (the platform never throws). If `*cancelled` becomes
  /// true before the computation starts, the task ends in `kCancelled`.
  void Execute(const std::string& task_id, const TaskSpec& spec,
               const std::atomic<bool>* cancelled = nullptr);

 private:
  /// Runs the fallible part and returns the outcome.
  Result<TaskResult> Run(const std::string& task_id, const TaskSpec& spec,
                         const std::atomic<bool>* cancelled);

  Datastore* datastore_;
  AlgorithmRegistry* registry_;
  StatusService* status_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_EXECUTOR_H_
