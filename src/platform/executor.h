#ifndef CYCLERANK_PLATFORM_EXECUTOR_H_
#define CYCLERANK_PLATFORM_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "platform/datastore.h"
#include "platform/platform_options.h"
#include "platform/registry.h"
#include "platform/status_service.h"
#include "platform/task.h"

namespace cyclerank {

/// One computational node (Fig. 1): fetches the dataset from the
/// datastore, resolves the algorithm, runs it, and writes result and logs
/// back — steps 2–4 of the paper's request flow (§III).
///
/// The dataset fetched at task start is an immutable snapshot *pinned*
/// (via its `GraphPtr`) for the task's whole run: a concurrent graph-store
/// eviction drops only the store's reference, never the memory a running
/// kernel reads — the task completes bit-identically and the graph is
/// freed when the pin drops.
///
/// `Execute` is synchronous; the `Scheduler` runs it on worker threads.
/// The executor is stateless apart from its wiring — it owns no mutex and
/// no mutable fields, so it carries no thread-safety annotations: every
/// shared structure it touches (datastore stores, status service, result
/// cache) is locked by its owner. One instance can be shared by any number
/// of threads.
class Executor {
 public:
  /// All dependencies are borrowed and must outlive the executor.
  /// `options.default_threads` / `options.num_shards` are applied to tasks
  /// that carry no `threads=` / `shards=` parameter of their own.
  Executor(Datastore* datastore, AlgorithmRegistry* registry,
           StatusService* status, const PlatformOptions& options = {})
      : datastore_(datastore),
        registry_(registry),
        status_(status),
        default_threads_(options.default_threads),
        default_shards_(options.num_shards) {}

  /// Runs `spec` as task `task_id`:
  ///   pending → fetching → running → completed | failed | cancelled.
  /// A failure at any stage is recorded as a failed `TaskResult` carrying
  /// the error status (the platform never throws). If `*cancelled` becomes
  /// true before the computation starts, the task ends in `kCancelled`.
  /// When `outcome` is non-null it receives a copy of the stored terminal
  /// result (the scheduler's single-flight layer fans it out to coalesced
  /// followers). A non-empty `cache_key` (a `TaskFingerprint`) publishes a
  /// successful result to the datastore's result cache *before* the task
  /// turns terminal, so anyone who observes `kCompleted` is guaranteed to
  /// find the result cached — pollers can never race past the insert.
  void Execute(const std::string& task_id, const TaskSpec& spec,
               const std::atomic<bool>* cancelled = nullptr,
               TaskResult* outcome = nullptr,
               const std::string& cache_key = {});

  /// Delivers an already-computed `outcome` as task `task_id` without
  /// running any kernel work: the result is rewritten onto this task's
  /// identity (id, spec, serve time), stored, and the task jumps straight to
  /// the matching terminal state. `via` names the shortcut for the task log
  /// ("result cache", "single-flight leader <id>").
  void Deliver(const std::string& task_id, const TaskSpec& spec,
               const TaskResult& outcome, const std::string& via);

  /// The completed-result cache this executor publishes into (the
  /// datastore's; the scheduler serves hits from the same instance).
  ResultCache& result_cache() const { return datastore_->result_cache(); }

 private:
  /// Runs the fallible part and returns the outcome.
  Result<TaskResult> Run(const std::string& task_id, const TaskSpec& spec,
                         const std::atomic<bool>* cancelled);

  Datastore* datastore_;
  AlgorithmRegistry* registry_;
  StatusService* status_;
  const uint32_t default_threads_;  ///< 0 = kernel default (whole pool)
  const uint32_t default_shards_;   ///< 0 or 1 = monolithic execution
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_EXECUTOR_H_
