#include "platform/result_store.h"

#include <utility>

#include "common/mutex.h"

namespace cyclerank {

std::vector<TaskResult> ResultStore::Put(TaskResult result) {
  MutexLock lock(mu_);
  const std::string id = result.task_id;
  auto [it, inserted] = results_.insert_or_assign(id, std::move(result));
  (void)it;
  std::vector<TaskResult> evicted;
  // Unlimited mode keeps no retention bookkeeping at all — the FIFO would
  // otherwise grow one id per stored result forever.
  if (max_retained_ == 0) return evicted;
  if (!inserted) return evicted;  // retry overwrite: slot unchanged
  // A re-stored result revives an evicted id.
  evicted_.Revive(id);
  retention_fifo_.push_back(id);
  EnforceRetentionLocked(&evicted);
  return evicted;
}

void ResultStore::EnforceRetentionLocked(std::vector<TaskResult>* evicted) {
  while (results_.size() > max_retained_) {
    const std::string oldest = std::move(retention_fifo_.front());
    retention_fifo_.pop_front();
    auto node = results_.extract(oldest);
    if (!node.empty()) evicted->push_back(std::move(node.mapped()));
    evicted_.Mark(oldest);
  }
  // The eviction-marker set is FIFO-bounded too (by the same knob), so the
  // store's footprint stays O(max_retained) forever.
  evicted_.Bound(max_retained_);
}

Result<TaskResult> ResultStore::Get(const std::string& task_id) const {
  MutexLock lock(mu_);
  auto it = results_.find(task_id);
  if (it == results_.end()) {
    if (evicted_.Contains(task_id)) {
      return Status::Expired("result for task '" + task_id +
                             "' was evicted by the retention policy (bound " +
                             std::to_string(max_retained_) + ")");
    }
    return Status::NotFound("no result for task '" + task_id + "'");
  }
  return it->second;
}

bool ResultStore::Has(const std::string& task_id) const {
  MutexLock lock(mu_);
  return results_.count(task_id) != 0;
}

size_t ResultStore::size() const {
  MutexLock lock(mu_);
  return results_.size();
}

}  // namespace cyclerank
