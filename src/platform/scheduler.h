#ifndef CYCLERANK_PLATFORM_SCHEDULER_H_
#define CYCLERANK_PLATFORM_SCHEDULER_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "platform/executor.h"
#include "platform/platform_options.h"
#include "platform/task.h"

namespace cyclerank {

/// The Scheduler of Fig. 1: "when the Scheduler receives the task, it
/// fetches the dataset and invokes an Executor node; the computation …
/// is off-loaded to the worker nodes."
///
/// Tasks are dispatched FIFO with at most `num_workers` running
/// concurrently — the knob behind "computational nodes … can be scaled up
/// or down depending on the system's workload" (§III); the F1 bench sweeps
/// it. Execution happens on the process-wide compute pool
/// (`GlobalComputePool`), the same substrate the ranking kernels use for
/// their own `ParallelFor` fan-out. Sharing one pool keeps the number of
/// runnable threads bounded by the hardware even when query-level and
/// kernel-level parallelism are both active (kernels fall back to
/// caller-runs when the pool is busy, so nesting cannot deadlock).
///
/// On top of dispatch the scheduler deduplicates identical work. Tasks
/// enqueued with the same non-empty `coalesce_key` (a `TaskFingerprint`)
/// are single-flighted: the first becomes the *leader* and actually runs;
/// later ones become *followers* that never dispatch — the leader's outcome
/// is fanned out to them on completion (each keeps its own task id, result
/// record, and status lifecycle). Successful outcomes also enter the
/// `ResultCache`, and an enqueue whose key is already cached is served
/// synchronously with zero kernel work.
///
/// **Overload control** (PR 8). Two admission knobs defend latency when
/// demand outruns the workers:
///
///   - `PlatformOptions::admission_queue_limit` bounds the not-yet-running
///     backlog: an enqueue that would queue past the bound is rejected
///     synchronously with `kUnavailable` — the caller learns *now* that
///     the system is overloaded, instead of parking work in an unbounded
///     queue. Cache hits and single-flight followers are exempt (they
///     occupy no worker).
///   - a *deadline*: the task parameter `deadline_ms=` (or, absent that,
///     `PlatformOptions::default_deadline_ms`) gives each task a relative
///     deadline, fixed to an absolute steady-clock instant at enqueue. A
///     task whose deadline passes while it waits — in the queue or
///     coalesced behind a leader — fast-fails `kDeadlineExceeded` without
///     touching a kernel, so a backlogged system sheds exactly the work
///     whose answer nobody is still waiting for. Deadlines are
///     execution-only (excluded from fingerprints): they decide *whether*
///     the kernel runs, never what it computes, and a deadline-exceeded
///     leader promotes its first follower rather than dragging it down.
class Scheduler {
 public:
  /// `options.num_workers` caps concurrently running tasks (0 = one per
  /// hardware thread). `pool` defaults to the process-wide compute pool;
  /// tests may inject their own. The pool is borrowed and is never shut
  /// down by the scheduler. Cached results are read from (and written, by
  /// the executor, to) the executor's datastore-owned `ResultCache`.
  Scheduler(Executor* executor, const PlatformOptions& options,
            ThreadPool* pool = nullptr);
  ~Scheduler() { Shutdown(); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a task for execution. `cancelled` (optional) is sampled by
  /// the executor before the computation starts; the shared_ptr keeps the
  /// flag alive for the task's lifetime. Fails when the scheduler is shut
  /// down.
  ///
  /// A non-empty `coalesce_key` asserts that every task carrying this key
  /// describes the same deterministic computation; the scheduler is then
  /// free to serve the task from the result cache or coalesce it with an
  /// in-flight leader (see class comment). A cancelled leader does not drag
  /// its followers down: the first follower is promoted to a fresh leader
  /// under its own cancellation flag.
  ///
  /// Overload control (see class comment): a malformed `deadline_ms=`
  /// parameter is rejected with `kInvalidArgument`; an enqueue that would
  /// grow the waiting queue past `admission_queue_limit` answers
  /// `kUnavailable` without tracking the task.
  Status Enqueue(const std::string& task_id, TaskSpec spec,
                 std::shared_ptr<std::atomic<bool>> cancelled = nullptr,
                 std::string coalesce_key = {}) CYR_EXCLUDES(mu_);

  /// Blocks until all tasks enqueued so far have finished.
  void Drain() CYR_EXCLUDES(mu_);

  /// Stops accepting work and waits for in-flight tasks (idempotent).
  void Shutdown() CYR_EXCLUDES(mu_);

  size_t num_workers() const { return num_workers_; }

  /// Number of tasks accepted but not yet dispatched to the pool.
  size_t QueueDepth() const CYR_EXCLUDES(mu_);

 private:
  /// Absolute per-task deadline; nullopt = none.
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  struct Pending {
    std::string task_id;
    TaskSpec spec;
    std::shared_ptr<std::atomic<bool>> cancelled;
    std::string key;  ///< coalesce key; empty = no dedup
    Deadline deadline;
  };

  /// A coalesced task waiting for its leader's outcome.
  struct Follower {
    std::string task_id;
    TaskSpec spec;
    std::shared_ptr<std::atomic<bool>> cancelled;
    Deadline deadline;
  };

  /// Single-flight bookkeeping for one key with work queued or running.
  struct Inflight {
    std::string leader_id;
    std::vector<Follower> followers;
  };

  /// Dispatches waiting tasks while concurrency allows; requires `mu_`.
  void DispatchLocked() CYR_REQUIRES(mu_);

  /// Delivers the leader's outcome to coalesced followers — except those
  /// whose own requester cancelled meanwhile, which get a cancelled
  /// outcome of their own. Must be called without `mu_` held (delivery
  /// writes results through the datastore) except on the degenerate
  /// pool-refused shutdown path.
  void DeliverFollowers(const std::vector<Follower>& fan_out,
                        const TaskResult& outcome,
                        const std::string& leader_id);

  /// Finishes single-flight bookkeeping for a completed leader; requires
  /// `mu_` (the executor already published successful outcomes to the
  /// cache). Followers to deliver are moved into `fan_out` — the caller
  /// delivers, usually outside the lock, and is responsible for a
  /// DispatchLocked pass afterwards. A cancelled leader with followers
  /// promotes the first follower to a fresh leader instead — cancellation
  /// belongs to the requester, not the computation — unless the scheduler
  /// is shutting down.
  void CompleteKeyLocked(const std::string& key, const std::string& task_id,
                         const TaskResult& outcome,
                         std::vector<Follower>* fan_out) CYR_REQUIRES(mu_);

  /// True when `deadline` exists and has passed.
  static bool Expired(const Deadline& deadline) {
    return deadline.has_value() &&
           std::chrono::steady_clock::now() > *deadline;
  }

  Executor* executor_;
  ThreadPool* pool_;  // borrowed; shared with kernel-level ParallelFor
  const size_t num_workers_;
  const size_t admission_queue_limit_;  ///< 0 = unbounded backlog
  const uint64_t default_deadline_ms_;  ///< 0 = no implicit deadline

  /// Outermost of the execution-side locks: DispatchLocked reaches the
  /// result cache, the datastore, and (on the pool-refused shutdown path)
  /// the whole executor stack while holding it.
  mutable Mutex mu_{lock_rank::kSchedulerMu, "Scheduler::mu_"};
  CondVar idle_;
  std::deque<Pending> waiting_ CYR_GUARDED_BY(mu_);
  /// Keyed single-flight entries.
  std::map<std::string, Inflight> inflight_ CYR_GUARDED_BY(mu_);
  size_t in_flight_ CYR_GUARDED_BY(mu_) = 0;
  bool shutdown_ CYR_GUARDED_BY(mu_) = false;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_SCHEDULER_H_
