#ifndef CYCLERANK_PLATFORM_SCHEDULER_H_
#define CYCLERANK_PLATFORM_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "common/thread_pool.h"
#include "platform/executor.h"
#include "platform/task.h"

namespace cyclerank {

/// The Scheduler of Fig. 1: "when the Scheduler receives the task, it
/// fetches the dataset and invokes an Executor node; the computation …
/// is off-loaded to the worker nodes."
///
/// Tasks are dispatched FIFO with at most `num_workers` running
/// concurrently — the knob behind "computational nodes … can be scaled up
/// or down depending on the system's workload" (§III); the F1 bench sweeps
/// it. Execution happens on the process-wide compute pool
/// (`GlobalComputePool`), the same substrate the ranking kernels use for
/// their own `ParallelFor` fan-out. Sharing one pool keeps the number of
/// runnable threads bounded by the hardware even when query-level and
/// kernel-level parallelism are both active (kernels fall back to
/// caller-runs when the pool is busy, so nesting cannot deadlock).
class Scheduler {
 public:
  /// `pool` defaults to the process-wide compute pool; tests may inject
  /// their own. The pool is borrowed and is never shut down by the
  /// scheduler.
  Scheduler(Executor* executor, size_t num_workers, ThreadPool* pool = nullptr);
  ~Scheduler() { Shutdown(); }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a task for execution. `cancelled` (optional) is sampled by
  /// the executor before the computation starts; the shared_ptr keeps the
  /// flag alive for the task's lifetime. Fails when the scheduler is shut
  /// down.
  Status Enqueue(const std::string& task_id, TaskSpec spec,
                 std::shared_ptr<std::atomic<bool>> cancelled = nullptr);

  /// Blocks until all tasks enqueued so far have finished.
  void Drain();

  /// Stops accepting work and waits for in-flight tasks (idempotent).
  void Shutdown();

  size_t num_workers() const { return num_workers_; }

  /// Number of tasks accepted but not yet dispatched to the pool.
  size_t QueueDepth() const;

 private:
  struct Pending {
    std::string task_id;
    TaskSpec spec;
    std::shared_ptr<std::atomic<bool>> cancelled;
  };

  /// Dispatches waiting tasks while concurrency allows; requires `mu_`.
  void DispatchLocked();

  Executor* executor_;
  ThreadPool* pool_;  // borrowed; shared with kernel-level ParallelFor
  const size_t num_workers_;

  mutable std::mutex mu_;
  std::condition_variable idle_;
  std::deque<Pending> waiting_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_SCHEDULER_H_
