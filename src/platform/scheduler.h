#ifndef CYCLERANK_PLATFORM_SCHEDULER_H_
#define CYCLERANK_PLATFORM_SCHEDULER_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "platform/executor.h"
#include "platform/task.h"

namespace cyclerank {

/// The Scheduler of Fig. 1: "when the Scheduler receives the task, it
/// fetches the dataset and invokes an Executor node; the computation …
/// is off-loaded to the worker nodes."
///
/// Tasks are dispatched FIFO onto a pool of `num_workers` executor
/// threads — the knob behind "computational nodes … can be scaled up or
/// down depending on the system's workload" (§III). The F1 bench sweeps
/// this worker count.
class Scheduler {
 public:
  Scheduler(Executor* executor, size_t num_workers)
      : executor_(executor), pool_(num_workers) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a task for execution. `cancelled` (optional) is sampled by
  /// the executor before the computation starts; the shared_ptr keeps the
  /// flag alive for the task's lifetime. Fails when the scheduler is shut
  /// down.
  Status Enqueue(const std::string& task_id, TaskSpec spec,
                 std::shared_ptr<std::atomic<bool>> cancelled = nullptr);

  /// Blocks until all queued tasks have finished.
  void Drain() { pool_.WaitIdle(); }

  /// Stops accepting work and joins the workers (idempotent).
  void Shutdown() { pool_.Shutdown(); }

  size_t num_workers() const { return pool_.num_threads(); }
  size_t QueueDepth() const { return pool_.QueueDepth(); }

 private:
  Executor* executor_;
  ThreadPool pool_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_SCHEDULER_H_
