#include "platform/result_cache.h"

#include <utility>

namespace cyclerank {

std::optional<TaskResult> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  TaskResult* result = lru_.Touch(key);
  if (result == nullptr) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  return *result;
}

void ResultCache::Put(const std::string& key, TaskResult result) {
  const size_t bytes = EstimateBytes(key, result);
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > max_bytes_) {
    ++stats_.rejected;
    return;
  }
  lru_.Erase(key);  // overwrite-on-duplicate policy
  lru_.Insert(key, std::move(result), bytes);
  ++stats_.insertions;
  EvictLocked();
}

void ResultCache::EvictLocked() {
  while (lru_.OverBudget()) {
    lru_.PopLeastRecent();
    ++stats_.evictions;
  }
}

size_t ResultCache::ErasePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t erased = lru_.ErasePrefix(prefix).size();
  stats_.invalidations += erased;
  return erased;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.Clear();
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResultCacheStats snapshot = stats_;
  snapshot.entries = lru_.size();
  snapshot.bytes = lru_.bytes();
  return snapshot;
}

size_t ResultCache::EstimateBytes(const std::string& key,
                                  const TaskResult& result) {
  // Fixed overhead: the LRU node, the index map node, and the string /
  // vector headers the payload sizes below do not include.
  constexpr size_t kOverhead = sizeof(ByteBudgetedLru<TaskResult>::Entry) + 128;
  return kOverhead + key.size() + result.task_id.size() +
         result.spec.dataset.size() + result.spec.algorithm.size() +
         result.spec.params.ToString().size() +
         result.status.message().size() +
         result.ranking.size() * sizeof(ScoredNode);
}

}  // namespace cyclerank
