#include "platform/result_cache.h"

#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "platform/result_io.h"

namespace cyclerank {

std::optional<TaskResult> ResultCache::Get(const std::string& key) {
  MutexLock lock(mu_);
  TaskResult* result = lru_.Touch(key);
  if (result != nullptr) {
    ++stats_.hits;
    return *result;
  }
  if (spill_ != nullptr) {
    // The disk tier may hold a demoted copy. The tier's key filter makes
    // the common cold miss (never cached) a lock-free negative — this
    // call does no filesystem work then.
    Result<SpillTier::Loaded> loaded = spill_->Get(key);
    if (loaded.ok()) {
      Result<TaskResult> decoded = DeserializeTaskResult(loaded->payload);
      if (decoded.ok()) {
        // Re-admit to memory (the disk copy stays: fingerprints are
        // content-addressed, so it can never be stale, and keeping it
        // lets the next eviction skip re-serialization).
        const size_t bytes = EstimateBytes(key, *decoded);
        if (bytes <= max_bytes_) {
          lru_.Insert(key, *decoded, bytes);
          EvictLocked();
        }
        ++stats_.hits;
        ++stats_.disk_reloads;
        return std::move(decoded).value();
      }
      CYCLERANK_LOG(kWarning)
          << "result cache: dropping undecodable spill of '" << key
          << "': " << decoded.status().ToString();
      spill_->Erase(key);
    }
  }
  ++stats_.misses;
  return std::nullopt;
}

void ResultCache::Put(const std::string& key, TaskResult result) {
  const size_t bytes = EstimateBytes(key, result);
  MutexLock lock(mu_);
  if (bytes > max_bytes_) {
    ++stats_.rejected;
    return;
  }
  lru_.Erase(key);  // overwrite-on-duplicate policy
  lru_.Insert(key, std::move(result), bytes);
  ++stats_.insertions;
  EvictLocked();
}

void ResultCache::EvictLocked() {
  while (lru_.OverBudget()) {
    std::optional<ByteBudgetedLru<TaskResult>::Entry> victim =
        lru_.PopLeastRecent();
    if (!victim.has_value()) break;
    ++stats_.evictions;
    if (spill_ == nullptr) continue;
    // Demote instead of destroy. A copy already on disk (this entry was
    // reloaded from there) is bit-identical — same fingerprint, same
    // deterministic result — so the Put can be skipped outright.
    if (spill_->Contains(victim->key)) {
      ++stats_.disk_spills;
      continue;
    }
    const Status spilled = spill_->Put(
        victim->key, MakeResultSpillPayload(std::move(victim->value)));
    if (spilled.ok()) {
      ++stats_.disk_spills;
    } else {
      CYCLERANK_LOG(kWarning)
          << "result cache: could not spill evicted entry '" << victim->key
          << "': " << spilled.ToString() << "; dropping it instead";
    }
  }
}

size_t ResultCache::ErasePrefix(const std::string& prefix) {
  MutexLock lock(mu_);
  size_t erased = lru_.ErasePrefix(prefix).size();
  if (spill_ != nullptr) {
    // The disk tier holds demoted results keyed by the same fingerprints;
    // a re-bound dataset name invalidates them just as hard.
    erased += spill_->ErasePrefix(prefix);
  }
  stats_.invalidations += erased;
  return erased;
}

void ResultCache::Clear() {
  MutexLock lock(mu_);
  lru_.Clear();
}

ResultCacheStats ResultCache::stats() const {
  MutexLock lock(mu_);
  ResultCacheStats snapshot = stats_;
  snapshot.entries = lru_.size();
  snapshot.bytes = lru_.bytes();
  return snapshot;
}

size_t ResultCache::EstimateBytes(const std::string& key,
                                  const TaskResult& result) {
  // Fixed overhead: the LRU node, the index map node, and the string /
  // vector headers the payload sizes below do not include.
  constexpr size_t kOverhead = sizeof(ByteBudgetedLru<TaskResult>::Entry) + 128;
  return kOverhead + key.size() + result.task_id.size() +
         result.spec.dataset.size() + result.spec.algorithm.size() +
         result.spec.params.ToString().size() +
         result.status.message().size() +
         result.ranking.size() * sizeof(ScoredNode);
}

}  // namespace cyclerank
