#include "platform/result_cache.h"

#include <utility>

namespace cyclerank {

std::optional<TaskResult> ResultCache::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->result;
}

void ResultCache::Put(const std::string& key, TaskResult result) {
  const size_t bytes = EstimateBytes(key, result);
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes > max_bytes_) {
    ++stats_.rejected;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    stats_.bytes -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
    --stats_.entries;
  }
  lru_.push_front(Entry{key, std::move(result), bytes});
  index_[key] = lru_.begin();
  stats_.bytes += bytes;
  ++stats_.entries;
  ++stats_.insertions;
  EvictLocked();
}

void ResultCache::EvictLocked() {
  while (stats_.bytes > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    stats_.bytes -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    --stats_.entries;
    ++stats_.evictions;
  }
}

size_t ResultCache::ErasePrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t erased = 0;
  // index_ is ordered, so the matching keys form one contiguous range.
  for (auto it = index_.lower_bound(prefix);
       it != index_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       it = index_.erase(it)) {
    stats_.bytes -= it->second->bytes;
    lru_.erase(it->second);
    --stats_.entries;
    ++stats_.invalidations;
    ++erased;
  }
  return erased;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

ResultCacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ResultCache::EstimateBytes(const std::string& key,
                                  const TaskResult& result) {
  // Fixed overhead: the Entry node, the index map node, and the string /
  // vector headers the payload sizes below do not include.
  constexpr size_t kOverhead = sizeof(Entry) + 128;
  return kOverhead + key.size() + result.task_id.size() +
         result.spec.dataset.size() + result.spec.algorithm.size() +
         result.spec.params.ToString().size() +
         result.status.message().size() +
         result.ranking.size() * sizeof(ScoredNode);
}

}  // namespace cyclerank
