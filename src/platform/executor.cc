#include "platform/executor.h"

#include <utility>

#include "common/parallel_for.h"
#include "common/timer.h"
#include "platform/params.h"

namespace cyclerank {

void Executor::Execute(const std::string& task_id, const TaskSpec& spec,
                       const std::atomic<bool>* cancelled,
                       TaskResult* outcome, const std::string& cache_key) {
  WallTimer timer;
  datastore_->AppendLog(task_id, "task accepted: " + spec.ToString());

  if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
    datastore_->AppendLog(task_id, "task cancelled before start");
    TaskResult result;
    result.task_id = task_id;
    result.spec = spec;
    result.status = Status::Cancelled("cancelled before start");
    result.seconds = timer.ElapsedSeconds();
    if (outcome != nullptr) *outcome = result;
    // Store the result before the terminal transition (like every other
    // path here): a waiter woken by kCancelled must find the result stored.
    datastore_->PutResult(std::move(result));
    (void)status_->SetState(task_id, TaskState::kCancelled);
    return;
  }

  Result<TaskResult> run = Run(task_id, spec, cancelled);
  if (run.ok()) {
    TaskResult result = std::move(run).value();
    result.seconds = timer.ElapsedSeconds();
    datastore_->AppendLog(
        task_id, "completed in " + std::to_string(result.seconds) + "s, " +
                     std::to_string(result.ranking.size()) + " ranked nodes");
    if (outcome != nullptr) *outcome = result;
    // Publish to the result cache before the terminal state transition:
    // a waiter woken by kCompleted must already find the result cached.
    if (!cache_key.empty()) result_cache().Put(cache_key, result);
    datastore_->PutResult(std::move(result));
    (void)status_->SetState(task_id, TaskState::kCompleted);
    return;
  }

  const Status error = run.status();
  datastore_->AppendLog(task_id, "failed: " + error.ToString());
  TaskResult result;
  result.task_id = task_id;
  result.spec = spec;
  result.status = error;
  result.seconds = timer.ElapsedSeconds();
  if (outcome != nullptr) *outcome = result;
  datastore_->PutResult(std::move(result));
  (void)status_->SetState(task_id,
                          error.code() == StatusCode::kCancelled
                              ? TaskState::kCancelled
                              : TaskState::kFailed);
}

void Executor::Deliver(const std::string& task_id, const TaskSpec& spec,
                       const TaskResult& outcome, const std::string& via) {
  WallTimer timer;
  datastore_->AppendLog(task_id, "task accepted: " + spec.ToString());
  TaskResult result = outcome;
  result.task_id = task_id;
  result.spec = spec;
  const TaskState terminal =
      outcome.status.ok() ? TaskState::kCompleted
      : outcome.status.code() == StatusCode::kCancelled ? TaskState::kCancelled
                                                        : TaskState::kFailed;
  result.seconds = timer.ElapsedSeconds();
  datastore_->AppendLog(
      task_id, "served via " + via + " in " +
                   std::to_string(result.seconds) + "s (computation took " +
                   std::to_string(outcome.seconds) + "s), outcome " +
                   std::string(TaskStateToString(terminal)));
  datastore_->PutResult(std::move(result));
  (void)status_->SetState(task_id, terminal);
}

Result<TaskResult> Executor::Run(const std::string& task_id,
                                 const TaskSpec& spec,
                                 const std::atomic<bool>* cancelled) {
  CYCLERANK_RETURN_NOT_OK(status_->SetState(task_id, TaskState::kFetching));
  datastore_->AppendLog(task_id, "fetching dataset '" + spec.dataset + "'");
  // This GraphPtr pins the immutable snapshot for the task's whole run: a
  // concurrent graph-store eviction can drop the store's reference but
  // never the graph under the kernel — results stay bit-identical to an
  // eviction-free run, and the memory is freed when the pin drops.
  CYCLERANK_ASSIGN_OR_RETURN(GraphPtr graph,
                             datastore_->GetDataset(spec.dataset));
  datastore_->AppendLog(
      task_id, "pinned dataset snapshot '" + spec.dataset + "' (" +
                   std::to_string(graph->MemoryBytes()) +
                   " bytes) for the task's lifetime");

  CYCLERANK_ASSIGN_OR_RETURN(auto algorithm, registry_->Find(spec.algorithm));
  CYCLERANK_ASSIGN_OR_RETURN(AlgorithmRequest request,
                             BuildRequest(*graph, spec.params));
  // Deployment-level default thread budget; an explicit threads= parameter
  // always wins. Execution-only: kernels are bit-identical at any count,
  // so this never touches the task's fingerprint or cached result.
  if (default_threads_ != 0 && !spec.params.Has("threads")) {
    request.num_threads = default_threads_;
  }
  // Same pattern for the shard count (execution-only too). 0 or 1 =
  // monolithic execution, the unsharded fast path.
  if (default_shards_ != 0 && !spec.params.Has("shards")) {
    request.num_shards = default_shards_;
  }
  if (algorithm->requires_reference() && request.reference == kInvalidNode) {
    return Status::InvalidArgument("algorithm '" + spec.algorithm +
                                   "' requires a reference node (source=...)");
  }

  if (request.num_shards > 1) {
    // Fetch (or lazily build) the sharded view of the pinned snapshot —
    // cached next to the dataset, so later tasks at this shard count reuse
    // it. Kernels re-validate that the view's parent is the graph they run
    // on.
    CYCLERANK_ASSIGN_OR_RETURN(
        request.sharded_graph,
        datastore_->GetShardedDataset(spec.dataset, graph,
                                      request.num_shards));
    datastore_->AppendLog(
        task_id,
        "sharded view ready: " +
            std::to_string(request.sharded_graph->num_shards()) +
            " shard(s) via " + request.sharded_graph->partitioner_name() +
            ", " + std::to_string(request.sharded_graph->TotalBoundaryEdges()) +
            " boundary edge(s), " +
            std::to_string(request.sharded_graph->MemoryBytes()) + " bytes");
  }

  if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
    return Status::Cancelled("cancelled before computation");
  }

  CYCLERANK_RETURN_NOT_OK(status_->SetState(task_id, TaskState::kRunning));
  // Kernel-level fan-out runs on the same process-wide pool the Scheduler
  // dispatches tasks on, so the two levels of parallelism share one
  // substrate instead of oversubscribing the machine.
  datastore_->AppendLog(
      task_id, "running '" + spec.algorithm + "' on " +
                   std::to_string(graph->num_nodes()) + " nodes / " +
                   std::to_string(graph->num_edges()) + " edges with " +
                   std::to_string(ResolveThreadCount(request.num_threads)) +
                   " kernel thread(s) on the shared pool");
  CYCLERANK_ASSIGN_OR_RETURN(RankedList ranking,
                             algorithm->Run(*graph, request));

  TaskResult result;
  result.task_id = task_id;
  result.spec = spec;
  result.status = Status::OK();
  result.ranking = std::move(ranking);
  return result;
}

}  // namespace cyclerank
