#include "platform/executor.h"

#include <utility>

#include "common/parallel_for.h"
#include "common/timer.h"
#include "platform/params.h"

namespace cyclerank {

void Executor::Execute(const std::string& task_id, const TaskSpec& spec,
                       const std::atomic<bool>* cancelled) {
  WallTimer timer;
  datastore_->AppendLog(task_id, "task accepted: " + spec.ToString());

  if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
    datastore_->AppendLog(task_id, "task cancelled before start");
    (void)status_->SetState(task_id, TaskState::kCancelled);
    TaskResult result;
    result.task_id = task_id;
    result.spec = spec;
    result.status = Status::Cancelled("cancelled before start");
    result.seconds = timer.ElapsedSeconds();
    datastore_->PutResult(std::move(result));
    return;
  }

  Result<TaskResult> outcome = Run(task_id, spec, cancelled);
  if (outcome.ok()) {
    TaskResult result = std::move(outcome).value();
    result.seconds = timer.ElapsedSeconds();
    datastore_->AppendLog(
        task_id, "completed in " + std::to_string(result.seconds) + "s, " +
                     std::to_string(result.ranking.size()) + " ranked nodes");
    datastore_->PutResult(std::move(result));
    (void)status_->SetState(task_id, TaskState::kCompleted);
    return;
  }

  const Status error = outcome.status();
  datastore_->AppendLog(task_id, "failed: " + error.ToString());
  TaskResult result;
  result.task_id = task_id;
  result.spec = spec;
  result.status = error;
  result.seconds = timer.ElapsedSeconds();
  datastore_->PutResult(std::move(result));
  (void)status_->SetState(task_id,
                          error.code() == StatusCode::kCancelled
                              ? TaskState::kCancelled
                              : TaskState::kFailed);
}

Result<TaskResult> Executor::Run(const std::string& task_id,
                                 const TaskSpec& spec,
                                 const std::atomic<bool>* cancelled) {
  CYCLERANK_RETURN_NOT_OK(status_->SetState(task_id, TaskState::kFetching));
  datastore_->AppendLog(task_id, "fetching dataset '" + spec.dataset + "'");
  CYCLERANK_ASSIGN_OR_RETURN(GraphPtr graph,
                             datastore_->GetDataset(spec.dataset));

  CYCLERANK_ASSIGN_OR_RETURN(auto algorithm, registry_->Find(spec.algorithm));
  CYCLERANK_ASSIGN_OR_RETURN(AlgorithmRequest request,
                             BuildRequest(*graph, spec.params));
  if (algorithm->requires_reference() && request.reference == kInvalidNode) {
    return Status::InvalidArgument("algorithm '" + spec.algorithm +
                                   "' requires a reference node (source=...)");
  }

  if (cancelled != nullptr && cancelled->load(std::memory_order_relaxed)) {
    return Status::Cancelled("cancelled before computation");
  }

  CYCLERANK_RETURN_NOT_OK(status_->SetState(task_id, TaskState::kRunning));
  // Kernel-level fan-out runs on the same process-wide pool the Scheduler
  // dispatches tasks on, so the two levels of parallelism share one
  // substrate instead of oversubscribing the machine.
  datastore_->AppendLog(
      task_id, "running '" + spec.algorithm + "' on " +
                   std::to_string(graph->num_nodes()) + " nodes / " +
                   std::to_string(graph->num_edges()) + " edges with " +
                   std::to_string(ResolveThreadCount(request.num_threads)) +
                   " kernel thread(s) on the shared pool");
  CYCLERANK_ASSIGN_OR_RETURN(RankedList ranking,
                             algorithm->Run(*graph, request));

  TaskResult result;
  result.task_id = task_id;
  result.spec = spec;
  result.status = Status::OK();
  result.ranking = std::move(ranking);
  return result;
}

}  // namespace cyclerank
