#ifndef CYCLERANK_PLATFORM_LOG_STORE_H_
#define CYCLERANK_PLATFORM_LOG_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cyclerank {

/// The per-task-logs third of the Datastore decomposition: append-only log
/// lines keyed by task id.
///
/// The store holds no retention policy of its own — log lifetime follows
/// result lifetime: the `Datastore` facade erases a task's logs when the
/// `ResultStore` evicts its result.
///
/// Thread-safe; individually locked, so the executor's log appends never
/// contend with dataset or result traffic.
class LogStore {
 public:
  LogStore() = default;

  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  /// Appends one log line for `task_id`.
  void Append(const std::string& task_id, std::string line)
      CYR_EXCLUDES(mu_);

  /// All log lines of `task_id`, oldest first (empty if none).
  std::vector<std::string> Get(const std::string& task_id) const
      CYR_EXCLUDES(mu_);

  /// Drops all logs of the given tasks (used when their results expire).
  void Erase(const std::vector<std::string>& task_ids) CYR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lock_rank::kLogStoreMu, "LogStore::mu_"};
  std::map<std::string, std::vector<std::string>> logs_ CYR_GUARDED_BY(mu_);
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_LOG_STORE_H_
