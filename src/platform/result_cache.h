#ifndef CYCLERANK_PLATFORM_RESULT_CACHE_H_
#define CYCLERANK_PLATFORM_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "platform/byte_lru.h"
#include "platform/spill_tier.h"
#include "platform/task.h"

namespace cyclerank {

/// Effectiveness counters of a `ResultCache`; snapshot via `stats()`.
struct ResultCacheStats {
  uint64_t hits = 0;        ///< `Get` calls that returned a result
  uint64_t misses = 0;      ///< `Get` calls that returned nothing
  uint64_t insertions = 0;  ///< entries stored (including overwrites)
  uint64_t evictions = 0;   ///< entries dropped to respect the byte budget
  uint64_t rejected = 0;    ///< entries larger than the entire budget
  uint64_t invalidations = 0;  ///< entries dropped by `ErasePrefix`
  uint64_t disk_spills = 0;    ///< evictions demoted to the disk tier
  uint64_t disk_reloads = 0;   ///< `Get` hits served by reloading from disk
  size_t entries = 0;       ///< current entry count
  size_t bytes = 0;         ///< current estimated footprint
};

/// Byte-budgeted LRU cache of completed `TaskResult`s, keyed by
/// `TaskFingerprint` (platform/params.h).
///
/// This is the "repeated heavy-traffic queries stop re-running kernels"
/// layer: every kernel is deterministic and bit-identical at any thread
/// count, so a fingerprint hit can be served verbatim — the cached ranking
/// IS the ranking a fresh run would produce. Only successful results belong
/// here; failures are cheap to re-derive and may be transient.
///
/// With a `SpillTier` attached (PR 6), eviction *demotes* entries to disk
/// instead of destroying them, and a later fingerprint hit transparently
/// reloads (and re-admits) the entry — the cache's effective capacity
/// becomes memory + disk. Fingerprints are content-addressed (dataset
/// binding generation + algorithm + params), so a disk copy can never go
/// stale while its key matches; `ErasePrefix` invalidates both tiers when
/// a dataset name is re-bound. Single-flight semantics are preserved: the
/// scheduler consults `Get` before admitting a task, and a disk reload is
/// indistinguishable from a memory hit to it.
///
/// The footprint of an entry is estimated with `EstimateBytes` (dominated by
/// the ranking payload). Inserting past the budget evicts least-recently-used
/// entries; an entry that alone exceeds the budget is rejected outright. A
/// budget of 0 disables storage entirely (every `Get` misses).
///
/// Thread-safe. `Get` returns a copy so entries can be evicted while callers
/// still hold results.
class ResultCache {
 public:
  static constexpr size_t kDefaultMaxBytes = 64u << 20;  // 64 MiB

  /// `spill` may be null (no disk tier — the historical behavior) and must
  /// outlive the cache.
  explicit ResultCache(size_t max_bytes = kDefaultMaxBytes,
                       SpillTier* spill = nullptr)
      : max_bytes_(max_bytes), spill_(spill), lru_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for `key` (bumped to most-recently-used), or
  /// nullopt on a miss. A result demoted to the disk tier is transparently
  /// reloaded and re-admitted to memory.
  std::optional<TaskResult> Get(const std::string& key) CYR_EXCLUDES(mu_);

  /// Stores `result` under `key`, overwriting any previous entry and
  /// evicting LRU entries until the budget holds (evictees demote to the
  /// disk tier when one is attached).
  void Put(const std::string& key, TaskResult result) CYR_EXCLUDES(mu_);

  /// Drops every entry whose key starts with `prefix` — from memory and
  /// from the disk tier; returns how many (an entry resident in both tiers
  /// counts once per tier). Used to invalidate a dataset's cached results
  /// when its name is re-bound to new content (`DatasetFingerprintPrefix`).
  size_t ErasePrefix(const std::string& prefix) CYR_EXCLUDES(mu_);

  /// Drops every in-memory entry (counters and the disk tier are kept).
  void Clear() CYR_EXCLUDES(mu_);

  ResultCacheStats stats() const CYR_EXCLUDES(mu_);
  size_t max_bytes() const { return max_bytes_; }

  /// Estimated heap footprint of caching `result` under `key` — the string
  /// payloads plus the ranking entries plus fixed bookkeeping overhead.
  static size_t EstimateBytes(const std::string& key, const TaskResult& result);

 private:
  /// Evicts LRU entries until the budget holds, demoting each victim to
  /// the disk tier when one is attached; requires `mu_`.
  void EvictLocked() CYR_REQUIRES(mu_);

  const size_t max_bytes_;
  SpillTier* const spill_;  ///< not owned, may be null
  /// Nests inside the scheduler's mutex and outside the spill tier's
  /// locks (EvictLocked demotes victims to `spill_` under it).
  mutable Mutex mu_{lock_rank::kResultCacheMu, "ResultCache::mu_"};
  /// List + index + byte accounting.
  ByteBudgetedLru<TaskResult> lru_ CYR_GUARDED_BY(mu_);
  /// Counters only; entries/bytes snapshot from lru_.
  ResultCacheStats stats_ CYR_GUARDED_BY(mu_);
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_RESULT_CACHE_H_
