#ifndef CYCLERANK_PLATFORM_RESULT_CACHE_H_
#define CYCLERANK_PLATFORM_RESULT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "platform/byte_lru.h"
#include "platform/task.h"

namespace cyclerank {

/// Effectiveness counters of a `ResultCache`; snapshot via `stats()`.
struct ResultCacheStats {
  uint64_t hits = 0;        ///< `Get` calls that returned a result
  uint64_t misses = 0;      ///< `Get` calls that returned nothing
  uint64_t insertions = 0;  ///< entries stored (including overwrites)
  uint64_t evictions = 0;   ///< entries dropped to respect the byte budget
  uint64_t rejected = 0;    ///< entries larger than the entire budget
  uint64_t invalidations = 0;  ///< entries dropped by `ErasePrefix`
  size_t entries = 0;       ///< current entry count
  size_t bytes = 0;         ///< current estimated footprint
};

/// Byte-budgeted LRU cache of completed `TaskResult`s, keyed by
/// `TaskFingerprint` (platform/params.h).
///
/// This is the "repeated heavy-traffic queries stop re-running kernels"
/// layer: every kernel is deterministic and bit-identical at any thread
/// count, so a fingerprint hit can be served verbatim — the cached ranking
/// IS the ranking a fresh run would produce. Only successful results belong
/// here; failures are cheap to re-derive and may be transient.
///
/// The footprint of an entry is estimated with `EstimateBytes` (dominated by
/// the ranking payload). Inserting past the budget evicts least-recently-used
/// entries; an entry that alone exceeds the budget is rejected outright. A
/// budget of 0 disables storage entirely (every `Get` misses).
///
/// Thread-safe. `Get` returns a copy so entries can be evicted while callers
/// still hold results.
class ResultCache {
 public:
  static constexpr size_t kDefaultMaxBytes = 64u << 20;  // 64 MiB

  explicit ResultCache(size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes), lru_(max_bytes) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the cached result for `key` (bumped to most-recently-used), or
  /// nullopt on a miss.
  std::optional<TaskResult> Get(const std::string& key);

  /// Stores `result` under `key`, overwriting any previous entry and
  /// evicting LRU entries until the budget holds.
  void Put(const std::string& key, TaskResult result);

  /// Drops every entry whose key starts with `prefix`; returns how many.
  /// Used to invalidate a dataset's cached results when its name is
  /// re-bound to new content (`DatasetFingerprintPrefix`).
  size_t ErasePrefix(const std::string& prefix);

  /// Drops every entry (counters are kept).
  void Clear();

  ResultCacheStats stats() const;
  size_t max_bytes() const { return max_bytes_; }

  /// Estimated heap footprint of caching `result` under `key` — the string
  /// payloads plus the ranking entries plus fixed bookkeeping overhead.
  static size_t EstimateBytes(const std::string& key, const TaskResult& result);

 private:
  /// Evicts LRU entries until the budget holds; requires `mu_`.
  void EvictLocked();

  const size_t max_bytes_;
  mutable std::mutex mu_;
  ByteBudgetedLru<TaskResult> lru_;  ///< list + index + byte accounting
  ResultCacheStats stats_;           ///< counters only; entries/bytes from lru_
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_RESULT_CACHE_H_
