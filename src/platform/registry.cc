#include "platform/registry.h"

#include "common/mutex.h"

namespace cyclerank {

AlgorithmRegistry& AlgorithmRegistry::Default() {
  static AlgorithmRegistry* registry = [] {
    auto* r = new AlgorithmRegistry;
    for (AlgorithmKind kind : AllAlgorithmKinds()) {
      (void)r->Register(MakeAlgorithm(kind));
    }
    return r;
  }();
  return *registry;
}

Status AlgorithmRegistry::Register(
    std::shared_ptr<const RelevanceAlgorithm> algorithm) {
  if (!algorithm) {
    return Status::InvalidArgument("registry: algorithm must not be null");
  }
  const std::string name(algorithm->name());
  if (name.empty()) {
    return Status::InvalidArgument("registry: algorithm name must not be empty");
  }
  // A name that is an alias or case-variant of a built-in would be shadowed
  // by (or shadow) the alias fallback in Find, and would collide with the
  // builtin's canonical TaskFingerprint, letting the result cache serve one
  // algorithm's ranking as the other's. Reject it outright — the same
  // provenance rule the datastore applies to dataset names.
  if (auto kind = AlgorithmKindFromString(name);
      kind.ok() && name != AlgorithmKindToString(*kind)) {
    return Status::InvalidArgument(
        "registry: name '" + name + "' is an alias of built-in '" +
        std::string(AlgorithmKindToString(*kind)) + "'");
  }
  MutexLock lock(mu_);
  auto [it, inserted] = algorithms_.emplace(name, std::move(algorithm));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("registry: algorithm '" + name +
                                 "' already registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<const RelevanceAlgorithm>> AlgorithmRegistry::Find(
    const std::string& name) const {
  {
    MutexLock lock(mu_);
    auto it = algorithms_.find(name);
    if (it != algorithms_.end()) return it->second;
  }
  // Alias fallback ("ppr", "pr", "cr", ...).
  auto kind = AlgorithmKindFromString(name);
  if (kind.ok()) {
    MutexLock lock(mu_);
    auto it = algorithms_.find(std::string(AlgorithmKindToString(*kind)));
    if (it != algorithms_.end()) return it->second;
  }
  return Status::NotFound("algorithm '" + name + "' not registered");
}

std::vector<std::string> AlgorithmRegistry::Names() const {
  MutexLock lock(mu_);
  std::vector<std::string> out;
  out.reserve(algorithms_.size());
  for (const auto& [name, algorithm] : algorithms_) out.push_back(name);
  return out;
}

size_t AlgorithmRegistry::size() const {
  MutexLock lock(mu_);
  return algorithms_.size();
}

}  // namespace cyclerank
