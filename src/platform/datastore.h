#ifndef CYCLERANK_PLATFORM_DATASTORE_H_
#define CYCLERANK_PLATFORM_DATASTORE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "datasets/catalog.h"
#include "graph/graph.h"
#include "platform/graph_store.h"
#include "platform/log_store.h"
#include "platform/platform_options.h"
#include "platform/result_cache.h"
#include "platform/result_store.h"
#include "platform/spill_tier.h"
#include "platform/task.h"

namespace cyclerank {

class Env;

/// Snapshot of the three disk spill tiers' counters (default-constructed
/// zeros for tiers that are disabled) — the monitoring view of recovery
/// (`recovered_files` / `skipped_corrupt_files`), retry, and
/// circuit-breaker activity in one poll.
struct DatastoreSpillStats {
  SpillTierStats datasets;
  SpillTierStats results;
  SpillTierStats cache;
};

/// The Datastore of Fig. 1: "responsible for storing and managing
/// datasets. It also provides storage for results and logs produced by the
/// system."
///
/// A facade over three focused, individually-locked stores — one per
/// lifecycle:
///
///   - `GraphStore`  — uploaded datasets, byte-budgeted
///     (`PlatformOptions::graph_store_bytes`), least-recently-queried
///     eviction;
///   - `ResultStore` — per-task results, FIFO retention
///     (`max_retained_results`);
///   - `LogStore`    — per-task logs, dropped when their result expires;
///
/// plus the byte-budgeted `ResultCache` of completed results
/// (`result_cache_bytes`). Splitting the lifecycles means dataset, result,
/// and log traffic never contend on one mutex, and each store owns exactly
/// one retention policy.
///
/// With `PlatformOptions::spill_dir` set, the facade additionally owns
/// three disk `SpillTier`s (`<spill_dir>/datasets`, `<spill_dir>/results`,
/// `<spill_dir>/cache`): eviction from the memory stores — including the
/// result cache — *demotes* the victim to disk instead of destroying it,
/// later lookups transparently reload it, and the tiers survive a process
/// restart (manifest + recovery scan). The tiers inherit the LSM-style
/// knobs (`spill_write_behind_bytes`, `spill_compression`): demotion
/// enqueues into a write-behind buffer flushed by a background thread, and
/// payloads are block-compressed on disk. An empty `spill_dir` keeps the
/// historical drop-on-evict behavior.
///
/// Datasets resolve against (a) graphs uploaded at runtime ("users can
/// upload new datasets") and (b) an optional backing `DatasetCatalog` of
/// pre-loaded datasets. Results and per-task logs are written by executors
/// and read by the Status component / the gateway. All methods are
/// thread-safe.
class Datastore {
 public:
  /// `catalog` may be null for a datastore with only uploaded datasets; it
  /// must outlive the datastore. `options` carries every retention knob:
  /// `graph_store_bytes` (uploaded-dataset budget, 0 = unbounded),
  /// `result_cache_bytes` (0 disables caching; in-flight dedup in the
  /// scheduler stays active either way), `max_retained_results`
  /// (0 = unlimited), and the disk-tier knobs (`spill_dir`,
  /// `graph_spill_bytes`, `result_spill_bytes`). A non-empty `spill_dir`
  /// recovers any entries a previous process spilled there.
  ///
  /// `env` is the filesystem the spill tiers talk to: null (the default)
  /// means the real disk (`Env::Default()`); tests pass a
  /// `FaultInjectingEnv` to rehearse disk failures. Must outlive the
  /// datastore.
  explicit Datastore(DatasetCatalog* catalog = &DatasetCatalog::BuiltIn(),
                     const PlatformOptions& options = {},
                     Env* env = nullptr);

  Datastore(const Datastore&) = delete;
  Datastore& operator=(const Datastore&) = delete;

  // -- Datasets ------------------------------------------------------------

  /// Uploads `graph` under `name`. Uploaded names that would shadow a
  /// pre-loaded catalog name are rejected with `kAlreadyExists` — shadowing
  /// would make experiment provenance ambiguous. With a graph-store budget
  /// set, the upload may evict the least-recently-queried datasets (their
  /// names then answer `kExpired` from `GetDataset`), and a graph larger
  /// than the whole budget is rejected with a byte-stating
  /// `kInvalidArgument`. Eviction never interrupts running tasks: executors
  /// pin the immutable `GraphPtr` snapshot for a task's whole run, so an
  /// evicted graph's memory is reclaimed only when its last pin drops.
  Status PutDataset(const std::string& name, GraphPtr graph);

  /// Parses `content` (edgelist / pajek / ASD, auto-sniffed) and uploads it
  /// — the programmatic equivalent of the demo's upload form. Content
  /// larger than the graph-store budget is rejected *before* parsing with a
  /// byte-stating `kInvalidArgument` — an admission heuristic that keeps
  /// oversized request bodies from costing parse work. It is conservative:
  /// a verbosely-labeled text can parse to a smaller CSR that would have
  /// fit; upload such a dataset pre-parsed via `PutDataset`, which admits
  /// on the exact `MemoryBytes` figure.
  Status UploadDataset(const std::string& name, const std::string& content);

  /// Fetches a dataset: uploaded first, then the backing catalog. Fetching
  /// an uploaded dataset bumps it to most-recently-queried (under the same
  /// lock as the lookup, so LRU order is race-free); an evicted name
  /// reports `kExpired`.
  Result<GraphPtr> GetDataset(const std::string& name);

  /// A `num_shards`-way sharded view of `pinned` (the snapshot the caller
  /// fetched via `GetDataset`), cached next to the uploaded dataset and
  /// charged against the graph-store byte budget. Catalog datasets — which
  /// the graph store never holds — get a correct but uncached view. See
  /// `GraphStore::GetSharded` for lifecycle rules (views ride their
  /// parent's slot: dropped on eviction, never spilled, rebuilt on
  /// demand).
  Result<ShardedGraphPtr> GetShardedDataset(const std::string& name,
                                            const GraphPtr& pinned,
                                            uint32_t num_shards) {
    return graphs_.GetSharded(name, pinned, num_shards);
  }

  /// Names of uploaded datasets (catalog names come from the catalog).
  std::vector<std::string> UploadedDatasets() const { return graphs_.Names(); }

  /// The uploaded-datasets store (budget, stats — tests / monitoring).
  /// Const: writes must go through `PutDataset`/`UploadDataset`, which
  /// enforce the catalog-shadow check and result-cache invalidation.
  const GraphStore& graph_store() const { return graphs_; }

  /// Binding generation of `name` for fingerprinting (`TaskFingerprint`):
  /// a process-unique counter for live uploaded datasets, 0 for immutable
  /// catalog names, and *no value* when the name currently resolves to
  /// nothing (never uploaded, or evicted). Re-binding a name after
  /// eviction changes the generation, so two bindings never share a cache
  /// or single-flight key; an unresolvable name must not be keyed at all —
  /// "absent" is not a binding, and a result that only exists because an
  /// upload raced in between submit and fetch must not be served to later
  /// submissions that should answer `kExpired`/`kNotFound`.
  std::optional<uint64_t> DatasetCacheGeneration(
      const std::string& name) const {
    const uint64_t generation = graphs_.Generation(name);
    if (generation != 0) return generation;
    if (catalog_ != nullptr && catalog_->Info(name).ok()) return 0;
    return std::nullopt;
  }

  // -- Results -------------------------------------------------------------

  /// Stores the result of a finished task (overwrites on retry without
  /// refreshing its retention slot). When `max_retained_results` is set,
  /// the oldest results are evicted FIFO past the bound — demoted to the
  /// result spill tier when one is configured, destroyed otherwise. Their
  /// logs are dropped either way: logs follow the *memory* lifetime (a
  /// reloaded result returns without its log trail).
  void PutResult(TaskResult result) CYR_EXCLUDES(put_mu_);

  /// The stored result; a result evicted to the spill tier is transparently
  /// reloaded (and re-admitted to the memory tier, possibly demoting the
  /// oldest). `kExpired` when retention destroyed it — with a message that
  /// distinguishes "pruned from the disk tier" from plain memory expiry —
  /// and `kNotFound` when it was never stored. (Eviction markers are
  /// themselves FIFO-bounded, so tasks far past the retention horizon
  /// eventually report `kNotFound` again — the marker set cannot grow
  /// without bound either.)
  Result<TaskResult> GetResult(const std::string& task_id)
      CYR_EXCLUDES(put_mu_);

  /// True only for live (non-evicted) results.
  bool HasResult(const std::string& task_id) const {
    return results_.Has(task_id);
  }

  /// Number of live stored results (tests / monitoring).
  size_t NumStoredResults() const { return results_.size(); }

  /// The disk spill tiers (stats, tests / monitoring); null without a
  /// `spill_dir`.
  const SpillTier* dataset_spill() const { return dataset_spill_.get(); }
  const SpillTier* result_spill() const { return result_spill_.get(); }
  const SpillTier* cache_spill() const { return cache_spill_.get(); }

  /// Blocks until every write-behind buffer has reached disk — the
  /// durability barrier for tests and orderly shutdown — then reports
  /// whether every buffered write actually made it: buffered payloads a
  /// tier's flush thread could not write (disk failure even after
  /// retries) surface here as the first tier's error Status, instead of
  /// vanishing into a log line. All tiers are drained regardless of
  /// individual failures. OK with synchronous spilling or no `spill_dir`.
  Status Flush();

  /// One-poll snapshot of all three spill tiers' counters (zeros for
  /// disabled tiers): recovery-scan results, retries, breaker state.
  DatastoreSpillStats SpillStats() const;

  /// Byte-budgeted LRU over completed task results, keyed by
  /// `TaskFingerprint`. The scheduler serves repeated queries from it
  /// instead of re-running kernels; it lives here because the datastore is
  /// the storage component every executor already shares.
  ResultCache& result_cache() { return result_cache_; }

  // -- Logs ----------------------------------------------------------------

  /// Appends one log line for `task_id`.
  void AppendLog(const std::string& task_id, std::string line) {
    logs_.Append(task_id, std::move(line));
  }

  /// All log lines of `task_id`, oldest first (empty if none).
  std::vector<std::string> GetLog(const std::string& task_id) const {
    return logs_.Get(task_id);
  }

 private:
  /// Demotes retention-evicted results to the spill tier (when configured)
  /// and erases their logs; requires `put_mu_`.
  void DemoteEvictedResultsLocked(std::vector<TaskResult> evicted)
      CYR_REQUIRES(put_mu_);

  DatasetCatalog* catalog_;  // not owned, may be null
  // The spill tiers are declared before the stores so they outlive them on
  // both ends: GraphStore holds a raw pointer into dataset_spill_ and
  // ResultCache one into cache_spill_.
  std::unique_ptr<SpillTier> dataset_spill_;  ///< null without a spill_dir
  std::unique_ptr<SpillTier> result_spill_;   ///< null without a spill_dir
  std::unique_ptr<SpillTier> cache_spill_;    ///< null without a spill_dir
  GraphStore graphs_;
  ResultStore results_;
  LogStore logs_;
  ResultCache result_cache_;
  /// Orders result-write + log-erase pairs. Outermost of the store locks:
  /// DemoteEvictedResultsLocked reaches the result spill tier (and its
  /// logging) while holding it.
  mutable Mutex put_mu_{lock_rank::kDatastorePutMu, "Datastore::put_mu_"};
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_DATASTORE_H_
