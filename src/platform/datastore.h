#ifndef CYCLERANK_PLATFORM_DATASTORE_H_
#define CYCLERANK_PLATFORM_DATASTORE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "datasets/catalog.h"
#include "graph/graph.h"
#include "platform/result_cache.h"
#include "platform/task.h"

namespace cyclerank {

/// The Datastore of Fig. 1: "responsible for storing and managing
/// datasets. It also provides storage for results and logs produced by the
/// system."
///
/// Datasets resolve against (a) graphs uploaded at runtime ("users can
/// upload new datasets") and (b) an optional backing `DatasetCatalog` of
/// pre-loaded datasets. Results and per-task logs are written by executors
/// and read by the Status component / the gateway. All methods are
/// thread-safe.
class Datastore {
 public:
  /// `catalog` may be null for a datastore with only uploaded datasets.
  /// The catalog must outlive the datastore. `result_cache_bytes` budgets
  /// the completed-result cache (0 disables caching; in-flight dedup in the
  /// scheduler stays active either way). `max_retained_results` bounds the
  /// per-task result/log maps (0 = unlimited, the historical behavior):
  /// beyond it, the oldest stored results are evicted FIFO together with
  /// their logs, and looking one up reports `kExpired` instead of
  /// `kNotFound`.
  explicit Datastore(DatasetCatalog* catalog = &DatasetCatalog::BuiltIn(),
                     size_t result_cache_bytes = ResultCache::kDefaultMaxBytes,
                     size_t max_retained_results = 0)
      : catalog_(catalog),
        result_cache_(result_cache_bytes),
        max_retained_results_(max_retained_results) {}

  Datastore(const Datastore&) = delete;
  Datastore& operator=(const Datastore&) = delete;

  // -- Datasets ------------------------------------------------------------

  /// Uploads `graph` under `name`. Uploaded names shadow catalog names are
  /// rejected instead: AlreadyExists keeps experiment provenance unambiguous.
  Status PutDataset(const std::string& name, GraphPtr graph);

  /// Parses `content` (edgelist / pajek / ASD, auto-sniffed) and uploads it
  /// — the programmatic equivalent of the demo's upload form.
  Status UploadDataset(const std::string& name, const std::string& content);

  /// Fetches a dataset: uploaded first, then the backing catalog.
  Result<GraphPtr> GetDataset(const std::string& name);

  /// Names of uploaded datasets (catalog names come from the catalog).
  std::vector<std::string> UploadedDatasets() const;

  // -- Results -------------------------------------------------------------

  /// Stores the result of a finished task (overwrites on retry without
  /// refreshing its retention slot). When `max_retained_results` is set,
  /// the oldest results — and their logs — are evicted FIFO past the
  /// bound.
  void PutResult(TaskResult result);

  /// The stored result; `kExpired` when the retention bound evicted it,
  /// `kNotFound` when it was never stored. (Eviction markers are
  /// themselves FIFO-bounded, so tasks far past the retention horizon
  /// eventually report `kNotFound` again — the marker set cannot grow
  /// without bound either.)
  Result<TaskResult> GetResult(const std::string& task_id) const;

  /// True only for live (non-evicted) results.
  bool HasResult(const std::string& task_id) const;

  /// Number of live stored results (tests / monitoring).
  size_t NumStoredResults() const;

  /// Byte-budgeted LRU over completed task results, keyed by
  /// `TaskFingerprint`. The scheduler serves repeated queries from it
  /// instead of re-running kernels; it lives here because the datastore is
  /// the storage component every executor already shares.
  ResultCache& result_cache() { return result_cache_; }

  // -- Logs ----------------------------------------------------------------

  /// Appends one log line for `task_id`.
  void AppendLog(const std::string& task_id, std::string line);

  /// All log lines of `task_id`, oldest first (empty if none).
  std::vector<std::string> GetLog(const std::string& task_id) const;

 private:
  /// Evicts the oldest results past the retention bound. Caller holds mu_.
  void EnforceRetentionLocked();

  DatasetCatalog* catalog_;  // not owned, may be null
  ResultCache result_cache_;
  const size_t max_retained_results_;  // 0 = unlimited
  mutable std::mutex mu_;
  std::map<std::string, GraphPtr> uploaded_;
  std::map<std::string, TaskResult> results_;
  std::map<std::string, std::vector<std::string>> logs_;
  std::deque<std::string> retention_fifo_;  // insertion order of results_
  std::set<std::string> evicted_;           // ids answered with kExpired
  std::deque<std::string> evicted_fifo_;    // bounds evicted_ itself
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_DATASTORE_H_
