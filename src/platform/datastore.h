#ifndef CYCLERANK_PLATFORM_DATASTORE_H_
#define CYCLERANK_PLATFORM_DATASTORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "datasets/catalog.h"
#include "graph/graph.h"
#include "platform/result_cache.h"
#include "platform/task.h"

namespace cyclerank {

/// The Datastore of Fig. 1: "responsible for storing and managing
/// datasets. It also provides storage for results and logs produced by the
/// system."
///
/// Datasets resolve against (a) graphs uploaded at runtime ("users can
/// upload new datasets") and (b) an optional backing `DatasetCatalog` of
/// pre-loaded datasets. Results and per-task logs are written by executors
/// and read by the Status component / the gateway. All methods are
/// thread-safe.
class Datastore {
 public:
  /// `catalog` may be null for a datastore with only uploaded datasets.
  /// The catalog must outlive the datastore. `result_cache_bytes` budgets
  /// the completed-result cache (0 disables caching; in-flight dedup in the
  /// scheduler stays active either way).
  explicit Datastore(DatasetCatalog* catalog = &DatasetCatalog::BuiltIn(),
                     size_t result_cache_bytes = ResultCache::kDefaultMaxBytes)
      : catalog_(catalog), result_cache_(result_cache_bytes) {}

  Datastore(const Datastore&) = delete;
  Datastore& operator=(const Datastore&) = delete;

  // -- Datasets ------------------------------------------------------------

  /// Uploads `graph` under `name`. Uploaded names shadow catalog names are
  /// rejected instead: AlreadyExists keeps experiment provenance unambiguous.
  Status PutDataset(const std::string& name, GraphPtr graph);

  /// Parses `content` (edgelist / pajek / ASD, auto-sniffed) and uploads it
  /// — the programmatic equivalent of the demo's upload form.
  Status UploadDataset(const std::string& name, const std::string& content);

  /// Fetches a dataset: uploaded first, then the backing catalog.
  Result<GraphPtr> GetDataset(const std::string& name);

  /// Names of uploaded datasets (catalog names come from the catalog).
  std::vector<std::string> UploadedDatasets() const;

  // -- Results -------------------------------------------------------------

  /// Stores the result of a finished task (overwrites on retry).
  void PutResult(TaskResult result);

  Result<TaskResult> GetResult(const std::string& task_id) const;
  bool HasResult(const std::string& task_id) const;

  /// Byte-budgeted LRU over completed task results, keyed by
  /// `TaskFingerprint`. The scheduler serves repeated queries from it
  /// instead of re-running kernels; it lives here because the datastore is
  /// the storage component every executor already shares.
  ResultCache& result_cache() { return result_cache_; }

  // -- Logs ----------------------------------------------------------------

  /// Appends one log line for `task_id`.
  void AppendLog(const std::string& task_id, std::string line);

  /// All log lines of `task_id`, oldest first (empty if none).
  std::vector<std::string> GetLog(const std::string& task_id) const;

 private:
  DatasetCatalog* catalog_;  // not owned, may be null
  ResultCache result_cache_;
  mutable std::mutex mu_;
  std::map<std::string, GraphPtr> uploaded_;
  std::map<std::string, TaskResult> results_;
  std::map<std::string, std::vector<std::string>> logs_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_DATASTORE_H_
