#include "platform/params.h"

#include <limits>
#include <vector>

#include "common/strings.h"
#include "core/scoring.h"

namespace cyclerank {

Result<ParamMap> ParamMap::Parse(std::string_view text) {
  ParamMap out;
  text = StripAsciiWhitespace(text);
  if (text.empty()) return out;
  // Split on commas and semicolons.
  std::vector<std::string_view> pairs;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == ',' || text[i] == ';') {
      pairs.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  for (std::string_view pair : pairs) {
    pair = StripAsciiWhitespace(pair);
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return Status::ParseError("params: expected key=value, got '" +
                                std::string(pair) + "'");
    }
    const std::string key =
        AsciiToLower(StripAsciiWhitespace(pair.substr(0, eq)));
    const std::string_view value = StripAsciiWhitespace(pair.substr(eq + 1));
    if (key.empty()) {
      return Status::ParseError("params: empty key in '" + std::string(pair) +
                                "'");
    }
    if (out.Has(key)) {
      return Status::ParseError("params: duplicate key '" + key + "'");
    }
    out.Set(key, value);
  }
  return out;
}

void ParamMap::Set(std::string_view key, std::string_view value) {
  values_[AsciiToLower(key)] = std::string(value);
}

std::optional<std::string> ParamMap::Get(std::string_view key) const {
  auto it = values_.find(AsciiToLower(key));
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

bool ParamMap::Has(std::string_view key) const {
  return values_.count(AsciiToLower(key)) != 0;
}

Result<double> ParamMap::GetDouble(std::string_view key,
                                   double fallback) const {
  auto value = Get(key);
  if (!value.has_value()) return fallback;
  return ParseDouble(*value);
}

Result<int64_t> ParamMap::GetInt(std::string_view key,
                                 int64_t fallback) const {
  auto value = Get(key);
  if (!value.has_value()) return fallback;
  return ParseInt64(*value);
}

std::string ParamMap::GetString(std::string_view key,
                                std::string fallback) const {
  auto value = Get(key);
  return value.has_value() ? *value : fallback;
}

std::vector<std::string> ParamMap::Keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::string ParamMap::ToString() const {
  std::string out;
  for (const auto& [key, value] : values_) {
    if (!out.empty()) out += ", ";
    out += key + "=" + value;
  }
  return out;
}

namespace {

/// %-escapes the fingerprint separators so the encoding stays injective.
std::string EscapeFingerprintToken(std::string_view token) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(token.size());
  for (const char c : token) {
    if (c == '%' || c == '&' || c == '=') {
      const auto byte = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[byte >> 4];
      out += kHex[byte & 0xf];
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

std::string DatasetFingerprintPrefix(const std::string& dataset) {
  return "dataset=" + EscapeFingerprintToken(dataset) + "&";
}

std::string TaskFingerprint(const std::string& dataset, uint64_t generation,
                            const std::string& algorithm,
                            const ParamMap& params) {
  // Collapse aliased keys exactly the way BuildRequest resolves them, so two
  // spellings of the same computation share one fingerprint. Aliased and
  // execution-only keys are re-added (or dropped) explicitly below.
  ParamMap canonical;
  for (const std::string& key : params.Keys()) {
    if (key == "threads" || key == "shards" || key == "deadline_ms" ||
        key == "source" || key == "reference" || key == "r" || key == "k" ||
        key == "maxloop" || key == "sigma" || key == "scoring") {
      continue;
    }
    canonical.Set(key, params.GetString(key, ""));
  }
  // Reference node: first non-empty of source/reference/r.
  std::string source = params.GetString("source", "");
  if (source.empty()) source = params.GetString("reference", "");
  if (source.empty()) source = params.GetString("r", "");
  if (!source.empty()) canonical.Set("source", source);
  // Cycle length: BuildRequest reads k, then maxloop — maxloop wins.
  if (params.Has("maxloop")) {
    canonical.Set("k", params.GetString("maxloop", ""));
  } else if (params.Has("k")) {
    canonical.Set("k", params.GetString("k", ""));
  }
  // Scoring function: a non-empty sigma shadows scoring.
  std::string sigma = params.GetString("sigma", "");
  if (sigma.empty()) sigma = params.GetString("scoring", "");
  if (!sigma.empty()) canonical.Set("sigma", sigma);

  // Built-in aliases resolve to the canonical registry name. Unknown
  // (custom-registered) names stay verbatim: the registry is
  // case-sensitive for them, so lowercasing would let two distinct
  // algorithms differing only in case cross-serve each other's results.
  std::string canonical_algorithm = algorithm;
  if (auto kind = AlgorithmKindFromString(algorithm); kind.ok()) {
    canonical_algorithm = std::string(AlgorithmKindToString(*kind));
  }

  // "gen" sits in a fixed structural slot (between dataset and algorithm),
  // so it can never collide with a user parameter of the same name — those
  // sort into the params section after "algorithm".
  std::string out = DatasetFingerprintPrefix(dataset) +
                    "gen=" + std::to_string(generation) +
                    "&algorithm=" + EscapeFingerprintToken(canonical_algorithm);
  for (const std::string& key : canonical.Keys()) {
    out += '&';
    out += EscapeFingerprintToken(key);
    out += '=';
    out += EscapeFingerprintToken(canonical.GetString(key, ""));
  }
  return out;
}

Result<AlgorithmRequest> BuildRequest(const Graph& graph,
                                      const ParamMap& params) {
  static const char* kKnownKeys[] = {
      "source",  "reference", "r",       "alpha",     "k",
      "maxloop", "sigma",     "scoring", "tolerance", "max_iterations",
      "epsilon", "walks",     "seed",    "top_k",     "threads",
      "shards",  "deadline_ms"};
  AlgorithmRequest request;

  // Reject unknown keys early: a typo like "alhpa=0.3" silently running
  // with defaults would invalidate an experiment.
  for (const std::string& key : params.Keys()) {
    bool known = false;
    for (const char* candidate : kKnownKeys) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("params: unknown key '" + key + "'");
    }
  }

  // Reference node: label first, numeric id as fallback.
  std::string ref_label = params.GetString("source", "");
  if (ref_label.empty()) ref_label = params.GetString("reference", "");
  if (ref_label.empty()) ref_label = params.GetString("r", "");
  if (!ref_label.empty()) {
    NodeId ref = graph.FindNode(ref_label);
    if (ref == kInvalidNode) {
      auto numeric = ParseInt64(ref_label);
      if (numeric.ok() && *numeric >= 0 &&
          graph.IsValidNode(static_cast<NodeId>(*numeric))) {
        ref = static_cast<NodeId>(*numeric);
      } else {
        return Status::NotFound("reference node '" + ref_label +
                                "' not in graph");
      }
    }
    request.reference = ref;
  }

  CYCLERANK_ASSIGN_OR_RETURN(request.alpha,
                             params.GetDouble("alpha", request.alpha));

  int64_t k = request.max_cycle_length;
  CYCLERANK_ASSIGN_OR_RETURN(k, params.GetInt("k", k));
  CYCLERANK_ASSIGN_OR_RETURN(k, params.GetInt("maxloop", k));
  if (k < 0) return Status::InvalidArgument("params: k must be >= 0");
  request.max_cycle_length = static_cast<uint32_t>(k);

  std::string sigma = params.GetString("sigma", "");
  if (sigma.empty()) sigma = params.GetString("scoring", "");
  if (!sigma.empty()) {
    CYCLERANK_ASSIGN_OR_RETURN(request.scoring,
                               ScoringFunctionFromString(sigma));
  }

  CYCLERANK_ASSIGN_OR_RETURN(request.tolerance,
                             params.GetDouble("tolerance", request.tolerance));
  int64_t max_iter = request.max_iterations;
  CYCLERANK_ASSIGN_OR_RETURN(max_iter, params.GetInt("max_iterations", max_iter));
  if (max_iter < 0) {
    return Status::InvalidArgument("params: max_iterations must be >= 0");
  }
  request.max_iterations = static_cast<uint32_t>(max_iter);

  CYCLERANK_ASSIGN_OR_RETURN(request.epsilon,
                             params.GetDouble("epsilon", request.epsilon));
  int64_t walks = static_cast<int64_t>(request.num_walks);
  CYCLERANK_ASSIGN_OR_RETURN(walks, params.GetInt("walks", walks));
  if (walks < 0) return Status::InvalidArgument("params: walks must be >= 0");
  request.num_walks = static_cast<uint64_t>(walks);

  int64_t seed = static_cast<int64_t>(request.seed);
  CYCLERANK_ASSIGN_OR_RETURN(seed, params.GetInt("seed", seed));
  request.seed = static_cast<uint64_t>(seed);

  int64_t top_k = static_cast<int64_t>(request.top_k);
  CYCLERANK_ASSIGN_OR_RETURN(top_k, params.GetInt("top_k", top_k));
  if (top_k < 0) return Status::InvalidArgument("params: top_k must be >= 0");
  request.top_k = static_cast<size_t>(top_k);

  int64_t threads = static_cast<int64_t>(request.num_threads);
  CYCLERANK_ASSIGN_OR_RETURN(threads, params.GetInt("threads", threads));
  if (threads < 0 || threads > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument(
        "params: threads must be in [0, 2^32)");
  }
  request.num_threads = static_cast<uint32_t>(threads);

  // Execution-only, like threads: 0 = monolithic (or the platform default).
  // Capped well below the node-count scale — a partition into 2^16 ranges
  // already exceeds any sensible locality win.
  int64_t shards = static_cast<int64_t>(request.num_shards);
  CYCLERANK_ASSIGN_OR_RETURN(shards, params.GetInt("shards", shards));
  if (shards < 0 || shards >= (int64_t{1} << 16)) {
    return Status::InvalidArgument("params: shards must be in [0, 2^16)");
  }
  request.num_shards = static_cast<uint32_t>(shards);

  return request;
}

}  // namespace cyclerank
