#ifndef CYCLERANK_PLATFORM_RESULT_STORE_H_
#define CYCLERANK_PLATFORM_RESULT_STORE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "platform/expiry_markers.h"
#include "platform/task.h"

namespace cyclerank {

/// The task-results third of the Datastore decomposition: per-task
/// `TaskResult`s with FIFO retention and bounded expiry markers.
///
/// `max_retained` bounds the live results (0 = unlimited): past it the
/// oldest stored results are evicted FIFO, and looking one up reports
/// `kExpired` instead of `kNotFound`. Markers are themselves FIFO-bounded
/// by the same knob, so the store's footprint stays O(max_retained)
/// forever. Overwriting a result (a retry) keeps its retention slot;
/// re-storing an evicted id revives it.
///
/// Thread-safe; individually locked, so result traffic never contends with
/// dataset or log traffic.
class ResultStore {
 public:
  explicit ResultStore(size_t max_retained = 0) : max_retained_(max_retained) {}

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Stores `result` under its task id (overwrites on retry without
  /// refreshing the retention slot). Returns the *results* evicted by the
  /// retention bound — the caller (the `Datastore` facade) drops their
  /// logs and, when a spill tier is configured, demotes them to disk;
  /// returning the full values (not just ids) is what makes the demotion
  /// possible without a second lookup race.
  std::vector<TaskResult> Put(TaskResult result);

  /// The stored result; `kExpired` when the retention bound evicted it,
  /// `kNotFound` when it was never stored (or its marker fell off).
  Result<TaskResult> Get(const std::string& task_id) const;

  /// True only for live (non-evicted) results.
  bool Has(const std::string& task_id) const;

  /// Number of live stored results.
  size_t size() const;

 private:
  /// Evicts the oldest results past the retention bound into `evicted`;
  /// requires `mu_`.
  void EnforceRetentionLocked(std::vector<TaskResult>* evicted);

  const size_t max_retained_;  // 0 = unlimited
  mutable std::mutex mu_;
  std::map<std::string, TaskResult> results_;
  std::deque<std::string> retention_fifo_;  ///< insertion order of results_
  ExpiryMarkers evicted_;                   ///< ids answered with kExpired
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_RESULT_STORE_H_
