#ifndef CYCLERANK_PLATFORM_RESULT_STORE_H_
#define CYCLERANK_PLATFORM_RESULT_STORE_H_

#include <cstddef>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "platform/expiry_markers.h"
#include "platform/task.h"

namespace cyclerank {

/// The task-results third of the Datastore decomposition: per-task
/// `TaskResult`s with FIFO retention and bounded expiry markers.
///
/// `max_retained` bounds the live results (0 = unlimited): past it the
/// oldest stored results are evicted FIFO, and looking one up reports
/// `kExpired` instead of `kNotFound`. Markers are themselves FIFO-bounded
/// by the same knob, so the store's footprint stays O(max_retained)
/// forever. Overwriting a result (a retry) keeps its retention slot;
/// re-storing an evicted id revives it.
///
/// Thread-safe; individually locked, so result traffic never contends with
/// dataset or log traffic.
class ResultStore {
 public:
  explicit ResultStore(size_t max_retained = 0) : max_retained_(max_retained) {}

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Stores `result` under its task id (overwrites on retry without
  /// refreshing the retention slot). Returns the *results* evicted by the
  /// retention bound — the caller (the `Datastore` facade) drops their
  /// logs and, when a spill tier is configured, demotes them to disk;
  /// returning the full values (not just ids) is what makes the demotion
  /// possible without a second lookup race.
  std::vector<TaskResult> Put(TaskResult result) CYR_EXCLUDES(mu_);

  /// The stored result; `kExpired` when the retention bound evicted it,
  /// `kNotFound` when it was never stored (or its marker fell off).
  Result<TaskResult> Get(const std::string& task_id) const
      CYR_EXCLUDES(mu_);

  /// True only for live (non-evicted) results.
  bool Has(const std::string& task_id) const CYR_EXCLUDES(mu_);

  /// Number of live stored results.
  size_t size() const CYR_EXCLUDES(mu_);

 private:
  /// Evicts the oldest results past the retention bound into `evicted`;
  /// requires `mu_`.
  void EnforceRetentionLocked(std::vector<TaskResult>* evicted)
      CYR_REQUIRES(mu_);

  const size_t max_retained_;  // 0 = unlimited
  mutable Mutex mu_{lock_rank::kResultStoreMu, "ResultStore::mu_"};
  std::map<std::string, TaskResult> results_ CYR_GUARDED_BY(mu_);
  /// Insertion order of results_.
  std::deque<std::string> retention_fifo_ CYR_GUARDED_BY(mu_);
  ExpiryMarkers evicted_ CYR_GUARDED_BY(mu_);  ///< ids answered with kExpired
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_RESULT_STORE_H_
