#include "platform/result_io.h"

#include <cstdio>
#include <sstream>

#include "common/binary_io.h"
#include "common/strings.h"

namespace cyclerank {
namespace {

/// Magic + version prefix of the binary result encoding; bumped on any
/// layout change so stale spill files are rejected, not misread.
constexpr std::string_view kResultMagic = "CYRR1\n";

constexpr uint32_t kMaxStatusCode = static_cast<uint32_t>(StatusCode::kExpired);

Status ResultCorrupt(const std::string& detail) {
  return Status::ParseError("result codec: " + detail);
}

std::string FormatScore(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Minimal structured JSON writer: tracks indentation and comma placement
/// so the emitting code reads like the document structure.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(std::string_view key) {
    Separate();
    out_ << '"' << JsonEscape(key) << "\":";
    if (pretty_) out_ << ' ';
    just_keyed_ = true;
  }

  void String(std::string_view value) {
    Separate();
    out_ << '"' << JsonEscape(value) << '"';
  }
  void Number(double value) {
    Separate();
    out_ << FormatScore(value);
  }
  void Number(uint64_t value) {
    Separate();
    out_ << value;
  }
  void Bool(bool value) {
    Separate();
    out_ << (value ? "true" : "false");
  }

  std::string str() const { return out_.str(); }

 private:
  void Open(char c) {
    Separate();
    out_ << c;
    ++depth_;
    first_in_scope_ = true;
  }

  void Close(char c) {
    --depth_;
    if (pretty_ && !first_in_scope_) NewlineIndent();
    out_ << c;
    first_in_scope_ = false;
  }

  // Emits the comma/newline that must precede a new value or key.
  void Separate() {
    if (just_keyed_) {
      just_keyed_ = false;  // value directly after its key
      return;
    }
    if (!first_in_scope_) out_ << ',';
    if (pretty_ && depth_ > 0) NewlineIndent();
    first_in_scope_ = false;
  }

  void NewlineIndent() {
    out_ << '\n';
    for (int i = 0; i < depth_; ++i) out_ << "  ";
  }

  std::ostringstream out_;
  bool pretty_;
  int depth_ = 0;
  bool first_in_scope_ = true;
  bool just_keyed_ = false;
};

std::string NodeName(const ResultExportOptions& options, NodeId node) {
  if (options.graph != nullptr) return options.graph->NodeName(node);
  return std::to_string(node);
}

void WriteRanking(const RankedList& ranking,
                  const ResultExportOptions& options, JsonWriter* json) {
  json->BeginArray();
  const size_t limit = options.top_k == 0
                           ? ranking.size()
                           : std::min(options.top_k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    json->BeginObject();
    json->Key("node");
    json->String(NodeName(options, ranking[i].node));
    json->Key("score");
    json->Number(ranking[i].score);
    json->EndObject();
  }
  json->EndArray();
}

void WriteTaskResult(const TaskResult& result,
                     const ResultExportOptions& options, JsonWriter* json) {
  json->BeginObject();
  json->Key("task_id");
  json->String(result.task_id);
  json->Key("dataset");
  json->String(result.spec.dataset);
  json->Key("algorithm");
  json->String(result.spec.algorithm);
  json->Key("params");
  json->BeginObject();
  for (const std::string& key : result.spec.params.Keys()) {
    json->Key(key);
    json->String(result.spec.params.GetString(key, ""));
  }
  json->EndObject();
  json->Key("status");
  json->String(result.status.ToString());
  json->Key("ok");
  json->Bool(result.status.ok());
  json->Key("seconds");
  json->Number(result.seconds);
  json->Key("ranking");
  WriteRanking(result.ranking, options, json);
  json->EndObject();
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string TaskResultToJson(const TaskResult& result,
                             const ResultExportOptions& options) {
  JsonWriter json(options.pretty);
  WriteTaskResult(result, options, &json);
  return json.str();
}

std::string ComparisonToJson(const ComparisonStatus& status,
                             const std::vector<TaskResult>& results,
                             const ResultExportOptions& options) {
  JsonWriter json(options.pretty);
  json.BeginObject();
  json.Key("comparison_id");
  json.String(status.comparison_id);
  json.Key("done");
  json.Bool(status.done);
  json.Key("completed");
  json.Number(static_cast<uint64_t>(status.completed));
  json.Key("failed");
  json.Number(static_cast<uint64_t>(status.failed));
  json.Key("cancelled");
  json.Number(static_cast<uint64_t>(status.cancelled));
  json.Key("tasks");
  json.BeginArray();
  for (size_t i = 0; i < status.task_ids.size(); ++i) {
    json.BeginObject();
    json.Key("task_id");
    json.String(status.task_ids[i]);
    json.Key("state");
    json.String(std::string(TaskStateToString(status.states[i])));
    json.EndObject();
  }
  json.EndArray();
  json.Key("results");
  json.BeginArray();
  for (const TaskResult& result : results) {
    WriteTaskResult(result, options, &json);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string SerializeTaskResult(const TaskResult& result) {
  std::string out;
  out.reserve(kResultMagic.size() + 128 + result.task_id.size() +
              result.ranking.size() * (sizeof(uint32_t) + sizeof(double)));
  out.append(kResultMagic);
  binio::AppendString(&out, result.task_id);
  binio::AppendString(&out, result.spec.dataset);
  binio::AppendString(&out, result.spec.algorithm);
  // Parameters as explicit key/value pairs — unlike ParamMap::ToString,
  // this round-trips values that contain the grammar's separators.
  const std::vector<std::string> keys = result.spec.params.Keys();
  binio::AppendU64(&out, keys.size());
  for (const std::string& key : keys) {
    binio::AppendString(&out, key);
    binio::AppendString(&out, result.spec.params.GetString(key, ""));
  }
  binio::AppendU32(&out, static_cast<uint32_t>(result.status.code()));
  binio::AppendString(&out, result.status.message());
  binio::AppendDouble(&out, result.seconds);
  binio::AppendU64(&out, result.ranking.size());
  for (const ScoredNode& entry : result.ranking) {
    binio::AppendU32(&out, entry.node);
    binio::AppendDouble(&out, entry.score);
  }
  return out;
}

Result<TaskResult> DeserializeTaskResult(std::string_view bytes) {
  if (bytes.substr(0, kResultMagic.size()) != kResultMagic) {
    return ResultCorrupt("bad magic (not a serialized result, or an "
                         "incompatible codec version)");
  }
  binio::Reader reader(bytes.substr(kResultMagic.size()));
  TaskResult result;
  if (!reader.ReadString(&result.task_id) ||
      !reader.ReadString(&result.spec.dataset) ||
      !reader.ReadString(&result.spec.algorithm)) {
    return ResultCorrupt("truncated identity section");
  }
  uint64_t num_params = 0;
  if (!reader.ReadU64(&num_params)) return ResultCorrupt("truncated params");
  std::string key, value;
  for (uint64_t i = 0; i < num_params; ++i) {
    if (!reader.ReadString(&key) || !reader.ReadString(&value)) {
      return ResultCorrupt("truncated parameter pair");
    }
    if (key.empty() || result.spec.params.Has(key)) {
      return ResultCorrupt("empty or duplicate parameter key '" + key + "'");
    }
    result.spec.params.Set(key, value);
  }
  uint32_t code = 0;
  std::string message;
  if (!reader.ReadU32(&code) || code > kMaxStatusCode ||
      !reader.ReadString(&message)) {
    return ResultCorrupt("truncated or out-of-range status");
  }
  result.status = Status(static_cast<StatusCode>(code), std::move(message));
  if (!reader.ReadDouble(&result.seconds)) {
    return ResultCorrupt("truncated timing");
  }
  uint64_t num_ranked = 0;
  if (!reader.ReadU64(&num_ranked) ||
      num_ranked > reader.remaining() / (sizeof(uint32_t) + sizeof(double))) {
    return ResultCorrupt("ranking length exceeds the buffer");
  }
  result.ranking.resize(num_ranked);
  for (uint64_t i = 0; i < num_ranked; ++i) {
    if (!reader.ReadU32(&result.ranking[i].node) ||
        !reader.ReadDouble(&result.ranking[i].score)) {
      return ResultCorrupt("truncated ranking entry");
    }
  }
  if (!reader.AtEnd()) return ResultCorrupt("trailing bytes after the result");
  return result;
}

std::string RankingToCsv(const RankedList& ranking,
                         const ResultExportOptions& options) {
  std::string out = "rank,node,score\n";
  const size_t limit = options.top_k == 0
                           ? ranking.size()
                           : std::min(options.top_k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    std::string name = NodeName(options, ranking[i].node);
    // CSV-quote when the label contains a comma or quote.
    if (name.find(',') != std::string::npos ||
        name.find('"') != std::string::npos) {
      std::string quoted = "\"";
      for (char c : name) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      name = std::move(quoted);
    }
    out += std::to_string(i + 1) + "," + name + "," +
           FormatScore(ranking[i].score) + "\n";
  }
  return out;
}

namespace {

class ResultSpillPayload final : public SpillPayload {
 public:
  explicit ResultSpillPayload(TaskResult result)
      : result_(std::move(result)) {}
  std::string Serialize() const override {
    return SerializeTaskResult(result_);
  }
  size_t ApproxBytes() const override {
    // The encoded form is dominated by the ranking (node + score words)
    // plus the string fields; close enough for buffer accounting.
    return result_.ranking.size() * sizeof(ScoredNode) +
           result_.task_id.size() + result_.spec.dataset.size() +
           result_.spec.algorithm.size() + result_.status.message().size() +
           128;
  }

 private:
  const TaskResult result_;
};

}  // namespace

SpillPayloadPtr MakeResultSpillPayload(TaskResult result) {
  return std::make_shared<const ResultSpillPayload>(std::move(result));
}

}  // namespace cyclerank
