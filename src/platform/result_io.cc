#include "platform/result_io.h"

#include <cstdio>
#include <sstream>

#include "common/strings.h"

namespace cyclerank {
namespace {

std::string FormatScore(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Minimal structured JSON writer: tracks indentation and comma placement
/// so the emitting code reads like the document structure.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() { Open('{'); }
  void EndObject() { Close('}'); }
  void BeginArray() { Open('['); }
  void EndArray() { Close(']'); }

  void Key(std::string_view key) {
    Separate();
    out_ << '"' << JsonEscape(key) << "\":";
    if (pretty_) out_ << ' ';
    just_keyed_ = true;
  }

  void String(std::string_view value) {
    Separate();
    out_ << '"' << JsonEscape(value) << '"';
  }
  void Number(double value) {
    Separate();
    out_ << FormatScore(value);
  }
  void Number(uint64_t value) {
    Separate();
    out_ << value;
  }
  void Bool(bool value) {
    Separate();
    out_ << (value ? "true" : "false");
  }

  std::string str() const { return out_.str(); }

 private:
  void Open(char c) {
    Separate();
    out_ << c;
    ++depth_;
    first_in_scope_ = true;
  }

  void Close(char c) {
    --depth_;
    if (pretty_ && !first_in_scope_) NewlineIndent();
    out_ << c;
    first_in_scope_ = false;
  }

  // Emits the comma/newline that must precede a new value or key.
  void Separate() {
    if (just_keyed_) {
      just_keyed_ = false;  // value directly after its key
      return;
    }
    if (!first_in_scope_) out_ << ',';
    if (pretty_ && depth_ > 0) NewlineIndent();
    first_in_scope_ = false;
  }

  void NewlineIndent() {
    out_ << '\n';
    for (int i = 0; i < depth_; ++i) out_ << "  ";
  }

  std::ostringstream out_;
  bool pretty_;
  int depth_ = 0;
  bool first_in_scope_ = true;
  bool just_keyed_ = false;
};

std::string NodeName(const ResultExportOptions& options, NodeId node) {
  if (options.graph != nullptr) return options.graph->NodeName(node);
  return std::to_string(node);
}

void WriteRanking(const RankedList& ranking,
                  const ResultExportOptions& options, JsonWriter* json) {
  json->BeginArray();
  const size_t limit = options.top_k == 0
                           ? ranking.size()
                           : std::min(options.top_k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    json->BeginObject();
    json->Key("node");
    json->String(NodeName(options, ranking[i].node));
    json->Key("score");
    json->Number(ranking[i].score);
    json->EndObject();
  }
  json->EndArray();
}

void WriteTaskResult(const TaskResult& result,
                     const ResultExportOptions& options, JsonWriter* json) {
  json->BeginObject();
  json->Key("task_id");
  json->String(result.task_id);
  json->Key("dataset");
  json->String(result.spec.dataset);
  json->Key("algorithm");
  json->String(result.spec.algorithm);
  json->Key("params");
  json->BeginObject();
  for (const std::string& key : result.spec.params.Keys()) {
    json->Key(key);
    json->String(result.spec.params.GetString(key, ""));
  }
  json->EndObject();
  json->Key("status");
  json->String(result.status.ToString());
  json->Key("ok");
  json->Bool(result.status.ok());
  json->Key("seconds");
  json->Number(result.seconds);
  json->Key("ranking");
  WriteRanking(result.ranking, options, json);
  json->EndObject();
}

}  // namespace

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through
        }
    }
  }
  return out;
}

std::string TaskResultToJson(const TaskResult& result,
                             const ResultExportOptions& options) {
  JsonWriter json(options.pretty);
  WriteTaskResult(result, options, &json);
  return json.str();
}

std::string ComparisonToJson(const ComparisonStatus& status,
                             const std::vector<TaskResult>& results,
                             const ResultExportOptions& options) {
  JsonWriter json(options.pretty);
  json.BeginObject();
  json.Key("comparison_id");
  json.String(status.comparison_id);
  json.Key("done");
  json.Bool(status.done);
  json.Key("completed");
  json.Number(static_cast<uint64_t>(status.completed));
  json.Key("failed");
  json.Number(static_cast<uint64_t>(status.failed));
  json.Key("cancelled");
  json.Number(static_cast<uint64_t>(status.cancelled));
  json.Key("tasks");
  json.BeginArray();
  for (size_t i = 0; i < status.task_ids.size(); ++i) {
    json.BeginObject();
    json.Key("task_id");
    json.String(status.task_ids[i]);
    json.Key("state");
    json.String(std::string(TaskStateToString(status.states[i])));
    json.EndObject();
  }
  json.EndArray();
  json.Key("results");
  json.BeginArray();
  for (const TaskResult& result : results) {
    WriteTaskResult(result, options, &json);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string RankingToCsv(const RankedList& ranking,
                         const ResultExportOptions& options) {
  std::string out = "rank,node,score\n";
  const size_t limit = options.top_k == 0
                           ? ranking.size()
                           : std::min(options.top_k, ranking.size());
  for (size_t i = 0; i < limit; ++i) {
    std::string name = NodeName(options, ranking[i].node);
    // CSV-quote when the label contains a comma or quote.
    if (name.find(',') != std::string::npos ||
        name.find('"') != std::string::npos) {
      std::string quoted = "\"";
      for (char c : name) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      name = std::move(quoted);
    }
    out += std::to_string(i + 1) + "," + name + "," +
           FormatScore(ranking[i].score) + "\n";
  }
  return out;
}

}  // namespace cyclerank
