#ifndef CYCLERANK_PLATFORM_RESULT_IO_H_
#define CYCLERANK_PLATFORM_RESULT_IO_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "platform/gateway.h"
#include "platform/spill_tier.h"
#include "platform/task.h"

namespace cyclerank {

/// Serialization of task results — the demo's datastore persists "results
/// and logs produced by the system" (§III) and serves them back through
/// the comparison permalink. These helpers produce the two interchange
/// forms an embedding application needs: JSON for APIs and CSV for
/// spreadsheets.

/// Options for result serialization.
struct ResultExportOptions {
  /// Truncate rankings to this many entries (0 = all).
  size_t top_k = 0;

  /// Resolve node ids to labels through this graph (may be null: ids are
  /// emitted as numbers).
  const Graph* graph = nullptr;

  /// Pretty-print JSON with two-space indentation.
  bool pretty = false;
};

/// Escapes `s` for embedding in a JSON string literal (quotes, control
/// characters; UTF-8 passes through).
std::string JsonEscape(std::string_view s);

/// One task result as a JSON object:
/// `{"task_id": ..., "dataset": ..., "algorithm": ..., "params": {...},
///   "status": ..., "seconds": ..., "ranking": [{"node": ..., "score":
///   ...}, ...]}`.
std::string TaskResultToJson(const TaskResult& result,
                             const ResultExportOptions& options = {});

/// A whole comparison (permalink payload): comparison id, per-task states
/// and results.
std::string ComparisonToJson(const ComparisonStatus& status,
                             const std::vector<TaskResult>& results,
                             const ResultExportOptions& options = {});

/// One ranking as CSV: `rank,node,score` rows with a header.
std::string RankingToCsv(const RankedList& ranking,
                         const ResultExportOptions& options = {});

/// Compact binary encoding of a `TaskResult` — the storage layer's
/// spill-to-disk format (little-endian fixed-width fields; scores travel as
/// IEEE-754 bit patterns, never through text). Unlike the JSON/CSV exports
/// above it is lossless: `DeserializeTaskResult(SerializeTaskResult(r))`
/// reproduces `r` bit-identically, including the status code/message and
/// every ranking score.
std::string SerializeTaskResult(const TaskResult& result);

/// Decodes a `SerializeTaskResult` buffer; a truncated or corrupted buffer
/// yields `kParseError`.
Result<TaskResult> DeserializeTaskResult(std::string_view bytes);

/// Wraps `result` as a deferred spill payload: `SerializeTaskResult` runs
/// on the spill tier's flush thread (write-behind mode), not on the
/// evicting caller. The result is moved in and owned by the payload.
SpillPayloadPtr MakeResultSpillPayload(TaskResult result);

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_RESULT_IO_H_
