#include "platform/platform_options.h"

#include <cctype>
#include <charconv>
#include <limits>
#include <thread>

#include "common/strings.h"
#include "platform/params.h"

namespace cyclerank {

namespace {

/// Full-range uint64 parser (ParseInt64 tops out at 2^63-1, which would
/// break the documented ToString/FromString round-trip for large seeds).
Result<uint64_t> ParseUint64(std::string_view key, std::string_view text) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::ParseError("platform options: " + std::string(key) +
                              " expects a non-negative integer (< 2^64), got '" +
                              std::string(text) + "'");
  }
  return value;
}

/// Parses a byte-size value: a non-negative integer with an optional
/// binary suffix ("64m", "1gib", "512k"). Plain integers are bytes.
Result<size_t> ParseByteSize(std::string_view key, const std::string& text) {
  size_t digits = 0;
  while (digits < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[digits]))) {
    ++digits;
  }
  if (digits == 0) {
    return Status::ParseError("platform options: " + std::string(key) +
                              " expects a byte count, got '" + text + "'");
  }
  CYCLERANK_ASSIGN_OR_RETURN(
      uint64_t value,
      ParseUint64(key, std::string_view(text).substr(0, digits)));
  const std::string suffix = AsciiToLower(
      StripAsciiWhitespace(std::string_view(text).substr(digits)));
  uint64_t multiplier = 1;
  if (suffix.empty()) {
    multiplier = 1;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    multiplier = 1ull << 10;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    multiplier = 1ull << 20;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    multiplier = 1ull << 30;
  } else {
    return Status::ParseError("platform options: " + std::string(key) +
                              " has unknown byte-size suffix '" + suffix +
                              "' (expected k/kb/kib, m/mb/mib, g/gb/gib)");
  }
  if (multiplier != 1 &&
      value > std::numeric_limits<uint64_t>::max() / multiplier) {
    return Status::OutOfRange("platform options: " + std::string(key) + "='" +
                              text + "' overflows a byte count");
  }
  return static_cast<size_t>(value * multiplier);
}

Result<size_t> ParseCount(std::string_view key, const std::string& text) {
  CYCLERANK_ASSIGN_OR_RETURN(uint64_t value, ParseUint64(key, text));
  return static_cast<size_t>(value);
}

}  // namespace

Result<PlatformOptions> PlatformOptions::FromString(std::string_view text) {
  // Reuse the task-parameter grammar: comma/semicolon separated key=value,
  // whitespace-tolerant, lowercased keys, duplicates rejected.
  CYCLERANK_ASSIGN_OR_RETURN(ParamMap params, ParamMap::Parse(text));
  PlatformOptions options;
  for (const std::string& key : params.Keys()) {
    const std::string value = params.GetString(key, "");
    if (key == "graph_store_bytes") {
      CYCLERANK_ASSIGN_OR_RETURN(options.graph_store_bytes,
                                 ParseByteSize(key, value));
    } else if (key == "result_cache_bytes") {
      CYCLERANK_ASSIGN_OR_RETURN(options.result_cache_bytes,
                                 ParseByteSize(key, value));
    } else if (key == "max_retained_results") {
      CYCLERANK_ASSIGN_OR_RETURN(options.max_retained_results,
                                 ParseCount(key, value));
    } else if (key == "num_workers") {
      CYCLERANK_ASSIGN_OR_RETURN(options.num_workers, ParseCount(key, value));
    } else if (key == "default_threads") {
      CYCLERANK_ASSIGN_OR_RETURN(size_t threads, ParseCount(key, value));
      if (threads > std::numeric_limits<uint32_t>::max()) {
        return Status::OutOfRange(
            "platform options: default_threads must be in [0, 2^32), got " +
            value);
      }
      options.default_threads = static_cast<uint32_t>(threads);
    } else if (key == "num_shards") {
      CYCLERANK_ASSIGN_OR_RETURN(size_t shards, ParseCount(key, value));
      if (shards >= (size_t{1} << 16)) {
        return Status::OutOfRange(
            "platform options: num_shards must be in [0, 2^16), got " +
            value);
      }
      options.num_shards = static_cast<uint32_t>(shards);
    } else if (key == "uuid_seed") {
      CYCLERANK_ASSIGN_OR_RETURN(options.uuid_seed, ParseUint64(key, value));
    } else if (key == "max_tasks_per_submission") {
      CYCLERANK_ASSIGN_OR_RETURN(options.max_tasks_per_submission,
                                 ParseCount(key, value));
    } else if (key == "spill_dir") {
      options.spill_dir = value;
    } else if (key == "graph_spill_bytes") {
      CYCLERANK_ASSIGN_OR_RETURN(options.graph_spill_bytes,
                                 ParseByteSize(key, value));
    } else if (key == "result_spill_bytes") {
      CYCLERANK_ASSIGN_OR_RETURN(options.result_spill_bytes,
                                 ParseByteSize(key, value));
    } else if (key == "spill_write_behind_bytes") {
      CYCLERANK_ASSIGN_OR_RETURN(options.spill_write_behind_bytes,
                                 ParseByteSize(key, value));
    } else if (key == "spill_compression") {
      const std::string lowered = AsciiToLower(value);
      if (lowered == "true" || lowered == "1") {
        options.spill_compression = true;
      } else if (lowered == "false" || lowered == "0") {
        options.spill_compression = false;
      } else {
        return Status::ParseError(
            "platform options: spill_compression expects true/false/1/0, "
            "got '" + value + "'");
      }
    } else if (key == "spill_retry_limit") {
      CYCLERANK_ASSIGN_OR_RETURN(options.spill_retry_limit,
                                 ParseCount(key, value));
    } else if (key == "spill_retry_backoff_ms") {
      CYCLERANK_ASSIGN_OR_RETURN(options.spill_retry_backoff_ms,
                                 ParseUint64(key, value));
    } else if (key == "spill_breaker_probe_ms") {
      CYCLERANK_ASSIGN_OR_RETURN(options.spill_breaker_probe_ms,
                                 ParseUint64(key, value));
    } else if (key == "listen_port") {
      CYCLERANK_ASSIGN_OR_RETURN(uint64_t port, ParseUint64(key, value));
      if (port > 65535) {
        return Status::OutOfRange(
            "platform options: listen_port must be in [0, 65535], got " +
            value);
      }
      options.listen_port = static_cast<uint16_t>(port);
    } else if (key == "max_connections") {
      CYCLERANK_ASSIGN_OR_RETURN(options.max_connections,
                                 ParseCount(key, value));
    } else if (key == "max_frame_bytes") {
      CYCLERANK_ASSIGN_OR_RETURN(options.max_frame_bytes,
                                 ParseByteSize(key, value));
    } else if (key == "io_threads") {
      CYCLERANK_ASSIGN_OR_RETURN(options.io_threads, ParseCount(key, value));
    } else if (key == "admission_queue_limit") {
      CYCLERANK_ASSIGN_OR_RETURN(options.admission_queue_limit,
                                 ParseCount(key, value));
    } else if (key == "default_deadline_ms") {
      CYCLERANK_ASSIGN_OR_RETURN(options.default_deadline_ms,
                                 ParseUint64(key, value));
    } else {
      // Unknown keys are rejected, mirroring BuildRequest: a typo like
      // "graph_store_byte=1g" silently running unbounded would defeat the
      // deployment config.
      return Status::InvalidArgument("platform options: unknown key '" + key +
                                     "'");
    }
  }
  return options;
}

std::string PlatformOptions::ToString() const {
  // Sorted keys, plain byte counts: the canonical form round-trips through
  // FromString exactly.
  std::string out;
  const auto append = [&out](std::string_view key, uint64_t value) {
    if (!out.empty()) out += ", ";
    out += std::string(key) + "=" + std::to_string(value);
  };
  append("admission_queue_limit", admission_queue_limit);
  append("default_deadline_ms", default_deadline_ms);
  append("default_threads", default_threads);
  append("graph_spill_bytes", graph_spill_bytes);
  append("graph_store_bytes", graph_store_bytes);
  append("io_threads", io_threads);
  append("listen_port", listen_port);
  append("max_connections", max_connections);
  append("max_frame_bytes", max_frame_bytes);
  append("max_retained_results", max_retained_results);
  append("max_tasks_per_submission", max_tasks_per_submission);
  append("num_shards", num_shards);
  append("num_workers", num_workers);
  append("result_cache_bytes", result_cache_bytes);
  append("result_spill_bytes", result_spill_bytes);
  append("spill_breaker_probe_ms", spill_breaker_probe_ms);
  // The bool rides as true/false (FromString accepts 1/0 too), the
  // string-valued knob as-is; an empty spill_dir parses back to the empty
  // (disabled) default. Both keep the sorted-key order.
  if (!out.empty()) out += ", ";
  out += std::string("spill_compression=") +
         (spill_compression ? "true" : "false");
  out += ", spill_dir=" + spill_dir;
  append("spill_retry_backoff_ms", spill_retry_backoff_ms);
  append("spill_retry_limit", spill_retry_limit);
  append("spill_write_behind_bytes", spill_write_behind_bytes);
  append("uuid_seed", uuid_seed);
  return out;
}

size_t PlatformOptions::ResolvedNumWorkers() const {
  if (num_workers != 0) return num_workers;
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware == 0 ? 1 : hardware;
}

}  // namespace cyclerank
