#include "platform/status_service.h"

#include <chrono>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace cyclerank {

Status StatusService::Track(const std::string& task_id) {
  if (task_id.empty()) {
    return Status::InvalidArgument("status: task id must not be empty");
  }
  MutexLock lock(mu_);
  auto [it, inserted] = states_.emplace(task_id, TaskState::kPending);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("status: task '" + task_id +
                                 "' already tracked");
  }
  return Status::OK();
}

Status StatusService::SetState(const std::string& task_id, TaskState state) {
  // Snapshot the listeners under the same lock as the transition so a
  // listener added before the terminal write always observes it, then
  // invoke outside the lock (a listener poking a wakeup fd must not
  // extend this critical section, and the waiters notified below may
  // immediately re-enter GetState).
  std::vector<TerminalListener> to_notify;
  {
    MutexLock lock(mu_);
    auto it = states_.find(task_id);
    if (it == states_.end()) {
      return Status::NotFound("status: task '" + task_id + "' not tracked");
    }
    if (IsTerminal(it->second)) {
      return Status::FailedPrecondition(
          "status: task '" + task_id + "' is already terminal (" +
          std::string(TaskStateToString(it->second)) + ")");
    }
    it->second = state;
    if (IsTerminal(state) && !listeners_.empty()) {
      to_notify.reserve(listeners_.size());
      for (const auto& [token, listener] : listeners_) {
        (void)token;
        to_notify.push_back(listener);
      }
    }
  }
  changed_.NotifyAll();
  for (const TerminalListener& listener : to_notify) {
    listener(task_id, state);
  }
  return Status::OK();
}

Result<TaskState> StatusService::GetState(const std::string& task_id) const {
  MutexLock lock(mu_);
  auto it = states_.find(task_id);
  if (it == states_.end()) {
    return Status::NotFound("status: task '" + task_id + "' not tracked");
  }
  return it->second;
}

Result<std::vector<TaskState>> StatusService::GetStates(
    const std::vector<std::string>& task_ids) const {
  MutexLock lock(mu_);
  std::vector<TaskState> out;
  out.reserve(task_ids.size());
  for (const std::string& id : task_ids) {
    auto it = states_.find(id);
    if (it == states_.end()) {
      return Status::NotFound("status: task '" + id + "' not tracked");
    }
    out.push_back(it->second);
  }
  return out;
}

Result<bool> StatusService::WaitUntilTerminal(
    const std::vector<std::string>& task_ids, double timeout_seconds) const {
  MutexLock lock(mu_);
  auto all_terminal = [&]() CYR_REQUIRES(mu_) -> bool {
    for (const std::string& id : task_ids) {
      auto it = states_.find(id);
      if (it == states_.end() || !IsTerminal(it->second)) return false;
    }
    return true;
  };
  // Validate inputs first so a typo or sign bug fails fast instead of
  // hanging: only exactly 0 means "block indefinitely".
  if (timeout_seconds < 0.0) {
    return Status::InvalidArgument(
        "status: timeout_seconds must be >= 0 (0 blocks indefinitely), got " +
        std::to_string(timeout_seconds));
  }
  for (const std::string& id : task_ids) {
    if (states_.find(id) == states_.end()) {
      return Status::NotFound("status: task '" + id + "' not tracked");
    }
  }
  if (timeout_seconds == 0.0) {
    changed_.Wait(mu_, all_terminal);
    return true;
  }
  return changed_.WaitFor(mu_, std::chrono::duration<double>(timeout_seconds),
                          all_terminal);
}

size_t StatusService::size() const {
  MutexLock lock(mu_);
  return states_.size();
}

uint64_t StatusService::AddTerminalListener(TerminalListener listener) {
  MutexLock lock(mu_);
  const uint64_t token = next_listener_token_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void StatusService::RemoveTerminalListener(uint64_t token) {
  MutexLock lock(mu_);
  listeners_.erase(token);
}

}  // namespace cyclerank
