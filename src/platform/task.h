#ifndef CYCLERANK_PLATFORM_TASK_H_
#define CYCLERANK_PLATFORM_TASK_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/ranking.h"
#include "platform/params.h"

namespace cyclerank {

/// "A task … is a triple consisting of a dataset, an algorithm and a set
/// of parameters" (paper §III, step 1).
struct TaskSpec {
  std::string dataset;    ///< catalog / datastore name, e.g. "enwiki-mini-2018"
  std::string algorithm;  ///< registry name, e.g. "cyclerank"
  ParamMap params;

  /// One-line rendering matching the task-builder rows of Fig. 2.
  std::string ToString() const;

  friend bool operator==(const TaskSpec& a, const TaskSpec& b) {
    return a.dataset == b.dataset && a.algorithm == b.algorithm &&
           a.params == b.params;
  }
};

/// Lifecycle of a task inside the platform, mirroring Fig. 1's flow:
/// built (pending) → dataset fetch → computation → results written.
enum class TaskState {
  kPending,
  kFetching,
  kRunning,
  kCompleted,
  kFailed,
  kCancelled,
};

std::string_view TaskStateToString(TaskState state);

/// True for states a task can never leave.
bool IsTerminal(TaskState state);

/// Outcome of one executed task, as stored in the datastore.
struct TaskResult {
  std::string task_id;
  TaskSpec spec;
  Status status;         ///< OK for completed tasks
  RankedList ranking;    ///< empty on failure
  double seconds = 0.0;  ///< wall-clock execution time
};

/// A query set: the user-composed list of tasks submitted together; the
/// whole set gets one comparison id that "serves as a permalink" (§IV-C).
struct QuerySet {
  std::vector<TaskSpec> tasks;
};

/// Builds query sets with the operations of the task-builder UI (Fig. 2):
/// add a query, remove one by index (the per-row "x"), or empty the whole
/// set (the trash-bin button).
class TaskBuilder {
 public:
  TaskBuilder() = default;

  /// Appends a task; rejects empty dataset or algorithm names.
  Status Add(TaskSpec spec);

  /// Convenience: `Add({dataset, algorithm, ParamMap::Parse(params)})`.
  Status Add(std::string_view dataset, std::string_view algorithm,
             std::string_view params);

  /// Removes the query at `index`.
  Status Remove(size_t index);

  /// Empties the set.
  void Clear();

  size_t size() const { return tasks_.size(); }
  bool empty() const { return tasks_.empty(); }
  const std::vector<TaskSpec>& tasks() const { return tasks_; }

  /// Finalizes the query set (the builder keeps its contents, so the user
  /// can tweak and resubmit as in the demo).
  QuerySet Build() const { return QuerySet{tasks_}; }

 private:
  std::vector<TaskSpec> tasks_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_TASK_H_
