#ifndef CYCLERANK_PLATFORM_SPILL_TIER_H_
#define CYCLERANK_PLATFORM_SPILL_TIER_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "platform/byte_lru.h"
#include "platform/expiry_markers.h"

namespace cyclerank {

/// Occupancy and effectiveness counters of a `SpillTier`.
struct SpillTierStats {
  uint64_t spills = 0;   ///< entries persisted by `Put`
  uint64_t reloads = 0;  ///< `Get` calls served from disk
  uint64_t misses = 0;   ///< `Get` calls with no spill file
  uint64_t prunes = 0;   ///< entries dropped to respect the disk budget
  uint64_t recovered = 0;  ///< entries restored by the construction scan
  uint64_t skipped = 0;  ///< corrupt/truncated files skipped (recovery or Get)
  size_t entries = 0;    ///< live spilled entries
  size_t bytes = 0;      ///< on-disk bytes of live entries
};

/// The disk tier of the datastore's storage hierarchy: when a byte-budgeted
/// in-memory store evicts under pressure, the victim is *demoted* here
/// instead of destroyed, and a later lookup transparently reloads it.
///
/// One tier manages one directory of self-describing files (magic +
/// version + metadata word + payload checksum + the original key + the
/// payload), plus a `manifest` recording recency order. Construction runs a
/// recovery scan: the manifest seeds the LRU order, unlisted valid files
/// are appended coldest-last, and corrupt or truncated files are skipped
/// with a logged warning — a half-written file from a crash can never take
/// recovery down. The tier is itself byte-budgeted (`max_bytes`, 0 =
/// unbounded, accounted in on-disk file bytes): past the budget the
/// least-recently-used entries are pruned, and their keys then answer
/// `WasPruned` so the owning store can tell "expired (pruned from disk)"
/// apart from "never stored".
///
/// The payload is opaque bytes — `GraphStore` spills `Graph::Serialize`
/// output, the `Datastore` facade spills `SerializeTaskResult` output. The
/// `meta` word rides along uninterpreted (the graph tier stores the
/// binding generation in it, so revived datasets keep their fingerprint).
///
/// Thread-safe. File IO happens under the tier's lock: spills ride the
/// (rare) eviction path and reloads replace a recompute, so simplicity
/// wins over IO concurrency here.
class SpillTier {
 public:
  /// Bound on remembered pruned keys, mirroring
  /// `GraphStore::kMaxEvictionMarkers`.
  static constexpr size_t kMaxPrunedMarkers = 4096;

  /// Opens (or creates) `dir` and recovers any entries a previous process
  /// left there. `what` names the payload kind in errors and log lines
  /// ("dataset", "result"). If the directory cannot be created the tier
  /// logs an error and comes up disabled: `Put` then fails with
  /// `kFailedPrecondition` and every `Get` misses — the owning store
  /// degrades to drop-on-evict instead of crashing.
  SpillTier(std::string dir, size_t max_bytes, std::string what);

  SpillTier(const SpillTier&) = delete;
  SpillTier& operator=(const SpillTier&) = delete;

  /// False when the directory could not be initialized.
  bool enabled() const;

  /// Persists `payload` under `key` (overwriting any previous spill of the
  /// key), then prunes least-recently-used entries past the byte budget. A
  /// payload whose file alone exceeds the whole budget is rejected with
  /// `kInvalidArgument` and the key is marked pruned — the caller learns
  /// the entry cannot be demoted, and later lookups report it as pruned
  /// rather than never-stored.
  Status Put(const std::string& key, std::string_view payload,
             uint64_t meta = 0);

  struct Loaded {
    std::string payload;
    uint64_t meta = 0;
  };

  /// Reads `key`'s spill file, bumping it to most-recently-used. The
  /// payload checksum is re-verified: a corrupt file is dropped with a
  /// logged warning and reported as `kIOError`. A pruned key answers
  /// `kExpired`; an unknown key `kNotFound`.
  Result<Loaded> Get(const std::string& key);

  /// True while `key` has a live spill file.
  bool Contains(const std::string& key) const;

  /// The `meta` word stored with `key`, without touching recency or disk;
  /// nullopt when the key has no live spill file.
  std::optional<uint64_t> Meta(const std::string& key) const;

  /// True while `key`'s pruning (by budget, oversize rejection, or
  /// corruption) is still remembered.
  bool WasPruned(const std::string& key) const;

  /// Drops `key`'s spill file without marking it pruned — the caller is
  /// superseding the entry (e.g. a fresh upload re-binding a dataset name),
  /// not evicting it under pressure.
  void Erase(const std::string& key);

  /// Keys of live spilled entries, sorted.
  std::vector<std::string> Keys() const;

  /// Largest `meta` word across live entries (0 when empty) — lets
  /// `GraphStore` restart its generation counter past every recovered
  /// binding.
  uint64_t MaxMeta() const;

  SpillTierStats stats() const;
  size_t max_bytes() const { return max_bytes_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Info {
    uint64_t meta = 0;
  };

  /// Scans `dir_` for spill files, seeds the LRU from the manifest, and
  /// prunes past the budget; requires `mu_`.
  void RecoverLocked();

  /// Prunes least-recently-used entries until the budget holds; requires
  /// `mu_`.
  void PruneLocked();

  /// Rewrites the manifest (recency order, hottest first) atomically via a
  /// temp file + rename; requires `mu_`.
  void WriteManifestLocked();

  /// Deletes `key`'s file from disk (best-effort); requires `mu_`.
  void RemoveFileLocked(const std::string& key);

  std::string FilePath(const std::string& key) const;

  const std::string dir_;
  const size_t max_bytes_;  // 0 = unbounded
  const std::string what_;  ///< payload kind for errors/logs
  bool enabled_ = false;
  mutable std::mutex mu_;
  ByteBudgetedLru<Info> lru_;  ///< key → meta; bytes = on-disk file size
  ExpiryMarkers pruned_;       ///< keys answered with `WasPruned`
  SpillTierStats stats_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_SPILL_TIER_H_
