#ifndef CYCLERANK_PLATFORM_SPILL_TIER_H_
#define CYCLERANK_PLATFORM_SPILL_TIER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "platform/byte_lru.h"
#include "platform/expiry_markers.h"

namespace cyclerank {

class Env;

/// Occupancy and effectiveness counters of a `SpillTier`.
struct SpillTierStats {
  uint64_t spills = 0;   ///< entries persisted to disk (sync or flushed)
  uint64_t flushes = 0;  ///< background write-behind flushes completed
  uint64_t reloads = 0;  ///< `Get` calls served from disk
  uint64_t buffer_hits = 0;  ///< `Get` calls served from the write-behind
                             ///< buffer before the entry reached disk
  uint64_t misses = 0;   ///< `Get` calls with no spill file (filter-positive)
  uint64_t filter_negatives = 0;  ///< `Get`/`Contains` misses answered by the
                                  ///< key filter alone — no lock, no disk
  uint64_t backpressure_waits = 0;  ///< `Put` calls that blocked on the
                                    ///< write-behind byte bound
  uint64_t prunes = 0;   ///< entries dropped to respect the disk budget
  uint64_t recovered_files = 0;  ///< entries restored by the recovery scan
  uint64_t skipped_corrupt_files = 0;  ///< corrupt/truncated files skipped
                                       ///< (recovery or Get)
  uint64_t retries = 0;  ///< disk operations re-attempted after a failure
  uint64_t retry_exhausted = 0;  ///< operations that failed every attempt
  uint64_t breaker_trips = 0;    ///< circuit breaker closed → open edges
  uint64_t breaker_probes = 0;   ///< operations admitted as recovery probes
  uint64_t breaker_recoveries = 0;  ///< breaker open → closed edges
  uint64_t breaker_rejects = 0;  ///< operations fast-failed while open
  uint64_t flush_failures = 0;   ///< write-behind payloads that never
                                 ///< reached disk (marked pruned)
  bool breaker_open = false;  ///< tier currently degraded to memory-only
  size_t entries = 0;    ///< live spilled entries (on disk)
  size_t bytes = 0;      ///< on-disk (encoded) bytes of live entries
  size_t raw_bytes = 0;  ///< uncompressed payload bytes of live entries
  size_t queue_depth = 0;   ///< entries waiting in the write-behind buffer
  size_t buffer_bytes = 0;  ///< approximate bytes held by the buffer
};

/// Tuning knobs of a `SpillTier`, separate from the directory and payload
/// kind so call sites read as prose.
struct SpillTierOptions {
  /// Disk byte budget (on-disk file bytes); 0 = unbounded.
  size_t max_bytes = 0;

  /// Byte bound of the in-memory write-behind buffer. 0 makes `Put`
  /// synchronous (serialize + write + rename inline, the PR-5 behavior);
  /// non-zero makes `Put` enqueue the still-live payload and return, with
  /// a dedicated background thread doing the serialize/compress/write off
  /// the caller's lock. Past the bound, `Put` blocks until the flusher
  /// drains (backpressure) — the buffer can never grow without limit.
  size_t write_behind_bytes = 0;

  /// Compress payloads on disk (the v2 spill framing). Off writes the
  /// PR-5 uncompressed v1 framing; reads always accept both.
  bool compression = true;

  /// Filesystem used for every disk operation; nullptr = `Env::Default()`
  /// (the real filesystem). Tests substitute a `FaultInjectingEnv`.
  Env* env = nullptr;

  /// Retries after a failed data-file read or write before the operation
  /// is reported failed (and the circuit breaker trips). 0 disables
  /// retrying.
  int retry_limit = 3;

  /// Delay before the first retry, doubled per retry and capped at
  /// 100 ms; 0 retries without sleeping (tests).
  uint64_t retry_backoff_ms = 1;

  /// Once the circuit breaker opens, how long to fast-fail before letting
  /// one operation through as a recovery probe; 0 probes on the next
  /// operation (tests).
  uint64_t breaker_probe_ms = 1000;
};

/// A payload handed to `SpillTier::Put`: serialization is *deferred* so
/// the write-behind flush thread — not the evicting caller — pays for it.
/// `Serialize` must be const-thread-safe (it may run on the flush thread
/// concurrently with buffer reads); `ApproxBytes` feeds the write-behind
/// byte accounting and need only be a decent estimate.
class SpillPayload {
 public:
  virtual ~SpillPayload() = default;
  virtual std::string Serialize() const = 0;
  virtual size_t ApproxBytes() const = 0;
};

using SpillPayloadPtr = std::shared_ptr<const SpillPayload>;

/// Wraps already-materialized bytes (tests, small payloads).
SpillPayloadPtr MakeBytesSpillPayload(std::string bytes);

/// The disk tier of the datastore's storage hierarchy: when a byte-budgeted
/// in-memory store evicts under pressure, the victim is *demoted* here
/// instead of destroyed, and a later lookup transparently reloads it.
///
/// Since PR 6 the tier is structured along LSM lines:
///
///   Put ──▶ write-behind buffer ──(background flush thread)──▶ disk file
///            (read-your-write)      serialize → compress →
///                                   checksum → tmp → rename
///
/// - **Write-behind**: with `write_behind_bytes` set, `Put` enqueues the
///   still-live payload and returns — eviction stops paying for
///   serialization and file IO under the owning store's lock. Reads check
///   the buffer before disk, so an entry is never invisible between
///   enqueue and flush; destruction drains the buffer (nothing enqueued is
///   ever lost to a clean shutdown) and `Flush()` is an explicit barrier.
///   Past the byte bound `Put` blocks until the flusher catches up.
/// - **Compression**: payloads are block-compressed on disk (v2 framing,
///   `binio::CompressBlock`) with the checksum still computed over the
///   *raw* payload — bit-rot detection is unchanged, and a corrupt
///   compressed block degrades to a miss exactly like a checksum mismatch.
///   v1 (PR-5, uncompressed) files load transparently forever.
/// - **Key filter**: a lock-free Bloom filter over every key ever stored
///   (rebuilt from the recovery scan at construction) answers "definitely
///   not on disk" without taking the tier lock or touching the filesystem
///   — cold misses cost two hash probes, even while a flush or reload is
///   holding the lock for file IO.
///
/// **Failure handling** (PR 8): every disk operation goes through the
/// tier's `Env`. Data reads and writes run under a deterministic
/// bounded-exponential retry (`retry_limit`, `retry_backoff_ms`); an
/// operation that fails every attempt trips a per-tier circuit breaker.
/// While the breaker is open the tier degrades to the documented
/// memory-only behavior — `Put` fast-fails `kUnavailable` (the key is
/// marked pruned so later lookups answer "stored and dropped", never a
/// wrong result), disk reads answer `kUnavailable` without touching the
/// device, and buffered flushes drop their payloads as pruned. Every
/// `breaker_probe_ms` one operation is admitted as a probe; a probe that
/// succeeds closes the breaker and the tier resumes normal service.
/// Write-behind flush failures are counted and surface as a real `Status`
/// from `Flush()`.
///
/// One tier manages one directory of self-describing files (magic +
/// version + metadata word + payload checksum + the original key + the
/// payload), plus a `manifest` recording recency order. Construction runs a
/// recovery scan: the manifest seeds the LRU order, unlisted valid files
/// are appended coldest-last, and corrupt or truncated files are skipped
/// with a logged warning — a half-written file from a crash can never take
/// recovery down. The tier is itself byte-budgeted (`max_bytes`, 0 =
/// unbounded, accounted in on-disk file bytes): past the budget the
/// least-recently-used entries are pruned, and their keys then answer
/// `WasPruned` so the owning store can tell "expired (pruned from disk)"
/// apart from "never stored".
///
/// The payload is opaque bytes — `GraphStore` spills `Graph::Serialize`
/// output, the `Datastore` facade and the `ResultCache` spill
/// `SerializeTaskResult` output. The `meta` word rides along uninterpreted
/// (the graph tier stores the binding generation in it, so revived
/// datasets keep their fingerprint).
///
/// Thread-safe. Two locks: `buffer_mu_` guards the write-behind buffer,
/// `mu_` guards the disk index; the fixed acquisition order is
/// `buffer_mu_` then `mu_` (never the reverse), and the Bloom filter is
/// read and written lock-free.
class SpillTier {
 public:
  /// Bound on remembered pruned keys, mirroring
  /// `GraphStore::kMaxEvictionMarkers`.
  static constexpr size_t kMaxPrunedMarkers = 4096;

  /// Opens (or creates) `dir` and recovers any entries a previous process
  /// left there. `what` names the payload kind in errors and log lines
  /// ("dataset", "result"). If the directory cannot be created the tier
  /// logs an error and comes up disabled: `Put` then fails with
  /// `kFailedPrecondition` and every `Get` misses — the owning store
  /// degrades to drop-on-evict instead of crashing.
  SpillTier(std::string dir, SpillTierOptions options, std::string what);

  /// PR-5-shaped convenience: synchronous `Put`, uncompressed (v1) files —
  /// the exact historical behavior, kept for tests and simple callers.
  SpillTier(std::string dir, size_t max_bytes, std::string what)
      : SpillTier(std::move(dir),
                  SpillTierOptions{max_bytes, /*write_behind_bytes=*/0,
                                   /*compression=*/false},
                  std::move(what)) {}

  SpillTier(const SpillTier&) = delete;
  SpillTier& operator=(const SpillTier&) = delete;

  /// Drains the write-behind buffer (every enqueued entry reaches disk),
  /// then stops the flush thread.
  ~SpillTier();

  /// False when the directory could not be initialized.
  bool enabled() const { return enabled_; }

  /// Persists `payload` under `key` (overwriting any previous spill of the
  /// key). Synchronous mode serializes, writes, and prunes inline, and a
  /// payload whose file alone exceeds the whole budget is rejected with
  /// `kInvalidArgument` and the key marked pruned. Write-behind mode
  /// enqueues and returns `OK`; serialization, the oversize check, and
  /// pruning all happen on the flush thread (an oversize entry is marked
  /// pruned there, with a logged warning).
  Status Put(const std::string& key, SpillPayloadPtr payload,
             uint64_t meta = 0) CYR_EXCLUDES(buffer_mu_, mu_);

  /// Convenience overload for already-materialized bytes.
  Status Put(const std::string& key, std::string_view payload,
             uint64_t meta = 0) CYR_EXCLUDES(buffer_mu_, mu_);

  struct Loaded {
    std::string payload;
    uint64_t meta = 0;
  };

  /// Serves `key` from the write-behind buffer if it has not been flushed
  /// yet (read-your-write), else reads its spill file, bumping it to
  /// most-recently-used. The payload checksum is re-verified: a corrupt
  /// file is dropped with a logged warning and reported as `kIOError`. A
  /// file that cannot be *read* (transient disk error) is retried and, if
  /// still failing, reported `kIOError`/`kUnavailable` with the entry left
  /// intact — a flaky disk must not destroy data that is fine. A pruned
  /// key answers `kExpired`; an unknown key `kNotFound` — answered by the
  /// lock-free key filter when the key was never stored, without touching
  /// the tier lock or the filesystem.
  Result<Loaded> Get(const std::string& key)
      CYR_EXCLUDES(buffer_mu_, mu_);

  /// True while `key` has a live spill file or a buffered write.
  bool Contains(const std::string& key) const
      CYR_EXCLUDES(buffer_mu_, mu_);

  /// The `meta` word stored with `key`, without touching recency or disk;
  /// nullopt when the key has no live spill file or buffered write.
  std::optional<uint64_t> Meta(const std::string& key) const
      CYR_EXCLUDES(buffer_mu_, mu_);

  /// True while `key`'s pruning (by budget, oversize rejection, or
  /// corruption) is still remembered.
  bool WasPruned(const std::string& key) const CYR_EXCLUDES(mu_);

  /// Drops `key`'s spill file and any buffered write without marking it
  /// pruned — the caller is superseding the entry (e.g. a fresh upload
  /// re-binding a dataset name), not evicting it under pressure.
  void Erase(const std::string& key) CYR_EXCLUDES(buffer_mu_, mu_);

  /// Drops every live entry (buffered or on disk) whose key starts with
  /// `prefix`; returns how many. Used by the `ResultCache` to invalidate a
  /// re-bound dataset's spilled results alongside its in-memory ones.
  size_t ErasePrefix(const std::string& prefix)
      CYR_EXCLUDES(buffer_mu_, mu_);

  /// Blocks until every buffered write has reached disk or been dropped —
  /// the barrier for tests, shutdown, and anything that needs durability
  /// now. Returns OK when everything drained to disk; otherwise an error
  /// naming how many payloads were lost since the last `Flush()` report
  /// (each loss is also marked pruned and counted in `flush_failures`).
  /// A no-op in synchronous mode. Must not be called while flushing is
  /// paused.
  Status Flush() CYR_EXCLUDES(buffer_mu_, mu_);

  /// Test hook: true stalls the flush thread (entries stay buffered and
  /// observable), false resumes it. Destruction overrides a pause.
  void SetFlushPausedForTest(bool paused) CYR_EXCLUDES(buffer_mu_);

  /// Keys of live entries (buffered or on disk), sorted.
  std::vector<std::string> Keys() const CYR_EXCLUDES(buffer_mu_, mu_);

  /// Largest `meta` word across live entries (0 when empty) — lets
  /// `GraphStore` restart its generation counter past every recovered
  /// binding.
  uint64_t MaxMeta() const CYR_EXCLUDES(buffer_mu_, mu_);

  SpillTierStats stats() const CYR_EXCLUDES(buffer_mu_, mu_);
  size_t max_bytes() const { return options_.max_bytes; }
  const std::string& dir() const { return dir_; }

 private:
  struct Info {
    uint64_t meta = 0;
    uint64_t raw_bytes = 0;  ///< uncompressed payload size
  };

  /// One write awaiting flush. The entry stays in `pending_` (readable)
  /// until its bytes are durably indexed, so reads never lose it; `seq`
  /// detects overwrites that race an in-flight flush.
  struct PendingWrite {
    SpillPayloadPtr payload;
    uint64_t meta = 0;
    uint64_t seq = 0;
    size_t approx_bytes = 0;
    bool queued = false;  ///< present in flush_queue_
  };

  bool write_behind() const { return options_.write_behind_bytes != 0; }

  /// Scans `dir_` for spill files, seeds the LRU from the manifest, and
  /// prunes past the budget; requires `mu_`.
  void RecoverLocked() CYR_REQUIRES(mu_);

  /// The synchronous (PR-5-shaped) Put: encode, oversize check, write,
  /// index, manifest — all before returning.
  Status PutSync(const std::string& key, std::string_view raw, uint64_t meta)
      CYR_EXCLUDES(mu_);

  /// The flush thread's main loop: pop → serialize → encode → write →
  /// index, until stopped and drained.
  void FlushWorker() CYR_EXCLUDES(buffer_mu_, mu_);

  /// Flushes one buffered write (off both locks for the expensive parts).
  void FlushOne(const std::string& key, const SpillPayloadPtr& payload,
                uint64_t meta, uint64_t seq) CYR_EXCLUDES(buffer_mu_, mu_);

  /// Completes a successful flush: indexes the renamed file, then removes
  /// the buffer entry if its seq still matches (erased → the file is
  /// removed again; superseded → the newer flush owns the file), waking
  /// backpressure and Flush waiters.
  void FinishPending(const std::string& key, uint64_t seq, Info info,
                     size_t file_bytes) CYR_EXCLUDES(buffer_mu_, mu_);

  /// Removes `key` from the buffer if its seq still matches, without
  /// indexing anything (failed or oversize flush), waking waiters.
  void DropPending(const std::string& key, uint64_t seq)
      CYR_EXCLUDES(buffer_mu_, mu_);

  /// Encodes the on-disk file image (header + optionally compressed
  /// payload) for `key`; no locks required.
  std::string EncodeSpillFile(const std::string& key, std::string_view raw,
                              uint64_t meta) const;

  /// Writes `file` to `key`'s path via tmp + rename, under the retry /
  /// circuit-breaker policy (`GuardedIo`).
  Status WriteSpillFile(const std::string& key, std::string_view file)
      CYR_EXCLUDES(breaker_mu_);

  /// Reads `key`'s spill file into `*out` under the retry / breaker
  /// policy. Never modifies the index.
  Status ReadSpillFile(const std::string& key, std::string* out)
      CYR_EXCLUDES(breaker_mu_);

  /// Runs `op` (one disk operation, idempotent) under the tier's failure
  /// policy: fast-fails `kUnavailable` while the breaker is open and no
  /// probe is due; otherwise retries failures with deterministic backoff
  /// (a probe gets a single attempt). Success closes an open breaker;
  /// exhausting the retry budget trips it. `op_label` names the operation
  /// in log lines.
  Status GuardedIo(const char* op_label, const std::function<Status()>& op)
      CYR_EXCLUDES(breaker_mu_);

  /// True while the breaker is open and the probe interval has not yet
  /// elapsed — the cheap entry check that lets `Put` fast-fail without
  /// serializing anything.
  bool BreakerRejects() CYR_EXCLUDES(breaker_mu_);

  /// Inserts `key` into the disk index (replacing any previous entry) and
  /// maintains the raw-byte accounting; requires `mu_`.
  void IndexLocked(const std::string& key, Info info, size_t file_bytes)
      CYR_REQUIRES(mu_);

  /// Drops `key` from the disk index (not the filesystem), maintaining
  /// the raw-byte accounting; requires `mu_`.
  std::optional<ByteBudgetedLru<Info>::Entry> UnindexLocked(
      const std::string& key) CYR_REQUIRES(mu_);

  /// Prunes least-recently-used entries until the budget holds; requires
  /// `mu_`.
  void PruneLocked() CYR_REQUIRES(mu_);

  /// Rewrites the manifest (recency order, hottest first) atomically via a
  /// temp file + rename; requires `mu_`.
  void WriteManifestLocked() CYR_REQUIRES(mu_);

  /// Deletes `key`'s file from disk (best-effort); requires `mu_`.
  void RemoveFileLocked(const std::string& key) CYR_REQUIRES(mu_);

  std::string FilePath(const std::string& key) const;

  // Lock-free Bloom filter over every key ever stored (never removed —
  // stale positives fall through to the exact index, which is correct).
  static constexpr size_t kFilterWords = 1024;  // 64 Kbit, 8 KiB
  void FilterAdd(const std::string& key);
  bool FilterMayContain(const std::string& key) const;

  const std::string dir_;
  const SpillTierOptions options_;
  const std::string what_;  ///< payload kind for errors/logs
  Env* const env_;          ///< options_.env or Env::Default(); never null
  bool enabled_ = false;    ///< set once in the constructor, then read-only

  std::array<std::atomic<uint64_t>, kFilterWords> filter_{};
  mutable std::atomic<uint64_t> filter_negatives_{0};
  std::atomic<uint64_t> buffer_hits_{0};

  // Write-behind buffer state; guarded by buffer_mu_.
  mutable Mutex buffer_mu_{lock_rank::kSpillBufferMu, "SpillTier::buffer_mu_"};
  CondVar work_cv_;     ///< flush thread: work or stop
  CondVar drained_cv_;  ///< backpressure waiters
  CondVar flushed_cv_;  ///< Flush() waiters
  std::map<std::string, PendingWrite> pending_ CYR_GUARDED_BY(buffer_mu_);
  std::deque<std::string> flush_queue_ CYR_GUARDED_BY(buffer_mu_);
  size_t pending_bytes_ CYR_GUARDED_BY(buffer_mu_) = 0;
  uint64_t next_seq_ CYR_GUARDED_BY(buffer_mu_) = 0;
  uint64_t backpressure_waits_ CYR_GUARDED_BY(buffer_mu_) = 0;
  bool flush_paused_ CYR_GUARDED_BY(buffer_mu_) = false;
  bool stop_ CYR_GUARDED_BY(buffer_mu_) = false;
  // Started in the constructor, joined in the destructor; never touched
  // while another thread can see the tier — not guarded.
  std::thread flusher_;

  // Disk index state; guarded by mu_. Acquisition order: buffer_mu_ → mu_
  // (encoded in the lock ranks — kSpillBufferMu < kSpillIndexMu).
  mutable Mutex mu_{lock_rank::kSpillIndexMu, "SpillTier::mu_"};
  /// Key → meta/raw size; bytes = file size.
  ByteBudgetedLru<Info> lru_ CYR_GUARDED_BY(mu_);
  /// Sum of Info::raw_bytes over lru_.
  size_t raw_bytes_ CYR_GUARDED_BY(mu_) = 0;
  /// Keys answered with `WasPruned`.
  ExpiryMarkers pruned_ CYR_GUARDED_BY(mu_);
  SpillTierStats stats_ CYR_GUARDED_BY(mu_);
  /// Flush-thread losses not yet reported by a `Flush()` call; the sticky
  /// error is cleared when reported.
  uint64_t unreported_flush_failures_ CYR_GUARDED_BY(mu_) = 0;
  Status last_flush_error_ CYR_GUARDED_BY(mu_);

  // Circuit-breaker state; guarded by breaker_mu_ (taken under mu_ in the
  // sync paths — kSpillIndexMu < kSpillBreakerMu — and standalone on the
  // flush thread; released around the actual Env call).
  mutable Mutex breaker_mu_{lock_rank::kSpillBreakerMu,
                            "SpillTier::breaker_mu_"};
  bool breaker_open_ CYR_GUARDED_BY(breaker_mu_) = false;
  /// When the breaker last tripped or last admitted a probe.
  std::chrono::steady_clock::time_point breaker_last_
      CYR_GUARDED_BY(breaker_mu_);
  uint64_t retries_ CYR_GUARDED_BY(breaker_mu_) = 0;
  uint64_t retry_exhausted_ CYR_GUARDED_BY(breaker_mu_) = 0;
  uint64_t breaker_trips_ CYR_GUARDED_BY(breaker_mu_) = 0;
  uint64_t breaker_probes_ CYR_GUARDED_BY(breaker_mu_) = 0;
  uint64_t breaker_recoveries_ CYR_GUARDED_BY(breaker_mu_) = 0;
  uint64_t breaker_rejects_ CYR_GUARDED_BY(breaker_mu_) = 0;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_SPILL_TIER_H_
