#ifndef CYCLERANK_PLATFORM_PARAMS_H_
#define CYCLERANK_PLATFORM_PARAMS_H_

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/algorithm.h"
#include "graph/graph.h"

namespace cyclerank {

/// String key/value parameters of a task, as entered in the Web UI's
/// parameter panel (paper §IV-C and Fig. 2, e.g. "k = 3, sigma = exp" or
/// "alpha = 0.3"). Keys are case-insensitive and stored lowercase.
class ParamMap {
 public:
  ParamMap() = default;

  /// Parses "key=value" pairs separated by commas or semicolons, e.g.
  /// "k=3, sigma=exp, source=Fake news". Whitespace around tokens is
  /// ignored; values may contain spaces. Duplicate keys are rejected.
  static Result<ParamMap> Parse(std::string_view text);

  /// Sets `key` (lowercased) to `value`, overwriting.
  void Set(std::string_view key, std::string_view value);

  /// Raw lookup.
  std::optional<std::string> Get(std::string_view key) const;
  bool Has(std::string_view key) const;

  /// Typed lookups: return `fallback` when absent, an error when present
  /// but malformed.
  Result<double> GetDouble(std::string_view key, double fallback) const;
  Result<int64_t> GetInt(std::string_view key, int64_t fallback) const;
  std::string GetString(std::string_view key, std::string fallback) const;

  /// All keys, sorted (lowercase).
  std::vector<std::string> Keys() const;

  /// Canonical "k=v, k=v" rendering (sorted by key).
  std::string ToString() const;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  friend bool operator==(const ParamMap& a, const ParamMap& b) {
    return a.values_ == b.values_;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Translates UI-level parameters into a typed `AlgorithmRequest` for
/// `graph`. Recognized keys:
///   source / reference / r  — reference node label (or numeric id)
///   alpha                   — damping factor
///   k / maxloop             — CycleRank maximum cycle length
///   sigma / scoring         — scoring function name (exp/lin/quad/const)
///   tolerance, max_iterations, epsilon, walks, seed, top_k
/// Execution-only keys (accepted here, never forwarded to kernels):
///   threads                 — kernel thread budget
///   shards                  — shard count for shard-local execution
///   deadline_ms             — scheduler deadline (see Scheduler::Enqueue)
/// Unknown keys are rejected (catches typos in task specs).
Result<AlgorithmRequest> BuildRequest(const Graph& graph,
                                      const ParamMap& params);

/// Canonical fingerprint of the computation `(dataset, algorithm, params)`,
/// used as the key of the platform's result cache and single-flight request
/// dedup (platform/result_cache.h). Two specs share a fingerprint exactly
/// when `BuildRequest` would resolve them to the same kernel invocation:
///   - parameter order and key case never matter (`ParamMap` is sorted and
///     lowercased);
///   - algorithm aliases resolve to the canonical registry name ("ppr" and
///     "pers_pagerank" fingerprint identically);
///   - aliased parameter keys collapse the way `BuildRequest` resolves them
///     (source/reference/r; maxloop overrides k; sigma shadows scoring);
///   - execution-only knobs (`threads=`, `shards=`, `deadline_ms=`) are
///     excluded: every kernel is bit-identical at any thread *and shard*
///     count, and a deadline changes whether the task runs, never what it
///     computes — so none may split (or collide) cache entries;
///   - dataset names, keys and values are %-escaped, so distinct specs can
///     never collide.
/// Values are compared textually: "0.85" and ".85" fingerprint differently,
/// which costs a cache miss but never a wrong hit.
///
/// `generation` is the dataset's binding generation
/// (`Datastore::DatasetCacheGeneration`): uploaded names can be re-bound to new
/// content after eviction, and the generation keeps the two bindings'
/// computations from ever sharing a fingerprint — neither in the result
/// cache nor in single-flight coalescing. Immutable catalog datasets use
/// 0; a name that currently resolves to nothing gets no fingerprint at
/// all (the gateway enqueues it un-keyed).
std::string TaskFingerprint(const std::string& dataset, uint64_t generation,
                            const std::string& algorithm,
                            const ParamMap& params);

/// `TaskFingerprint` for an immutable binding (generation 0).
inline std::string TaskFingerprint(const std::string& dataset,
                                   const std::string& algorithm,
                                   const ParamMap& params) {
  return TaskFingerprint(dataset, 0, algorithm, params);
}

/// The prefix every `TaskFingerprint` of `dataset` starts with (and, thanks
/// to %-escaping, no fingerprint of any other dataset does). The datastore
/// uses it to invalidate cached results when a dataset name is re-bound to
/// new content (upload after eviction).
std::string DatasetFingerprintPrefix(const std::string& dataset);

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_PARAMS_H_
