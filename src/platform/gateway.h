#ifndef CYCLERANK_PLATFORM_GATEWAY_H_
#define CYCLERANK_PLATFORM_GATEWAY_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/uuid.h"
#include "platform/datastore.h"
#include "platform/platform_options.h"
#include "platform/registry.h"
#include "platform/scheduler.h"
#include "platform/status_service.h"
#include "platform/task.h"

namespace cyclerank {

/// Aggregate progress of a submitted query set.
struct ComparisonStatus {
  std::string comparison_id;
  std::vector<std::string> task_ids;  ///< "<comparison-id>/<index>"
  std::vector<TaskState> states;      ///< parallel to task_ids
  size_t completed = 0;
  size_t failed = 0;
  size_t cancelled = 0;
  bool done = false;  ///< all tasks terminal
};

/// The API gateway of Fig. 1: "the entry point for all incoming requests
/// from the Web UI", routing them to the computational nodes and serving
/// results back.
///
/// A submitted `QuerySet` becomes a *comparison* identified by a UUIDv4
/// permalink (as in Fig. 2's "Comparison id:"); each query becomes a task
/// `<comparison-id>/<index>`. Submission is asynchronous: poll
/// `GetStatus`, block with `WaitForCompletion`, then join the per-task
/// outcomes with `GetResults`.
class ApiGateway {
 public:
  /// Dependencies are borrowed and must outlive the gateway. `options`
  /// carries every deployment knob of the stack (`num_workers` sizes the
  /// executor pool, `uuid_seed != 0` makes ids deterministic for tests,
  /// `max_tasks_per_submission` bounds query-set admission,
  /// `default_threads` is the kernel thread budget of tasks without a
  /// `threads=` of their own) — parse one from `key=value` text with
  /// `PlatformOptions::FromString` to configure a deployment without code
  /// changes. Storage budgets (`graph_store_bytes`, `result_cache_bytes`,
  /// `max_retained_results`) act where the `Datastore` is constructed;
  /// pass the same options object to both.
  explicit ApiGateway(Datastore* datastore, AlgorithmRegistry* registry,
                      const PlatformOptions& options = {});

  ~ApiGateway() { Shutdown(); }

  ApiGateway(const ApiGateway&) = delete;
  ApiGateway& operator=(const ApiGateway&) = delete;

  /// Validates and submits a query set; returns its comparison id.
  /// Validation is shallow (non-empty set, within the
  /// `max_tasks_per_submission` admission limit, known algorithm names) so
  /// bad requests fail synchronously; dataset and parameter errors surface
  /// as failed tasks, mirroring the demo's asynchronous error reporting.
  ///
  /// Tasks are deduplicated by `TaskFingerprint`: a task whose computation
  /// is cached is served instantly, and identical in-flight tasks run the
  /// kernel once (single-flight, see `Scheduler`). On a mid-submission
  /// failure the gateway rolls back: tracked-but-never-enqueued tasks move
  /// to `kFailed` with a stored error result (never stuck `kPending`), and
  /// a comparison with no enqueued task at all is erased.
  Result<std::string> SubmitQuerySet(const QuerySet& query_set)
      CYR_EXCLUDES(mu_);

  /// Current aggregate status of a comparison.
  Result<ComparisonStatus> GetStatus(const std::string& comparison_id) const
      CYR_EXCLUDES(mu_);

  /// Results of all *terminal* tasks so far, in task order. Tasks that
  /// failed carry their error status; pending/running tasks are skipped. A
  /// terminal task with no stored result (should not happen in normal
  /// operation) still yields an entry whose status names its state, so
  /// callers can always distinguish "no result yet" from "task failed".
  Result<std::vector<TaskResult>> GetResults(
      const std::string& comparison_id) const CYR_EXCLUDES(mu_);

  /// Requests cancellation of all not-yet-started tasks of a comparison.
  Status Cancel(const std::string& comparison_id) CYR_EXCLUDES(mu_);

  /// Blocks until the comparison is done. `timeout_seconds == 0` blocks
  /// indefinitely; positive values bound the wait (returns false on
  /// timeout); negative values are rejected as InvalidArgument.
  Result<bool> WaitForCompletion(const std::string& comparison_id,
                                 double timeout_seconds = 0.0) const
      CYR_EXCLUDES(mu_);

  /// Stops the scheduler (drains in-flight work); idempotent.
  void Shutdown() { scheduler_.Shutdown(); }

  StatusService& status_service() { return status_; }
  size_t num_workers() const { return scheduler_.num_workers(); }
  const PlatformOptions& options() const { return options_; }

  /// The datastore's completed-result cache this gateway serves hits from.
  ResultCache& result_cache() { return datastore_->result_cache(); }

  /// The backing datastore — the network layer serves `UploadDataset` and
  /// monitoring stats through it on behalf of remote clients.
  Datastore* datastore() { return datastore_; }

  /// Registers a callback fired whenever any task tracked by this gateway
  /// enters a terminal state — the push primitive behind the network
  /// layer's SUBSCRIBE frames and event-driven WaitForCompletion. Thin
  /// forwarder to the StatusService; see
  /// `StatusService::AddTerminalListener` for the restrictive locking
  /// contract (the callback may run under scheduler locks — it must only
  /// enqueue a notification, never call back into the gateway).
  uint64_t AddTerminalListener(StatusService::TerminalListener listener) {
    return status_.AddTerminalListener(std::move(listener));
  }

  /// Unregisters a terminal-state listener (see StatusService for the
  /// in-flight-invocation caveat).
  void RemoveTerminalListener(uint64_t token) {
    status_.RemoveTerminalListener(token);
  }

 private:
  struct Comparison {
    std::vector<std::string> task_ids;
    std::vector<TaskSpec> specs;  ///< parallel to task_ids
    std::shared_ptr<std::atomic<bool>> cancelled;
  };

  const PlatformOptions options_;
  Datastore* datastore_;
  StatusService status_;
  Executor executor_;
  Scheduler scheduler_;

  /// Outermost lock of the whole platform: submission holds it only for
  /// id generation and comparison-map writes, never across enqueue or
  /// delivery — but the rank is ordered before every other lock anyway.
  mutable Mutex mu_{lock_rank::kGatewayMu, "ApiGateway::mu_"};
  UuidGenerator uuid_ CYR_GUARDED_BY(mu_);
  std::map<std::string, Comparison> comparisons_ CYR_GUARDED_BY(mu_);
  AlgorithmRegistry* registry_;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_GATEWAY_H_
