#include "platform/task.h"

namespace cyclerank {

std::string TaskSpec::ToString() const {
  std::string out = dataset + " | " + algorithm;
  if (!params.empty()) out += " | " + params.ToString();
  return out;
}

std::string_view TaskStateToString(TaskState state) {
  switch (state) {
    case TaskState::kPending:
      return "pending";
    case TaskState::kFetching:
      return "fetching";
    case TaskState::kRunning:
      return "running";
    case TaskState::kCompleted:
      return "completed";
    case TaskState::kFailed:
      return "failed";
    case TaskState::kCancelled:
      return "cancelled";
  }
  return "?";
}

bool IsTerminal(TaskState state) {
  return state == TaskState::kCompleted || state == TaskState::kFailed ||
         state == TaskState::kCancelled;
}

Status TaskBuilder::Add(TaskSpec spec) {
  if (spec.dataset.empty()) {
    return Status::InvalidArgument("task: dataset name must not be empty");
  }
  if (spec.algorithm.empty()) {
    return Status::InvalidArgument("task: algorithm name must not be empty");
  }
  tasks_.push_back(std::move(spec));
  return Status::OK();
}

Status TaskBuilder::Add(std::string_view dataset, std::string_view algorithm,
                        std::string_view params) {
  CYCLERANK_ASSIGN_OR_RETURN(ParamMap parsed, ParamMap::Parse(params));
  return Add(TaskSpec{std::string(dataset), std::string(algorithm),
                      std::move(parsed)});
}

Status TaskBuilder::Remove(size_t index) {
  if (index >= tasks_.size()) {
    return Status::OutOfRange("task builder: index " + std::to_string(index) +
                              " out of range (size " +
                              std::to_string(tasks_.size()) + ")");
  }
  tasks_.erase(tasks_.begin() + static_cast<ptrdiff_t>(index));
  return Status::OK();
}

void TaskBuilder::Clear() { tasks_.clear(); }

}  // namespace cyclerank
