#include "platform/gateway.h"

#include <utility>

#include "common/mutex.h"
#include "platform/params.h"

namespace cyclerank {

ApiGateway::ApiGateway(Datastore* datastore, AlgorithmRegistry* registry,
                       const PlatformOptions& options)
    : options_(options),
      datastore_(datastore),
      executor_(datastore, registry, &status_, options),
      scheduler_(&executor_, options),
      uuid_(options.uuid_seed),
      registry_(registry) {}

Result<std::string> ApiGateway::SubmitQuerySet(const QuerySet& query_set) {
  if (query_set.tasks.empty()) {
    return Status::InvalidArgument("gateway: query set is empty");
  }
  if (options_.max_tasks_per_submission != 0 &&
      query_set.tasks.size() > options_.max_tasks_per_submission) {
    return Status::InvalidArgument(
        "gateway: query set has " + std::to_string(query_set.tasks.size()) +
        " tasks, above the admission limit of " +
        std::to_string(options_.max_tasks_per_submission) +
        " (max_tasks_per_submission)");
  }
  for (const TaskSpec& spec : query_set.tasks) {
    CYCLERANK_RETURN_NOT_OK(registry_->Find(spec.algorithm).status());
  }

  std::string comparison_id;
  Comparison comparison;
  comparison.cancelled = std::make_shared<std::atomic<bool>>(false);
  comparison.specs = query_set.tasks;
  {
    MutexLock lock(mu_);
    comparison_id = uuid_.Generate();
    for (size_t i = 0; i < query_set.tasks.size(); ++i) {
      comparison.task_ids.push_back(comparison_id + "/" + std::to_string(i));
    }
    comparisons_.emplace(comparison_id, comparison);
  }

  // Track before enqueueing so a status poll can never miss a task.
  Status error;
  size_t tracked = 0;
  size_t enqueued = 0;
  for (; tracked < comparison.task_ids.size(); ++tracked) {
    error = status_.Track(comparison.task_ids[tracked]);
    if (!error.ok()) break;
  }
  if (error.ok()) {
    for (; enqueued < query_set.tasks.size(); ++enqueued) {
      const TaskSpec& spec = query_set.tasks[enqueued];
      // No generation means the dataset currently resolves to nothing: the
      // task runs un-keyed (no cache serve, no coalescing, no publish), so
      // a result that only exists because an upload raced in can never be
      // served to later submissions that should answer Expired/NotFound.
      const std::optional<uint64_t> generation =
          datastore_->DatasetCacheGeneration(spec.dataset);
      error = scheduler_.Enqueue(
          comparison.task_ids[enqueued], spec, comparison.cancelled,
          generation.has_value()
              ? TaskFingerprint(spec.dataset, *generation, spec.algorithm,
                                spec.params)
              : std::string());
      if (!error.ok()) break;
    }
  }
  if (error.ok()) return comparison_id;

  // Roll back the partial submission: a task left kPending with no executor
  // ever going to run it would hang WaitForCompletion forever. Tasks that
  // did reach the scheduler are cancelled best-effort — the caller only
  // gets the error, never the comparison id, so nobody could cancel (or
  // observe) them afterwards. Tracked but never-enqueued tasks become
  // kFailed with a stored result carrying the submission error; if nothing
  // reached the scheduler, the comparison is erased entirely.
  comparison.cancelled->store(true, std::memory_order_relaxed);
  for (size_t i = enqueued; i < tracked; ++i) {
    const std::string& task_id = comparison.task_ids[i];
    datastore_->AppendLog(task_id,
                          "submission rolled back: " + error.ToString());
    TaskResult failed;
    failed.task_id = task_id;
    failed.spec = query_set.tasks[i];
    failed.status = error;
    datastore_->PutResult(std::move(failed));
    (void)status_.SetState(task_id, TaskState::kFailed);
  }
  if (enqueued == 0) {
    MutexLock lock(mu_);
    comparisons_.erase(comparison_id);
  }
  return error;
}

Result<ComparisonStatus> ApiGateway::GetStatus(
    const std::string& comparison_id) const {
  std::vector<std::string> task_ids;
  {
    MutexLock lock(mu_);
    auto it = comparisons_.find(comparison_id);
    if (it == comparisons_.end()) {
      return Status::NotFound("gateway: comparison '" + comparison_id +
                              "' not found");
    }
    task_ids = it->second.task_ids;
  }
  ComparisonStatus status;
  status.comparison_id = comparison_id;
  status.task_ids = std::move(task_ids);
  CYCLERANK_ASSIGN_OR_RETURN(status.states,
                             status_.GetStates(status.task_ids));
  status.done = true;
  for (TaskState state : status.states) {
    switch (state) {
      case TaskState::kCompleted:
        ++status.completed;
        break;
      case TaskState::kFailed:
        ++status.failed;
        break;
      case TaskState::kCancelled:
        ++status.cancelled;
        break;
      default:
        status.done = false;
        break;
    }
  }
  return status;
}

Result<std::vector<TaskResult>> ApiGateway::GetResults(
    const std::string& comparison_id) const {
  CYCLERANK_ASSIGN_OR_RETURN(ComparisonStatus status,
                             GetStatus(comparison_id));
  std::vector<TaskSpec> specs;
  {
    MutexLock lock(mu_);
    auto it = comparisons_.find(comparison_id);
    if (it != comparisons_.end()) specs = it->second.specs;
  }
  std::vector<TaskResult> results;
  for (size_t i = 0; i < status.task_ids.size(); ++i) {
    if (!IsTerminal(status.states[i])) continue;
    auto result = datastore_->GetResult(status.task_ids[i]);
    if (result.ok()) {
      results.push_back(std::move(result).value());
      continue;
    }
    // Terminal but no stored result: surface the task's state instead of
    // silently dropping the entry, so callers can tell "not finished yet"
    // (absent) from "finished without a result" (an error entry). A result
    // evicted by the datastore's retention bound keeps its Expired status
    // verbatim — that is an answer, not an internal error.
    TaskResult entry;
    entry.task_id = status.task_ids[i];
    if (i < specs.size()) entry.spec = specs[i];
    if (result.status().code() == StatusCode::kExpired) {
      entry.status = result.status();
    } else {
      const std::string detail =
          "task '" + status.task_ids[i] + "' is " +
          std::string(TaskStateToString(status.states[i])) +
          " but no result was recorded (" + result.status().message() + ")";
      entry.status = status.states[i] == TaskState::kCancelled
                         ? Status::Cancelled(detail)
                         : Status::Internal(detail);
    }
    results.push_back(std::move(entry));
  }
  return results;
}

Status ApiGateway::Cancel(const std::string& comparison_id) {
  MutexLock lock(mu_);
  auto it = comparisons_.find(comparison_id);
  if (it == comparisons_.end()) {
    return Status::NotFound("gateway: comparison '" + comparison_id +
                            "' not found");
  }
  it->second.cancelled->store(true, std::memory_order_relaxed);
  return Status::OK();
}

Result<bool> ApiGateway::WaitForCompletion(const std::string& comparison_id,
                                           double timeout_seconds) const {
  std::vector<std::string> task_ids;
  {
    MutexLock lock(mu_);
    auto it = comparisons_.find(comparison_id);
    if (it == comparisons_.end()) {
      return Status::NotFound("gateway: comparison '" + comparison_id +
                              "' not found");
    }
    task_ids = it->second.task_ids;
  }
  return status_.WaitUntilTerminal(task_ids, timeout_seconds);
}

}  // namespace cyclerank
