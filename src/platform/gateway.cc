#include "platform/gateway.h"

#include <utility>

namespace cyclerank {

ApiGateway::ApiGateway(Datastore* datastore, AlgorithmRegistry* registry,
                       size_t num_workers, uint64_t uuid_seed)
    : datastore_(datastore),
      executor_(datastore, registry, &status_),
      scheduler_(&executor_, num_workers),
      uuid_(uuid_seed),
      registry_(registry) {}

Result<std::string> ApiGateway::SubmitQuerySet(const QuerySet& query_set) {
  if (query_set.tasks.empty()) {
    return Status::InvalidArgument("gateway: query set is empty");
  }
  for (const TaskSpec& spec : query_set.tasks) {
    CYCLERANK_RETURN_NOT_OK(registry_->Find(spec.algorithm).status());
  }

  std::string comparison_id;
  Comparison comparison;
  comparison.cancelled = std::make_shared<std::atomic<bool>>(false);
  {
    std::lock_guard<std::mutex> lock(mu_);
    comparison_id = uuid_.Generate();
    for (size_t i = 0; i < query_set.tasks.size(); ++i) {
      comparison.task_ids.push_back(comparison_id + "/" + std::to_string(i));
    }
    comparisons_.emplace(comparison_id, comparison);
  }

  // Track before enqueueing so a status poll can never miss a task.
  for (const std::string& task_id : comparison.task_ids) {
    CYCLERANK_RETURN_NOT_OK(status_.Track(task_id));
  }
  for (size_t i = 0; i < query_set.tasks.size(); ++i) {
    CYCLERANK_RETURN_NOT_OK(scheduler_.Enqueue(comparison.task_ids[i],
                                               query_set.tasks[i],
                                               comparison.cancelled));
  }
  return comparison_id;
}

Result<ComparisonStatus> ApiGateway::GetStatus(
    const std::string& comparison_id) const {
  std::vector<std::string> task_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = comparisons_.find(comparison_id);
    if (it == comparisons_.end()) {
      return Status::NotFound("gateway: comparison '" + comparison_id +
                              "' not found");
    }
    task_ids = it->second.task_ids;
  }
  ComparisonStatus status;
  status.comparison_id = comparison_id;
  status.task_ids = std::move(task_ids);
  CYCLERANK_ASSIGN_OR_RETURN(status.states,
                             status_.GetStates(status.task_ids));
  status.done = true;
  for (TaskState state : status.states) {
    switch (state) {
      case TaskState::kCompleted:
        ++status.completed;
        break;
      case TaskState::kFailed:
        ++status.failed;
        break;
      case TaskState::kCancelled:
        ++status.cancelled;
        break;
      default:
        status.done = false;
        break;
    }
  }
  return status;
}

Result<std::vector<TaskResult>> ApiGateway::GetResults(
    const std::string& comparison_id) const {
  CYCLERANK_ASSIGN_OR_RETURN(ComparisonStatus status,
                             GetStatus(comparison_id));
  std::vector<TaskResult> results;
  for (size_t i = 0; i < status.task_ids.size(); ++i) {
    if (!IsTerminal(status.states[i])) continue;
    auto result = datastore_->GetResult(status.task_ids[i]);
    if (result.ok()) results.push_back(std::move(result).value());
  }
  return results;
}

Status ApiGateway::Cancel(const std::string& comparison_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = comparisons_.find(comparison_id);
  if (it == comparisons_.end()) {
    return Status::NotFound("gateway: comparison '" + comparison_id +
                            "' not found");
  }
  it->second.cancelled->store(true, std::memory_order_relaxed);
  return Status::OK();
}

Result<bool> ApiGateway::WaitForCompletion(const std::string& comparison_id,
                                           double timeout_seconds) const {
  std::vector<std::string> task_ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = comparisons_.find(comparison_id);
    if (it == comparisons_.end()) {
      return Status::NotFound("gateway: comparison '" + comparison_id +
                              "' not found");
    }
    task_ids = it->second.task_ids;
  }
  return status_.WaitUntilTerminal(task_ids, timeout_seconds);
}

}  // namespace cyclerank
