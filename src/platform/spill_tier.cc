#include "platform/spill_tier.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <set>
#include <sstream>
#include <thread>
#include <utility>

#include "common/backoff.h"
#include "common/binary_io.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/mutex.h"

namespace cyclerank {
namespace {

/// Spill file layouts (all integers little-endian).
///
/// v1 (PR 5, uncompressed — still written when compression is off, always
/// readable):
///   magic "CYSP1\n"                        6 bytes
///   meta word (opaque to the tier)         u64
///   FNV-1a 64 checksum of the payload      u64
///   original key                           u64 length + bytes
///   payload                                u64 length + bytes
///
/// v2 (PR 6, compressed): checksum-then-compress — the checksum is still
/// computed over the *raw* payload, so bit-rot detection is identical to
/// v1, and the raw size travels in the header so recovery can account
/// uncompressed bytes without decoding anything:
///   magic "CYSP2\n"                        6 bytes
///   meta word                              u64
///   FNV-1a 64 checksum of the RAW payload  u64
///   original key                           u64 length + bytes
///   raw payload size                       u64
///   binio::CompressBlock(payload)          u64 length + bytes
///
/// The key is stored *in* the file, so recovery never has to invert the
/// filename encoding, and a renamed file still identifies itself.
constexpr std::string_view kSpillMagicV1 = "CYSP1\n";
constexpr std::string_view kSpillMagicV2 = "CYSP2\n";
constexpr size_t kMagicBytes = 6;
constexpr size_t kFixedHeaderBytes = kMagicBytes + 8 + 8;  // magic+meta+sum

constexpr std::string_view kManifestName = "manifest";
constexpr std::string_view kManifestMagic = "cyclerank-spill-manifest v1";
constexpr std::string_view kSpillSuffix = ".spill";

/// Per-entry overhead charged to the write-behind buffer on top of the
/// payload's own estimate (map node, queue slot, bookkeeping).
constexpr size_t kBufferEntryOverhead = 64;

/// Cap on a single retry backoff delay regardless of how many doublings
/// the retry budget allows.
constexpr uint64_t kRetryBackoffCapMs = 100;

class BytesSpillPayload final : public SpillPayload {
 public:
  explicit BytesSpillPayload(std::string bytes) : bytes_(std::move(bytes)) {}
  std::string Serialize() const override { return bytes_; }
  size_t ApproxBytes() const override { return bytes_.size(); }

 private:
  const std::string bytes_;
};

/// Filesystem-safe, injective encoding of a key: alphanumerics and
/// `._-` pass through, everything else is %-escaped. Over-long names are
/// truncated with the full key's hash appended (the true key is read from
/// the file, never decoded from the name).
std::string SpillFileName(const std::string& key) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(key.size() + 8);
  for (const char c : key) {
    const auto byte = static_cast<unsigned char>(c);
    if (std::isalnum(byte) != 0 || c == '.' || c == '_' || c == '-') {
      out += c;
    } else {
      out += '%';
      out += kHex[byte >> 4];
      out += kHex[byte & 0xf];
    }
  }
  if (out.size() > 200) {
    std::string hash;
    binio::AppendU64(&hash, binio::Fnv1a64(key));
    std::string hex;
    for (const char c : hash) {
      const auto byte = static_cast<unsigned char>(c);
      hex += kHex[byte >> 4];
      hex += kHex[byte & 0xf];
    }
    out = out.substr(0, 160) + "-" + hex;
  }
  return out + std::string(kSpillSuffix);
}

/// Everything recovery needs from a spill file without reading its payload.
struct SpillFileInfo {
  std::string key;
  uint64_t meta = 0;
  uint64_t file_bytes = 0;
  uint64_t raw_bytes = 0;
};

/// Validates the header of `path` (magic of either codec version, lengths
/// vs the on-disk size). Payload bytes stay unread — checksums are
/// verified on `Get`, when the payload is needed anyway. Returns nullopt
/// with a reason for corrupt, truncated, or unreadable files.
std::optional<SpillFileInfo> ReadSpillFileInfo(Env* env,
                                               const std::string& path,
                                               std::string* why) {
  Result<uint64_t> size = env->FileSize(path);
  if (!size.ok()) {
    *why = "unreadable (" + size.status().message() + ")";
    return std::nullopt;
  }
  const uint64_t file_bytes = *size;
  Result<std::string> header = env->ReadFilePrefix(path, kFixedHeaderBytes + 8);
  if (!header.ok()) {
    *why = "unreadable (" + header.status().message() + ")";
    return std::nullopt;
  }
  if (header->size() < kFixedHeaderBytes + 8) {
    *why = "truncated before the key";
    return std::nullopt;
  }
  const std::string_view magic =
      std::string_view(*header).substr(0, kMagicBytes);
  int version = 0;
  if (magic == kSpillMagicV1) {
    version = 1;
  } else if (magic == kSpillMagicV2) {
    version = 2;
  } else {
    *why = "bad magic";
    return std::nullopt;
  }
  binio::Reader reader(std::string_view(*header).substr(kMagicBytes));
  SpillFileInfo info;
  info.file_bytes = file_bytes;
  uint64_t checksum = 0;
  uint64_t key_len = 0;
  (void)reader.ReadU64(&info.meta);
  (void)reader.ReadU64(&checksum);
  (void)reader.ReadU64(&key_len);
  if (key_len > file_bytes - std::min<uint64_t>(file_bytes,
                                                kFixedHeaderBytes + 8)) {
    *why = "key length exceeds the file";
    return std::nullopt;
  }
  // v1 carries one length word after the key (payload), v2 two (raw size
  // + encoded block length).
  const size_t tail_bytes = version == 1 ? 8 : 16;
  const size_t head_bytes =
      kFixedHeaderBytes + 8 + static_cast<size_t>(key_len) + tail_bytes;
  Result<std::string> head = env->ReadFilePrefix(path, head_bytes);
  if (!head.ok()) {
    *why = "unreadable (" + head.status().message() + ")";
    return std::nullopt;
  }
  if (head->size() < head_bytes) {
    *why = "truncated inside the key";
    return std::nullopt;
  }
  info.key = head->substr(kFixedHeaderBytes + 8,
                          static_cast<size_t>(key_len));
  binio::Reader tail_reader(std::string_view(*head).substr(
      kFixedHeaderBytes + 8 + static_cast<size_t>(key_len)));
  uint64_t body_len = 0;
  uint64_t expected = 0;
  if (version == 1) {
    (void)tail_reader.ReadU64(&body_len);
    info.raw_bytes = body_len;
    expected = kFixedHeaderBytes + 8 + key_len + 8 + body_len;
  } else {
    (void)tail_reader.ReadU64(&info.raw_bytes);
    (void)tail_reader.ReadU64(&body_len);
    expected = kFixedHeaderBytes + 8 + key_len + 8 + 8 + body_len;
  }
  if (expected != file_bytes) {
    *why = "payload length disagrees with the file size (truncated write?)";
    return std::nullopt;
  }
  return info;
}

}  // namespace

SpillPayloadPtr MakeBytesSpillPayload(std::string bytes) {
  return std::make_shared<const BytesSpillPayload>(std::move(bytes));
}

SpillTier::SpillTier(std::string dir, SpillTierOptions options,
                     std::string what)
    : dir_(std::move(dir)),
      options_(options),
      what_(std::move(what)),
      env_(options.env != nullptr ? options.env : Env::Default()),
      lru_(options.max_bytes) {
  {
    MutexLock lock(mu_);
    const Status created = env_->CreateDirs(dir_);
    if (!created.ok()) {
      CYCLERANK_LOG(kError) << "spill tier (" << what_
                            << "): cannot create directory '" << dir_ << "': "
                            << created.message() << "; tier disabled, "
                            << "eviction degrades to drop";
      return;
    }
    enabled_ = true;
    RecoverLocked();
  }
  if (write_behind()) {
    flusher_ = std::thread(&SpillTier::FlushWorker, this);
  }
}

SpillTier::~SpillTier() {
  if (flusher_.joinable()) {
    {
      MutexLock lock(buffer_mu_);
      stop_ = true;
      flush_paused_ = false;  // destruction overrides a test pause
    }
    work_cv_.NotifyAll();
    flusher_.join();
  }
  // Durability losses the owner never asked Flush() about still must not
  // vanish silently: shutdown is the last chance to say so.
  MutexLock lock(mu_);
  if (unreported_flush_failures_ != 0) {
    CYCLERANK_LOG(kError) << "spill tier (" << what_ << "): destroyed with "
                          << unreported_flush_failures_
                          << " buffered write(s) that never reached disk "
                          << "(marked pruned); last error: "
                          << last_flush_error_.message();
  }
}

void SpillTier::RecoverLocked() {
  // Pass 1: every *.spill file with a valid header, keyed by filename.
  std::map<std::string, SpillFileInfo> valid;
  Result<std::vector<std::string>> listing = env_->ListDir(dir_);
  if (!listing.ok()) {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): recovery scan cannot list '" << dir_
                            << "': " << listing.status().message()
                            << "; starting empty";
  } else {
    for (const std::string& filename : *listing) {
      if (filename.size() < kSpillSuffix.size() ||
          filename.compare(filename.size() - kSpillSuffix.size(),
                           kSpillSuffix.size(), kSpillSuffix) != 0) {
        continue;  // the manifest, temp files, strangers
      }
      std::string why;
      std::optional<SpillFileInfo> info =
          ReadSpillFileInfo(env_, dir_ + "/" + filename, &why);
      if (!info.has_value()) {
        ++stats_.skipped_corrupt_files;
        CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                                << "): skipping spill file '" << filename
                                << "' during recovery: " << why;
        continue;
      }
      valid.emplace(filename, std::move(*info));
    }
  }
  // Pass 2: recency order — manifest-listed files first (hottest first),
  // unlisted stragglers appended coldest, sorted by name for determinism.
  std::vector<std::string> ordered;
  std::set<std::string> listed;
  bool manifest_ok = false;
  Result<std::string> manifest =
      env_->ReadFile(dir_ + "/" + std::string(kManifestName));
  if (manifest.ok()) {
    std::istringstream in(*manifest);
    std::string line;
    if (std::getline(in, line) && line == kManifestMagic) {
      manifest_ok = true;
      while (std::getline(in, line)) {
        if (!line.empty() && valid.count(line) != 0 &&
            listed.insert(line).second) {
          ordered.push_back(line);
        }
      }
    }
  }
  for (const auto& [filename, info] : valid) {
    if (listed.count(filename) == 0) ordered.push_back(filename);
  }
  // Insert coldest-first so the front of the LRU ends up hottest.
  for (auto it = ordered.rbegin(); it != ordered.rend(); ++it) {
    SpillFileInfo& info = valid.at(*it);
    if (lru_.Contains(info.key)) {
      ++stats_.skipped_corrupt_files;
      CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                              << "): skipping spill file '" << *it
                              << "': duplicate key '" << info.key << "'";
      continue;
    }
    lru_.Insert(info.key, Info{info.meta, info.raw_bytes},
                static_cast<size_t>(info.file_bytes));
    raw_bytes_ += info.raw_bytes;
    FilterAdd(info.key);
    ++stats_.recovered_files;
  }
  if (stats_.recovered_files != 0 || stats_.skipped_corrupt_files != 0) {
    CYCLERANK_LOG(kInfo) << "spill tier (" << what_ << "): recovered "
                         << stats_.recovered_files << " " << what_
                         << "(s) from '" << dir_ << "' ("
                         << lru_.bytes() << " bytes), skipped "
                         << stats_.skipped_corrupt_files;
  }
  PruneLocked();
  if (!manifest_ok || stats_.skipped_corrupt_files != 0 ||
      stats_.prunes != 0) {
    WriteManifestLocked();
  }
}

Status SpillTier::Put(const std::string& key, SpillPayloadPtr payload,
                      uint64_t meta) {
  if (!enabled_) {
    return Status::FailedPrecondition("spill tier (" + what_ +
                                      "): disabled (directory '" + dir_ +
                                      "' could not be initialized)");
  }
  if (payload == nullptr) {
    return Status::InvalidArgument("spill tier (" + what_ +
                                   "): null payload for '" + key + "'");
  }
  if (!write_behind()) return PutSync(key, payload->Serialize(), meta);

  if (BreakerRejects()) {
    // Degraded to memory-only: don't buffer payloads destined for a dead
    // disk. The key is remembered as pruned so a later miss reports
    // "stored and dropped" — unless an older spill of it is still live,
    // in which case that one remains the last durable value.
    MutexLock lock(mu_);
    FilterAdd(key);
    if (!lru_.Contains(key)) {
      pruned_.Mark(key);
      pruned_.Bound(kMaxPrunedMarkers);
    }
    return Status::Unavailable(
        "spill tier (" + what_ + "): degraded to memory-only (circuit "
        "breaker open); '" + key + "' not spilled");
  }

  const size_t approx =
      payload->ApproxBytes() + key.size() + kBufferEntryOverhead;
  {
    MutexLock lock(buffer_mu_);
    // Backpressure: past the byte bound the caller waits for the flusher.
    // A single payload larger than the whole bound is admitted alone (the
    // buffer must make progress), which is why the emptiness check is part
    // of the predicate.
    if (!stop_ && !pending_.empty() &&
        pending_bytes_ + approx > options_.write_behind_bytes) {
      ++backpressure_waits_;
      drained_cv_.Wait(buffer_mu_, [&]() CYR_REQUIRES(buffer_mu_) {
        return stop_ || pending_.empty() ||
               pending_bytes_ + approx <= options_.write_behind_bytes;
      });
    }
    // Add to the filter *before* publishing the entry: releasing
    // buffer_mu_ then orders this relaxed store before any reader that
    // synchronizes with the insert, so a filter miss can never hide an
    // entry such a reader is entitled to see.
    FilterAdd(key);
    auto [it, inserted] = pending_.try_emplace(key);
    if (!inserted) pending_bytes_ -= it->second.approx_bytes;
    it->second.payload = std::move(payload);
    it->second.meta = meta;
    it->second.seq = ++next_seq_;
    it->second.approx_bytes = approx;
    if (!it->second.queued) {
      // Not queued means either a fresh entry or one whose flush is in
      // flight right now; either way the new seq needs its own queue slot
      // (an already-queued entry's slot will pick the new seq up itself).
      it->second.queued = true;
      flush_queue_.push_back(key);
    }
    pending_bytes_ += approx;
  }
  work_cv_.NotifyOne();
  return Status::OK();
}

Status SpillTier::Put(const std::string& key, std::string_view payload,
                      uint64_t meta) {
  if (!enabled_) {
    return Status::FailedPrecondition("spill tier (" + what_ +
                                      "): disabled (directory '" + dir_ +
                                      "' could not be initialized)");
  }
  if (!write_behind()) return PutSync(key, payload, meta);
  return Put(key, MakeBytesSpillPayload(std::string(payload)), meta);
}

Status SpillTier::PutSync(const std::string& key, std::string_view raw,
                          uint64_t meta) {
  const std::string file = EncodeSpillFile(key, raw, meta);
  MutexLock lock(mu_);
  // Into the filter before any outcome: a rejected-oversize key becomes a
  // pruned marker, and pruned lookups must fall through the filter to get
  // their exact `kExpired` answer.
  FilterAdd(key);
  if (options_.max_bytes != 0 && file.size() > options_.max_bytes) {
    // The entry cannot be demoted at all. Drop any older spill of the key
    // (it is superseded either way) and remember the key as pruned, so
    // lookups report disk-budget pressure instead of "never stored".
    if (UnindexLocked(key).has_value()) RemoveFileLocked(key);
    pruned_.Mark(key);
    pruned_.Bound(kMaxPrunedMarkers);
    WriteManifestLocked();
    return Status::InvalidArgument(
        "spill tier (" + what_ + "): '" + key + "' needs " +
        std::to_string(file.size()) + " bytes on disk, larger than the " +
        "entire spill budget of " + std::to_string(options_.max_bytes) +
        " bytes");
  }
  const Status written = WriteSpillFile(key, file);
  if (!written.ok()) {
    // The new bytes never reached disk. An older spill of the key — still
    // indexed — stays the last durable value; otherwise remember the key
    // as pruned so lookups report the loss, not "never stored".
    if (!lru_.Contains(key)) {
      pruned_.Mark(key);
      pruned_.Bound(kMaxPrunedMarkers);
    }
    return written;
  }
  IndexLocked(key, Info{meta, raw.size()}, file.size());
  WriteManifestLocked();
  return Status::OK();
}

void SpillTier::FlushWorker() {
  for (;;) {
    std::string key;
    SpillPayloadPtr payload;
    uint64_t meta = 0;
    uint64_t seq = 0;
    {
      MutexLock lock(buffer_mu_);
      work_cv_.Wait(buffer_mu_, [&]() CYR_REQUIRES(buffer_mu_) {
        return stop_ || (!flush_queue_.empty() && !flush_paused_);
      });
      if (flush_queue_.empty()) {
        if (stop_) return;  // drained — every accepted write is on disk
        continue;
      }
      key = std::move(flush_queue_.front());
      flush_queue_.pop_front();
      auto it = pending_.find(key);
      if (it == pending_.end() || !it->second.queued) {
        continue;  // erased, or a stale duplicate queue slot
      }
      it->second.queued = false;
      payload = it->second.payload;
      meta = it->second.meta;
      seq = it->second.seq;
    }
    // Serialize + compress + write with no lock held — this is the whole
    // point of the write-behind tier.
    FlushOne(key, payload, meta, seq);
  }
}

void SpillTier::FlushOne(const std::string& key, const SpillPayloadPtr& payload,
                         uint64_t meta, uint64_t seq) {
  const std::string raw = payload->Serialize();
  const std::string file = EncodeSpillFile(key, raw, meta);
  if (options_.max_bytes != 0 && file.size() > options_.max_bytes) {
    CYCLERANK_LOG(kWarning)
        << "spill tier (" << what_ << "): '" << key << "' needs "
        << file.size() << " bytes on disk, larger than the entire spill "
        << "budget of " << options_.max_bytes << " bytes; dropped (pruned)";
    {
      MutexLock lock(mu_);
      if (UnindexLocked(key).has_value()) RemoveFileLocked(key);
      pruned_.Mark(key);
      pruned_.Bound(kMaxPrunedMarkers);
      WriteManifestLocked();
    }
    DropPending(key, seq);
    return;
  }
  const Status written = WriteSpillFile(key, file);
  if (!written.ok()) {
    CYCLERANK_LOG(kError) << "spill tier (" << what_
                          << "): write-behind flush of '" << key
                          << "' failed, entry lost: " << written.message();
    {
      // Remember the loss the same way a budget prune is remembered (when
      // no older spill survives as the last durable value), and record it
      // for the next Flush() report — durability failures must surface as
      // a real Status, not just a log line.
      MutexLock lock(mu_);
      if (!lru_.Contains(key)) {
        pruned_.Mark(key);
        pruned_.Bound(kMaxPrunedMarkers);
      }
      ++stats_.flush_failures;
      ++unreported_flush_failures_;
      last_flush_error_ = written;
    }
    DropPending(key, seq);
    return;
  }
  FinishPending(key, seq, Info{meta, raw.size()}, file.size());
}

void SpillTier::FinishPending(const std::string& key, uint64_t seq,
                              Info info, size_t file_bytes) {
  MutexLock lock(buffer_mu_);
  auto it = pending_.find(key);
  if (it != pending_.end() && it->second.seq == seq) {
    // Index the flushed file *before* dropping the buffer entry, so a
    // concurrent Get always finds the key in at least one of the two —
    // the never-invisible guarantee.
    {
      MutexLock disk_lock(mu_);
      IndexLocked(key, info, file_bytes);
      ++stats_.flushes;
    }
    pending_bytes_ -= it->second.approx_bytes;
    pending_.erase(it);
    lock.Unlock();
    drained_cv_.NotifyAll();
    flushed_cv_.NotifyAll();
    // The manifest write is file IO: do it off buffer_mu_ so enqueues
    // never wait behind it.
    MutexLock disk_lock(mu_);
    WriteManifestLocked();
    return;
  }
  if (it == pending_.end()) {
    // Erased while the flush was in flight: the rename above resurrected
    // a file the caller asked to drop. It was never indexed (only this
    // thread indexes), so remove it directly — unless a newer flush has
    // already re-indexed the key.
    lock.Unlock();
    MutexLock disk_lock(mu_);
    if (!lru_.Contains(key)) RemoveFileLocked(key);
    return;
  }
  // Superseded while in flight: the newer seq holds a queue slot and its
  // flush will overwrite the file we just wrote. Leave everything alone.
}

void SpillTier::DropPending(const std::string& key, uint64_t seq) {
  {
    MutexLock lock(buffer_mu_);
    auto it = pending_.find(key);
    if (it == pending_.end() || it->second.seq != seq) return;
    pending_bytes_ -= it->second.approx_bytes;
    pending_.erase(it);
  }
  drained_cv_.NotifyAll();
  flushed_cv_.NotifyAll();
}

std::string SpillTier::EncodeSpillFile(const std::string& key,
                                       std::string_view raw,
                                       uint64_t meta) const {
  std::string file;
  if (options_.compression) {
    const std::string encoded = binio::CompressBlock(raw);
    file.reserve(kFixedHeaderBytes + 32 + key.size() + encoded.size());
    file.append(kSpillMagicV2);
    binio::AppendU64(&file, meta);
    binio::AppendU64(&file, binio::Fnv1a64(raw));
    binio::AppendString(&file, key);
    binio::AppendU64(&file, raw.size());
    binio::AppendString(&file, encoded);
  } else {
    file.reserve(kFixedHeaderBytes + 16 + key.size() + raw.size());
    file.append(kSpillMagicV1);
    binio::AppendU64(&file, meta);
    binio::AppendU64(&file, binio::Fnv1a64(raw));
    binio::AppendString(&file, key);
    binio::AppendString(&file, raw);
  }
  return file;
}

Status SpillTier::WriteSpillFile(const std::string& key,
                                 std::string_view file) {
  const std::string path = FilePath(key);
  const std::string tmp_path = path + ".tmp";
  // tmp write + rename retried as one unit: after any failure the tmp file
  // may be torn, so the only safe resumption point is the beginning.
  return GuardedIo("spill write", [&]() {
    const Status written = env_->WriteFile(tmp_path, file);
    if (!written.ok()) {
      (void)env_->Remove(tmp_path);
      return written;
    }
    const Status renamed = env_->Rename(tmp_path, path);
    if (!renamed.ok()) (void)env_->Remove(tmp_path);
    return renamed;
  });
}

Status SpillTier::ReadSpillFile(const std::string& key, std::string* out) {
  const std::string path = FilePath(key);
  return GuardedIo("spill read", [&]() {
    Result<std::string> file = env_->ReadFile(path);
    if (!file.ok()) return file.status();
    *out = std::move(file).value();
    return Status::OK();
  });
}

Status SpillTier::GuardedIo(const char* op_label,
                            const std::function<Status()>& op) {
  bool probing = false;
  {
    MutexLock lock(breaker_mu_);
    if (breaker_open_) {
      const auto now = std::chrono::steady_clock::now();
      if (now - breaker_last_ <
          std::chrono::milliseconds(options_.breaker_probe_ms)) {
        ++breaker_rejects_;
        return Status::Unavailable(
            "spill tier (" + what_ + "): degraded to memory-only (circuit "
            "breaker open); " + op_label + " rejected");
      }
      // A probe is due: admit exactly this operation, single attempt, and
      // restart the probe clock so concurrent callers keep fast-failing.
      probing = true;
      breaker_last_ = now;
      ++breaker_probes_;
    }
  }
  Status status = op();
  if (!status.ok() && !probing) {
    ExponentialBackoff backoff(ExponentialBackoff::Policy{
        options_.retry_backoff_ms, kRetryBackoffCapMs, options_.retry_limit});
    while (!status.ok()) {
      const std::optional<uint64_t> delay = backoff.NextDelayMs();
      if (!delay.has_value()) break;
      if (*delay != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(*delay));
      }
      {
        MutexLock lock(breaker_mu_);
        ++retries_;
      }
      status = op();
    }
  }
  MutexLock lock(breaker_mu_);
  if (status.ok()) {
    if (breaker_open_) {
      breaker_open_ = false;
      ++breaker_recoveries_;
      CYCLERANK_LOG(kInfo) << "spill tier (" << what_ << "): " << op_label
                           << " probe succeeded, circuit breaker closed — "
                           << "disk service restored";
    }
    return status;
  }
  if (!probing) ++retry_exhausted_;
  breaker_last_ = std::chrono::steady_clock::now();
  if (!breaker_open_) {
    breaker_open_ = true;
    ++breaker_trips_;
    CYCLERANK_LOG(kError) << "spill tier (" << what_ << "): " << op_label
                          << " failed every attempt, circuit breaker opened "
                          << "(degrading to memory-only): "
                          << status.message();
  }
  return status;
}

bool SpillTier::BreakerRejects() {
  MutexLock lock(breaker_mu_);
  if (!breaker_open_) return false;
  if (std::chrono::steady_clock::now() - breaker_last_ >=
      std::chrono::milliseconds(options_.breaker_probe_ms)) {
    return false;  // a probe is due — let the operation through
  }
  ++breaker_rejects_;
  return true;
}

void SpillTier::IndexLocked(const std::string& key, Info info,
                            size_t file_bytes) {
  if (std::optional<ByteBudgetedLru<Info>::Entry> old = UnindexLocked(key);
      old.has_value()) {
    // Overwrite: the rename already replaced the file on disk.
  }
  pruned_.Revive(key);
  lru_.Insert(key, info, file_bytes);
  raw_bytes_ += info.raw_bytes;
  ++stats_.spills;
  PruneLocked();
}

std::optional<ByteBudgetedLru<SpillTier::Info>::Entry> SpillTier::UnindexLocked(
    const std::string& key) {
  std::optional<ByteBudgetedLru<Info>::Entry> entry = lru_.Erase(key);
  if (entry.has_value()) raw_bytes_ -= entry->value.raw_bytes;
  return entry;
}

Result<SpillTier::Loaded> SpillTier::Get(const std::string& key) {
  // The filter is the fast path for "never stored": no lock, no disk.
  // Pruned and corrupt-dropped keys were once stored, so their bits are
  // set and they fall through to the exact answer below.
  if (!FilterMayContain(key)) {
    filter_negatives_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("spill tier (" + what_ + "): no spill file for '" +
                            key + "'");
  }
  if (write_behind()) {
    SpillPayloadPtr buffered;
    uint64_t buffered_meta = 0;
    {
      MutexLock lock(buffer_mu_);
      auto it = pending_.find(key);
      if (it != pending_.end()) {
        buffered = it->second.payload;
        buffered_meta = it->second.meta;
      }
    }
    if (buffered != nullptr) {
      // Read-your-write: the entry has not reached disk yet but is fully
      // visible. Serialize outside buffer_mu_ — the shared_ptr keeps the
      // payload alive even if it is erased or flushed meanwhile.
      buffer_hits_.fetch_add(1, std::memory_order_relaxed);
      Loaded loaded;
      loaded.meta = buffered_meta;
      loaded.payload = buffered->Serialize();
      return loaded;
    }
  }
  MutexLock lock(mu_);
  Info* info = lru_.Touch(key);
  if (info == nullptr) {
    ++stats_.misses;
    if (pruned_.Contains(key)) {
      return Status::Expired("spill tier (" + what_ + "): '" + key +
                             "' was spilled to disk and then pruned by the "
                             "spill byte budget (" +
                             std::to_string(options_.max_bytes) + " bytes)");
    }
    return Status::NotFound("spill tier (" + what_ + "): no spill file for '" +
                            key + "'");
  }
  const std::string path = FilePath(key);
  std::string file;
  if (const Status read = ReadSpillFile(key, &file); !read.ok()) {
    // A failed *read* is not corruption: the entry and its file stay put —
    // when the disk heals (or the breaker closes), the data is still
    // there. The caller sees a miss-shaped error and recomputes.
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): cannot read spill file '" << path
                            << "' (entry kept): " << read.message();
    return read;
  }
  // Re-validate everything before trusting the bytes: magic, the embedded
  // key, the compressed framing, and the payload checksum. Any mismatch
  // means bit rot or a torn write — drop the entry with a warning instead
  // of handing corrupt bytes to a codec.
  const auto corrupt = [&](const std::string& why) CYR_REQUIRES(mu_) -> Status {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): dropping corrupt spill file '" << path
                            << "': " << why;
    UnindexLocked(key);
    RemoveFileLocked(key);
    ++stats_.skipped_corrupt_files;
    WriteManifestLocked();
    return Status::IOError("spill tier (" + what_ + "): spill file for '" +
                           key + "' is corrupt (" + why + ")");
  };
  const std::string_view magic =
      std::string_view(file).substr(0, std::min(file.size(), kMagicBytes));
  const bool v2 = magic == kSpillMagicV2;
  if (!v2 && magic != kSpillMagicV1) return corrupt("bad magic");
  binio::Reader reader(std::string_view(file).substr(kMagicBytes));
  Loaded loaded;
  uint64_t checksum = 0;
  std::string stored_key;
  if (!reader.ReadU64(&loaded.meta) || !reader.ReadU64(&checksum) ||
      !reader.ReadString(&stored_key)) {
    return corrupt("truncated");
  }
  if (v2) {
    uint64_t raw_len = 0;
    std::string encoded;
    if (!reader.ReadU64(&raw_len) || !reader.ReadString(&encoded) ||
        !reader.AtEnd()) {
      return corrupt("truncated");
    }
    if (!binio::DecompressBlock(encoded, &loaded.payload) ||
        loaded.payload.size() != raw_len) {
      return corrupt("compressed payload does not decode");
    }
  } else {
    if (!reader.ReadString(&loaded.payload) || !reader.AtEnd()) {
      return corrupt("truncated");
    }
  }
  if (stored_key != key) {
    return corrupt("embedded key '" + stored_key + "' does not match");
  }
  if (binio::Fnv1a64(loaded.payload) != checksum) {
    return corrupt("payload checksum mismatch");
  }
  ++stats_.reloads;
  // Recency moved but the manifest is only rewritten on Put/Erase/prune:
  // a read-heavy workload must not pay a manifest write per reload, and
  // losing recency on crash only costs pruning accuracy, never data.
  return loaded;
}

bool SpillTier::Contains(const std::string& key) const {
  if (!FilterMayContain(key)) {
    filter_negatives_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  MutexLock buffer_lock(buffer_mu_);
  if (pending_.count(key) != 0) return true;
  MutexLock lock(mu_);
  return lru_.Contains(key);
}

std::optional<uint64_t> SpillTier::Meta(const std::string& key) const {
  if (!FilterMayContain(key)) return std::nullopt;
  MutexLock buffer_lock(buffer_mu_);
  if (auto it = pending_.find(key); it != pending_.end()) {
    return it->second.meta;
  }
  MutexLock lock(mu_);
  const Info* info = lru_.Find(key);
  if (info == nullptr) return std::nullopt;
  return info->meta;
}

bool SpillTier::WasPruned(const std::string& key) const {
  MutexLock lock(mu_);
  return pruned_.Contains(key);
}

void SpillTier::Erase(const std::string& key) {
  {
    MutexLock lock(buffer_mu_);
    auto it = pending_.find(key);
    if (it != pending_.end()) {
      pending_bytes_ -= it->second.approx_bytes;
      pending_.erase(it);
      drained_cv_.NotifyAll();
      flushed_cv_.NotifyAll();
    }
  }
  MutexLock lock(mu_);
  pruned_.Revive(key);
  if (!UnindexLocked(key).has_value()) return;
  RemoveFileLocked(key);
  WriteManifestLocked();
}

size_t SpillTier::ErasePrefix(const std::string& prefix) {
  std::set<std::string> erased;
  {
    MutexLock lock(buffer_mu_);
    for (auto it = pending_.lower_bound(prefix);
         it != pending_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;) {
      erased.insert(it->first);
      pending_bytes_ -= it->second.approx_bytes;
      it = pending_.erase(it);
    }
    if (!erased.empty()) {
      drained_cv_.NotifyAll();
      flushed_cv_.NotifyAll();
    }
  }
  MutexLock lock(mu_);
  std::vector<ByteBudgetedLru<Info>::Entry> disk = lru_.ErasePrefix(prefix);
  for (const ByteBudgetedLru<Info>::Entry& entry : disk) {
    raw_bytes_ -= entry.value.raw_bytes;
    pruned_.Revive(entry.key);
    RemoveFileLocked(entry.key);
    erased.insert(entry.key);
  }
  if (!disk.empty()) WriteManifestLocked();
  return erased.size();
}

Status SpillTier::Flush() {
  if (!write_behind()) return Status::OK();
  {
    MutexLock lock(buffer_mu_);
    flushed_cv_.Wait(buffer_mu_, [&]() CYR_REQUIRES(buffer_mu_) {
      return pending_.empty();
    });
  }
  MutexLock lock(mu_);
  if (unreported_flush_failures_ == 0) return Status::OK();
  const uint64_t lost = unreported_flush_failures_;
  unreported_flush_failures_ = 0;
  const Status last = last_flush_error_;
  last_flush_error_ = Status::OK();
  return Status(last.code(),
                "spill tier (" + what_ + "): " + std::to_string(lost) +
                    " buffered write(s) never reached disk (keys marked "
                    "pruned); last error: " + last.message());
}

void SpillTier::SetFlushPausedForTest(bool paused) {
  {
    MutexLock lock(buffer_mu_);
    flush_paused_ = paused;
  }
  work_cv_.NotifyAll();
}

std::vector<std::string> SpillTier::Keys() const {
  std::set<std::string> keys;
  MutexLock buffer_lock(buffer_mu_);
  for (const auto& [key, pending] : pending_) keys.insert(key);
  MutexLock lock(mu_);
  for (const std::string& key : lru_.Keys()) keys.insert(key);
  return std::vector<std::string>(keys.begin(), keys.end());
}

uint64_t SpillTier::MaxMeta() const {
  uint64_t max_meta = 0;
  MutexLock buffer_lock(buffer_mu_);
  for (const auto& [key, pending] : pending_) {
    max_meta = std::max(max_meta, pending.meta);
  }
  MutexLock lock(mu_);
  for (const std::string& key : lru_.Keys()) {
    max_meta = std::max(max_meta, lru_.Find(key)->meta);
  }
  return max_meta;
}

SpillTierStats SpillTier::stats() const {
  MutexLock buffer_lock(buffer_mu_);
  MutexLock lock(mu_);
  SpillTierStats snapshot = stats_;
  snapshot.entries = lru_.size();
  snapshot.bytes = lru_.bytes();
  snapshot.raw_bytes = raw_bytes_;
  snapshot.queue_depth = pending_.size();
  snapshot.buffer_bytes = pending_bytes_;
  snapshot.backpressure_waits = backpressure_waits_;
  snapshot.buffer_hits = buffer_hits_.load(std::memory_order_relaxed);
  snapshot.filter_negatives =
      filter_negatives_.load(std::memory_order_relaxed);
  {
    MutexLock breaker_lock(breaker_mu_);
    snapshot.retries = retries_;
    snapshot.retry_exhausted = retry_exhausted_;
    snapshot.breaker_trips = breaker_trips_;
    snapshot.breaker_probes = breaker_probes_;
    snapshot.breaker_recoveries = breaker_recoveries_;
    snapshot.breaker_rejects = breaker_rejects_;
    snapshot.breaker_open = breaker_open_;
  }
  return snapshot;
}

void SpillTier::PruneLocked() {
  while (lru_.OverBudget()) {
    std::optional<ByteBudgetedLru<Info>::Entry> victim = lru_.PopLeastRecent();
    if (!victim.has_value()) break;
    raw_bytes_ -= victim->value.raw_bytes;
    RemoveFileLocked(victim->key);
    pruned_.Mark(victim->key);
    ++stats_.prunes;
  }
  pruned_.Bound(kMaxPrunedMarkers);
}

void SpillTier::WriteManifestLocked() {
  if (!enabled_) return;
  // Single attempt, no breaker: the manifest is recoverable metadata (it
  // only seeds recency on the next recovery), so a failed write costs
  // pruning accuracy after a crash, never data.
  const std::string manifest_path = dir_ + "/" + std::string(kManifestName);
  const std::string tmp_path = dir_ + "/manifest.tmp";
  std::string out(kManifestMagic);
  out += '\n';
  // Hottest first — the recovery scan replays this order into the LRU.
  for (const std::string& key : lru_.KeysByRecency()) {
    out += SpillFileName(key);
    out += '\n';
  }
  const Status written = env_->WriteFile(tmp_path, out);
  if (!written.ok()) {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): cannot write manifest in '" << dir_
                            << "': " << written.message();
    (void)env_->Remove(tmp_path);
    return;
  }
  const Status renamed = env_->Rename(tmp_path, manifest_path);
  if (!renamed.ok()) {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): cannot rename manifest into place: "
                            << renamed.message();
    (void)env_->Remove(tmp_path);
  }
}

void SpillTier::RemoveFileLocked(const std::string& key) {
  const Status removed = env_->Remove(FilePath(key));
  if (!removed.ok()) {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): cannot remove spill file for '" << key
                            << "': " << removed.message();
  }
}

std::string SpillTier::FilePath(const std::string& key) const {
  return dir_ + "/" + SpillFileName(key);
}

void SpillTier::FilterAdd(const std::string& key) {
  const uint64_t h1 = binio::Fnv1a64(key);
  // splitmix64 finalizer: a second, independent probe from the same hash.
  uint64_t h2 = h1;
  h2 ^= h2 >> 30;
  h2 *= 0xbf58476d1ce4e5b9ull;
  h2 ^= h2 >> 27;
  h2 *= 0x94d049bb133111ebull;
  h2 ^= h2 >> 31;
  for (const uint64_t h : {h1, h2}) {
    const size_t bit = static_cast<size_t>(h) & (kFilterWords * 64 - 1);
    filter_[bit >> 6].fetch_or(uint64_t{1} << (bit & 63),
                               std::memory_order_relaxed);
  }
}

bool SpillTier::FilterMayContain(const std::string& key) const {
  const uint64_t h1 = binio::Fnv1a64(key);
  uint64_t h2 = h1;
  h2 ^= h2 >> 30;
  h2 *= 0xbf58476d1ce4e5b9ull;
  h2 ^= h2 >> 27;
  h2 *= 0x94d049bb133111ebull;
  h2 ^= h2 >> 31;
  for (const uint64_t h : {h1, h2}) {
    const size_t bit = static_cast<size_t>(h) & (kFilterWords * 64 - 1);
    if ((filter_[bit >> 6].load(std::memory_order_relaxed) &
         (uint64_t{1} << (bit & 63))) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace cyclerank
