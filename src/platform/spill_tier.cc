#include "platform/spill_tier.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "common/binary_io.h"
#include "common/logging.h"

namespace fs = std::filesystem;

namespace cyclerank {
namespace {

/// Spill file layout (all integers little-endian):
///   magic "CYSP1\n"                        6 bytes
///   meta word (opaque to the tier)         u64
///   FNV-1a 64 checksum of the payload      u64
///   original key                           u64 length + bytes
///   payload                                u64 length + bytes
/// The key is stored *in* the file, so recovery never has to invert the
/// filename encoding, and a renamed file still identifies itself.
constexpr std::string_view kSpillMagic = "CYSP1\n";
constexpr size_t kFixedHeaderBytes = 6 + 8 + 8;  // magic + meta + checksum

constexpr std::string_view kManifestName = "manifest";
constexpr std::string_view kManifestMagic = "cyclerank-spill-manifest v1";
constexpr std::string_view kSpillSuffix = ".spill";

/// Filesystem-safe, injective encoding of a key: alphanumerics and
/// `._-` pass through, everything else is %-escaped. Over-long names are
/// truncated with the full key's hash appended (the true key is read from
/// the file, never decoded from the name).
std::string SpillFileName(const std::string& key) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(key.size() + 8);
  for (const char c : key) {
    const auto byte = static_cast<unsigned char>(c);
    if (std::isalnum(byte) != 0 || c == '.' || c == '_' || c == '-') {
      out += c;
    } else {
      out += '%';
      out += kHex[byte >> 4];
      out += kHex[byte & 0xf];
    }
  }
  if (out.size() > 200) {
    std::string hash;
    binio::AppendU64(&hash, binio::Fnv1a64(key));
    std::string hex;
    for (const char c : hash) {
      const auto byte = static_cast<unsigned char>(c);
      hex += kHex[byte >> 4];
      hex += kHex[byte & 0xf];
    }
    out = out.substr(0, 160) + "-" + hex;
  }
  return out + std::string(kSpillSuffix);
}

/// Everything recovery needs from a spill file without reading its payload.
struct SpillFileInfo {
  std::string key;
  uint64_t meta = 0;
  uint64_t file_bytes = 0;
};

/// Validates the header of `path` (magic, lengths vs the on-disk size).
/// Payload bytes stay unread — checksums are verified on `Get`, when the
/// payload is needed anyway. Returns nullopt with a reason for corrupt or
/// truncated files.
std::optional<SpillFileInfo> ReadSpillFileInfo(const fs::path& path,
                                               std::string* why) {
  std::error_code ec;
  const uint64_t file_bytes = fs::file_size(path, ec);
  if (ec) {
    *why = "unreadable (" + ec.message() + ")";
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  std::string header(kFixedHeaderBytes + 8, '\0');
  if (!in.read(header.data(), static_cast<std::streamsize>(header.size()))) {
    *why = "truncated before the key";
    return std::nullopt;
  }
  if (std::string_view(header).substr(0, kSpillMagic.size()) != kSpillMagic) {
    *why = "bad magic";
    return std::nullopt;
  }
  binio::Reader reader(std::string_view(header).substr(kSpillMagic.size()));
  SpillFileInfo info;
  info.file_bytes = file_bytes;
  uint64_t checksum = 0;
  uint64_t key_len = 0;
  (void)reader.ReadU64(&info.meta);
  (void)reader.ReadU64(&checksum);
  (void)reader.ReadU64(&key_len);
  if (key_len > file_bytes - std::min<uint64_t>(file_bytes,
                                                kFixedHeaderBytes + 8)) {
    *why = "key length exceeds the file";
    return std::nullopt;
  }
  info.key.resize(key_len);
  std::string payload_len_bytes(8, '\0');
  if (!in.read(info.key.data(), static_cast<std::streamsize>(key_len)) ||
      !in.read(payload_len_bytes.data(), 8)) {
    *why = "truncated inside the key";
    return std::nullopt;
  }
  uint64_t payload_len = 0;
  binio::Reader payload_reader(payload_len_bytes);
  (void)payload_reader.ReadU64(&payload_len);
  const uint64_t expected =
      kFixedHeaderBytes + 8 + key_len + 8 + payload_len;
  if (expected != file_bytes) {
    *why = "payload length disagrees with the file size (truncated write?)";
    return std::nullopt;
  }
  return info;
}

}  // namespace

SpillTier::SpillTier(std::string dir, size_t max_bytes, std::string what)
    : dir_(std::move(dir)),
      max_bytes_(max_bytes),
      what_(std::move(what)),
      lru_(max_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    CYCLERANK_LOG(kError) << "spill tier (" << what_
                          << "): cannot create directory '" << dir_ << "': "
                          << ec.message() << "; tier disabled, eviction "
                          << "degrades to drop";
    return;
  }
  enabled_ = true;
  RecoverLocked();
}

bool SpillTier::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

void SpillTier::RecoverLocked() {
  // Pass 1: every *.spill file with a valid header, keyed by filename.
  std::map<std::string, SpillFileInfo> valid;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string filename = entry.path().filename().string();
    if (!entry.is_regular_file() || filename.size() < kSpillSuffix.size() ||
        filename.compare(filename.size() - kSpillSuffix.size(),
                         kSpillSuffix.size(), kSpillSuffix) != 0) {
      continue;  // the manifest, temp files, strangers
    }
    std::string why;
    std::optional<SpillFileInfo> info = ReadSpillFileInfo(entry.path(), &why);
    if (!info.has_value()) {
      ++stats_.skipped;
      CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                              << "): skipping spill file '" << filename
                              << "' during recovery: " << why;
      continue;
    }
    valid.emplace(filename, std::move(*info));
  }
  // Pass 2: recency order — manifest-listed files first (hottest first),
  // unlisted stragglers appended coldest, sorted by name for determinism.
  std::vector<std::string> ordered;
  std::set<std::string> listed;
  std::ifstream manifest(fs::path(dir_) / kManifestName);
  std::string line;
  bool manifest_ok = false;
  if (manifest && std::getline(manifest, line) && line == kManifestMagic) {
    manifest_ok = true;
    while (std::getline(manifest, line)) {
      if (!line.empty() && valid.count(line) != 0 && listed.insert(line).second) {
        ordered.push_back(line);
      }
    }
  }
  for (const auto& [filename, info] : valid) {
    if (listed.count(filename) == 0) ordered.push_back(filename);
  }
  // Insert coldest-first so the front of the LRU ends up hottest.
  for (auto it = ordered.rbegin(); it != ordered.rend(); ++it) {
    SpillFileInfo& info = valid.at(*it);
    if (lru_.Contains(info.key)) {
      ++stats_.skipped;
      CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                              << "): skipping spill file '" << *it
                              << "': duplicate key '" << info.key << "'";
      continue;
    }
    lru_.Insert(info.key, Info{info.meta},
                static_cast<size_t>(info.file_bytes));
    ++stats_.recovered;
  }
  if (stats_.recovered != 0 || stats_.skipped != 0) {
    CYCLERANK_LOG(kInfo) << "spill tier (" << what_ << "): recovered "
                         << stats_.recovered << " " << what_
                         << "(s) from '" << dir_ << "' ("
                         << lru_.bytes() << " bytes), skipped "
                         << stats_.skipped;
  }
  PruneLocked();
  if (!manifest_ok || stats_.skipped != 0 || stats_.prunes != 0) {
    WriteManifestLocked();
  }
}

Status SpillTier::Put(const std::string& key, std::string_view payload,
                      uint64_t meta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) {
    return Status::FailedPrecondition("spill tier (" + what_ +
                                      "): disabled (directory '" + dir_ +
                                      "' could not be initialized)");
  }
  std::string file;
  file.reserve(kFixedHeaderBytes + 16 + key.size() + payload.size());
  file.append(kSpillMagic);
  binio::AppendU64(&file, meta);
  binio::AppendU64(&file, binio::Fnv1a64(payload));
  binio::AppendString(&file, key);
  binio::AppendString(&file, payload);
  if (max_bytes_ != 0 && file.size() > max_bytes_) {
    // The entry cannot be demoted at all. Drop any older spill of the key
    // (it is superseded either way) and remember the key as pruned, so
    // lookups report disk-budget pressure instead of "never stored".
    if (lru_.Erase(key).has_value()) RemoveFileLocked(key);
    pruned_.Mark(key);
    pruned_.Bound(kMaxPrunedMarkers);
    WriteManifestLocked();
    return Status::InvalidArgument(
        "spill tier (" + what_ + "): '" + key + "' needs " +
        std::to_string(file.size()) + " bytes on disk, larger than the " +
        "entire spill budget of " + std::to_string(max_bytes_) + " bytes");
  }
  const std::string path = FilePath(key);
  const std::string tmp_path = path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    out.write(file.data(), static_cast<std::streamsize>(file.size()));
    out.close();
    if (out.fail()) {
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return Status::IOError("spill tier (" + what_ + "): cannot write '" +
                             tmp_path + "'");
    }
  }
  std::error_code rename_ec;
  fs::rename(tmp_path, path, rename_ec);
  if (rename_ec) {
    std::error_code cleanup_ec;
    fs::remove(tmp_path, cleanup_ec);
    return Status::IOError("spill tier (" + what_ + "): cannot rename '" +
                           tmp_path + "' into place: " + rename_ec.message());
  }
  lru_.Erase(key);  // overwrite: the rename already replaced the file
  pruned_.Revive(key);
  lru_.Insert(key, Info{meta}, file.size());
  ++stats_.spills;
  PruneLocked();
  WriteManifestLocked();
  return Status::OK();
}

Result<SpillTier::Loaded> SpillTier::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  Info* info = lru_.Touch(key);
  if (info == nullptr) {
    ++stats_.misses;
    if (pruned_.Contains(key)) {
      return Status::Expired("spill tier (" + what_ + "): '" + key +
                             "' was spilled to disk and then pruned by the "
                             "spill byte budget (" +
                             std::to_string(max_bytes_) + " bytes)");
    }
    return Status::NotFound("spill tier (" + what_ + "): no spill file for '" +
                            key + "'");
  }
  const std::string path = FilePath(key);
  std::string file;
  {
    // One sized read, one copy — this is the reload path that replaces a
    // kernel recompute, and it runs under the tier's lock. An unopenable
    // or short-read file yields a buffer the magic/length checks below
    // classify as corrupt.
    std::error_code size_ec;
    const uint64_t file_bytes = fs::file_size(path, size_ec);
    std::ifstream in(path, std::ios::binary);
    if (!size_ec && in) {
      file.resize(file_bytes);
      if (!in.read(file.data(), static_cast<std::streamsize>(file.size()))) {
        file.clear();
      }
    }
  }
  // Re-validate everything before trusting the bytes: magic, the embedded
  // key, and the payload checksum. Any mismatch means bit rot or a torn
  // write — drop the entry with a warning instead of handing corrupt bytes
  // to a codec.
  const auto corrupt = [&](const std::string& why) -> Status {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): dropping corrupt spill file '" << path
                            << "': " << why;
    lru_.Erase(key);
    RemoveFileLocked(key);
    ++stats_.skipped;
    WriteManifestLocked();
    return Status::IOError("spill tier (" + what_ + "): spill file for '" +
                           key + "' is corrupt (" + why + ")");
  };
  if (std::string_view(file).substr(0, kSpillMagic.size()) != kSpillMagic) {
    return corrupt("bad magic");
  }
  binio::Reader reader(std::string_view(file).substr(kSpillMagic.size()));
  Loaded loaded;
  uint64_t checksum = 0;
  std::string stored_key;
  if (!reader.ReadU64(&loaded.meta) || !reader.ReadU64(&checksum) ||
      !reader.ReadString(&stored_key) || !reader.ReadString(&loaded.payload) ||
      !reader.AtEnd()) {
    return corrupt("truncated");
  }
  if (stored_key != key) {
    return corrupt("embedded key '" + stored_key + "' does not match");
  }
  if (binio::Fnv1a64(loaded.payload) != checksum) {
    return corrupt("payload checksum mismatch");
  }
  ++stats_.reloads;
  // Recency moved but the manifest is only rewritten on Put/Erase/prune:
  // a read-heavy workload must not pay a manifest write per reload, and
  // losing recency on crash only costs pruning accuracy, never data.
  return loaded;
}

bool SpillTier::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.Contains(key);
}

std::optional<uint64_t> SpillTier::Meta(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Info* info = lru_.Find(key);
  if (info == nullptr) return std::nullopt;
  return info->meta;
}

bool SpillTier::WasPruned(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return pruned_.Contains(key);
}

void SpillTier::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  pruned_.Revive(key);
  if (!lru_.Erase(key).has_value()) return;
  RemoveFileLocked(key);
  WriteManifestLocked();
}

std::vector<std::string> SpillTier::Keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.Keys();
}

uint64_t SpillTier::MaxMeta() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t max_meta = 0;
  for (const std::string& key : lru_.Keys()) {
    max_meta = std::max(max_meta, lru_.Find(key)->meta);
  }
  return max_meta;
}

SpillTierStats SpillTier::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SpillTierStats snapshot = stats_;
  snapshot.entries = lru_.size();
  snapshot.bytes = lru_.bytes();
  return snapshot;
}

void SpillTier::PruneLocked() {
  while (lru_.OverBudget()) {
    std::optional<ByteBudgetedLru<Info>::Entry> victim = lru_.PopLeastRecent();
    if (!victim.has_value()) break;
    RemoveFileLocked(victim->key);
    pruned_.Mark(victim->key);
    ++stats_.prunes;
  }
  pruned_.Bound(kMaxPrunedMarkers);
}

void SpillTier::WriteManifestLocked() {
  if (!enabled_) return;
  const fs::path manifest_path = fs::path(dir_) / kManifestName;
  const fs::path tmp_path = fs::path(dir_) / "manifest.tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    out << kManifestMagic << "\n";
    // Hottest first — the recovery scan replays this order into the LRU.
    for (const std::string& key : lru_.KeysByRecency()) {
      out << SpillFileName(key) << "\n";
    }
    out.close();
    if (out.fail()) {
      CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                              << "): cannot write manifest in '" << dir_
                              << "'";
      std::error_code ec;
      fs::remove(tmp_path, ec);
      return;
    }
  }
  std::error_code ec;
  fs::rename(tmp_path, manifest_path, ec);
  if (ec) {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): cannot rename manifest into place: "
                            << ec.message();
    fs::remove(tmp_path, ec);
  }
}

void SpillTier::RemoveFileLocked(const std::string& key) {
  std::error_code ec;
  fs::remove(FilePath(key), ec);
  if (ec) {
    CYCLERANK_LOG(kWarning) << "spill tier (" << what_
                            << "): cannot remove spill file for '" << key
                            << "': " << ec.message();
  }
}

std::string SpillTier::FilePath(const std::string& key) const {
  return (fs::path(dir_) / SpillFileName(key)).string();
}

}  // namespace cyclerank
