#include "platform/datastore.h"

#include <memory>
#include <utility>

#include "graph/io.h"

namespace cyclerank {

Status Datastore::PutDataset(const std::string& name, GraphPtr graph) {
  if (name.empty()) {
    return Status::InvalidArgument("datastore: dataset name must not be empty");
  }
  if (!graph) {
    return Status::InvalidArgument("datastore: graph must not be null");
  }
  if (catalog_ != nullptr && catalog_->Info(name).ok()) {
    return Status::AlreadyExists("dataset '" + name +
                                 "' exists in the pre-loaded catalog");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = uploaded_.emplace(name, std::move(graph));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + name + "' already uploaded");
  }
  return Status::OK();
}

Status Datastore::UploadDataset(const std::string& name,
                                const std::string& content) {
  CYCLERANK_ASSIGN_OR_RETURN(Graph graph, ReadGraphFromString(content));
  return PutDataset(name, std::make_shared<Graph>(std::move(graph)));
}

Result<GraphPtr> Datastore::GetDataset(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = uploaded_.find(name);
    if (it != uploaded_.end()) return it->second;
  }
  if (catalog_ != nullptr) return catalog_->Load(name);
  return Status::NotFound("dataset '" + name + "' not found");
}

std::vector<std::string> Datastore::UploadedDatasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(uploaded_.size());
  for (const auto& [name, graph] : uploaded_) out.push_back(name);
  return out;
}

void Datastore::PutResult(TaskResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string id = result.task_id;
  auto [it, inserted] = results_.insert_or_assign(id, std::move(result));
  (void)it;
  // Unlimited mode keeps no retention bookkeeping at all — the FIFO would
  // otherwise grow one id per stored result forever.
  if (max_retained_results_ == 0) return;
  if (!inserted) return;  // retry overwrite: retention slot unchanged
  // A re-stored result revives an evicted id.
  if (evicted_.erase(id) != 0) {
    for (auto fifo_it = evicted_fifo_.begin(); fifo_it != evicted_fifo_.end();
         ++fifo_it) {
      if (*fifo_it == id) {
        evicted_fifo_.erase(fifo_it);
        break;
      }
    }
  }
  retention_fifo_.push_back(id);
  EnforceRetentionLocked();
}

void Datastore::EnforceRetentionLocked() {
  if (max_retained_results_ == 0) return;
  while (results_.size() > max_retained_results_) {
    const std::string oldest = std::move(retention_fifo_.front());
    retention_fifo_.pop_front();
    results_.erase(oldest);
    logs_.erase(oldest);
    if (evicted_.insert(oldest).second) {
      evicted_fifo_.push_back(oldest);
    }
  }
  // The eviction-marker set is FIFO-bounded too (by the same knob), so the
  // datastore's footprint stays O(max_retained_results) forever.
  while (evicted_.size() > max_retained_results_) {
    evicted_.erase(evicted_fifo_.front());
    evicted_fifo_.pop_front();
  }
}

Result<TaskResult> Datastore::GetResult(const std::string& task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(task_id);
  if (it == results_.end()) {
    if (evicted_.count(task_id) != 0) {
      return Status::Expired("result for task '" + task_id +
                             "' was evicted by the retention policy (bound " +
                             std::to_string(max_retained_results_) + ")");
    }
    return Status::NotFound("no result for task '" + task_id + "'");
  }
  return it->second;
}

bool Datastore::HasResult(const std::string& task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.count(task_id) != 0;
}

size_t Datastore::NumStoredResults() const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.size();
}

void Datastore::AppendLog(const std::string& task_id, std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_[task_id].push_back(std::move(line));
}

std::vector<std::string> Datastore::GetLog(const std::string& task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = logs_.find(task_id);
  if (it == logs_.end()) return {};
  return it->second;
}

}  // namespace cyclerank
