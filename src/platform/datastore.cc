#include "platform/datastore.h"

#include <memory>
#include <utility>

#include "common/logging.h"
#include "graph/io.h"
#include "platform/params.h"
#include "platform/result_io.h"

namespace cyclerank {

namespace {

/// One spill tier per payload kind, as `<spill_dir>/<subdir>`; null when
/// spilling is disabled (empty `spill_dir`). Every tier inherits the
/// LSM-style knobs (write-behind buffer bound, on-disk compression) and
/// the failure-handling knobs (retry budget/backoff, breaker probe
/// interval), and talks to the caller's `Env` (null = the real disk).
std::unique_ptr<SpillTier> MakeSpillTier(const PlatformOptions& options,
                                         Env* env, const char* subdir,
                                         size_t max_bytes, const char* what) {
  if (options.spill_dir.empty()) return nullptr;
  SpillTierOptions tier;
  tier.max_bytes = max_bytes;
  tier.write_behind_bytes = options.spill_write_behind_bytes;
  tier.compression = options.spill_compression;
  tier.env = env;
  tier.retry_limit = static_cast<int>(options.spill_retry_limit);
  tier.retry_backoff_ms = options.spill_retry_backoff_ms;
  tier.breaker_probe_ms = options.spill_breaker_probe_ms;
  return std::make_unique<SpillTier>(options.spill_dir + "/" + subdir, tier,
                                     what);
}

}  // namespace

Datastore::Datastore(DatasetCatalog* catalog, const PlatformOptions& options,
                     Env* env)
    : catalog_(catalog),
      dataset_spill_(MakeSpillTier(options, env, "datasets",
                                   options.graph_spill_bytes, "dataset")),
      result_spill_(MakeSpillTier(options, env, "results",
                                  options.result_spill_bytes, "result")),
      // Demoted cache entries share the results' disk budget figure but
      // not their key namespace (fingerprints vs task ids), hence a tier
      // of their own.
      cache_spill_(MakeSpillTier(options, env, "cache",
                                 options.result_spill_bytes, "cached result")),
      graphs_(options.graph_store_bytes, dataset_spill_.get()),
      results_(options.max_retained_results),
      result_cache_(options.result_cache_bytes, cache_spill_.get()) {}

Status Datastore::Flush() {
  // Drain every tier before reporting: a failure in the first must not
  // leave the others' buffers unflushed.
  Status first = Status::OK();
  for (SpillTier* tier :
       {dataset_spill_.get(), result_spill_.get(), cache_spill_.get()}) {
    if (tier == nullptr) continue;
    const Status flushed = tier->Flush();
    if (!flushed.ok() && first.ok()) first = flushed;
  }
  return first;
}

DatastoreSpillStats Datastore::SpillStats() const {
  DatastoreSpillStats stats;
  if (dataset_spill_ != nullptr) stats.datasets = dataset_spill_->stats();
  if (result_spill_ != nullptr) stats.results = result_spill_->stats();
  if (cache_spill_ != nullptr) stats.cache = cache_spill_->stats();
  return stats;
}

void Datastore::PutResult(TaskResult result) {
  // Serialize writers so "evict X" and "erase X's logs" are atomic
  // against a concurrent re-store of X (which would otherwise revive the
  // result between the two steps and lose its logs). Reads — GetResult,
  // GetLog, AppendLog — stay on the stores' own locks.
  MutexLock lock(put_mu_);
  DemoteEvictedResultsLocked(results_.Put(std::move(result)));
}

void Datastore::DemoteEvictedResultsLocked(std::vector<TaskResult> evicted) {
  std::vector<std::string> evicted_ids;
  evicted_ids.reserve(evicted.size());
  for (TaskResult& victim : evicted) {
    evicted_ids.push_back(victim.task_id);
    if (result_spill_ == nullptr) continue;
    // Deferred payload: in write-behind mode the serialization happens on
    // the tier's flush thread, so retention eviction stops paying for it
    // under put_mu_.
    const std::string task_id = victim.task_id;
    const Status spilled =
        result_spill_->Put(task_id, MakeResultSpillPayload(std::move(victim)));
    if (!spilled.ok()) {
      CYCLERANK_LOG(kWarning)
          << "datastore: could not spill evicted result '" << task_id
          << "': " << spilled.ToString() << "; dropping it instead";
    }
  }
  logs_.Erase(evicted_ids);
}

Result<TaskResult> Datastore::GetResult(const std::string& task_id) {
  Result<TaskResult> stored = results_.Get(task_id);
  if (stored.ok() || result_spill_ == nullptr) return stored;
  // Retention evicted the result from memory (kExpired) — or even its
  // marker (kNotFound) — but the disk tier may still hold it.
  Result<SpillTier::Loaded> loaded = result_spill_->Get(task_id);
  if (loaded.ok()) {
    Result<TaskResult> decoded = DeserializeTaskResult(loaded->payload);
    if (decoded.ok()) {
      // Re-admit to the memory tier (a revived result occupies a fresh
      // retention slot; the oldest may be demoted in its place). The logs
      // were dropped at the original eviction and stay dropped.
      MutexLock lock(put_mu_);
      // A concurrent PutResult (the retry-overwrite path) may have stored
      // a fresh result between the memory miss above and this point; the
      // memory tier wins — re-admitting the disk copy would clobber it.
      Result<TaskResult> raced = results_.Get(task_id);
      if (raced.ok()) return raced;
      DemoteEvictedResultsLocked(results_.Put(*decoded));
      return decoded;
    }
    CYCLERANK_LOG(kWarning) << "datastore: dropping undecodable spill of "
                            << "result '" << task_id
                            << "': " << decoded.status().ToString();
    result_spill_->Erase(task_id);
  }
  if (stored.status().code() == StatusCode::kExpired &&
      result_spill_->WasPruned(task_id)) {
    return Status::Expired(
        "result for task '" + task_id +
        "' was evicted by the retention policy, spilled to disk, and then "
        "pruned by the result spill budget (" +
        std::to_string(result_spill_->max_bytes()) +
        " bytes); it must be recomputed");
  }
  return stored;
}

Status Datastore::PutDataset(const std::string& name, GraphPtr graph) {
  if (name.empty()) {
    return Status::InvalidArgument("datastore: dataset name must not be empty");
  }
  if (!graph) {
    return Status::InvalidArgument("datastore: graph must not be null");
  }
  if (catalog_ != nullptr && catalog_->Info(name).ok()) {
    return Status::AlreadyExists("dataset '" + name +
                                 "' exists in the pre-loaded catalog");
  }
  CYCLERANK_RETURN_NOT_OK(graphs_.Put(name, std::move(graph)));
  // The result cache is keyed by dataset *name*; binding the name to new
  // content (a fresh upload, or re-uploading an evicted name) must drop any
  // results computed against the previous binding, or the cache would serve
  // the old graph's rankings for the new one. A no-op for never-seen names.
  (void)result_cache_.ErasePrefix(DatasetFingerprintPrefix(name));
  return Status::OK();
}

Status Datastore::UploadDataset(const std::string& name,
                                const std::string& content) {
  // Admission heuristic before any parse work, on the one figure known
  // without parsing: a request body past the whole graph-store budget is
  // rejected outright rather than buffered and parsed. Deliberately
  // conservative — a verbosely-labeled text can parse to a smaller CSR
  // that would have fit; such a dataset must be uploaded pre-parsed via
  // PutDataset, which admits on the exact MemoryBytes figure.
  const size_t budget = graphs_.max_bytes();
  if (budget != 0 && content.size() > budget) {
    return Status::InvalidArgument(
        "datastore: upload '" + name + "' is " +
        std::to_string(content.size()) +
        " bytes, larger than the graph-store budget of " +
        std::to_string(budget) + " bytes; rejected before parsing");
  }
  CYCLERANK_ASSIGN_OR_RETURN(Graph graph, ReadGraphFromString(content));
  return PutDataset(name, std::make_shared<Graph>(std::move(graph)));
}

Result<GraphPtr> Datastore::GetDataset(const std::string& name) {
  // Uploaded first: PutDataset rejects uploads that would shadow catalog
  // names, but the catalog is runtime-extensible (Register), so a name
  // uploaded *before* a later catalog registration must keep resolving to
  // the upload. Only never-uploaded names fall through; an evicted name
  // answers kExpired, not NotFound — the caller should learn the dataset
  // needs re-uploading, not suspect a typo.
  Result<GraphPtr> uploaded = graphs_.Get(name);
  if (uploaded.ok()) return uploaded;
  if (uploaded.status().code() == StatusCode::kNotFound &&
      catalog_ != nullptr) {
    return catalog_->Load(name);
  }
  return uploaded.status();
}

}  // namespace cyclerank
