#include "platform/datastore.h"

#include <memory>
#include <utility>

#include "graph/io.h"

namespace cyclerank {

Status Datastore::PutDataset(const std::string& name, GraphPtr graph) {
  if (name.empty()) {
    return Status::InvalidArgument("datastore: dataset name must not be empty");
  }
  if (!graph) {
    return Status::InvalidArgument("datastore: graph must not be null");
  }
  if (catalog_ != nullptr && catalog_->Info(name).ok()) {
    return Status::AlreadyExists("dataset '" + name +
                                 "' exists in the pre-loaded catalog");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = uploaded_.emplace(name, std::move(graph));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("dataset '" + name + "' already uploaded");
  }
  return Status::OK();
}

Status Datastore::UploadDataset(const std::string& name,
                                const std::string& content) {
  CYCLERANK_ASSIGN_OR_RETURN(Graph graph, ReadGraphFromString(content));
  return PutDataset(name, std::make_shared<Graph>(std::move(graph)));
}

Result<GraphPtr> Datastore::GetDataset(const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = uploaded_.find(name);
    if (it != uploaded_.end()) return it->second;
  }
  if (catalog_ != nullptr) return catalog_->Load(name);
  return Status::NotFound("dataset '" + name + "' not found");
}

std::vector<std::string> Datastore::UploadedDatasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(uploaded_.size());
  for (const auto& [name, graph] : uploaded_) out.push_back(name);
  return out;
}

void Datastore::PutResult(TaskResult result) {
  std::lock_guard<std::mutex> lock(mu_);
  results_[result.task_id] = std::move(result);
}

Result<TaskResult> Datastore::GetResult(const std::string& task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = results_.find(task_id);
  if (it == results_.end()) {
    return Status::NotFound("no result for task '" + task_id + "'");
  }
  return it->second;
}

bool Datastore::HasResult(const std::string& task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return results_.count(task_id) != 0;
}

void Datastore::AppendLog(const std::string& task_id, std::string line) {
  std::lock_guard<std::mutex> lock(mu_);
  logs_[task_id].push_back(std::move(line));
}

std::vector<std::string> Datastore::GetLog(const std::string& task_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = logs_.find(task_id);
  if (it == logs_.end()) return {};
  return it->second;
}

}  // namespace cyclerank
