#include "platform/datastore.h"

#include <memory>
#include <utility>

#include "graph/io.h"
#include "platform/params.h"

namespace cyclerank {

Status Datastore::PutDataset(const std::string& name, GraphPtr graph) {
  if (name.empty()) {
    return Status::InvalidArgument("datastore: dataset name must not be empty");
  }
  if (!graph) {
    return Status::InvalidArgument("datastore: graph must not be null");
  }
  if (catalog_ != nullptr && catalog_->Info(name).ok()) {
    return Status::AlreadyExists("dataset '" + name +
                                 "' exists in the pre-loaded catalog");
  }
  CYCLERANK_RETURN_NOT_OK(graphs_.Put(name, std::move(graph)));
  // The result cache is keyed by dataset *name*; binding the name to new
  // content (a fresh upload, or re-uploading an evicted name) must drop any
  // results computed against the previous binding, or the cache would serve
  // the old graph's rankings for the new one. A no-op for never-seen names.
  (void)result_cache_.ErasePrefix(DatasetFingerprintPrefix(name));
  return Status::OK();
}

Status Datastore::UploadDataset(const std::string& name,
                                const std::string& content) {
  // Admission heuristic before any parse work, on the one figure known
  // without parsing: a request body past the whole graph-store budget is
  // rejected outright rather than buffered and parsed. Deliberately
  // conservative — a verbosely-labeled text can parse to a smaller CSR
  // that would have fit; such a dataset must be uploaded pre-parsed via
  // PutDataset, which admits on the exact MemoryBytes figure.
  const size_t budget = graphs_.max_bytes();
  if (budget != 0 && content.size() > budget) {
    return Status::InvalidArgument(
        "datastore: upload '" + name + "' is " +
        std::to_string(content.size()) +
        " bytes, larger than the graph-store budget of " +
        std::to_string(budget) + " bytes; rejected before parsing");
  }
  CYCLERANK_ASSIGN_OR_RETURN(Graph graph, ReadGraphFromString(content));
  return PutDataset(name, std::make_shared<Graph>(std::move(graph)));
}

Result<GraphPtr> Datastore::GetDataset(const std::string& name) {
  // Uploaded first: PutDataset rejects uploads that would shadow catalog
  // names, but the catalog is runtime-extensible (Register), so a name
  // uploaded *before* a later catalog registration must keep resolving to
  // the upload. Only never-uploaded names fall through; an evicted name
  // answers kExpired, not NotFound — the caller should learn the dataset
  // needs re-uploading, not suspect a typo.
  Result<GraphPtr> uploaded = graphs_.Get(name);
  if (uploaded.ok()) return uploaded;
  if (uploaded.status().code() == StatusCode::kNotFound &&
      catalog_ != nullptr) {
    return catalog_->Load(name);
  }
  return uploaded.status();
}

}  // namespace cyclerank
