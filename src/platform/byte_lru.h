#ifndef CYCLERANK_PLATFORM_BYTE_LRU_H_
#define CYCLERANK_PLATFORM_BYTE_LRU_H_

#include <cstddef>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cyclerank {

/// The byte-budgeted-LRU core that `GraphStore`, `ResultCache`, and the
/// disk `SpillTier` all need: one recency list, one key index, and byte
/// accounting, kept consistent behind a small primitive API.
///
/// Deliberately policy-free — the owning store decides what a duplicate
/// key means (`GraphStore` rejects, `ResultCache` overwrites), when to
/// stop evicting (`GraphStore` never evicts its newest entry, the cache
/// evicts to empty), and what eviction *does* (drop, demote to disk). The
/// core only guarantees the three structures never drift apart. A
/// `max_bytes` of 0 means unbounded (`OverBudget()` is then always false).
///
/// Not thread-safe: each owning store guards its instance with its own
/// mutex, exactly as the hand-rolled versions did — the owner declares
/// its `ByteBudgetedLru` field `CYR_GUARDED_BY` that mutex, so Clang's
/// thread-safety analysis proves every access happens under it.
template <typename Value>
class ByteBudgetedLru {
 public:
  struct Entry {
    std::string key;
    Value value;
    size_t bytes = 0;
  };

  explicit ByteBudgetedLru(size_t max_bytes = 0) : max_bytes_(max_bytes) {}

  ByteBudgetedLru(const ByteBudgetedLru&) = delete;
  ByteBudgetedLru& operator=(const ByteBudgetedLru&) = delete;

  bool Contains(const std::string& key) const {
    return index_.count(key) != 0;
  }

  /// The value of `key` without touching recency (metadata peeks), or
  /// nullptr when absent.
  const Value* Find(const std::string& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  /// The value of `key`, bumped to most-recently-used; nullptr when absent.
  Value* Touch(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->value;
  }

  /// Inserts `key` as the most-recently-used entry. The key must not be
  /// present (duplicate policy is the caller's; use `Erase` first to
  /// overwrite).
  void Insert(const std::string& key, Value value, size_t bytes) {
    lru_.push_front(Entry{key, std::move(value), bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
  }

  /// Re-states the byte charge of `key` (recency untouched) — for entries
  /// whose accounted footprint grows after insertion, e.g. a dataset slot
  /// that lazily builds a sharded view next to its graph. Returns false
  /// when absent. The caller re-checks the budget afterwards.
  bool Recharge(const std::string& key, size_t bytes) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    bytes_ -= it->second->bytes;
    it->second->bytes = bytes;
    bytes_ += bytes;
    return true;
  }

  /// Removes and returns `key`'s entry; nullopt when absent.
  std::optional<Entry> Erase(const std::string& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    Entry entry = std::move(*it->second);
    bytes_ -= entry.bytes;
    lru_.erase(it->second);
    index_.erase(it);
    return entry;
  }

  /// Removes and returns the least-recently-used entry; nullopt when empty.
  std::optional<Entry> PopLeastRecent() {
    if (lru_.empty()) return std::nullopt;
    Entry entry = std::move(lru_.back());
    bytes_ -= entry.bytes;
    index_.erase(entry.key);
    lru_.pop_back();
    return entry;
  }

  /// Removes every entry whose key starts with `prefix`; returns them.
  std::vector<Entry> ErasePrefix(const std::string& prefix) {
    std::vector<Entry> erased;
    // index_ is ordered, so the matching keys form one contiguous range.
    for (auto it = index_.lower_bound(prefix);
         it != index_.end() &&
         it->first.compare(0, prefix.size(), prefix) == 0;
         it = index_.erase(it)) {
      bytes_ -= it->second->bytes;
      erased.push_back(std::move(*it->second));
      lru_.erase(it->second);
    }
    return erased;
  }

  void Clear() {
    lru_.clear();
    index_.clear();
    bytes_ = 0;
  }

  /// All keys, sorted ascending.
  std::vector<std::string> Keys() const {
    std::vector<std::string> out;
    out.reserve(index_.size());
    for (const auto& [key, entry] : index_) out.push_back(key);
    return out;
  }

  /// All keys in recency order, most recently used first (the spill tier
  /// persists this order in its manifest).
  std::vector<std::string> KeysByRecency() const {
    std::vector<std::string> out;
    out.reserve(lru_.size());
    for (const Entry& entry : lru_) out.push_back(entry.key);
    return out;
  }

  /// True while the accounted bytes exceed a non-zero budget.
  bool OverBudget() const { return max_bytes_ != 0 && bytes_ > max_bytes_; }

  size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }
  size_t bytes() const { return bytes_; }
  size_t max_bytes() const { return max_bytes_; }

 private:
  const size_t max_bytes_;  // 0 = unbounded
  std::list<Entry> lru_;    ///< front = most recently used
  std::map<std::string, typename std::list<Entry>::iterator> index_;
  size_t bytes_ = 0;
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_BYTE_LRU_H_
