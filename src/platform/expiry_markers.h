#ifndef CYCLERANK_PLATFORM_EXPIRY_MARKERS_H_
#define CYCLERANK_PLATFORM_EXPIRY_MARKERS_H_

#include <cstddef>
#include <deque>
#include <set>
#include <string>

namespace cyclerank {

/// Bookkeeping for names/ids that "existed but were evicted by retention":
/// a set for lookup (drives `kExpired` answers) plus a FIFO that bounds the
/// set itself, so the markers cannot outgrow the store they describe.
/// Shared by `GraphStore` and `ResultStore`. Not thread-safe — each store
/// guards its markers with its own mutex.
class ExpiryMarkers {
 public:
  /// Marks `key` as evicted (idempotent).
  void Mark(const std::string& key) {
    if (marked_.insert(key).second) fifo_.push_back(key);
  }

  /// True while `key`'s eviction is still remembered.
  bool Contains(const std::string& key) const {
    return marked_.count(key) != 0;
  }

  /// Forgets `key`'s eviction (a re-stored key is live again, not expired).
  void Revive(const std::string& key) {
    if (marked_.erase(key) == 0) return;
    for (auto it = fifo_.begin(); it != fifo_.end(); ++it) {
      if (*it == key) {
        fifo_.erase(it);
        break;
      }
    }
  }

  /// Drops the oldest markers until at most `max_markers` remain; forgotten
  /// keys answer `kNotFound` again instead of `kExpired`.
  void Bound(size_t max_markers) {
    while (marked_.size() > max_markers) {
      marked_.erase(fifo_.front());
      fifo_.pop_front();
    }
  }

 private:
  std::set<std::string> marked_;
  std::deque<std::string> fifo_;  ///< eviction order of marked_
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_EXPIRY_MARKERS_H_
