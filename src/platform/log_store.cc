#include "platform/log_store.h"

#include <utility>

#include "common/mutex.h"

namespace cyclerank {

void LogStore::Append(const std::string& task_id, std::string line) {
  MutexLock lock(mu_);
  logs_[task_id].push_back(std::move(line));
}

std::vector<std::string> LogStore::Get(const std::string& task_id) const {
  MutexLock lock(mu_);
  auto it = logs_.find(task_id);
  if (it == logs_.end()) return {};
  return it->second;
}

void LogStore::Erase(const std::vector<std::string>& task_ids) {
  if (task_ids.empty()) return;
  MutexLock lock(mu_);
  for (const std::string& task_id : task_ids) logs_.erase(task_id);
}

}  // namespace cyclerank
