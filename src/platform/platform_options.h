#ifndef CYCLERANK_PLATFORM_PLATFORM_OPTIONS_H_
#define CYCLERANK_PLATFORM_PLATFORM_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "platform/result_cache.h"

namespace cyclerank {

/// Every deployment knob of the platform stack in one struct, threaded
/// gateway → datastore → scheduler → executor. A deployment configures the
/// whole stack from one `key=value` string (`FromString`) instead of a
/// trail of loose constructor arguments:
///
/// ```
///   auto options = PlatformOptions::FromString(
///       "graph_store_bytes=256m, max_retained_results=10000, "
///       "num_workers=8").value();
///   Datastore store(&catalog, options);
///   ApiGateway gateway(&store, &registry, options);
/// ```
///
/// All knobs have production-safe defaults; `0` consistently means "no
/// bound / auto" (except `result_cache_bytes`, where 0 disables the cache —
/// in-flight single-flight dedup stays active either way).
struct PlatformOptions {
  /// Byte budget for uploaded datasets (`GraphStore`). Uploading past the
  /// budget evicts the least-recently-queried dataset (its name then
  /// answers `kExpired`); a single graph larger than the whole budget is
  /// rejected up front with a byte-stating error. Eviction never interrupts
  /// a running task: executors pin the `GraphPtr` snapshot for the task's
  /// whole run. 0 = unbounded (the historical behavior).
  size_t graph_store_bytes = 0;

  /// Byte budget of the completed-result LRU cache (`ResultCache`).
  /// 0 disables caching.
  size_t result_cache_bytes = ResultCache::kDefaultMaxBytes;

  /// Bound on stored per-task results; past it the oldest results (and
  /// their logs) are evicted FIFO and answer `kExpired`. 0 = unlimited.
  size_t max_retained_results = 0;

  /// Concurrently running tasks in the `Scheduler`. 0 = one per hardware
  /// thread (at least 1).
  size_t num_workers = 0;

  /// Kernel thread budget applied to tasks that carry no `threads=`
  /// parameter of their own (an explicit `threads=` always wins).
  /// 0 = every worker of the shared compute pool, the kernel default.
  /// Purely an execution knob: kernels are bit-identical at any count.
  uint32_t default_threads = 0;

  /// Shard count applied to tasks that carry no `shards=` parameter of
  /// their own (an explicit `shards=` always wins). 0 or 1 = monolithic
  /// execution, today's behavior. With an effective count > 1 the executor
  /// fetches (and the graph store caches) a `ShardedGraph` view next to
  /// the dataset and kernels stream shard-local CSR rows. Purely an
  /// execution knob, like `default_threads`: kernels are bit-identical at
  /// any shard count, so `shards=` never enters task fingerprints.
  uint32_t num_shards = 0;

  /// Seed of the gateway's comparison-id generator. Non-zero makes ids
  /// deterministic (tests); 0 = random ids.
  uint64_t uuid_seed = 0;

  /// Admission limit on tasks per `SubmitQuerySet` call; oversized query
  /// sets are rejected synchronously with `kInvalidArgument`. 0 = unlimited.
  size_t max_tasks_per_submission = 0;

  /// Root directory of the disk spill tier. When non-empty, datasets and
  /// results evicted by the byte budgets above are *demoted* to
  /// `<spill_dir>/datasets` and `<spill_dir>/results` instead of
  /// destroyed, transparently reloaded on the next lookup, and recovered
  /// after a process restart. Empty (the default) keeps the historical
  /// drop-on-evict behavior. The path must not contain the option
  /// grammar's separators (`,`, `;`, `=`) if it is to round-trip through
  /// `FromString`.
  std::string spill_dir;

  /// Byte budget of the dataset spill tier (on-disk file bytes); past it
  /// the least-recently-used spilled datasets are pruned — only then does
  /// an evicted name truly expire. 0 = unbounded disk use.
  size_t graph_spill_bytes = 0;

  /// Byte budget of the result spill tier; same semantics.
  size_t result_spill_bytes = 0;

  /// Byte bound of each spill tier's in-memory write-behind buffer. With
  /// a non-zero bound, demotion *enqueues* the victim and returns — a
  /// background flush thread serializes, compresses, and renames to disk
  /// off the store locks, and reads hit the buffer before disk so an
  /// entry is never invisible. Past the bound demotion blocks until the
  /// flusher catches up (backpressure). 0 = synchronous demotion (the
  /// PR-5 behavior: serialize + write inline on the evicting thread).
  size_t spill_write_behind_bytes = 32u << 20;  // 32 MiB

  /// Compress spilled payloads on disk (block-LZ, checksum-then-compress;
  /// see common/binary_io.h). CSR arrays and score vectors compress well,
  /// multiplying the effective disk budgets above. Files written by
  /// either setting — including pre-compression PR-5 files — always load.
  bool spill_compression = true;

  /// Retries after a failed spill disk operation (write or read) before
  /// the failure counts against the tier's circuit breaker. Retry delays
  /// are deterministic bounded exponential backoff starting at
  /// `spill_retry_backoff_ms`. 0 = fail on the first error.
  size_t spill_retry_limit = 3;

  /// Delay before the first spill retry, doubled per retry, capped at
  /// 100 ms. 0 = retry immediately (tests).
  uint64_t spill_retry_backoff_ms = 1;

  /// With the circuit breaker open (a spill disk operation failed even
  /// after retries), how long the tier fast-fails disk work before
  /// admitting a single probe operation to test whether the disk healed.
  /// A successful probe closes the breaker. 0 = probe on the very next
  /// operation.
  uint64_t spill_breaker_probe_ms = 1000;

  /// Bound on tasks waiting for a scheduler worker. A submission that
  /// would queue past the bound is rejected synchronously with
  /// `kUnavailable` — fast-fail overload control instead of an unbounded
  /// backlog. Coalesced duplicates (single-flight followers) and cache
  /// hits do not occupy queue slots. 0 = unbounded (the historical
  /// behavior).
  size_t admission_queue_limit = 0;

  /// Deadline applied to tasks that carry no `deadline_ms=` parameter of
  /// their own (an explicit parameter always wins). A task whose deadline
  /// passes while it waits in the queue fast-fails `kDeadlineExceeded`
  /// without touching a kernel. Purely an execution knob — like `threads`
  /// it is excluded from task fingerprints. 0 = no deadline.
  uint64_t default_deadline_ms = 0;

  /// TCP port the network server (`net::NetServer` / `cyclerankd`) binds.
  /// 0 = pick an ephemeral port (tests; the bound port is reported by
  /// `NetServer::port()`). The `cyclerankd` daemon substitutes its default
  /// port 7433 when launched without an options string.
  uint16_t listen_port = 0;

  /// Bound on concurrently connected network clients. A connection past
  /// the bound is answered with a `kUnavailable` ERROR frame and closed —
  /// the same fast-fail overload stance as `admission_queue_limit`.
  /// 0 = unbounded.
  size_t max_connections = 64;

  /// Upper bound on a single CYRQ1 frame's payload, enforced while
  /// *decoding* the length prefix — an absurd declared length is rejected
  /// before any allocation, so a hostile or corrupt peer cannot balloon
  /// server memory. Oversized frames are a protocol error (the connection
  /// is closed). 0 = unbounded (trusted peers only).
  size_t max_frame_bytes = 64u << 20;  // 64 MiB

  /// Worker threads the network server uses for slow request handlers
  /// (dataset upload/parse, submission, result marshalling). The socket
  /// event loop itself is always a single dedicated thread; these workers
  /// keep a large upload from stalling every other connection. Fast
  /// requests (status, cancel, subscribe) run inline on the loop.
  size_t io_threads = 2;

  /// Options with only the scheduler knobs set — the common shape of the
  /// examples, CLI, bench drivers, and test harnesses.
  static PlatformOptions WithWorkers(size_t workers, uint64_t uuid_seed = 0) {
    PlatformOptions options;
    options.num_workers = workers;
    options.uuid_seed = uuid_seed;
    return options;
  }

  /// Parses "key=value" pairs separated by commas or semicolons — the same
  /// grammar as task parameters (`ParamMap::Parse`): whitespace-tolerant,
  /// case-insensitive keys, duplicate keys rejected. Unknown keys are
  /// rejected (catches deployment-config typos). Byte-sized knobs accept
  /// binary suffixes: `64m` / `64mb` / `64mib` = 64 MiB (likewise
  /// `k`/`kib`, `g`/`gib`). An empty string yields the defaults.
  static Result<PlatformOptions> FromString(std::string_view text);

  /// Canonical "key=value, key=value" rendering (sorted keys, plain byte
  /// counts). `FromString(options.ToString()) == options` for any options.
  std::string ToString() const;

  /// `num_workers` with 0 resolved to the hardware thread count (min 1).
  size_t ResolvedNumWorkers() const;

  friend bool operator==(const PlatformOptions& a, const PlatformOptions& b) {
    return a.graph_store_bytes == b.graph_store_bytes &&
           a.result_cache_bytes == b.result_cache_bytes &&
           a.max_retained_results == b.max_retained_results &&
           a.num_workers == b.num_workers &&
           a.default_threads == b.default_threads &&
           a.num_shards == b.num_shards &&
           a.uuid_seed == b.uuid_seed &&
           a.max_tasks_per_submission == b.max_tasks_per_submission &&
           a.spill_dir == b.spill_dir &&
           a.graph_spill_bytes == b.graph_spill_bytes &&
           a.result_spill_bytes == b.result_spill_bytes &&
           a.spill_write_behind_bytes == b.spill_write_behind_bytes &&
           a.spill_compression == b.spill_compression &&
           a.spill_retry_limit == b.spill_retry_limit &&
           a.spill_retry_backoff_ms == b.spill_retry_backoff_ms &&
           a.spill_breaker_probe_ms == b.spill_breaker_probe_ms &&
           a.admission_queue_limit == b.admission_queue_limit &&
           a.default_deadline_ms == b.default_deadline_ms &&
           a.listen_port == b.listen_port &&
           a.max_connections == b.max_connections &&
           a.max_frame_bytes == b.max_frame_bytes &&
           a.io_threads == b.io_threads;
  }
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_PLATFORM_OPTIONS_H_
