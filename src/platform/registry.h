#ifndef CYCLERANK_PLATFORM_REGISTRY_H_
#define CYCLERANK_PLATFORM_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/lock_rank.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "core/algorithm.h"

namespace cyclerank {

/// Name-indexed registry of relevance algorithms.
///
/// This is the mechanism behind the demo's extensibility claim: "Our demo
/// design enables the possibility of adding new algorithms" (§III, §V).
/// The built-in seven (plus the two PPR approximations) are registered by
/// `Default()`; embedding applications call `Register` with their own
/// `RelevanceAlgorithm` implementations.
///
/// Thread-safe; lookups hand out shared pointers so executors can hold an
/// algorithm while the registry evolves.
class AlgorithmRegistry {
 public:
  AlgorithmRegistry() = default;
  AlgorithmRegistry(const AlgorithmRegistry&) = delete;
  AlgorithmRegistry& operator=(const AlgorithmRegistry&) = delete;

  /// Registry preloaded with all built-in algorithms.
  static AlgorithmRegistry& Default();

  /// Registers `algorithm` under its own `name()`.
  /// Fails with AlreadyExists on duplicates.
  Status Register(std::shared_ptr<const RelevanceAlgorithm> algorithm)
      CYR_EXCLUDES(mu_);

  /// Looks up an algorithm by registry name (also accepts the aliases
  /// understood by `AlgorithmKindFromString`, e.g. "ppr").
  Result<std::shared_ptr<const RelevanceAlgorithm>> Find(
      const std::string& name) const CYR_EXCLUDES(mu_);

  /// Registered names, sorted.
  std::vector<std::string> Names() const CYR_EXCLUDES(mu_);

  size_t size() const CYR_EXCLUDES(mu_);

 private:
  mutable Mutex mu_{lock_rank::kRegistryMu, "AlgorithmRegistry::mu_"};
  std::map<std::string, std::shared_ptr<const RelevanceAlgorithm>> algorithms_
      CYR_GUARDED_BY(mu_);
};

}  // namespace cyclerank

#endif  // CYCLERANK_PLATFORM_REGISTRY_H_
