// End-to-end integration tests: the full demo flow of paper §III —
// upload / pick a dataset, build a query set, submit through the gateway,
// poll status, fetch results — and cross-checks against direct computation.

#include <gtest/gtest.h>

#include "core/cyclerank.h"
#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/catalog.h"
#include "datasets/corpus.h"
#include "eval/comparison.h"
#include "eval/rank_metrics.h"
#include "graph/io.h"
#include "platform/gateway.h"
#include "platform/storage_test_util.h"

namespace cyclerank {
namespace {

TEST(IntegrationTest, PaperFlowOnEnwikiMini) {
  // 1) Datastore with the pre-loaded catalog.
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4, 42));

  // 2) Build the query set of the paper's Fig. 2: Cyclerank + PageRank +
  //    Personalized PageRank on the same snapshot.
  TaskBuilder builder;
  ASSERT_TRUE(builder
                  .Add("enwiki-mini-2018", "cyclerank",
                       "source=Freddie Mercury, k=3, sigma=exp")
                  .ok());
  ASSERT_TRUE(builder.Add("enwiki-mini-2018", "pagerank", "alpha=0.85").ok());
  ASSERT_TRUE(builder
                  .Add("enwiki-mini-2018", "pers_pagerank",
                       "source=Freddie Mercury, alpha=0.3")
                  .ok());

  // 3) Submit; the id is the permalink.
  const std::string id = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 60.0));

  // 4) All tasks completed; results joined by the gateway.
  const ComparisonStatus status = gateway.GetStatus(id).value();
  EXPECT_EQ(status.completed, 3u);
  const auto results = gateway.GetResults(id).value();
  ASSERT_EQ(results.size(), 3u);

  // 5) The CycleRank task reproduces Table I's CR column.
  const GraphPtr g = store.GetDataset("enwiki-mini-2018").value();
  const RankedList& cr = results[0].ranking;
  ASSERT_GE(cr.size(), 5u);
  EXPECT_EQ(g->NodeName(cr[0].node), "Freddie Mercury");
  EXPECT_EQ(g->NodeName(cr[1].node), "Queen (band)");
  EXPECT_EQ(g->NodeName(cr[2].node), "Brian May");

  // 6) Gateway results equal direct library calls (same code path the
  //    executors use, asserted end to end).
  CycleRankOptions options;
  options.max_cycle_length = 3;
  const auto direct =
      ComputeCycleRank(*g, g->FindNode("Freddie Mercury"), options).value();
  EXPECT_EQ(cr, ScoresToRankedList(direct.scores));
}

TEST(IntegrationTest, UploadedDatasetFlow) {
  // User uploads a small co-purchase graph in CSV and runs two algorithms.
  Datastore store(nullptr);
  ASSERT_TRUE(store
                  .UploadDataset("user-graph",
                                 "book_a,book_b\n"
                                 "book_b,book_a\n"
                                 "book_b,book_c\n"
                                 "book_c,book_a\n"
                                 "book_a,bestseller\n"
                                 "book_b,bestseller\n"
                                 "book_c,bestseller\n")
                  .ok());
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(2, 11));
  TaskBuilder builder;
  ASSERT_TRUE(builder.Add("user-graph", "cyclerank", "source=book_a, k=3").ok());
  ASSERT_TRUE(
      builder.Add("user-graph", "pers_pagerank", "source=book_a").ok());
  const std::string id = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 30.0));
  const auto results = gateway.GetResults(id).value();
  ASSERT_EQ(results.size(), 2u);

  const GraphPtr g = store.GetDataset("user-graph").value();
  const NodeId bestseller = g->FindNode("bestseller");
  // The hub pathology end to end: PPR ranks the bestseller, CycleRank
  // drops it.
  bool in_cr = false, in_ppr = false;
  for (const auto& entry : results[0].ranking) {
    if (entry.node == bestseller) in_cr = true;
  }
  for (const auto& entry : results[1].ranking) {
    if (entry.node == bestseller) in_ppr = true;
  }
  EXPECT_FALSE(in_cr);
  EXPECT_TRUE(in_ppr);
}

TEST(IntegrationTest, AlgorithmComparisonUseCase) {
  // §IV-D "algorithm comparison": run all seven demo algorithms on one
  // dataset and compare the rankings quantitatively.
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4, 5));
  TaskBuilder builder;
  for (const char* algorithm :
       {"pagerank", "cheirank", "2drank", "pers_pagerank", "pers_cheirank",
        "pers_2drank", "cyclerank"}) {
    ASSERT_TRUE(
        builder.Add("fakenews-en", algorithm, "source=Fake news, k=3").ok());
  }
  const std::string id = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 60.0));
  const auto results = gateway.GetResults(id).value();
  ASSERT_EQ(results.size(), 7u);

  std::vector<ComparisonColumn> columns;
  for (const TaskResult& result : results) {
    ASSERT_TRUE(result.status.ok()) << result.spec.ToString();
    columns.push_back({result.spec.algorithm, result.ranking});
  }
  const GraphPtr g = store.GetDataset("fakenews-en").value();
  const std::string table = RenderComparisonTable(*g, columns);
  EXPECT_NE(table.find("cyclerank"), std::string::npos);
  const auto pairs = ComparePairwise(columns, 5);
  EXPECT_EQ(pairs.size(), 7u * 6u / 2u);
  for (const auto& pair : pairs) {
    EXPECT_GE(pair.jaccard_top_k, 0.0);
    EXPECT_LE(pair.jaccard_top_k, 1.0);
  }
}

TEST(IntegrationTest, DatasetComparisonUseCase) {
  // §IV-D "dataset comparison": same algorithm + reference across the six
  // language editions (Table III's experiment through the platform).
  Datastore store;
  ApiGateway gateway(&store, &AlgorithmRegistry::Default(),
      PlatformOptions::WithWorkers(4, 6));
  TaskBuilder builder;
  for (const std::string& lang : FakeNewsLanguages()) {
    const std::string title = FakeNewsTitle(lang).value();
    ASSERT_TRUE(builder
                    .Add("fakenews-" + lang, "cyclerank",
                         "source=" + title + ", k=3, sigma=exp")
                    .ok());
  }
  const std::string id = gateway.SubmitQuerySet(builder.Build()).value();
  ASSERT_TRUE(*gateway.WaitForCompletion(id, 60.0));
  const ComparisonStatus status = gateway.GetStatus(id).value();
  EXPECT_EQ(status.completed, 6u);

  const auto results = gateway.GetResults(id).value();
  // nl has 4 non-reference results + the reference itself = 5 entries;
  // pl has 3 + 1 = 4; every other edition at least 5 + 1.
  const GraphPtr nl = store.GetDataset("fakenews-nl").value();
  for (const TaskResult& result : results) {
    ASSERT_TRUE(result.status.ok());
    if (result.spec.dataset == "fakenews-nl") {
      EXPECT_EQ(result.ranking.size(), 5u);
    }
    if (result.spec.dataset == "fakenews-pl") {
      EXPECT_EQ(result.ranking.size(), 4u);
    }
  }
  (void)nl;
}

TEST(IntegrationTest, FormatConversionRoundTripThroughDatastore) {
  // Load a catalog dataset, serialize to every format, re-upload, and
  // verify the algorithms see identical structure.
  Datastore store;
  const GraphPtr original = store.GetDataset("fakenews-de").value();
  for (GraphFormat format :
       {GraphFormat::kEdgeList, GraphFormat::kPajek, GraphFormat::kAsd}) {
    const std::string text = WriteGraphToString(*original, format).value();
    const std::string name =
        "roundtrip-" + std::string(GraphFormatToString(format));
    ASSERT_TRUE(store.UploadDataset(name, text).ok());
    const GraphPtr loaded = store.GetDataset(name).value();
    EXPECT_EQ(loaded->num_nodes(), original->num_nodes());
    EXPECT_EQ(loaded->num_edges(), original->num_edges());
    // PageRank is structure-determined. The edgelist round trip may
    // renumber nodes (ids follow first appearance in the dump), so match
    // scores through labels where available, by id otherwise (ASD).
    const auto pr_a = ComputePageRank(*original).value();
    const auto pr_b = ComputePageRank(*loaded).value();
    for (NodeId u = 0; u < original->num_nodes(); ++u) {
      const NodeId v = loaded->labels() != nullptr
                           ? loaded->FindNode(original->NodeName(u))
                           : u;
      ASSERT_NE(v, kInvalidNode) << original->NodeName(u);
      EXPECT_NEAR(pr_a.scores[u], pr_b.scores[v], 1e-12);
    }
  }
}

}  // namespace
}  // namespace cyclerank
