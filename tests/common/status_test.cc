#include "common/status.h"

#include <sstream>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::IOError("f"), StatusCode::kIOError},
      {Status::ParseError("g"), StatusCode::kParseError},
      {Status::Unimplemented("h"), StatusCode::kUnimplemented},
      {Status::Cancelled("i"), StatusCode::kCancelled},
      {Status::Internal("j"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("dataset 'x' missing");
  EXPECT_EQ(s.ToString(), "NotFound: dataset 'x' missing");
}

TEST(StatusTest, StreamInsertion) {
  std::ostringstream os;
  os << Status::IOError("disk on fire");
  EXPECT_EQ(os.str(), "IOError: disk on fire");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

Status FailIfNegative(int x) {
  CYCLERANK_RETURN_NOT_OK(x < 0 ? Status::InvalidArgument("negative")
                                : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  EXPECT_TRUE(FailIfNegative(1).ok());
  const Status s = FailIfNegative(-1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cyclerank
