#include "common/backoff.h"

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(BackoffTest, DoublesFromInitialAndExhausts) {
  ExponentialBackoff backoff({/*initial_ms=*/2, /*cap_ms=*/100,
                              /*max_retries=*/4});
  EXPECT_EQ(backoff.NextDelayMs(), 2u);
  EXPECT_EQ(backoff.NextDelayMs(), 4u);
  EXPECT_EQ(backoff.NextDelayMs(), 8u);
  EXPECT_EQ(backoff.NextDelayMs(), 16u);
  EXPECT_EQ(backoff.NextDelayMs(), std::nullopt);
  EXPECT_EQ(backoff.retries_done(), 4);
}

TEST(BackoffTest, CapBoundsEveryDelay) {
  ExponentialBackoff backoff({/*initial_ms=*/60, /*cap_ms=*/100,
                              /*max_retries=*/3});
  EXPECT_EQ(backoff.NextDelayMs(), 60u);
  EXPECT_EQ(backoff.NextDelayMs(), 100u);  // 120 capped
  EXPECT_EQ(backoff.NextDelayMs(), 100u);
  EXPECT_EQ(backoff.NextDelayMs(), std::nullopt);
}

TEST(BackoffTest, ZeroInitialMeansImmediateRetries) {
  ExponentialBackoff backoff({/*initial_ms=*/0, /*cap_ms=*/100,
                              /*max_retries=*/2});
  EXPECT_EQ(backoff.NextDelayMs(), 0u);
  EXPECT_EQ(backoff.NextDelayMs(), 0u);
  EXPECT_EQ(backoff.NextDelayMs(), std::nullopt);
}

TEST(BackoffTest, ZeroRetriesExhaustsImmediately) {
  ExponentialBackoff backoff({/*initial_ms=*/1, /*cap_ms=*/100,
                              /*max_retries=*/0});
  EXPECT_EQ(backoff.NextDelayMs(), std::nullopt);
  EXPECT_EQ(backoff.retries_done(), 0);
}

TEST(BackoffTest, HugeRetryBudgetDoesNotOverflowTheShift) {
  // 1 << 62 would overflow past retry 62; the shift is clamped and the
  // cap bounds the result regardless.
  ExponentialBackoff backoff({/*initial_ms=*/1, /*cap_ms=*/100,
                              /*max_retries=*/200});
  for (int i = 0; i < 200; ++i) {
    const std::optional<uint64_t> delay = backoff.NextDelayMs();
    ASSERT_TRUE(delay.has_value());
    EXPECT_LE(*delay, 100u);
  }
  EXPECT_EQ(backoff.NextDelayMs(), std::nullopt);
}

TEST(BackoffTest, SequencesAreDeterministic) {
  ExponentialBackoff a({1, 100, 5});
  ExponentialBackoff b({1, 100, 5});
  for (int i = 0; i < 6; ++i) EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs());
}

}  // namespace
}  // namespace cyclerank
