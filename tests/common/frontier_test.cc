#include "common/frontier.h"

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

/// A tiny synthetic expansion: node u proposes u+1 and u+2 (mod n) as
/// candidates and sends them a delta of 1.0 / (u+1).
struct SyntheticTraversal {
  explicit SyntheticTraversal(uint32_t node_count) : n(node_count) {}

  FrontierEngine::Callbacks Hook(FrontierEngine* engine, uint32_t max_rounds) {
    FrontierEngine::Callbacks callbacks;
    callbacks.expand = [this](std::span<const uint32_t> chunk, uint32_t,
                              FrontierEngine::Emitter& out) {
      for (uint32_t u : chunk) {
        for (uint32_t step : {1u, 2u}) {
          const uint32_t v = (u + step) % n;
          out.Candidate(v);
          out.Delta(v, 1.0 / (u + 1.0));
        }
      }
    };
    callbacks.candidates = [this, engine](std::span<const uint32_t> batch) {
      for (uint32_t v : batch) {
        candidate_trace.push_back(v);
        if (!visited.count(v)) {
          visited.insert(v);
          admission_trace.push_back(v);
          engine->Next(v);
        }
      }
    };
    callbacks.deltas =
        [this](std::span<const FrontierEngine::DeltaGroup> groups) {
          FrontierEngine::ForEachDelta(groups, [this](uint32_t v, double x) {
            delta_trace.emplace_back(v, x);
            sums[v] += x;
          });
        };
    callbacks.round_done = [max_rounds](uint32_t round) {
      return round + 1 < max_rounds;
    };
    return callbacks;
  }

  const uint32_t n;
  std::set<uint32_t> visited;
  std::vector<uint32_t> candidate_trace;
  std::vector<uint32_t> admission_trace;  ///< first-seen candidates, in order
  std::vector<std::pair<uint32_t, double>> delta_trace;
  std::map<uint32_t, double> sums;
};

FrontierEngine::Options WithThreads(uint32_t threads,
                                    uint64_t chunk_weight =
                                        FrontierEngine::kDefaultChunkWeight) {
  FrontierEngine::Options options;
  options.num_threads = threads;
  options.chunk_weight = chunk_weight;
  return options;
}

TEST(FrontierEngineTest, MergeTraceIdenticalAcrossThreadCounts) {
  // The candidate and delta callback sequences — not just the final state —
  // must be the same at every thread count. Use a tiny chunk weight so
  // every round splits into many chunks.
  SyntheticTraversal base(101);
  {
    FrontierEngine engine(101, WithThreads(1, /*chunk_weight=*/4));
    engine.Seed(0);
    base.visited.insert(0);
    engine.Run(base.Hook(&engine, 30));
  }
  EXPECT_FALSE(base.delta_trace.empty());
  for (uint32_t threads : {2u, 4u, 8u}) {
    SyntheticTraversal other(101);
    FrontierEngine engine(101, WithThreads(threads, /*chunk_weight=*/4));
    engine.Seed(0);
    other.visited.insert(0);
    engine.Run(other.Hook(&engine, 30));
    EXPECT_EQ(base.candidate_trace, other.candidate_trace)
        << "threads=" << threads;
    EXPECT_EQ(base.delta_trace, other.delta_trace) << "threads=" << threads;
    EXPECT_EQ(base.sums, other.sums);
  }
}

TEST(FrontierEngineTest, CandidatesDeduplicatedPerChunkNotPerRound) {
  // Nodes 0 and 10 both propose 20. With one chunk the emitter dedups;
  // with forced tiny chunks the two proposals arrive from distinct chunks
  // and the candidate callback must see both (merge-side dedup is the
  // caller's job).
  auto run = [](uint64_t chunk_weight) {
    FrontierEngine engine(32, WithThreads(1, chunk_weight));
    engine.Seed(0);
    engine.Seed(10);
    std::vector<uint32_t> seen;
    FrontierEngine::Callbacks callbacks;
    callbacks.expand = [](std::span<const uint32_t> chunk, uint32_t,
                          FrontierEngine::Emitter& out) {
      for (uint32_t u : chunk) {
        (void)u;
        out.Candidate(20);
        out.Candidate(20);  // chunk-level duplicate, always collapsed
      }
    };
    callbacks.candidates = [&seen](std::span<const uint32_t> batch) {
      seen.insert(seen.end(), batch.begin(), batch.end());
    };
    callbacks.round_done = [](uint32_t) { return false; };
    engine.Run(callbacks);
    return seen;
  };
  EXPECT_EQ(run(/*chunk_weight=*/1024), (std::vector<uint32_t>{20}));
  EXPECT_EQ(run(/*chunk_weight=*/1), (std::vector<uint32_t>{20, 20}));
}

TEST(FrontierEngineTest, DeltaLogPreservesEmissionOrderAndDuplicates) {
  // The delta channel is an append-only log: the merge callback sees every
  // emission in order (accumulation is the callback's job), whether logged
  // singly or as a bulk group sharing one value.
  FrontierEngine engine(8, WithThreads(1));
  engine.Seed(0);
  std::vector<std::pair<uint32_t, double>> merged;
  // Grouped targets are stored by reference, so the array must stay alive
  // until the round's merge (an adjacency row of an immutable graph, in
  // real traversals).
  const std::vector<uint32_t> row = {3, 5, 6};
  FrontierEngine::Callbacks callbacks;
  callbacks.expand = [&row](std::span<const uint32_t>, uint32_t,
                            FrontierEngine::Emitter& out) {
    out.Delta(5, 1.0);
    out.Deltas(row, 2.0);
    out.Delta(5, 4.0);
  };
  callbacks.deltas = [&merged](std::span<const FrontierEngine::DeltaGroup> g) {
    FrontierEngine::ForEachDelta(
        g, [&merged](uint32_t v, double x) { merged.emplace_back(v, x); });
  };
  callbacks.round_done = [](uint32_t) { return false; };
  engine.Run(callbacks);
  const std::vector<std::pair<uint32_t, double>> expected = {
      {5, 1.0}, {3, 2.0}, {5, 2.0}, {6, 2.0}, {5, 4.0}};
  EXPECT_EQ(merged, expected);
}

TEST(FrontierEngineTest, NextDeduplicatesWithinARound) {
  FrontierEngine engine(8, WithThreads(1));
  engine.Seed(0);
  uint32_t rounds = 0;
  std::vector<size_t> frontier_sizes;
  FrontierEngine::Callbacks callbacks;
  callbacks.expand = [&frontier_sizes](std::span<const uint32_t> chunk,
                                       uint32_t,
                                       FrontierEngine::Emitter& out) {
    frontier_sizes.push_back(chunk.size());
    out.Candidate(4);
  };
  callbacks.candidates = [&engine](std::span<const uint32_t> batch) {
    for (uint32_t v : batch) {
      engine.Next(v);
      engine.Next(v);  // double admission must not duplicate the frontier
    }
  };
  callbacks.round_done = [&rounds](uint32_t) { return ++rounds < 3; };
  engine.Run(callbacks);
  EXPECT_EQ(frontier_sizes, (std::vector<size_t>{1, 1, 1}));
}

TEST(FrontierEngineTest, SeedsAreDeduplicated) {
  FrontierEngine engine(8, WithThreads(1));
  engine.Seed(2);
  engine.Seed(2);
  engine.Seed(5);
  std::vector<uint32_t> expanded;
  FrontierEngine::Callbacks callbacks;
  callbacks.expand = [&expanded](std::span<const uint32_t> chunk, uint32_t,
                                 FrontierEngine::Emitter&) {
    expanded.insert(expanded.end(), chunk.begin(), chunk.end());
  };
  engine.Run(callbacks);
  EXPECT_EQ(expanded, (std::vector<uint32_t>{2, 5}));
}

TEST(FrontierEngineTest, RoundDoneMaySeedTheNextFrontier) {
  // Admission-policy traversals defer admission to round_done: nothing is
  // admitted during the merge, and round_done seeds whatever it chose.
  FrontierEngine engine(16, WithThreads(1));
  engine.Seed(0);
  std::vector<std::vector<uint32_t>> rounds_seen;
  FrontierEngine::Callbacks callbacks;
  callbacks.expand = [&rounds_seen](std::span<const uint32_t> chunk, uint32_t,
                                    FrontierEngine::Emitter&) {
    rounds_seen.emplace_back(chunk.begin(), chunk.end());
  };
  callbacks.round_done = [&engine](uint32_t round) {
    if (round == 0) {
      engine.Seed(7);
      engine.Seed(9);
      engine.Seed(7);  // deduplicated within the same admission batch
    }
    return true;  // round 1's frontier stays empty → loop ends
  };
  engine.Run(callbacks);
  ASSERT_EQ(rounds_seen.size(), 2u);
  EXPECT_EQ(rounds_seen[0], (std::vector<uint32_t>{0}));
  EXPECT_EQ(rounds_seen[1], (std::vector<uint32_t>{7, 9}));
}

TEST(FrontierEngineTest, EmptySeedRunsZeroRounds) {
  FrontierEngine engine(8, WithThreads(4));
  bool expanded = false;
  FrontierEngine::Callbacks callbacks;
  callbacks.expand = [&expanded](std::span<const uint32_t>, uint32_t,
                                 FrontierEngine::Emitter&) {
    expanded = true;
  };
  engine.Run(callbacks);
  EXPECT_FALSE(expanded);
}

TEST(FrontierEngineTest, MergeTraceIdenticalAcrossShardBounds) {
  // Shard bounds refine the *execution* chunks only: canonical chunk
  // boundaries — and with them the merge batches — are cut blind to the
  // bounds. The delta log (no dedup, pure concatenation) and the admission
  // sequence (first occurrences keep their positions) must be identical
  // for any partition, at any thread count. The raw candidate trace is
  // the one documented exception: the emitter dedups per *execution*
  // chunk, so a canonical chunk split at a shard crossing may repeat a
  // candidate it would otherwise have collapsed — never reordering or
  // dropping a first occurrence. The bounds are chosen to cut through
  // canonical chunks (tiny chunk_weight), to not divide n, and to include
  // empty shards.
  SyntheticTraversal base(101);
  {
    FrontierEngine engine(101, WithThreads(1, /*chunk_weight=*/4));
    engine.Seed(0);
    base.visited.insert(0);
    engine.Run(base.Hook(&engine, 30));
  }
  EXPECT_FALSE(base.delta_trace.empty());
  const std::vector<std::vector<uint32_t>> partitions = {
      {0, 101},                  // one shard — must equal no bounds at all
      {0, 50, 101},              // near-even split
      {0, 34, 67, 101},          // 3 does not divide 101
      {0, 0, 25, 25, 101},       // empty shards are legal
      {0, 1, 3, 7, 20, 60, 101}  // many uneven cuts
  };
  for (const std::vector<uint32_t>& bounds : partitions) {
    for (uint32_t threads : {1u, 4u}) {
      SyntheticTraversal other(101);
      FrontierEngine::Options options = WithThreads(threads,
                                                    /*chunk_weight=*/4);
      options.shard_bounds = bounds;
      FrontierEngine engine(101, options);
      engine.Seed(0);
      other.visited.insert(0);
      engine.Run(other.Hook(&engine, 30));
      EXPECT_EQ(base.admission_trace, other.admission_trace)
          << "threads=" << threads << " shards=" << bounds.size() - 1;
      EXPECT_EQ(base.delta_trace, other.delta_trace)
          << "threads=" << threads << " shards=" << bounds.size() - 1;
      EXPECT_EQ(base.sums, other.sums);
      EXPECT_EQ(base.visited, other.visited);
    }
  }
  // A single shard spanning everything refines nothing: even the raw
  // candidate trace matches the unsharded run exactly.
  SyntheticTraversal whole(101);
  FrontierEngine::Options options = WithThreads(4, /*chunk_weight=*/4);
  const std::vector<uint32_t> trivial = {0, 101};
  options.shard_bounds = trivial;
  FrontierEngine engine(101, options);
  engine.Seed(0);
  whole.visited.insert(0);
  engine.Run(whole.Hook(&engine, 30));
  EXPECT_EQ(base.candidate_trace, whole.candidate_trace);
}

TEST(FrontierEngineTest, ExpandReceivesTheOwningShard) {
  // Every execution chunk lies inside one shard, and the expand callback
  // is told which. Single-threaded so the trace vector needs no lock.
  const std::vector<uint32_t> bounds = {0, 3, 3, 10, 16};
  FrontierEngine::Options options = WithThreads(1, /*chunk_weight=*/2);
  options.shard_bounds = bounds;
  FrontierEngine engine(16, options);
  for (uint32_t u = 0; u < 16; ++u) engine.Seed(u);
  std::vector<std::pair<uint32_t, uint32_t>> node_shard;
  FrontierEngine::Callbacks callbacks;
  callbacks.expand = [&node_shard](std::span<const uint32_t> chunk,
                                   uint32_t shard,
                                   FrontierEngine::Emitter&) {
    for (uint32_t u : chunk) node_shard.emplace_back(u, shard);
  };
  engine.Run(callbacks);
  ASSERT_EQ(node_shard.size(), 16u);
  for (const auto& [u, shard] : node_shard) {
    ASSERT_LT(shard + 1, bounds.size());
    EXPECT_GE(u, bounds[shard]) << "node " << u;
    EXPECT_LT(u, bounds[shard + 1]) << "node " << u;
  }
}

TEST(FrontierEngineTest, ConcurrentEnginesDoNotInterfere) {
  // Several engines running in parallel threads, each multi-threaded on
  // the shared global pool. Under -DCYCLERANK_SANITIZE=thread this is the
  // engine-level TSan stress test.
  auto run_one = [](uint32_t seed) {
    SyntheticTraversal traversal(211);
    FrontierEngine engine(211, WithThreads(4, /*chunk_weight=*/8));
    engine.Seed(seed);
    traversal.visited.insert(seed);
    engine.Run(traversal.Hook(&engine, 40));
    return traversal.sums;
  };
  std::vector<std::map<uint32_t, double>> expected;
  for (uint32_t s = 0; s < 6; ++s) expected.push_back(run_one(s));
  std::vector<std::map<uint32_t, double>> got(6);
  std::vector<std::thread> workers;
  for (uint32_t s = 0; s < 6; ++s) {
    workers.emplace_back([&got, s, &run_one] { got[s] = run_one(s); });
  }
  for (auto& w : workers) w.join();
  for (uint32_t s = 0; s < 6; ++s) EXPECT_EQ(expected[s], got[s]);
}

}  // namespace
}  // namespace cyclerank
