#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differ = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differ;
  }
  EXPECT_GT(differ, 30);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(RngTest, NextBoundedZeroBoundIsZero) {
  Rng rng(7);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, NextBoundedCoversSmallRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 300; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U[0,1)
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(9);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.NextBool(0.0));
  EXPECT_TRUE(rng.NextBool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(RngTest, JumpProducesNonOverlappingStream) {
  Rng a(42);
  Rng b(42);
  b.Jump();
  // The jumped stream should not reproduce the original's next values.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UsableWithStdShuffle) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(99);
  std::shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

}  // namespace
}  // namespace cyclerank
