#include "common/uuid.h"

#include <set>
#include <string>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(UuidTest, FormatIsValid) {
  UuidGenerator gen(1);
  for (int i = 0; i < 50; ++i) {
    const std::string id = gen.Generate();
    EXPECT_EQ(id.size(), 36u);
    EXPECT_TRUE(IsValidUuid(id)) << id;
  }
}

TEST(UuidTest, DeterministicWithSeed) {
  UuidGenerator a(42), b(42);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Generate(), b.Generate());
}

TEST(UuidTest, DistinctAcrossCalls) {
  UuidGenerator gen(7);
  std::set<std::string> ids;
  for (int i = 0; i < 1000; ++i) ids.insert(gen.Generate());
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(UuidTest, EntropySeedProducesValidIds) {
  UuidGenerator gen;  // seed 0 -> random_device
  EXPECT_TRUE(IsValidUuid(gen.Generate()));
}

TEST(UuidTest, ValidatorAcceptsPaperExample) {
  // The comparison id shown in the paper's Fig. 2.
  EXPECT_TRUE(IsValidUuid("3a73ff34-8720-4ce8-859e-34e70f339907"));
}

TEST(UuidTest, ValidatorRejectsMalformed) {
  EXPECT_FALSE(IsValidUuid(""));
  EXPECT_FALSE(IsValidUuid("3a73ff34-8720-4ce8-859e-34e70f33990"));    // short
  EXPECT_FALSE(IsValidUuid("3a73ff34-8720-4ce8-859e-34e70f3399071"));  // long
  EXPECT_FALSE(IsValidUuid("3a73ff34087204ce80859e034e70f339907x"));   // no dashes
  EXPECT_FALSE(IsValidUuid("3a73ff34-8720-1ce8-859e-34e70f339907"));   // version 1
  EXPECT_FALSE(IsValidUuid("3a73ff34-8720-4ce8-159e-34e70f339907"));   // bad variant
  EXPECT_FALSE(IsValidUuid("3A73FF34-8720-4CE8-859E-34E70F339907"));   // uppercase
}

}  // namespace
}  // namespace cyclerank
