#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/timer.h"

namespace cyclerank {
namespace {

/// Captures log records for assertions and restores the previous
/// configuration on destruction.
class LogCapture {
 public:
  LogCapture() {
    Logger::Global().set_min_level(LogLevel::kDebug);
    Logger::Global().set_sink([this](LogLevel level, std::string_view msg) {
      records_.emplace_back(level, std::string(msg));
    });
  }
  ~LogCapture() {
    Logger::Global().set_sink(nullptr);
    Logger::Global().set_min_level(LogLevel::kInfo);
  }

  const std::vector<std::pair<LogLevel, std::string>>& records() const {
    return records_;
  }

 private:
  std::vector<std::pair<LogLevel, std::string>> records_;
};

TEST(LoggingTest, SinkReceivesMessages) {
  LogCapture capture;
  CYCLERANK_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].first, LogLevel::kInfo);
  EXPECT_EQ(capture.records()[0].second, "hello 42");
}

TEST(LoggingTest, MinLevelFilters) {
  LogCapture capture;
  Logger::Global().set_min_level(LogLevel::kWarning);
  CYCLERANK_LOG(kDebug) << "dropped";
  CYCLERANK_LOG(kInfo) << "dropped too";
  CYCLERANK_LOG(kWarning) << "kept";
  CYCLERANK_LOG(kError) << "kept too";
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].second, "kept");
  EXPECT_EQ(capture.records()[1].second, "kept too");
}

TEST(LoggingTest, LevelNames) {
  EXPECT_EQ(LogLevelToString(LogLevel::kDebug), "DEBUG");
  EXPECT_EQ(LogLevelToString(LogLevel::kInfo), "INFO");
  EXPECT_EQ(LogLevelToString(LogLevel::kWarning), "WARN");
  EXPECT_EQ(LogLevelToString(LogLevel::kError), "ERROR");
}

TEST(LoggingTest, ConcurrentLoggingDoesNotInterleaveRecords) {
  LogCapture capture;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) {
        CYCLERANK_LOG(kInfo) << "thread " << t << " msg " << i;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(capture.records().size(), 200u);
}

TEST(LoggingTest, ConcurrentMinLevelChangesAreRaceFree) {
  // Regression: `min_level_` was a plain field read by every Log call while
  // tests dialed verbosity up and down from other threads — a data race
  // (caught by annotating the Logger: the field was accessed outside its
  // mutex). It is atomic now; this test makes the race TSan-visible if it
  // ever comes back.
  LogCapture capture;
  std::atomic<bool> stop{false};
  std::thread dial([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      Logger::Global().set_min_level(LogLevel::kDebug);
      Logger::Global().set_min_level(LogLevel::kWarning);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        CYCLERANK_LOG(kError) << "always kept " << i;
      }
    });
  }
  for (auto& thread : writers) thread.join();
  stop.store(true, std::memory_order_relaxed);
  dial.join();
  // kError passes every min level the dialer sets; nothing may be lost.
  EXPECT_EQ(capture.records().size(), 1000u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.ElapsedMillis(), 15);
  EXPECT_GE(timer.ElapsedMicros(), 15000);
  EXPECT_GT(timer.ElapsedSeconds(), 0.01);
}

TEST(TimerTest, RestartRewinds) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  timer.Restart();
  EXPECT_LT(timer.ElapsedMillis(), 10);
}

}  // namespace
}  // namespace cyclerank
