#include "common/binary_io.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

std::string RoundTrip(const std::string& raw) {
  const std::string block = binio::CompressBlock(raw);
  std::string out;
  EXPECT_TRUE(binio::DecompressBlock(block, &out));
  return out;
}

TEST(CompressBlockTest, RoundTripsEmptyAndTinyInputs) {
  EXPECT_EQ(RoundTrip(""), "");
  EXPECT_EQ(RoundTrip("x"), "x");
  EXPECT_EQ(RoundTrip("short"), "short");
  // Embedded NULs and high bytes are just bytes.
  const std::string binary("\0\xff\0\x80 bytes", 9);
  EXPECT_EQ(RoundTrip(binary), binary);
}

TEST(CompressBlockTest, RoundTripsAndShrinksRepetitiveInput) {
  // The shape the spill tier actually stores: long runs of near-identical
  // little-endian words (CSR offsets, score vectors).
  std::string raw;
  for (uint32_t i = 0; i < 20000; ++i) {
    binio::AppendU32(&raw, i / 8);
  }
  const std::string block = binio::CompressBlock(raw);
  EXPECT_LT(block.size(), raw.size() / 2) << "CSR-like data must compress";
  std::string out;
  ASSERT_TRUE(binio::DecompressBlock(block, &out));
  EXPECT_EQ(out, raw);
}

TEST(CompressBlockTest, IncompressibleInputFallsBackToStoredBlock) {
  std::mt19937_64 rng(42);
  std::string raw;
  for (int i = 0; i < 4096; ++i) {
    raw.push_back(static_cast<char>(rng() & 0xff));
  }
  const std::string block = binio::CompressBlock(raw);
  // Stored-block fallback bounds the expansion to the small framing
  // header, no matter how adversarial the input.
  EXPECT_LE(block.size(), raw.size() + 10);
  std::string out;
  ASSERT_TRUE(binio::DecompressBlock(block, &out));
  EXPECT_EQ(out, raw);
}

TEST(CompressBlockTest, RoundTripsOverlappingMatches) {
  // RLE-style input exercises matches that overlap their own output
  // (offset < match length), the classic LZ decode subtlety.
  const std::string raw(100000, 'a');
  const std::string block = binio::CompressBlock(raw);
  EXPECT_LT(block.size(), 1000u);
  std::string out;
  ASSERT_TRUE(binio::DecompressBlock(block, &out));
  EXPECT_EQ(out, raw);
}

TEST(DecompressBlockTest, RejectsCorruptStreams) {
  std::string out;
  // Empty / truncated header.
  EXPECT_FALSE(binio::DecompressBlock("", &out));
  EXPECT_FALSE(binio::DecompressBlock(std::string(1, '\0'), &out));
  // Unknown mode byte.
  std::string bad_mode(10, '\0');
  bad_mode[0] = 7;
  EXPECT_FALSE(binio::DecompressBlock(bad_mode, &out));

  // A valid block truncated anywhere must fail, never crash or misread.
  std::string raw;
  for (uint32_t i = 0; i < 1000; ++i) binio::AppendU32(&raw, i / 4);
  const std::string block = binio::CompressBlock(raw);
  for (size_t cut = 0; cut < block.size(); cut += 97) {
    EXPECT_FALSE(binio::DecompressBlock(block.substr(0, cut), &out))
        << "truncated at " << cut;
  }

  // Declared raw size disagreeing with the content must fail.
  std::string lied = block;
  lied[1] ^= 0x01;  // varint raw_size low bits
  EXPECT_FALSE(binio::DecompressBlock(lied, &out));
}

TEST(DecompressBlockTest, RejectsBadMatchOffsets) {
  // Hand-build an LZ block whose match reaches before the start of the
  // output: 4 literals, then a match with offset 9 > 4 bytes decoded.
  std::string block;
  block.push_back(binio::kBlockLz);
  binio::AppendVarint(&block, 8);  // claimed raw size
  binio::AppendVarint(&block, 4);  // literal count
  block += "abcd";
  binio::AppendVarint(&block, 4);  // match length
  block.push_back(9);              // offset lo: past the decoded bytes
  block.push_back(0);              // offset hi
  std::string out;
  EXPECT_FALSE(binio::DecompressBlock(block, &out));

  // Offset 0 is equally invalid.
  block[block.size() - 2] = 0;
  EXPECT_FALSE(binio::DecompressBlock(block, &out));
}

TEST(VarintTest, RoundTripsBoundaryValues) {
  for (const uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
        0xffffffffull, ~0ull}) {
    std::string buf;
    binio::AppendVarint(&buf, v);
    binio::Reader reader(buf);
    uint64_t decoded = 0;
    ASSERT_TRUE(reader.ReadVarint(&decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_TRUE(reader.AtEnd());
  }
  // Truncated varint fails cleanly.
  binio::Reader truncated(std::string_view("\x80"));
  uint64_t decoded = 0;
  EXPECT_FALSE(truncated.ReadVarint(&decoded));
}

}  // namespace
}  // namespace cyclerank
