#include "common/strings.h"

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(StringsTest, StripAsciiWhitespace) {
  EXPECT_EQ(StripAsciiWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace("x"), "x");
}

TEST(StringsTest, SplitStringKeepsEmptyFields) {
  const auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitStringSingleField) {
  const auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitWhitespaceDropsEmpty) {
  const auto parts = SplitWhitespace("  a \t b\n c  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringsTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringsTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("PaJeK *Vertices"), "pajek *vertices");
  EXPECT_EQ(AsciiToLower("már"), "már");  // non-ASCII bytes untouched
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("wikilink-en", "wikilink"));
  EXPECT_FALSE(StartsWith("en", "wikilink"));
  EXPECT_TRUE(EndsWith("graph.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "graph.csv"));
}

TEST(StringsTest, ParseInt64Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("  -7 ").value(), -7);
  EXPECT_EQ(ParseInt64("0").value(), 0);
}

TEST(StringsTest, ParseInt64Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_FALSE(ParseInt64("x12").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1 2").ok());
}

TEST(StringsTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.85").value(), 0.85);
  EXPECT_DOUBLE_EQ(ParseDouble(" 1e-9 ").value(), 1e-9);
  EXPECT_DOUBLE_EQ(ParseDouble("-3").value(), -3.0);
}

TEST(StringsTest, ParseDoubleInvalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  EXPECT_EQ(FormatDouble(1234.5678, 3), "1.23e+03");
}

}  // namespace
}  // namespace cyclerank
