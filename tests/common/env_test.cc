#include "common/env.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

/// A fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("cyclerank_env_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// ---------------------------------------------------------------- PosixEnv --

TEST(PosixEnvTest, WriteReadRoundTripsBinaryData) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("roundtrip");
  const std::string path = dir + "/blob";
  std::string payload = "binary\0payload\xff\x01";
  payload += std::string(1, '\0');
  ASSERT_TRUE(env->WriteFile(path, payload).ok());

  auto size = env->FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, payload.size());

  auto read = env->ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);

  auto prefix = env->ReadFilePrefix(path, 6);
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(*prefix, "binary");

  // Asking for more than the file holds returns the whole file.
  auto over = env->ReadFilePrefix(path, payload.size() + 100);
  ASSERT_TRUE(over.ok());
  EXPECT_EQ(*over, payload);
}

TEST(PosixEnvTest, WriteFileTruncatesExistingContent) {
  Env* env = Env::Default();
  const std::string path = FreshDir("truncate") + "/f";
  ASSERT_TRUE(env->WriteFile(path, "a much longer first version").ok());
  ASSERT_TRUE(env->WriteFile(path, "short").ok());
  auto read = env->ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "short");
}

TEST(PosixEnvTest, ListDirReturnsSortedRegularFilesOnly) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("listdir");
  ASSERT_TRUE(env->WriteFile(dir + "/zebra", "z").ok());
  ASSERT_TRUE(env->WriteFile(dir + "/apple", "a").ok());
  ASSERT_TRUE(env->WriteFile(dir + "/mango", "m").ok());
  ASSERT_TRUE(env->CreateDirs(dir + "/subdir").ok());  // not a regular file

  auto names = env->ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(*names, (std::vector<std::string>{"apple", "mango", "zebra"}));
}

TEST(PosixEnvTest, ListDirOfMissingDirectoryFails) {
  auto names = Env::Default()->ListDir(FreshDir("gone") + "/nope");
  EXPECT_FALSE(names.ok());
}

TEST(PosixEnvTest, CreateDirsIsIdempotentAndMakesParents) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("mkdirs") + "/a/b/c";
  ASSERT_TRUE(env->CreateDirs(dir).ok());
  ASSERT_TRUE(env->CreateDirs(dir).ok());  // already exists: still OK
  EXPECT_TRUE(env->WriteFile(dir + "/probe", "x").ok());
}

TEST(PosixEnvTest, RenameReplacesAndRemoveIsIdempotent) {
  Env* env = Env::Default();
  const std::string dir = FreshDir("rename");
  ASSERT_TRUE(env->WriteFile(dir + "/src", "new").ok());
  ASSERT_TRUE(env->WriteFile(dir + "/dst", "old").ok());
  ASSERT_TRUE(env->Rename(dir + "/src", dir + "/dst").ok());
  auto read = env->ReadFile(dir + "/dst");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "new");
  EXPECT_FALSE(env->FileSize(dir + "/src").ok());

  ASSERT_TRUE(env->Remove(dir + "/dst").ok());
  EXPECT_TRUE(env->Remove(dir + "/dst").ok());  // missing: idempotent OK
}

TEST(PosixEnvTest, ReadingMissingFileFails) {
  Env* env = Env::Default();
  const std::string path = FreshDir("missing") + "/nope";
  EXPECT_FALSE(env->ReadFile(path).ok());
  EXPECT_FALSE(env->ReadFilePrefix(path, 4).ok());
  EXPECT_FALSE(env->FileSize(path).ok());
}

// ------------------------------------------------------ FaultInjectingEnv --

TEST(FaultInjectingEnvTest, TransientFaultFiresOnNthMatchThenDisarms) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = FreshDir("transient");
  env.AddFault({EnvFault::Kind::kTransient, EnvOp::kWrite, "", /*nth=*/2});

  EXPECT_TRUE(env.WriteFile(dir + "/one", "1").ok());    // 1st: passes
  Status second = env.WriteFile(dir + "/two", "2");      // 2nd: injected
  EXPECT_EQ(second.code(), StatusCode::kIOError);
  EXPECT_TRUE(env.WriteFile(dir + "/three", "3").ok());  // disarmed again

  const FaultInjectionStats stats = env.stats();
  EXPECT_EQ(stats.injected, 1u);
  EXPECT_EQ(stats.ops, 3u);
  // The failed write never reached the disk.
  EXPECT_FALSE(Env::Default()->FileSize(dir + "/two").ok());
}

TEST(FaultInjectingEnvTest, PersistentFaultFailsUntilCleared) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = FreshDir("persistent");
  env.AddFault({EnvFault::Kind::kPersistent, EnvOp::kWrite, "", 1});

  EXPECT_FALSE(env.WriteFile(dir + "/a", "x").ok());
  EXPECT_FALSE(env.WriteFile(dir + "/b", "x").ok());
  EXPECT_FALSE(env.WriteFile(dir + "/c", "x").ok());
  // Reads are untouched by a kWrite schedule.
  ASSERT_TRUE(Env::Default()->WriteFile(dir + "/d", "direct").ok());
  EXPECT_TRUE(env.ReadFile(dir + "/d").ok());

  env.ClearFaults();  // the disk heals
  EXPECT_TRUE(env.WriteFile(dir + "/a", "x").ok());
}

TEST(FaultInjectingEnvTest, PathSubstringScopesTheFault) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = FreshDir("scoped");
  env.AddFault({EnvFault::Kind::kPersistent, EnvOp::kWrite, ".spill", 1});

  EXPECT_FALSE(env.WriteFile(dir + "/k.spill.tmp", "x").ok());
  EXPECT_TRUE(env.WriteFile(dir + "/manifest.tmp", "x").ok());
}

TEST(FaultInjectingEnvTest, TornWriteLeavesAStrictPrefixOnDisk) {
  FaultInjectingEnv env(Env::Default());
  const std::string path = FreshDir("torn") + "/blob";
  env.AddFault({EnvFault::Kind::kTornWrite, EnvOp::kWrite, "", 1});

  const std::string payload = "0123456789";
  EXPECT_FALSE(env.WriteFile(path, payload).ok());
  auto on_disk = Env::Default()->ReadFile(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, "01234");  // deterministic half-length prefix

  // One-shot: the next write goes through whole.
  EXPECT_TRUE(env.WriteFile(path, payload).ok());
  on_disk = Env::Default()->ReadFile(path);
  ASSERT_TRUE(on_disk.ok());
  EXPECT_EQ(*on_disk, payload);
}

TEST(FaultInjectingEnvTest, CrashPointTearsTheWriteAndKillsTheEnv) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = FreshDir("crash");
  env.AddFault({EnvFault::Kind::kCrashPoint, EnvOp::kWrite, "", 2});

  ASSERT_TRUE(env.WriteFile(dir + "/first", "intact").ok());
  EXPECT_FALSE(env.WriteFile(dir + "/second", "torn-here").ok());
  EXPECT_TRUE(env.crashed());

  // Every later op fails, regardless of kind — the process view is gone.
  EXPECT_FALSE(env.ReadFile(dir + "/first").ok());
  EXPECT_FALSE(env.ListDir(dir).ok());
  EXPECT_FALSE(env.Remove(dir + "/first").ok());

  // But the disk itself holds the pre-crash state plus the torn prefix.
  auto survivor = Env::Default()->ReadFile(dir + "/first");
  ASSERT_TRUE(survivor.ok());
  EXPECT_EQ(*survivor, "intact");
  auto torn = Env::Default()->ReadFile(dir + "/second");
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(*torn, "torn");  // strict half of "torn-here" (9 / 2 = 4)

  // ClearFaults models restarting against the same directory.
  env.ClearFaults();
  EXPECT_FALSE(env.crashed());
  EXPECT_TRUE(env.ReadFile(dir + "/first").ok());
}

TEST(FaultInjectingEnvTest, RenameMatchesEitherPathName) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = FreshDir("renamematch");
  ASSERT_TRUE(env.WriteFile(dir + "/a.tmp", "x").ok());
  // Substring names only the *destination*; the source is "a.tmp".
  env.AddFault({EnvFault::Kind::kTransient, EnvOp::kRename, "final-name", 1});

  EXPECT_FALSE(env.Rename(dir + "/a.tmp", dir + "/final-name").ok());
  EXPECT_TRUE(env.Rename(dir + "/a.tmp", dir + "/final-name").ok());
}

TEST(FaultInjectingEnvTest, TwoFaultsKeepIndependentMatchPositions) {
  FaultInjectingEnv env(Env::Default());
  const std::string dir = FreshDir("independent");
  // Both armed before any call: each counts every write, so they fire on
  // the 1st and 3rd write respectively even though the first one fires.
  env.AddFault({EnvFault::Kind::kTransient, EnvOp::kWrite, "", 1});
  env.AddFault({EnvFault::Kind::kTransient, EnvOp::kWrite, "", 3});

  EXPECT_FALSE(env.WriteFile(dir + "/w1", "x").ok());
  EXPECT_TRUE(env.WriteFile(dir + "/w2", "x").ok());
  EXPECT_FALSE(env.WriteFile(dir + "/w3", "x").ok());
  EXPECT_TRUE(env.WriteFile(dir + "/w4", "x").ok());
}

TEST(FaultInjectingEnvTest, RandomFaultSequenceIsSeedDeterministic) {
  const std::string dir = FreshDir("seeded");
  auto run = [&dir](uint64_t seed) {
    FaultInjectingEnv env(Env::Default(), seed);
    env.SetRandomFaultRate(0.5);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(
          env.WriteFile(dir + "/f" + std::to_string(i), "x").ok());
    }
    return outcomes;
  };
  const std::vector<bool> a = run(42);
  const std::vector<bool> b = run(42);
  const std::vector<bool> c = run(43);
  EXPECT_EQ(a, b);  // same seed, same call order → identical decisions
  EXPECT_NE(a, c);  // different seed → (overwhelmingly likely) different
  // At rate 0.5 over 64 calls, both outcomes must appear.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST(FaultInjectingEnvTest, RandomRateSparesReadOperations) {
  const std::string dir = FreshDir("readspared");
  ASSERT_TRUE(Env::Default()->WriteFile(dir + "/f", "x").ok());
  FaultInjectingEnv env(Env::Default(), 7);
  env.SetRandomFaultRate(1.0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(env.ReadFile(dir + "/f").ok());
    EXPECT_TRUE(env.FileSize(dir + "/f").ok());
    EXPECT_TRUE(env.ListDir(dir).ok());
  }
  EXPECT_FALSE(env.WriteFile(dir + "/g", "x").ok());  // mutations still fail
}

}  // namespace
}  // namespace cyclerank
