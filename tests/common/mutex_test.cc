#include "common/mutex.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_annotations.h"

namespace cyclerank {
namespace {

// Behavioral coverage for the annotated wrappers. On GCC the CYR_* macros
// expand to nothing; these tests prove the wrappers still behave as plain
// mutexes/condition variables there (the annotation layer must never
// change runtime semantics).

TEST(MutexTest, MutexLockProvidesMutualExclusion) {
  Mutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 40000);
}

TEST(MutexTest, EarlyUnlockAllowsReacquisition) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  MutexLock again(mu);  // would deadlock if Unlock had not released
}

TEST(SharedMutexTest, WriterExcludesWriters) {
  SharedMutex mu;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SharedMutexWriterLock lock(mu);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter, 40000);
}

TEST(SharedMutexTest, ReadersShareTheLock) {
  SharedMutex mu;
  // Two readers hold the lock at the same time: each waits for the other
  // to arrive while holding its shared lock — exclusive locks would
  // deadlock here, shared ones proceed.
  std::atomic<int> arrived{0};
  auto reader = [&] {
    SharedMutexLock lock(mu);
    arrived.fetch_add(1);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (arrived.load() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
  };
  std::thread a(reader), b(reader);
  a.join();
  b.join();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waker([&] {
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.NotifyOne();
  });
  {
    MutexLock lock(mu);
    cv.Wait(mu, [&]() CYR_REQUIRES(mu) { return ready; });
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(CondVarTest, WaitForTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const bool satisfied = cv.WaitFor(mu, std::chrono::milliseconds(20),
                                    [&]() CYR_REQUIRES(mu) { return false; });
  EXPECT_FALSE(satisfied);
}

TEST(CondVarTest, WaitForReturnsTrueWhenPredicateHolds) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const bool satisfied = cv.WaitFor(mu, std::chrono::milliseconds(1),
                                    [&]() CYR_REQUIRES(mu) { return true; });
  EXPECT_TRUE(satisfied);
}

}  // namespace
}  // namespace cyclerank
