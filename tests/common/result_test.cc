#include "common/result.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, ConstructionFromOkStatusBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> ok = 7;
  Result<int> err = Status::IOError("x");
  EXPECT_EQ(ok.value_or(-1), 7);
  EXPECT_EQ(err.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableValueAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r.value().push_back(3);
  EXPECT_EQ(r->size(), 3u);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  CYCLERANK_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnMacroChains) {
  ASSERT_TRUE(Quarter(8).ok());
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_EQ(Quarter(6).status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Quarter(5).status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, CopySemantics) {
  Result<std::string> a = std::string("abc");
  Result<std::string> b = a;
  EXPECT_EQ(a.value(), "abc");
  EXPECT_EQ(b.value(), "abc");
}

}  // namespace
}  // namespace cyclerank
