#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(ThreadPoolTest, RunsPostedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Post([&counter] { ++counter; }));
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitReturnsFutureWithResult) {
  ThreadPool pool(2);
  auto future = pool.Submit([] { return 6 * 7; });
  ASSERT_TRUE(future.valid());
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, SubmitPropagatesDistinctResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 20; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto future = pool.Submit([] { return 1; });
  EXPECT_EQ(future.get(), 1);
}

TEST(ThreadPoolTest, PostAfterShutdownRejected) {
  ThreadPool pool(2);
  pool.Shutdown();
  EXPECT_FALSE(pool.Post([] {}));
  auto future = pool.Submit([] { return 3; });
  EXPECT_FALSE(future.valid());
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Post([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
    pool.Shutdown();
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleReturnsWhenQueueEmpty) {
  ThreadPool pool(2);
  pool.WaitIdle();  // no work: must not hang
  std::atomic<bool> ran{false};
  pool.Post([&ran] { ran = true; });
  pool.WaitIdle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  for (int i = 0; i < 16; ++i) {
    pool.Post([&] {
      const int current = ++in_flight;
      int expected = max_in_flight.load();
      while (current > expected &&
             !max_in_flight.compare_exchange_weak(expected, current)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      --in_flight;
    });
  }
  pool.WaitIdle();
  EXPECT_GT(max_in_flight.load(), 1);
}

TEST(ThreadPoolTest, DoubleShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Shutdown();
  pool.Shutdown();  // must not crash or hang
}

}  // namespace
}  // namespace cyclerank
