#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include "common/mutex.h"

namespace cyclerank {
namespace {

// The checker aborts the whole process, so violations are exercised as
// death tests. In unchecked builds (Release without sanitizers) the
// bookkeeping is compiled out and nothing aborts — those tests skip.
class LockRankDeathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lock_rank::ChecksEnabled()) {
      GTEST_SKIP() << "lock-rank checks compiled out in this build";
    }
    // Fork-after-threads is unsafe with the "fast" style; the suite links
    // thread-using tests into the same binary.
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  }
};

TEST(LockRankTest, InRankNestingIsAccepted) {
  Mutex outer(100, "test::outer");
  Mutex inner(200, "test::inner");
  MutexLock hold_outer(outer);
  MutexLock hold_inner(inner);  // strictly increasing — fine
}

TEST(LockRankTest, RankIsReleasedOnUnlock) {
  Mutex high(200, "test::high");
  Mutex low(100, "test::low");
  { MutexLock hold(high); }
  // `high` is no longer held, so acquiring a lower rank is in order.
  MutexLock hold_low(low);
}

TEST(LockRankTest, EarlyUnlockReleasesTheRank) {
  Mutex high(200, "test::high");
  Mutex low(100, "test::low");
  MutexLock hold(high);
  hold.Unlock();
  MutexLock hold_low(low);
}

TEST(LockRankTest, UnrankedMutexesNestAnywhere) {
  Mutex ranked(100, "test::ranked");
  Mutex unranked;
  MutexLock hold_ranked(ranked);
  MutexLock hold_unranked(unranked);
  Mutex another(200, "test::another");
  MutexLock hold_another(another);  // unranked holds don't constrain
}

TEST_F(LockRankDeathTest, OutOfRankAcquisitionAborts) {
  EXPECT_DEATH(
      {
        Mutex inner(200, "test::inner");
        Mutex outer(100, "test::outer");
        MutexLock hold_inner(inner);
        MutexLock hold_outer(outer);  // 100 under 200 — wrong order
      },
      "lock-rank violation");
}

TEST_F(LockRankDeathTest, EqualRankNestingAborts) {
  EXPECT_DEATH(
      {
        Mutex a(300, "test::a");
        Mutex b(300, "test::b");
        MutexLock hold_a(a);
        MutexLock hold_b(b);  // same rank may never nest
      },
      "lock-rank violation");
}

TEST_F(LockRankDeathTest, AssertNoneHeldAbortsWhileHolding) {
  EXPECT_DEATH(
      {
        Mutex mu(100, "test::held_at_boundary");
        MutexLock hold(mu);
        lock_rank::AssertNoneHeld("unit test boundary");
      },
      "lock-rank violation");
}

TEST(LockRankTest, AssertNoneHeldIsANoOpWhenNothingIsHeld) {
  lock_rank::AssertNoneHeld("unit test boundary");  // must not abort
}

}  // namespace
}  // namespace cyclerank
