// Parameterized property sweeps across generated graphs: invariants that
// must hold for every algorithm on every (reasonable) input.

#include <cmath>
#include <numeric>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "core/cheirank.h"
#include "core/cyclerank.h"
#include "core/pagerank.h"
#include "core/twodrank.h"
#include "datasets/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph MakeGraph(uint64_t seed) {
  BarabasiAlbertConfig config;
  config.num_nodes = 120;
  config.edges_per_node = 4;
  config.reciprocity = 0.35;
  config.seed = seed;
  return GenerateBarabasiAlbert(config).value();
}

// ---- PageRank-family properties over (seed, alpha) -------------------------

class PageRankPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(PageRankPropertyTest, ScoresArePositiveAndSumToOne) {
  const auto [seed, alpha] = GetParam();
  const Graph g = MakeGraph(seed);
  PageRankOptions options;
  options.alpha = alpha;
  const PageRankScores pr = ComputePageRank(g, options).value();
  const double sum =
      std::accumulate(pr.scores.begin(), pr.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-8);
  for (double s : pr.scores) EXPECT_GT(s, 0.0);
}

TEST_P(PageRankPropertyTest, CheiRankAlsoSumsToOne) {
  const auto [seed, alpha] = GetParam();
  const Graph g = MakeGraph(seed);
  PageRankOptions options;
  options.alpha = alpha;
  const PageRankScores chei = ComputeCheiRank(g, options).value();
  const double sum =
      std::accumulate(chei.scores.begin(), chei.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST_P(PageRankPropertyTest, PersonalizedMassConcentratesAtReference) {
  const auto [seed, alpha] = GetParam();
  const Graph g = MakeGraph(seed);
  PageRankOptions options;
  options.alpha = alpha;
  const PageRankScores ppr =
      ComputePersonalizedPageRank(g, 3, options).value();
  // The reference holds at least the teleport share (1-alpha).
  EXPECT_GE(ppr.scores[3], (1.0 - alpha) - 1e-9);
  const double sum =
      std::accumulate(ppr.scores.begin(), ppr.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-8);
}

TEST_P(PageRankPropertyTest, TwoDRankOrderIsPermutation) {
  const auto [seed, alpha] = GetParam();
  const Graph g = MakeGraph(seed);
  PageRankOptions options;
  options.alpha = alpha;
  TwoDRankResult result = Compute2DRank(g, options).value();
  std::vector<bool> seen(g.num_nodes(), false);
  for (NodeId u : result.order) {
    ASSERT_LT(u, g.num_nodes());
    EXPECT_FALSE(seen[u]);
    seen[u] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlphas, PageRankPropertyTest,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull, 4ull),
                       ::testing::Values(0.3, 0.5, 0.85)),
    [](const auto& test_info) {
      return "seed" + std::to_string(std::get<0>(test_info.param)) + "_alpha" +
             std::to_string(static_cast<int>(std::get<1>(test_info.param) * 100));
    });

// ---- CycleRank properties over (seed, K, sigma) -----------------------------

class CycleRankPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, uint32_t, ScoringFunction>> {};

TEST_P(CycleRankPropertyTest, ReferenceHoldsMaximum) {
  const auto [seed, k, sigma] = GetParam();
  const Graph g = MakeGraph(seed);
  CycleRankOptions options;
  options.max_cycle_length = k;
  options.scoring = sigma;
  const CycleRankScores cr = ComputeCycleRank(g, 7, options).value();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(cr.scores[u], cr.scores[7] + 1e-15);
  }
}

TEST_P(CycleRankPropertyTest, ScoreDecomposesOverLengths) {
  const auto [seed, k, sigma] = GetParam();
  const Graph g = MakeGraph(seed);
  CycleRankOptions options;
  options.max_cycle_length = k;
  options.scoring = sigma;
  const CycleRankScores cr = ComputeCycleRank(g, 7, options).value();
  // Reference score equals sum over lengths of sigma(n) * count(n),
  // since r is on every cycle.
  double expected = 0.0;
  for (uint32_t n = 2; n <= k; ++n) {
    expected += Sigma(sigma, n) * static_cast<double>(cr.cycles_by_length[n]);
  }
  EXPECT_NEAR(cr.scores[7], expected, 1e-9);
}

TEST_P(CycleRankPropertyTest, PruningInvariance) {
  const auto [seed, k, sigma] = GetParam();
  const Graph g = MakeGraph(seed);
  CycleRankOptions with, without;
  with.max_cycle_length = without.max_cycle_length = k;
  with.scoring = without.scoring = sigma;
  with.use_pruning = true;
  without.use_pruning = false;
  const CycleRankScores a = ComputeCycleRank(g, 7, with).value();
  const CycleRankScores b = ComputeCycleRank(g, 7, without).value();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(a.scores[u], b.scores[u]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsKsSigmas, CycleRankPropertyTest,
    ::testing::Combine(::testing::Values(5ull, 6ull),
                       ::testing::Values(2u, 3u, 4u),
                       ::testing::Values(ScoringFunction::kExponential,
                                         ScoringFunction::kLinear,
                                         ScoringFunction::kConstant)),
    [](const auto& test_info) {
      return "seed" + std::to_string(std::get<0>(test_info.param)) + "_k" +
             std::to_string(std::get<1>(test_info.param)) + "_" +
             std::string(ScoringFunctionToString(std::get<2>(test_info.param)));
    });

// ---- Structural property: hub pathology ------------------------------------

TEST(PathologyPropertyTest, PprPromotesHubsCycleRankDoesNot) {
  // The paper's central qualitative claim (§I, §IV-D): globally central
  // nodes leak into PPR rankings but get CycleRank 0 when they share no
  // cycle with the reference. Build the canonical pathological shape: a
  // topical cluster plus a hub that everything links to one-way.
  GraphBuilder builder;
  // Topical cluster: 0..3 reciprocal ring.
  for (NodeId u = 0; u < 4; ++u) {
    builder.AddEdge(u, (u + 1) % 4);
    builder.AddEdge((u + 1) % 4, u);
  }
  // Hub 4: everyone links to it, it links back to nothing in the cluster.
  for (NodeId u = 0; u < 4; ++u) builder.AddEdge(u, 4);
  for (NodeId u = 5; u < 20; ++u) builder.AddEdge(u, 4);
  const Graph g = builder.Build().value();

  const PageRankScores ppr = ComputePersonalizedPageRank(g, 0).value();
  CycleRankOptions options;
  options.max_cycle_length = 4;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();

  // PPR gives the hub substantial mass (> any non-adjacent cluster node
  // would be too strong a claim; > 0 and > every background node).
  EXPECT_GT(ppr.scores[4], 0.0);
  // CycleRank excludes it entirely.
  EXPECT_DOUBLE_EQ(cr.scores[4], 0.0);
  // ...while the cluster peers score > 0 in both.
  for (NodeId u = 1; u < 4; ++u) {
    EXPECT_GT(cr.scores[u], 0.0);
    EXPECT_GT(ppr.scores[u], 0.0);
  }
}

}  // namespace
}  // namespace cyclerank
