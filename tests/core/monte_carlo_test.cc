#include "core/monte_carlo.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/generators.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TEST(MonteCarloTest, VisitFrequencyConvergesToExactPpr) {
  BarabasiAlbertConfig config;
  config.num_nodes = 100;
  config.edges_per_node = 4;
  config.reciprocity = 0.4;
  config.seed = 31;
  const Graph g = GenerateBarabasiAlbert(config).value();
  PageRankOptions exact_options;
  exact_options.tolerance = 1e-13;
  const PageRankScores exact =
      ComputePersonalizedPageRank(g, 0, exact_options).value();
  MonteCarloOptions options;
  options.num_walks = 400000;
  options.seed = 7;
  const MonteCarloScores mc = ComputeMonteCarloPpr(g, 0, options).value();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(mc.scores[u], exact.scores[u], 0.01) << "node " << u;
  }
  // The head of the distribution should be tight.
  EXPECT_NEAR(mc.scores[0], exact.scores[0], 0.003);
}

TEST(MonteCarloTest, EndpointEstimatorAlsoConverges) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const Graph g = builder.Build().value();
  PageRankOptions exact_options;
  exact_options.tolerance = 1e-13;
  const PageRankScores exact =
      ComputePersonalizedPageRank(g, 0, exact_options).value();
  MonteCarloOptions options;
  options.estimator = MonteCarloEstimator::kEndpoint;
  options.num_walks = 400000;
  options.seed = 11;
  const MonteCarloScores mc = ComputeMonteCarloPpr(g, 0, options).value();
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_NEAR(mc.scores[u], exact.scores[u], 0.01) << "node " << u;
  }
}

TEST(MonteCarloTest, ScoresFormDistribution) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const Graph g = builder.Build().value();
  for (auto estimator : {MonteCarloEstimator::kVisitFrequency,
                         MonteCarloEstimator::kEndpoint}) {
    MonteCarloOptions options;
    options.estimator = estimator;
    options.num_walks = 10000;
    const MonteCarloScores mc = ComputeMonteCarloPpr(g, 0, options).value();
    double sum = 0.0;
    for (double s : mc.scores) {
      EXPECT_GE(s, 0.0);
      sum += s;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(MonteCarloTest, DeterministicForFixedSeed) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  const Graph g = builder.Build().value();
  MonteCarloOptions options;
  options.num_walks = 1000;
  options.seed = 42;
  const MonteCarloScores a = ComputeMonteCarloPpr(g, 0, options).value();
  const MonteCarloScores b = ComputeMonteCarloPpr(g, 0, options).value();
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.total_steps, b.total_steps);
}

TEST(MonteCarloTest, DifferentSeedsDiffer) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const Graph g = builder.Build().value();
  MonteCarloOptions a, b;
  a.num_walks = b.num_walks = 1000;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(ComputeMonteCarloPpr(g, 0, a).value().scores,
            ComputeMonteCarloPpr(g, 0, b).value().scores);
}

TEST(MonteCarloTest, UnreachableNodesNeverVisited) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(2, 0);  // 2 not reachable from 0
  const Graph g = builder.Build().value();
  MonteCarloOptions options;
  options.num_walks = 20000;
  const MonteCarloScores mc = ComputeMonteCarloPpr(g, 0, options).value();
  EXPECT_DOUBLE_EQ(mc.scores[2], 0.0);
}

TEST(MonteCarloTest, TopKAgreesWithExactOnSeparatedGraph) {
  BarabasiAlbertConfig config;
  config.num_nodes = 60;
  config.edges_per_node = 3;
  config.reciprocity = 0.5;
  config.seed = 23;
  const Graph g = GenerateBarabasiAlbert(config).value();
  PageRankOptions exact_options;
  exact_options.tolerance = 1e-13;
  const auto exact = ComputePersonalizedPageRank(g, 1, exact_options).value();
  MonteCarloOptions options;
  options.num_walks = 300000;
  options.seed = 3;
  const auto mc = ComputeMonteCarloPpr(g, 1, options).value();
  // Top-3 by exact PPR should appear in the MC top-5.
  const auto top_exact = TopKNodes(ScoresToRankedList(exact.scores), 3);
  const auto top_mc = TopKNodes(ScoresToRankedList(mc.scores), 5);
  for (NodeId u : top_exact) {
    EXPECT_NE(std::find(top_mc.begin(), top_mc.end(), u), top_mc.end())
        << "node " << u;
  }
}

TEST(MonteCarloTest, RejectsBadArguments) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(ComputeMonteCarloPpr(g, 9).status().code(),
            StatusCode::kOutOfRange);
  MonteCarloOptions options;
  options.num_walks = 0;
  EXPECT_EQ(ComputeMonteCarloPpr(g, 0, options).status().code(),
            StatusCode::kInvalidArgument);
  options.num_walks = 10;
  options.alpha = 0.0;
  EXPECT_EQ(ComputeMonteCarloPpr(g, 0, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cyclerank
