#include "core/explain.h"

#include <gtest/gtest.h>

#include "core/cyclerank.h"
#include "datasets/corpus.h"
#include "datasets/generators.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph Diamond() {
  // Two triangles sharing the reference: 0->1->2->0 and 0->3->2->0, plus
  // the reciprocal pair 0<->2.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 3);
  builder.AddEdge(3, 2);
  builder.AddEdge(0, 2);
  return builder.Build().value();
}

TEST(ExplainTest, FindsCyclesThroughBothNodes) {
  const Graph g = Diamond();
  const CycleExplanation explanation = ExplainCycles(g, 0, 1).value();
  // Node 1 is only on the cycle 0->1->2->0.
  ASSERT_EQ(explanation.cycles.size(), 1u);
  EXPECT_EQ(explanation.cycles[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_FALSE(explanation.truncated);
}

TEST(ExplainTest, SharedNodeAppearsInAllItsCycles) {
  const Graph g = Diamond();
  const CycleExplanation explanation = ExplainCycles(g, 0, 2).value();
  // Node 2 is on the 2-cycle (0,2) and both triangles.
  ASSERT_EQ(explanation.cycles.size(), 3u);
  // Shortest first.
  EXPECT_EQ(explanation.cycles[0], (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(explanation.cycles[1].size(), 3u);
  EXPECT_EQ(explanation.cycles[2].size(), 3u);
}

TEST(ExplainTest, TargetEqualsReferenceListsEverything) {
  const Graph g = Diamond();
  const CycleExplanation explanation = ExplainCycles(g, 0, 0).value();
  EXPECT_EQ(explanation.cycles.size(), 3u);
}

TEST(ExplainTest, NodeOffAllCyclesYieldsEmpty) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 2);  // 2 is a sink
  const Graph g = builder.Build().value();
  const CycleExplanation explanation = ExplainCycles(g, 0, 2).value();
  EXPECT_TRUE(explanation.cycles.empty());
  EXPECT_EQ(explanation.total_found, 0u);
}

TEST(ExplainTest, RespectsKBound) {
  const Graph g = Diamond();
  ExplainOptions options;
  options.max_cycle_length = 2;
  const CycleExplanation explanation = ExplainCycles(g, 0, 2, options).value();
  ASSERT_EQ(explanation.cycles.size(), 1u);  // triangles excluded
  EXPECT_EQ(explanation.cycles[0].size(), 2u);
}

TEST(ExplainTest, CapTruncates) {
  GraphBuilder builder;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  const Graph g = builder.Build().value();
  ExplainOptions options;
  options.max_cycle_length = 4;
  options.max_cycles = 3;
  const CycleExplanation explanation = ExplainCycles(g, 0, 0, options).value();
  EXPECT_TRUE(explanation.truncated);
  EXPECT_EQ(explanation.cycles.size(), 3u);
}

TEST(ExplainTest, CycleCountMatchesCycleRankCounts) {
  // Property: for every node i, the number of explanation cycles equals
  // CycleRank's per-node cycle count Σ_n c_{r,n}(i).
  BarabasiAlbertConfig config;
  config.num_nodes = 60;
  config.edges_per_node = 3;
  config.reciprocity = 0.5;
  config.seed = 19;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions cr_options;
  cr_options.max_cycle_length = 4;
  cr_options.collect_per_node_counts = true;
  const CycleRankScores cr = ComputeCycleRank(g, 0, cr_options).value();
  ExplainOptions options;
  options.max_cycle_length = 4;
  options.max_cycles = 1000000;
  for (NodeId i = 0; i < g.num_nodes(); i += 7) {  // sample
    uint64_t expected = 0;
    for (uint32_t n = 2; n <= 4; ++n) {
      expected += cr.cycle_counts_per_node[n][i];
    }
    const CycleExplanation explanation = ExplainCycles(g, 0, i, options).value();
    EXPECT_EQ(explanation.cycles.size(), expected) << "node " << i;
  }
}

TEST(ExplainTest, EveryReportedCycleIsARealSimpleCycle) {
  const Graph g = EnwikiMini().value();
  const NodeId ref = g.FindNode("Freddie Mercury");
  const NodeId queen = g.FindNode("Queen (band)");
  const CycleExplanation explanation = ExplainCycles(g, ref, queen).value();
  ASSERT_FALSE(explanation.cycles.empty());
  for (const std::vector<NodeId>& cycle : explanation.cycles) {
    ASSERT_GE(cycle.size(), 2u);
    EXPECT_EQ(cycle.front(), ref);
    // Consecutive edges exist and the cycle closes.
    for (size_t i = 0; i + 1 < cycle.size(); ++i) {
      EXPECT_TRUE(g.HasEdge(cycle[i], cycle[i + 1]));
    }
    EXPECT_TRUE(g.HasEdge(cycle.back(), ref));
    // Simple: no repeated nodes.
    std::set<NodeId> unique(cycle.begin(), cycle.end());
    EXPECT_EQ(unique.size(), cycle.size());
    // Contains the target.
    EXPECT_NE(unique.count(queen), 0u);
  }
}

TEST(ExplainTest, FormatUsesLabels) {
  const Graph g = EnwikiMini().value();
  const NodeId ref = g.FindNode("Freddie Mercury");
  const CycleExplanation explanation =
      ExplainCycles(g, ref, g.FindNode("Brian May")).value();
  const std::string text = FormatExplanation(explanation, g);
  EXPECT_NE(text.find("Freddie Mercury -> Brian May"), std::string::npos);
}

TEST(ExplainTest, RejectsBadArguments) {
  const Graph g = Diamond();
  EXPECT_EQ(ExplainCycles(g, 99, 0).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(ExplainCycles(g, 0, 99).status().code(), StatusCode::kOutOfRange);
  ExplainOptions options;
  options.max_cycle_length = 1;
  EXPECT_FALSE(ExplainCycles(g, 0, 1, options).ok());
  options.max_cycle_length = 3;
  options.max_cycles = 0;
  EXPECT_FALSE(ExplainCycles(g, 0, 1, options).ok());
}

}  // namespace
}  // namespace cyclerank
