#include "core/cyclerank.h"

#include <cmath>

#include <gtest/gtest.h>

#include "datasets/generators.h"
#include "graph/graph_builder.h"
#include "graph/scc.h"

namespace cyclerank {
namespace {

Graph DirectedRing(NodeId n) {
  GraphBuilder builder;
  for (NodeId u = 0; u < n; ++u) builder.AddEdge(u, (u + 1) % n);
  return builder.Build().value();
}

Graph ReciprocalPair() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  return builder.Build().value();
}

TEST(CycleRankTest, TwoCycleExactScore) {
  const Graph g = ReciprocalPair();
  CycleRankOptions options;
  options.max_cycle_length = 3;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  EXPECT_EQ(cr.total_cycles, 1u);
  EXPECT_DOUBLE_EQ(cr.scores[0], std::exp(-2.0));
  EXPECT_DOUBLE_EQ(cr.scores[1], std::exp(-2.0));
}

TEST(CycleRankTest, RingCountedOnceAtExactLength) {
  // A directed n-ring contains exactly one cycle through the reference,
  // of length n; K below n finds nothing.
  for (NodeId n : {3u, 4u, 5u}) {
    const Graph g = DirectedRing(n);
    CycleRankOptions options;
    options.max_cycle_length = n;
    const CycleRankScores hit = ComputeCycleRank(g, 0, options).value();
    EXPECT_EQ(hit.total_cycles, 1u) << "n=" << n;
    EXPECT_EQ(hit.cycles_by_length[n], 1u);
    for (NodeId u = 0; u < n; ++u) {
      EXPECT_DOUBLE_EQ(hit.scores[u], std::exp(-static_cast<double>(n)));
    }
    options.max_cycle_length = n - 1;
    if (options.max_cycle_length >= 2) {
      const CycleRankScores miss = ComputeCycleRank(g, 0, options).value();
      EXPECT_EQ(miss.total_cycles, 0u) << "n=" << n;
    }
  }
}

TEST(CycleRankTest, CompleteGraphCycleCounts) {
  // K4 (complete directed graph on 4 nodes): cycles through node r:
  //   length 2: 3 (one per other node)
  //   length 3: ordered pairs of distinct others: 3*2 = 6
  //   length 4: ordered triples: 3*2*1 = 6
  GraphBuilder builder;
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  const Graph g = builder.Build().value();
  CycleRankOptions options;
  options.max_cycle_length = 4;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  EXPECT_EQ(cr.cycles_by_length[2], 3u);
  EXPECT_EQ(cr.cycles_by_length[3], 6u);
  EXPECT_EQ(cr.cycles_by_length[4], 6u);
  EXPECT_EQ(cr.total_cycles, 15u);
}

TEST(CycleRankTest, ReferenceNodeHasMaximumScore) {
  // "By definition, the reference node gets the maximum Cyclerank score"
  // (§II): r is on every counted cycle.
  BarabasiAlbertConfig config;
  config.num_nodes = 150;
  config.edges_per_node = 4;
  config.reciprocity = 0.4;
  config.seed = 9;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions options;
  options.max_cycle_length = 4;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  ASSERT_GT(cr.total_cycles, 0u);
  for (NodeId u = 1; u < g.num_nodes(); ++u) {
    EXPECT_LE(cr.scores[u], cr.scores[0]);
  }
}

TEST(CycleRankTest, Equation1Identity) {
  // CR_{r,K}(i) must equal Σ_n σ(n)·c_{r,n}(i) computed from the reported
  // per-node cycle counts — the literal Eq. (1) of the paper.
  BarabasiAlbertConfig config;
  config.num_nodes = 80;
  config.edges_per_node = 3;
  config.reciprocity = 0.5;
  config.seed = 4;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions options;
  options.max_cycle_length = 5;
  options.collect_per_node_counts = true;
  const CycleRankScores cr = ComputeCycleRank(g, 2, options).value();
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    double expected = 0.0;
    for (uint32_t n = 2; n <= options.max_cycle_length; ++n) {
      expected +=
          Sigma(options.scoring, n) *
          static_cast<double>(cr.cycle_counts_per_node[n][i]);
    }
    EXPECT_NEAR(cr.scores[i], expected, 1e-12) << "node " << i;
  }
}

TEST(CycleRankTest, NonZeroOnlyInsideReferenceScc) {
  // A node on a cycle with r is strongly connected to r.
  BarabasiAlbertConfig config;
  config.num_nodes = 100;
  config.edges_per_node = 3;
  config.reciprocity = 0.3;
  config.seed = 6;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const SccResult scc = StronglyConnectedComponents(g);
  CycleRankOptions options;
  options.max_cycle_length = 5;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (cr.scores[u] > 0.0 && u != 0) {
      EXPECT_TRUE(InSameScc(scc, 0, u)) << "node " << u;
    }
  }
}

TEST(CycleRankTest, PruningDoesNotChangeResults) {
  // A2 ablation correctness: distance pruning is an optimization, not an
  // approximation.
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    BarabasiAlbertConfig config;
    config.num_nodes = 70;
    config.edges_per_node = 3;
    config.reciprocity = 0.4;
    config.seed = seed;
    const Graph g = GenerateBarabasiAlbert(config).value();
    CycleRankOptions pruned, naive;
    pruned.max_cycle_length = naive.max_cycle_length = 4;
    pruned.use_pruning = true;
    naive.use_pruning = false;
    const CycleRankScores a = ComputeCycleRank(g, 1, pruned).value();
    const CycleRankScores b = ComputeCycleRank(g, 1, naive).value();
    EXPECT_EQ(a.total_cycles, b.total_cycles);
    EXPECT_EQ(a.cycles_by_length, b.cycles_by_length);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_DOUBLE_EQ(a.scores[u], b.scores[u]);
    }
    // Pruning must not do *more* work.
    EXPECT_LE(a.dfs_expansions, b.dfs_expansions);
  }
}

TEST(CycleRankTest, ScoringFunctionsWeightLengthsDifferently) {
  // Ring of 3 plus a reciprocal chord 0<->1: cycles through 0 are the
  // 2-cycle (0,1) and the 3-cycle (0,1,2).
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(1, 0);
  const Graph g = builder.Build().value();
  CycleRankOptions options;
  options.max_cycle_length = 3;
  options.scoring = ScoringFunction::kConstant;
  const CycleRankScores constant = ComputeCycleRank(g, 0, options).value();
  EXPECT_DOUBLE_EQ(constant.scores[0], 2.0);  // on both cycles
  EXPECT_DOUBLE_EQ(constant.scores[1], 2.0);
  EXPECT_DOUBLE_EQ(constant.scores[2], 1.0);
  options.scoring = ScoringFunction::kLinear;
  const CycleRankScores linear = ComputeCycleRank(g, 0, options).value();
  EXPECT_DOUBLE_EQ(linear.scores[1], 1.0 / 2 + 1.0 / 3);
  EXPECT_DOUBLE_EQ(linear.scores[2], 1.0 / 3);
  options.scoring = ScoringFunction::kQuadratic;
  const CycleRankScores quad = ComputeCycleRank(g, 0, options).value();
  EXPECT_DOUBLE_EQ(quad.scores[2], 1.0 / 9);
}

TEST(CycleRankTest, SelfLoopsNeverCounted) {
  GraphBuilder builder;
  builder.AddEdge(0, 0);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  GraphBuildOptions keep_loops;
  keep_loops.drop_self_loops = false;
  const Graph g = builder.Build(keep_loops).value();
  ASSERT_TRUE(g.HasEdge(0, 0));
  CycleRankOptions options;
  options.max_cycle_length = 3;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  // Only the 2-cycle (0,1); the self-loop is not a cycle of length >= 2.
  EXPECT_EQ(cr.total_cycles, 1u);
  EXPECT_EQ(cr.cycles_by_length[2], 1u);
}

TEST(CycleRankTest, MaxCyclesCapTruncates) {
  GraphBuilder builder;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  const Graph g = builder.Build().value();
  CycleRankOptions options;
  options.max_cycle_length = 5;
  options.max_cycles = 10;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  EXPECT_TRUE(cr.truncated);
  EXPECT_EQ(cr.total_cycles, 10u);
}

TEST(CycleRankTest, DagScoresAllZero) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(0, 2);
  const Graph g = builder.Build().value();
  const CycleRankScores cr = ComputeCycleRank(g, 0).value();
  EXPECT_EQ(cr.total_cycles, 0u);
  for (double s : cr.scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(CycleRankTest, RejectsBadArguments) {
  const Graph g = ReciprocalPair();
  EXPECT_EQ(ComputeCycleRank(g, 99).status().code(), StatusCode::kOutOfRange);
  CycleRankOptions options;
  options.max_cycle_length = 1;
  EXPECT_EQ(ComputeCycleRank(g, 0, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CycleRankTest, DeterministicAcrossRuns) {
  BarabasiAlbertConfig config;
  config.num_nodes = 60;
  config.edges_per_node = 4;
  config.reciprocity = 0.5;
  config.seed = 8;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions options;
  options.max_cycle_length = 4;
  const CycleRankScores a = ComputeCycleRank(g, 5, options).value();
  const CycleRankScores b = ComputeCycleRank(g, 5, options).value();
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.dfs_expansions, b.dfs_expansions);
}

TEST(CycleRankTest, ParallelMatchesSerial) {
  BarabasiAlbertConfig config;
  config.num_nodes = 100;
  config.edges_per_node = 4;
  config.reciprocity = 0.5;
  config.seed = 33;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions serial, parallel;
  serial.max_cycle_length = parallel.max_cycle_length = 5;
  serial.collect_per_node_counts = parallel.collect_per_node_counts = true;
  serial.num_threads = 1;
  const CycleRankScores a = ComputeCycleRank(g, 0, serial).value();
  for (uint32_t threads : {2u, 4u, 16u}) {
    parallel.num_threads = threads;
    const CycleRankScores b = ComputeCycleRank(g, 0, parallel).value();
    // Integer outputs are exactly equal...
    EXPECT_EQ(a.total_cycles, b.total_cycles) << threads;
    EXPECT_EQ(a.cycles_by_length, b.cycles_by_length);
    EXPECT_EQ(a.dfs_expansions, b.dfs_expansions);
    EXPECT_EQ(a.cycle_counts_per_node, b.cycle_counts_per_node);
    // ...scores agree up to floating-point associativity (per-branch
    // partial sums regroup the additions).
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      EXPECT_NEAR(a.scores[u], b.scores[u], 1e-12 * (1.0 + a.scores[u]))
          << "node " << u;
    }
  }
}

TEST(CycleRankTest, ParallelIsDeterministicAcrossThreadCounts) {
  // Branch merge order is fixed (ascending first hop), so every thread
  // count >= 2 produces bit-identical output regardless of scheduling.
  BarabasiAlbertConfig config;
  config.num_nodes = 100;
  config.edges_per_node = 4;
  config.reciprocity = 0.5;
  config.seed = 34;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions options;
  options.max_cycle_length = 5;
  options.num_threads = 2;
  const CycleRankScores base = ComputeCycleRank(g, 0, options).value();
  for (uint32_t threads : {3u, 4u, 8u, 16u}) {
    options.num_threads = threads;
    const CycleRankScores other = ComputeCycleRank(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << threads;
    EXPECT_EQ(base.total_cycles, other.total_cycles);
  }
}

TEST(CycleRankTest, ParallelOnNaiveSearchAlsoMatches) {
  BarabasiAlbertConfig config;
  config.num_nodes = 60;
  config.edges_per_node = 3;
  config.reciprocity = 0.5;
  config.seed = 44;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions serial, parallel;
  serial.max_cycle_length = parallel.max_cycle_length = 4;
  serial.use_pruning = parallel.use_pruning = false;
  parallel.num_threads = 4;
  const CycleRankScores a = ComputeCycleRank(g, 2, serial).value();
  const CycleRankScores b = ComputeCycleRank(g, 2, parallel).value();
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  ASSERT_EQ(a.scores.size(), b.scores.size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(a.scores[u], b.scores[u], 1e-12 * (1.0 + a.scores[u]));
  }
}

TEST(CycleRankTest, ParallelWithMoreThreadsThanBranches) {
  const Graph g = ReciprocalPair();  // reference has 1 out-neighbour
  CycleRankOptions options;
  options.max_cycle_length = 3;
  options.num_threads = 8;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  EXPECT_EQ(cr.total_cycles, 1u);
  EXPECT_DOUBLE_EQ(cr.scores[0], std::exp(-2.0));
}

TEST(CycleRankTest, ParallelIgnoredWhenMaxCyclesSet) {
  // A global cycle cap cannot be split across branches; the implementation
  // falls back to the serial enumerator and still honors the cap.
  GraphBuilder builder;
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = 0; v < 6; ++v) {
      if (u != v) builder.AddEdge(u, v);
    }
  }
  const Graph g = builder.Build().value();
  CycleRankOptions options;
  options.max_cycle_length = 5;
  options.max_cycles = 7;
  options.num_threads = 8;
  const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
  EXPECT_TRUE(cr.truncated);
  EXPECT_EQ(cr.total_cycles, 7u);
}

TEST(CycleRankTest, LargerKNeverDecreasesScores) {
  BarabasiAlbertConfig config;
  config.num_nodes = 50;
  config.edges_per_node = 3;
  config.reciprocity = 0.5;
  config.seed = 10;
  const Graph g = GenerateBarabasiAlbert(config).value();
  CycleRankOptions k3, k5;
  k3.max_cycle_length = 3;
  k5.max_cycle_length = 5;
  const CycleRankScores a = ComputeCycleRank(g, 0, k3).value();
  const CycleRankScores b = ComputeCycleRank(g, 0, k5).value();
  EXPECT_GE(b.total_cycles, a.total_cycles);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_GE(b.scores[u], a.scores[u] - 1e-15);
  }
}

}  // namespace
}  // namespace cyclerank
