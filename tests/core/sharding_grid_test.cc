// Bit-identity contract of the sharded kernels: for a fixed input, every
// (threads × shards) combination must produce output bitwise equal to the
// serial, unsharded run. Sharding only refines *where* a worker streams
// its CSR rows from — shard-local rows are element-equal to the parent's
// and merge batches are cut blind to the shard bounds (see
// common/frontier.h and src/core/README.md) — so these tests compare raw
// double vectors with operator==, no tolerance. The grid includes a shard
// count that does not divide the node count (uneven ranges) and one well
// above the thread count. Run under -DCYCLERANK_SANITIZE=thread this is
// also the data-race stress for the shard-refined expansion path.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/cheirank.h"
#include "core/cyclerank.h"
#include "core/forward_push.h"
#include "core/pagerank.h"
#include "datasets/generators.h"
#include "graph/graph_builder.h"
#include "graph/sharded_graph.h"
#include "graph/traversal.h"

namespace cyclerank {
namespace {

constexpr uint32_t kThreadGrid[] = {1, 2, 4, 8};
// 3 does not divide the test graphs' node counts (uneven ranges, and the
// canonical chunk boundaries almost never coincide with shard bounds);
// 8 exceeds half the thread grid.
constexpr uint32_t kShardGrid[] = {1, 2, 3, 8};

GraphPtr MakeBaGraph(NodeId n, uint64_t seed) {
  BarabasiAlbertConfig config;
  config.num_nodes = n;
  config.edges_per_node = 4;
  config.reciprocity = 0.4;
  config.seed = seed;
  return std::make_shared<const Graph>(GenerateBarabasiAlbert(config).value());
}

ShardedGraphPtr MakeView(const GraphPtr& g, uint32_t shards) {
  return std::make_shared<const ShardedGraph>(
      ShardedGraph::Build(g, shards, ContiguousRangePartitioner()).value());
}

TEST(ShardingGridTest, PageRankBitIdenticalAcrossTheGrid) {
  const GraphPtr g = MakeBaGraph(500, 17);
  PageRankOptions options;
  options.num_threads = 1;
  const PageRankScores base = ComputePageRank(*g, options).value();
  for (uint32_t shards : kShardGrid) {
    const ShardedGraphPtr view = MakeView(g, shards);
    options.sharded = view.get();
    for (uint32_t threads : kThreadGrid) {
      options.num_threads = threads;
      const PageRankScores other = ComputePageRank(*g, options).value();
      EXPECT_EQ(base.scores, other.scores)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(base.iterations, other.iterations);
      EXPECT_EQ(base.residual, other.residual);
      EXPECT_EQ(base.converged, other.converged);
    }
  }
}

TEST(ShardingGridTest, CheiRankUsesTheReverseShardRows) {
  // CheiRank runs the shared power iteration on the transposed adjacency:
  // the sharded path must stream shard-local *out*-rows and still match.
  const GraphPtr g = MakeBaGraph(400, 23);
  PageRankOptions options;
  options.num_threads = 1;
  const PageRankScores base = ComputeCheiRank(*g, options).value();
  const PageRankScores ppr_base =
      ComputePersonalizedPageRank(*g, 3, options).value();
  for (uint32_t shards : kShardGrid) {
    const ShardedGraphPtr view = MakeView(g, shards);
    options.sharded = view.get();
    for (uint32_t threads : kThreadGrid) {
      options.num_threads = threads;
      EXPECT_EQ(base.scores, ComputeCheiRank(*g, options).value().scores)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(ppr_base.scores,
                ComputePersonalizedPageRank(*g, 3, options).value().scores)
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ShardingGridTest, ForwardPushBitIdenticalAcrossTheGrid) {
  const GraphPtr g = MakeBaGraph(500, 31);
  ForwardPushOptions options;
  options.epsilon = 1e-8;  // thousands of pushes over many rounds
  options.num_threads = 1;
  const ForwardPushScores base = ComputeForwardPushPpr(*g, 0, options).value();
  EXPECT_GT(base.pushes, 0u);
  for (uint32_t shards : kShardGrid) {
    const ShardedGraphPtr view = MakeView(g, shards);
    options.sharded = view.get();
    for (uint32_t threads : kThreadGrid) {
      options.num_threads = threads;
      const ForwardPushScores other =
          ComputeForwardPushPpr(*g, 0, options).value();
      EXPECT_EQ(base.scores, other.scores)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(base.pushes, other.pushes)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(base.converged, other.converged);
      EXPECT_EQ(base.residual_mass, other.residual_mass);
    }
  }
}

TEST(ShardingGridTest, ForwardPushTruncationShardCountIndependent) {
  // The max_pushes cap is enforced at round boundaries; the admission
  // order (dedup included) must not shift when execution chunks are
  // refined at shard crossings.
  const GraphPtr g = MakeBaGraph(400, 37);
  ForwardPushOptions options;
  options.epsilon = 1e-10;
  options.max_pushes = 200;
  options.num_threads = 1;
  const ForwardPushScores base = ComputeForwardPushPpr(*g, 0, options).value();
  EXPECT_FALSE(base.converged);
  for (uint32_t shards : kShardGrid) {
    const ShardedGraphPtr view = MakeView(g, shards);
    options.sharded = view.get();
    for (uint32_t threads : kThreadGrid) {
      options.num_threads = threads;
      const ForwardPushScores other =
          ComputeForwardPushPpr(*g, 0, options).value();
      EXPECT_EQ(base.scores, other.scores)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(base.pushes, other.pushes);
      EXPECT_EQ(base.converged, other.converged);
      EXPECT_EQ(base.residual_mass, other.residual_mass);
    }
  }
}

TEST(ShardingGridTest, BfsDistancesIdenticalAcrossTheGrid) {
  const GraphPtr g = MakeBaGraph(600, 41);
  const std::vector<uint32_t> forward =
      BfsDistances(*g, 0, Direction::kForward).value();
  const std::vector<uint32_t> backward =
      BfsDistances(*g, 0, Direction::kBackward).value();
  for (uint32_t shards : kShardGrid) {
    const ShardedGraphPtr view = MakeView(g, shards);
    for (uint32_t threads : kThreadGrid) {
      EXPECT_EQ(forward, BfsDistances(*g, 0, Direction::kForward, kUnreachable,
                                      threads, view.get())
                             .value())
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(backward,
                BfsDistances(*g, 0, Direction::kBackward, kUnreachable,
                             threads, view.get())
                    .value())
          << "threads=" << threads << " shards=" << shards;
    }
  }
}

TEST(ShardingGridTest, CycleRankBitIdenticalAcrossTheGrid) {
  // The sharded view feeds CycleRank's backward pruning BFS; scores,
  // counts, and the work metric must not move.
  const GraphPtr g = MakeBaGraph(300, 29);
  CycleRankOptions options;
  options.max_cycle_length = 4;
  options.use_pruning = true;
  options.num_threads = 1;
  const CycleRankScores base = ComputeCycleRank(*g, 0, options).value();
  for (uint32_t shards : kShardGrid) {
    const ShardedGraphPtr view = MakeView(g, shards);
    options.sharded = view.get();
    for (uint32_t threads : kThreadGrid) {
      options.num_threads = threads;
      const CycleRankScores other = ComputeCycleRank(*g, 0, options).value();
      EXPECT_EQ(base.scores, other.scores)
          << "threads=" << threads << " shards=" << shards;
      EXPECT_EQ(base.total_cycles, other.total_cycles);
      EXPECT_EQ(base.dfs_expansions, other.dfs_expansions);
    }
  }
}

TEST(ShardingGridTest, DegreeBalancedPartitionIsBitIdenticalToo) {
  // The partitioner seam is pluggable: a different cut policy moves the
  // shard bounds, never the results.
  const GraphPtr g = MakeBaGraph(500, 17);
  PageRankOptions pr_options;
  const PageRankScores pr_base = ComputePageRank(*g, pr_options).value();
  ForwardPushOptions fp_options;
  fp_options.epsilon = 1e-8;
  const ForwardPushScores fp_base =
      ComputeForwardPushPpr(*g, 0, fp_options).value();
  for (uint32_t shards : {2u, 5u}) {
    const auto view = std::make_shared<const ShardedGraph>(
        ShardedGraph::Build(g, shards, DegreeBalancedPartitioner()).value());
    pr_options.sharded = view.get();
    pr_options.num_threads = 4;
    fp_options.sharded = view.get();
    fp_options.num_threads = 4;
    EXPECT_EQ(pr_base.scores, ComputePageRank(*g, pr_options).value().scores)
        << "shards=" << shards;
    EXPECT_EQ(fp_base.scores,
              ComputeForwardPushPpr(*g, 0, fp_options).value().scores)
        << "shards=" << shards;
  }
}

TEST(ShardingGridTest, MoreShardsThanNodesStillExact) {
  // Empty shards are legal; a tiny graph under an oversized partition
  // must run (and match) rather than degenerate.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  const auto g = std::make_shared<const Graph>(builder.Build().value());
  const ShardedGraphPtr view = MakeView(g, 8);
  PageRankOptions options;
  options.sharded = view.get();
  options.num_threads = 2;
  const PageRankScores base = ComputePageRank(*g).value();
  EXPECT_EQ(base.scores, ComputePageRank(*g, options).value().scores);
  EXPECT_EQ(BfsDistances(*g, 0, Direction::kForward).value(),
            BfsDistances(*g, 0, Direction::kForward, kUnreachable, 2,
                         view.get())
                .value());
}

TEST(ShardingGridTest, ViewOfADifferentGraphIsRejected) {
  // The kernels validate the view's parent against the graph they run on
  // — a mismatched view (the graph-store rebind race, mis-plumbing) is an
  // InvalidArgument, never silent wrong reads.
  const GraphPtr g = MakeBaGraph(100, 5);
  const GraphPtr other = MakeBaGraph(100, 6);
  const ShardedGraphPtr view = MakeView(other, 2);
  PageRankOptions pr_options;
  pr_options.sharded = view.get();
  EXPECT_EQ(ComputePageRank(*g, pr_options).status().code(),
            StatusCode::kInvalidArgument);
  ForwardPushOptions fp_options;
  fp_options.sharded = view.get();
  EXPECT_EQ(ComputeForwardPushPpr(*g, 0, fp_options).status().code(),
            StatusCode::kInvalidArgument);
  CycleRankOptions cr_options;
  cr_options.sharded = view.get();
  EXPECT_EQ(ComputeCycleRank(*g, 0, cr_options).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(BfsDistances(*g, 0, Direction::kForward, kUnreachable, 1,
                         view.get())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cyclerank
