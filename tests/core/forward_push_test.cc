#include "core/forward_push.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/pagerank.h"
#include "core/ranking.h"
#include "datasets/generators.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TEST(ForwardPushTest, ApproximatesExactPprWithinEpsilonDegreeBound) {
  BarabasiAlbertConfig config;
  config.num_nodes = 300;
  config.edges_per_node = 4;
  config.reciprocity = 0.3;
  config.seed = 14;
  const Graph g = GenerateBarabasiAlbert(config).value();

  PageRankOptions exact_options;
  exact_options.tolerance = 1e-13;
  exact_options.max_iterations = 500;
  const PageRankScores exact =
      ComputePersonalizedPageRank(g, 0, exact_options).value();

  ForwardPushOptions push_options;
  push_options.epsilon = 1e-6;
  const ForwardPushScores approx =
      ComputeForwardPushPpr(g, 0, push_options).value();
  ASSERT_TRUE(approx.converged);

  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    // ACL invariant: underestimate, off by at most eps * out_degree
    // (loosened slightly for the dangling-teleport variant).
    EXPECT_LE(approx.scores[u], exact.scores[u] + 1e-9) << "node " << u;
    EXPECT_GE(approx.scores[u],
              exact.scores[u] -
                  10 * push_options.epsilon * (g.OutDegree(u) + 1.0))
        << "node " << u;
  }
}

TEST(ForwardPushTest, MassConservation) {
  BarabasiAlbertConfig config;
  config.num_nodes = 150;
  config.edges_per_node = 3;
  config.seed = 2;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const ForwardPushScores scores = ComputeForwardPushPpr(g, 1).value();
  double estimate_mass = 0.0;
  for (double s : scores.scores) estimate_mass += s;
  EXPECT_NEAR(estimate_mass + scores.residual_mass, 1.0, 1e-9);
  EXPECT_GE(scores.residual_mass, 0.0);
}

TEST(ForwardPushTest, SmallerEpsilonIsMoreAccurate) {
  BarabasiAlbertConfig config;
  config.num_nodes = 200;
  config.edges_per_node = 4;
  config.reciprocity = 0.4;
  config.seed = 5;
  const Graph g = GenerateBarabasiAlbert(config).value();
  ForwardPushOptions coarse, fine;
  coarse.epsilon = 1e-3;
  fine.epsilon = 1e-8;
  const ForwardPushScores a = ComputeForwardPushPpr(g, 0, coarse).value();
  const ForwardPushScores b = ComputeForwardPushPpr(g, 0, fine).value();
  EXPECT_LT(b.residual_mass, a.residual_mass);
  EXPECT_GT(b.pushes, a.pushes);
}

TEST(ForwardPushTest, TopKMatchesExactPpr) {
  // The use case that matters to the demo: the top of the ranking agrees
  // with the exact computation.
  BarabasiAlbertConfig config;
  config.num_nodes = 250;
  config.edges_per_node = 5;
  config.reciprocity = 0.5;
  config.seed = 77;
  const Graph g = GenerateBarabasiAlbert(config).value();
  PageRankOptions exact_options;
  exact_options.tolerance = 1e-13;
  const auto exact =
      ComputePersonalizedPageRank(g, 3, exact_options).value();
  ForwardPushOptions push_options;
  push_options.epsilon = 1e-9;
  const auto approx = ComputeForwardPushPpr(g, 3, push_options).value();
  const auto top_exact = TopKNodes(ScoresToRankedList(exact.scores), 5);
  const auto top_approx = TopKNodes(ScoresToRankedList(approx.scores), 5);
  EXPECT_EQ(top_exact, top_approx);
}

TEST(ForwardPushTest, LocalityTouchesOnlyReachableNodes) {
  // Two disconnected reciprocal pairs: pushing from 0 must leave 2,3 at 0.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(2, 3);
  builder.AddEdge(3, 2);
  const Graph g = builder.Build().value();
  const ForwardPushScores scores = ComputeForwardPushPpr(g, 0).value();
  EXPECT_GT(scores.scores[0], 0.0);
  EXPECT_GT(scores.scores[1], 0.0);
  EXPECT_DOUBLE_EQ(scores.scores[2], 0.0);
  EXPECT_DOUBLE_EQ(scores.scores[3], 0.0);
}

TEST(ForwardPushTest, DanglingMassTeleportsHome) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);  // 1 dangling
  const Graph g = builder.Build().value();
  ForwardPushOptions options;
  options.epsilon = 1e-12;
  const ForwardPushScores scores = ComputeForwardPushPpr(g, 0, options).value();
  PageRankOptions exact_options;
  exact_options.tolerance = 1e-14;
  const PageRankScores exact =
      ComputePersonalizedPageRank(g, 0, exact_options).value();
  EXPECT_NEAR(scores.scores[0], exact.scores[0], 1e-6);
  EXPECT_NEAR(scores.scores[1], exact.scores[1], 1e-6);
}

TEST(ForwardPushTest, MaxPushesCapStopsEarly) {
  BarabasiAlbertConfig config;
  config.num_nodes = 500;
  config.edges_per_node = 5;
  config.seed = 1;
  const Graph g = GenerateBarabasiAlbert(config).value();
  ForwardPushOptions options;
  options.epsilon = 1e-12;
  const uint64_t unbounded = ComputeForwardPushPpr(g, 0, options).value().pushes;

  options.max_pushes = 10;
  const ForwardPushScores scores = ComputeForwardPushPpr(g, 0, options).value();
  EXPECT_FALSE(scores.converged);
  // The cap is hard: each round's admission is budgeted by the remaining
  // allowance, so the count never exceeds it.
  EXPECT_LE(scores.pushes, 10u);
  EXPECT_LT(scores.pushes, unbounded);

  // A cap below the first round (the seed push) still reports truncation
  // after that one round.
  options.max_pushes = 1;
  const ForwardPushScores one = ComputeForwardPushPpr(g, 0, options).value();
  EXPECT_FALSE(one.converged);
}

TEST(ForwardPushTest, CapLandingOnConvergenceStillReportsConverged) {
  // A cap equal to the exact push count of the unbounded run is not a
  // truncation: nothing was pending when the cap was reached (matches the
  // old deque semantics, where an empty queue meant converged regardless
  // of the push count).
  BarabasiAlbertConfig config;
  config.num_nodes = 300;
  config.edges_per_node = 4;
  config.seed = 8;
  const Graph g = GenerateBarabasiAlbert(config).value();
  ForwardPushOptions options;
  options.epsilon = 1e-6;
  const ForwardPushScores unbounded =
      ComputeForwardPushPpr(g, 0, options).value();
  ASSERT_TRUE(unbounded.converged);

  options.max_pushes = unbounded.pushes;
  const ForwardPushScores exact = ComputeForwardPushPpr(g, 0, options).value();
  EXPECT_TRUE(exact.converged);
  EXPECT_EQ(exact.pushes, unbounded.pushes);
  EXPECT_EQ(exact.scores, unbounded.scores);
}

TEST(ForwardPushTest, RejectsBadArguments) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(ComputeForwardPushPpr(g, 9).status().code(),
            StatusCode::kOutOfRange);
  ForwardPushOptions options;
  options.alpha = 1.5;
  EXPECT_EQ(ComputeForwardPushPpr(g, 0, options).status().code(),
            StatusCode::kInvalidArgument);
  options.alpha = 0.85;
  options.epsilon = 0.0;
  EXPECT_EQ(ComputeForwardPushPpr(g, 0, options).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cyclerank
