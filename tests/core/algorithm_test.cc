#include "core/algorithm.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph SmallCyclic() {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 3);
  return builder.Build().value();
}

TEST(AlgorithmTest, KindNameRoundTrip) {
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const auto parsed = AlgorithmKindFromString(AlgorithmKindToString(kind));
    ASSERT_TRUE(parsed.ok()) << AlgorithmKindToString(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(AlgorithmTest, PaperAliases) {
  EXPECT_EQ(AlgorithmKindFromString("ppr").value(),
            AlgorithmKind::kPersonalizedPageRank);
  EXPECT_EQ(AlgorithmKindFromString("PR").value(), AlgorithmKind::kPageRank);
  EXPECT_EQ(AlgorithmKindFromString("cr").value(), AlgorithmKind::kCycleRank);
  EXPECT_FALSE(AlgorithmKindFromString("hits").ok());
}

TEST(AlgorithmTest, SevenDemoAlgorithmsPlusExtensions) {
  // The demo compares CycleRank against 6 established algorithms (§V);
  // the library adds two efficient PPR approximations.
  EXPECT_EQ(AllAlgorithmKinds().size(), 9u);
}

TEST(AlgorithmTest, FactoryProducesEveryKind) {
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const auto algorithm = MakeAlgorithm(kind);
    ASSERT_NE(algorithm, nullptr);
    EXPECT_EQ(algorithm->name(), AlgorithmKindToString(kind));
  }
}

TEST(AlgorithmTest, ReferenceRequirementFlags) {
  EXPECT_FALSE(MakeAlgorithm(AlgorithmKind::kPageRank)->requires_reference());
  EXPECT_FALSE(MakeAlgorithm(AlgorithmKind::kCheiRank)->requires_reference());
  EXPECT_FALSE(MakeAlgorithm(AlgorithmKind::k2DRank)->requires_reference());
  EXPECT_TRUE(MakeAlgorithm(AlgorithmKind::kPersonalizedPageRank)
                  ->requires_reference());
  EXPECT_TRUE(MakeAlgorithm(AlgorithmKind::kPersonalizedCheiRank)
                  ->requires_reference());
  EXPECT_TRUE(
      MakeAlgorithm(AlgorithmKind::kPersonalized2DRank)->requires_reference());
  EXPECT_TRUE(MakeAlgorithm(AlgorithmKind::kCycleRank)->requires_reference());
}

TEST(AlgorithmTest, ScoreSemantics) {
  // 2DRank variants are rank-only (§II: "does not assign a score").
  EXPECT_FALSE(MakeAlgorithm(AlgorithmKind::k2DRank)->produces_scores());
  EXPECT_FALSE(
      MakeAlgorithm(AlgorithmKind::kPersonalized2DRank)->produces_scores());
  EXPECT_TRUE(MakeAlgorithm(AlgorithmKind::kPageRank)->produces_scores());
  EXPECT_TRUE(MakeAlgorithm(AlgorithmKind::kCycleRank)->produces_scores());
}

TEST(AlgorithmTest, EveryAlgorithmRunsOnSmallGraph) {
  const Graph g = SmallCyclic();
  AlgorithmRequest request;
  request.reference = 0;
  request.num_walks = 5000;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const auto algorithm = MakeAlgorithm(kind);
    const auto result = algorithm->Run(g, request);
    ASSERT_TRUE(result.ok()) << algorithm->name() << ": "
                             << result.status().ToString();
    EXPECT_FALSE(result->empty()) << algorithm->name();
    // Rankings are sorted by decreasing score.
    for (size_t i = 1; i < result->size(); ++i) {
      EXPECT_GE((*result)[i - 1].score, (*result)[i].score);
    }
  }
}

TEST(AlgorithmTest, MissingReferenceIsInvalidArgument) {
  const Graph g = SmallCyclic();
  AlgorithmRequest request;  // reference = kInvalidNode
  for (AlgorithmKind kind :
       {AlgorithmKind::kPersonalizedPageRank, AlgorithmKind::kCycleRank,
        AlgorithmKind::kPersonalizedCheiRank,
        AlgorithmKind::kPersonalized2DRank, AlgorithmKind::kPprForwardPush,
        AlgorithmKind::kPprMonteCarlo}) {
    const auto result = MakeAlgorithm(kind)->Run(g, request);
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument)
        << AlgorithmKindToString(kind);
  }
}

TEST(AlgorithmTest, TopKRequestTruncates) {
  const Graph g = SmallCyclic();
  AlgorithmRequest request;
  request.reference = 0;
  request.top_k = 2;
  request.num_walks = 1000;
  for (AlgorithmKind kind : AllAlgorithmKinds()) {
    const auto result = MakeAlgorithm(kind)->Run(g, request);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->size(), 2u) << AlgorithmKindToString(kind);
  }
}

TEST(AlgorithmTest, CycleRankDropsZeroScoredNodes) {
  const Graph g = SmallCyclic();  // node 3 is a sink: no cycles
  AlgorithmRequest request;
  request.reference = 0;
  const auto result =
      MakeAlgorithm(AlgorithmKind::kCycleRank)->Run(g, request);
  ASSERT_TRUE(result.ok());
  for (const ScoredNode& entry : *result) {
    EXPECT_NE(entry.node, 3u);
    EXPECT_GT(entry.score, 0.0);
  }
}

}  // namespace
}  // namespace cyclerank
