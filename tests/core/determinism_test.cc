// Determinism contract of the parallel ranking kernels: for a fixed input
// (and seed), PageRank, CycleRank, and Monte-Carlo PPR must produce
// bit-identical output at every thread count. The kernels guarantee this
// by chunking work on thread-count-independent boundaries and combining
// partials in a fixed order (see src/core/README.md), so these tests
// compare with operator== on the raw double vectors — no tolerance.

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/cheirank.h"
#include "core/cyclerank.h"
#include "core/forward_push.h"
#include "core/monte_carlo.h"
#include "core/pagerank.h"
#include "datasets/generators.h"
#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph MakeBaGraph(NodeId n, uint64_t seed, double reciprocity = 0.4) {
  BarabasiAlbertConfig config;
  config.num_nodes = n;
  config.edges_per_node = 4;
  config.reciprocity = reciprocity;
  config.seed = seed;
  return GenerateBarabasiAlbert(config).value();
}

/// A graph where most nodes are dangling: one hub cycle 0→1→0 plus many
/// sinks fed by node 0. Stresses the precomputed dangling-node list.
Graph DanglingHeavyGraph(NodeId num_sinks) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  for (NodeId s = 0; s < num_sinks; ++s) builder.AddEdge(0, 2 + s);
  return builder.Build().value();
}

TEST(DeterminismTest, PageRankBitIdenticalAcrossThreadCounts) {
  const Graph g = MakeBaGraph(600, 17);
  PageRankOptions options;
  options.num_threads = 1;
  const PageRankScores base = ComputePageRank(g, options).value();
  for (uint32_t threads : {2u, 8u}) {
    options.num_threads = threads;
    const PageRankScores other = ComputePageRank(g, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.iterations, other.iterations);
    EXPECT_EQ(base.residual, other.residual);
    EXPECT_EQ(base.converged, other.converged);
  }
}

TEST(DeterminismTest, PersonalizedPageRankAndCheiRankBitIdentical) {
  const Graph g = MakeBaGraph(400, 23);
  PageRankOptions options;
  options.num_threads = 1;
  const PageRankScores ppr1 =
      ComputePersonalizedPageRank(g, 3, options).value();
  const PageRankScores chei1 = ComputeCheiRank(g, options).value();
  options.num_threads = 8;
  EXPECT_EQ(ppr1.scores,
            ComputePersonalizedPageRank(g, 3, options).value().scores);
  EXPECT_EQ(chei1.scores, ComputeCheiRank(g, options).value().scores);
}

TEST(DeterminismTest, PageRankOnDanglingHeavyGraph) {
  // 300 of 302 nodes are dangling; mass must still sum to 1 and the
  // parallel runs must match the serial one exactly.
  const Graph g = DanglingHeavyGraph(300);
  PageRankOptions options;
  options.num_threads = 1;
  const PageRankScores base = ComputePageRank(g, options).value();
  const double sum =
      std::accumulate(base.scores.begin(), base.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  for (uint32_t threads : {2u, 8u}) {
    options.num_threads = threads;
    EXPECT_EQ(base.scores, ComputePageRank(g, options).value().scores)
        << "threads=" << threads;
  }
}

TEST(DeterminismTest, CycleRankBitIdenticalAcrossThreadCounts) {
  const Graph g = MakeBaGraph(300, 29, /*reciprocity=*/0.5);
  CycleRankOptions options;
  options.max_cycle_length = 4;
  options.collect_per_node_counts = true;
  options.num_threads = 1;
  const CycleRankScores base = ComputeCycleRank(g, 0, options).value();
  for (uint32_t threads : {2u, 8u}) {
    options.num_threads = threads;
    const CycleRankScores other = ComputeCycleRank(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.total_cycles, other.total_cycles);
    EXPECT_EQ(base.cycles_by_length, other.cycles_by_length);
    EXPECT_EQ(base.cycle_counts_per_node, other.cycle_counts_per_node);
    EXPECT_EQ(base.dfs_expansions, other.dfs_expansions);
  }
}

TEST(DeterminismTest, CycleRankHighOutDegreeHub) {
  // A 500-branch hub: every branch is its own 2-cycle through the
  // reference. The branch driver processes these with at most one reusable
  // workspace per worker (sparse touched-node partials), instead of the
  // old dense O(out_degree × n) per-branch score vectors; output must be
  // exact and thread-count independent.
  GraphBuilder builder;
  const NodeId kBranches = 500;
  for (NodeId b = 0; b < kBranches; ++b) {
    builder.AddEdge(0, 1 + b);
    builder.AddEdge(1 + b, 0);
  }
  const Graph g = builder.Build().value();
  CycleRankOptions options;
  options.max_cycle_length = 3;
  options.num_threads = 1;
  const CycleRankScores base = ComputeCycleRank(g, 0, options).value();
  EXPECT_EQ(base.total_cycles, kBranches);
  EXPECT_DOUBLE_EQ(base.scores[1], std::exp(-2.0));
  // The reference accumulates one σ(2) per branch (sequential sum, so
  // compare with a tolerance, not bitwise against the product).
  EXPECT_NEAR(base.scores[0], static_cast<double>(kBranches) * std::exp(-2.0),
              1e-10);
  for (uint32_t threads : {2u, 8u}) {
    options.num_threads = threads;
    const CycleRankScores other = ComputeCycleRank(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.dfs_expansions, other.dfs_expansions);
  }
}

TEST(DeterminismTest, CycleRankZeroOutDegreeReference) {
  // The reference has in-edges but no out-edges: no branches, no cycles,
  // only the root expansion — at every thread count.
  GraphBuilder builder;
  builder.AddEdge(1, 0);
  builder.AddEdge(2, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 1);
  const Graph g = builder.Build().value();
  CycleRankOptions options;
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.num_threads = threads;
    const CycleRankScores cr = ComputeCycleRank(g, 0, options).value();
    EXPECT_EQ(cr.total_cycles, 0u) << "threads=" << threads;
    EXPECT_EQ(cr.dfs_expansions, 1u);
    for (double s : cr.scores) EXPECT_EQ(s, 0.0);
  }
}

TEST(DeterminismTest, ForwardPushBitIdenticalAcrossThreadCounts) {
  const Graph g = MakeBaGraph(500, 31);
  ForwardPushOptions options;
  options.epsilon = 1e-8;  // thousands of pushes over many rounds
  options.num_threads = 1;
  const ForwardPushScores base = ComputeForwardPushPpr(g, 0, options).value();
  EXPECT_GT(base.pushes, 0u);
  for (uint32_t threads : {2u, 4u, 8u}) {
    options.num_threads = threads;
    const ForwardPushScores other =
        ComputeForwardPushPpr(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.pushes, other.pushes) << "threads=" << threads;
    EXPECT_EQ(base.converged, other.converged);
    EXPECT_EQ(base.residual_mass, other.residual_mass);
  }
}

TEST(DeterminismTest, ForwardPushTruncationThreadCountIndependent) {
  // The max_pushes cap lands at a round boundary, so the truncated output
  // (including which rounds ran) is the same at every thread count.
  const Graph g = MakeBaGraph(400, 37);
  ForwardPushOptions options;
  options.epsilon = 1e-10;
  options.max_pushes = 200;
  options.num_threads = 1;
  const ForwardPushScores base = ComputeForwardPushPpr(g, 0, options).value();
  EXPECT_FALSE(base.converged);
  for (uint32_t threads : {2u, 4u, 8u}) {
    options.num_threads = threads;
    const ForwardPushScores other =
        ComputeForwardPushPpr(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.pushes, other.pushes) << "threads=" << threads;
    EXPECT_EQ(base.converged, other.converged);
    EXPECT_EQ(base.residual_mass, other.residual_mass);
  }
}

TEST(DeterminismTest, ForwardPushDanglingHeavyAcrossThreadCounts) {
  // Teleport deltas from many dangling sinks all target the reference;
  // they must be accumulated in the same chunk order at every thread
  // count.
  const Graph g = DanglingHeavyGraph(300);
  ForwardPushOptions options;
  options.epsilon = 1e-9;
  options.num_threads = 1;
  const ForwardPushScores base = ComputeForwardPushPpr(g, 0, options).value();
  for (uint32_t threads : {2u, 8u}) {
    options.num_threads = threads;
    const ForwardPushScores other =
        ComputeForwardPushPpr(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.pushes, other.pushes);
    EXPECT_EQ(base.residual_mass, other.residual_mass);
  }
}

TEST(DeterminismTest, CycleRankWithParallelPruningBfsBitIdentical) {
  // End-to-end: the pruning BFS now runs on the frontier engine with the
  // query's thread budget; scores and the work metric must stay identical.
  const Graph g = MakeBaGraph(300, 43, /*reciprocity=*/0.5);
  CycleRankOptions options;
  options.max_cycle_length = 5;
  options.use_pruning = true;
  options.num_threads = 1;
  const CycleRankScores base = ComputeCycleRank(g, 0, options).value();
  for (uint32_t threads : {2u, 4u, 8u}) {
    options.num_threads = threads;
    const CycleRankScores other = ComputeCycleRank(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.dfs_expansions, other.dfs_expansions);
    EXPECT_EQ(base.total_cycles, other.total_cycles);
  }
}

TEST(DeterminismTest, MonteCarloBitIdenticalAcrossThreadCounts) {
  const Graph g = MakeBaGraph(200, 41);
  MonteCarloOptions options;
  options.num_walks = 50000;  // several shards
  options.seed = 7;
  options.num_threads = 1;
  const MonteCarloScores base = ComputeMonteCarloPpr(g, 0, options).value();
  for (uint32_t threads : {2u, 8u}) {
    options.num_threads = threads;
    const MonteCarloScores other = ComputeMonteCarloPpr(g, 0, options).value();
    EXPECT_EQ(base.scores, other.scores) << "threads=" << threads;
    EXPECT_EQ(base.total_steps, other.total_steps);
  }
}

TEST(DeterminismTest, MonteCarloZeroOutDegreeReference) {
  // A dangling reference teleports every step back home, so the visit
  // frequency concentrates entirely on the reference — for any threads.
  GraphBuilder builder;
  builder.AddEdge(1, 0);  // 0 has no out-edges
  const Graph g = builder.Build().value();
  MonteCarloOptions options;
  options.num_walks = 20000;
  for (uint32_t threads : {1u, 2u, 8u}) {
    options.num_threads = threads;
    const MonteCarloScores mc = ComputeMonteCarloPpr(g, 0, options).value();
    EXPECT_DOUBLE_EQ(mc.scores[0], 1.0) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(mc.scores[1], 0.0);
  }
}

}  // namespace
}  // namespace cyclerank
