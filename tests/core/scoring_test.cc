#include "core/scoring.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

TEST(ScoringTest, ExponentialValues) {
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kExponential, 2), std::exp(-2.0));
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kExponential, 5), std::exp(-5.0));
}

TEST(ScoringTest, LinearValues) {
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kLinear, 2), 0.5);
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kLinear, 4), 0.25);
}

TEST(ScoringTest, QuadraticValues) {
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kQuadratic, 2), 0.25);
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kQuadratic, 3), 1.0 / 9.0);
}

TEST(ScoringTest, ConstantValues) {
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kConstant, 2), 1.0);
  EXPECT_DOUBLE_EQ(Sigma(ScoringFunction::kConstant, 100), 1.0);
}

TEST(ScoringTest, AllFunctionsDecreasingOrConstantInLength) {
  for (auto fn : {ScoringFunction::kExponential, ScoringFunction::kLinear,
                  ScoringFunction::kQuadratic, ScoringFunction::kConstant}) {
    for (uint32_t n = 2; n < 10; ++n) {
      EXPECT_GE(Sigma(fn, n), Sigma(fn, n + 1)) << "n=" << n;
      EXPECT_GT(Sigma(fn, n), 0.0);
    }
  }
}

TEST(ScoringTest, ShorterCyclesWeighStrictlyMore) {
  // "As short distances represent a stronger relationship, short cycles
  // receive a higher weight" (§II) — strict for the non-constant σ.
  for (auto fn : {ScoringFunction::kExponential, ScoringFunction::kLinear,
                  ScoringFunction::kQuadratic}) {
    EXPECT_GT(Sigma(fn, 2), Sigma(fn, 3));
  }
}

TEST(ScoringTest, RoundTripNames) {
  for (auto fn : {ScoringFunction::kExponential, ScoringFunction::kLinear,
                  ScoringFunction::kQuadratic, ScoringFunction::kConstant}) {
    const auto parsed =
        ScoringFunctionFromString(ScoringFunctionToString(fn));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fn);
  }
}

TEST(ScoringTest, ParsesLongNamesAndCase) {
  EXPECT_EQ(ScoringFunctionFromString("EXPONENTIAL").value(),
            ScoringFunction::kExponential);
  EXPECT_EQ(ScoringFunctionFromString(" linear ").value(),
            ScoringFunction::kLinear);
  EXPECT_EQ(ScoringFunctionFromString("Quadratic").value(),
            ScoringFunction::kQuadratic);
  EXPECT_EQ(ScoringFunctionFromString("constant").value(),
            ScoringFunction::kConstant);
}

TEST(ScoringTest, RejectsUnknownName) {
  EXPECT_EQ(ScoringFunctionFromString("cubic").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(ScoringFunctionFromString("").ok());
}

}  // namespace
}  // namespace cyclerank
