#include "core/ranking.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TEST(RankingTest, SortsDescendingByScore) {
  const RankedList list = ScoresToRankedList({0.1, 0.5, 0.3});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].node, 1u);
  EXPECT_EQ(list[1].node, 2u);
  EXPECT_EQ(list[2].node, 0u);
}

TEST(RankingTest, TiesBrokenByAscendingId) {
  const RankedList list = ScoresToRankedList({0.5, 0.9, 0.5, 0.5});
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[0].node, 1u);
  EXPECT_EQ(list[1].node, 0u);
  EXPECT_EQ(list[2].node, 2u);
  EXPECT_EQ(list[3].node, 3u);
}

TEST(RankingTest, DropZerosDefault) {
  const RankedList list = ScoresToRankedList({0.0, 0.5, 0.0, 0.2});
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].node, 1u);
  EXPECT_EQ(list[1].node, 3u);
}

TEST(RankingTest, KeepZerosWhenRequested) {
  RankingOptions options;
  options.drop_zeros = false;
  const RankedList list = ScoresToRankedList({0.0, 0.5}, options);
  EXPECT_EQ(list.size(), 2u);
}

TEST(RankingTest, TopKTruncates) {
  RankingOptions options;
  options.top_k = 2;
  const RankedList list =
      ScoresToRankedList({0.1, 0.2, 0.3, 0.4, 0.5}, options);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0].node, 4u);
  EXPECT_EQ(list[1].node, 3u);
}

TEST(RankingTest, TopKZeroKeepsAll) {
  RankingOptions options;
  options.top_k = 0;
  EXPECT_EQ(ScoresToRankedList({0.1, 0.2, 0.3}, options).size(), 3u);
}

TEST(RankingTest, OrderToRankedListAssignsDecreasingScores) {
  const RankedList list = OrderToRankedList({7, 3, 5});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].node, 7u);
  EXPECT_GT(list[0].score, list[1].score);
  EXPECT_GT(list[1].score, list[2].score);
}

TEST(RankingTest, OrderToRankedListTopK) {
  const RankedList list = OrderToRankedList({7, 3, 5, 1}, 2);
  EXPECT_EQ(list.size(), 2u);
}

TEST(RankingTest, RankPositions) {
  const RankedList list = ScoresToRankedList({0.1, 0.5, 0.3});
  const auto pos = RankPositions(list, 4);
  EXPECT_EQ(pos[1], 0u);
  EXPECT_EQ(pos[2], 1u);
  EXPECT_EQ(pos[0], 2u);
  EXPECT_EQ(pos[3], 4u);  // absent -> sentinel n
}

TEST(RankingTest, TopKNodes) {
  const RankedList list = ScoresToRankedList({0.1, 0.5, 0.3});
  EXPECT_EQ(TopKNodes(list, 2), (std::vector<NodeId>{1, 2}));
  EXPECT_EQ(TopKNodes(list, 10).size(), 3u);  // clamps to size
}

TEST(RankingTest, FormatTopKUsesLabels) {
  GraphBuilder builder;
  builder.AddEdge("Pasta", "Italy");
  const Graph g = builder.Build().value();
  const RankedList list = ScoresToRankedList({0.7, 0.3});
  const std::string text = FormatTopK(list, g, 2);
  EXPECT_NE(text.find("1. Pasta"), std::string::npos);
  EXPECT_NE(text.find("2. Italy"), std::string::npos);
}

TEST(RankingTest, EmptyScores) {
  EXPECT_TRUE(ScoresToRankedList({}).empty());
  EXPECT_TRUE(OrderToRankedList({}).empty());
  EXPECT_TRUE(TopKNodes({}, 3).empty());
}

}  // namespace
}  // namespace cyclerank
