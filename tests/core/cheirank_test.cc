#include "core/cheirank.h"

#include <numeric>

#include <gtest/gtest.h>

#include "core/pagerank.h"
#include "datasets/generators.h"
#include "graph/graph_builder.h"
#include "graph/transforms.h"

namespace cyclerank {
namespace {

TEST(CheiRankTest, EqualsPageRankOnMaterializedTranspose) {
  // The defining property (§II): CheiRank(G) == PageRank(Gᵀ).
  BarabasiAlbertConfig config;
  config.num_nodes = 200;
  config.edges_per_node = 4;
  config.reciprocity = 0.2;
  config.seed = 3;
  const Graph g = GenerateBarabasiAlbert(config).value();
  const Graph gt = Transpose(g).value();
  PageRankOptions options;
  options.tolerance = 1e-12;
  const PageRankScores chei = ComputeCheiRank(g, options).value();
  const PageRankScores pr_t = ComputePageRank(gt, options).value();
  ASSERT_EQ(chei.scores.size(), pr_t.scores.size());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_NEAR(chei.scores[u], pr_t.scores[u], 1e-9) << "node " << u;
  }
}

TEST(CheiRankTest, RewardsOutgoingHubs) {
  // Node 0 links to many nodes (an "index page"): high CheiRank, low PR.
  GraphBuilder builder;
  for (NodeId v = 1; v <= 8; ++v) builder.AddEdge(0, v);
  builder.AddEdge(1, 2);
  const Graph g = builder.Build().value();
  const PageRankScores chei = ComputeCheiRank(g).value();
  const PageRankScores pr = ComputePageRank(g).value();
  for (NodeId v = 1; v <= 8; ++v) EXPECT_GT(chei.scores[0], chei.scores[v]);
  EXPECT_LT(pr.scores[0], pr.scores[2]);  // nobody links to 0
}

TEST(CheiRankTest, ScoresSumToOne) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.ReserveNodes(4);
  const Graph g = builder.Build().value();
  const PageRankScores chei = ComputeCheiRank(g).value();
  const double sum =
      std::accumulate(chei.scores.begin(), chei.scores.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(CheiRankTest, SymmetricGraphEqualsPageRank) {
  // On a symmetric (reciprocal) graph, G == Gᵀ, so CheiRank == PageRank.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 1);
  const Graph g = builder.Build().value();
  const PageRankScores chei = ComputeCheiRank(g).value();
  const PageRankScores pr = ComputePageRank(g).value();
  for (NodeId u = 0; u < 3; ++u) {
    EXPECT_NEAR(chei.scores[u], pr.scores[u], 1e-9);
  }
}

TEST(PersonalizedCheiRankTest, ConcentratesAtReference) {
  GraphBuilder builder;
  for (NodeId u = 0; u < 6; ++u) builder.AddEdge(u, (u + 1) % 6);
  const Graph g = builder.Build().value();
  const PageRankScores scores = ComputePersonalizedCheiRank(g, 4).value();
  for (NodeId u = 0; u < 6; ++u) {
    if (u != 4) {
      EXPECT_GT(scores.scores[4], scores.scores[u]);
    }
  }
}

TEST(PersonalizedCheiRankTest, FollowsReversedEdges) {
  // 1 -> 0: personalized CheiRank from 0 walks the reversed edge 0 -> 1.
  GraphBuilder builder;
  builder.AddEdge(1, 0);
  builder.ReserveNodes(3);
  const Graph g = builder.Build().value();
  const PageRankScores scores = ComputePersonalizedCheiRank(g, 0).value();
  EXPECT_GT(scores.scores[1], 0.0);
  EXPECT_DOUBLE_EQ(scores.scores[2], 0.0);
}

TEST(PersonalizedCheiRankTest, RejectsInvalidReference) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  EXPECT_EQ(ComputePersonalizedCheiRank(g, 42).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace cyclerank
