#include "core/pagerank.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

Graph Cycle(NodeId n) {
  GraphBuilder builder;
  for (NodeId u = 0; u < n; ++u) builder.AddEdge(u, (u + 1) % n);
  return builder.Build().value();
}

TEST(PageRankTest, UniformOnSymmetricCycle) {
  const Graph g = Cycle(5);
  const PageRankScores pr = ComputePageRank(g).value();
  ASSERT_TRUE(pr.converged);
  for (double score : pr.scores) EXPECT_NEAR(score, 0.2, 1e-9);
}

TEST(PageRankTest, ScoresSumToOne) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(0, 2);
  builder.AddEdge(3, 0);  // 3 is a source; 4 dangling
  builder.ReserveNodes(5);
  const Graph g = builder.Build().value();
  const PageRankScores pr = ComputePageRank(g).value();
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
}

TEST(PageRankTest, DanglingNodesDoNotLeakMass) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);  // 1 is dangling
  const Graph g = builder.Build().value();
  const PageRankScores pr = ComputePageRank(g).value();
  EXPECT_NEAR(Sum(pr.scores), 1.0, 1e-9);
  EXPECT_GT(pr.scores[1], pr.scores[0]);  // 1 receives, 0 only teleports
}

TEST(PageRankTest, HigherInDegreeHigherRank) {
  GraphBuilder builder;
  for (NodeId u = 1; u <= 6; ++u) builder.AddEdge(u, 0);  // hub 0
  builder.AddEdge(1, 2);
  const Graph g = builder.Build().value();
  const PageRankScores pr = ComputePageRank(g).value();
  for (NodeId u = 1; u <= 6; ++u) EXPECT_GT(pr.scores[0], pr.scores[u]);
}

TEST(PageRankTest, KnownTwoNodeSolution) {
  // 0 <-> 1: symmetric, each gets 0.5 for any alpha.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  const Graph g = builder.Build().value();
  for (double alpha : {0.3, 0.5, 0.85, 0.99}) {
    PageRankOptions options;
    options.alpha = alpha;
    const PageRankScores pr = ComputePageRank(g, options).value();
    EXPECT_NEAR(pr.scores[0], 0.5, 1e-9) << "alpha=" << alpha;
    EXPECT_NEAR(pr.scores[1], 0.5, 1e-9) << "alpha=" << alpha;
  }
}

TEST(PageRankTest, StarGraphClosedForm) {
  // Star: leaves 1..4 -> center 0, center dangling.
  // With dangling redistribution to uniform teleport, the closed form for
  // the leaf score x and center score c satisfies:
  //   x = (1-a)/n + a*c/n        (dangling mass c spreads uniformly)
  //   c = (1-a)/n + a*(4x + c/n)
  constexpr double kAlpha = 0.85;
  GraphBuilder builder;
  for (NodeId u = 1; u <= 4; ++u) builder.AddEdge(u, 0);
  const Graph g = builder.Build().value();
  PageRankOptions options;
  options.alpha = kAlpha;
  options.tolerance = 1e-14;
  const PageRankScores pr = ComputePageRank(g, options).value();
  const double n = 5.0;
  // Solve the 2x2 linear system analytically.
  //   x - a/n c = (1-a)/n
  //   -4a x + (1 - a/n) c = (1-a)/n
  const double b = (1.0 - kAlpha) / n;
  const double a11 = 1.0, a12 = -kAlpha / n;
  const double a21 = -4.0 * kAlpha, a22 = 1.0 - kAlpha / n;
  const double det = a11 * a22 - a12 * a21;
  const double x = (b * a22 - a12 * b) / det;
  const double c = (a11 * b - b * a21) / det;
  EXPECT_NEAR(pr.scores[1], x, 1e-10);
  EXPECT_NEAR(pr.scores[0], c, 1e-10);
}

TEST(PageRankTest, ConvergenceMetadata) {
  const Graph g = Cycle(10);
  PageRankOptions options;
  options.tolerance = 1e-12;
  const PageRankScores pr = ComputePageRank(g, options).value();
  EXPECT_TRUE(pr.converged);
  EXPECT_GT(pr.iterations, 0u);
  EXPECT_LT(pr.residual, options.tolerance);
}

TEST(PageRankTest, IterationCapReportsNotConverged) {
  GraphBuilder builder;
  for (NodeId u = 0; u < 50; ++u) builder.AddEdge(u, (u * 7 + 1) % 50);
  builder.AddEdge(0, 25);
  const Graph g = builder.Build().value();
  PageRankOptions options;
  options.max_iterations = 1;
  options.tolerance = 1e-15;
  const PageRankScores pr = ComputePageRank(g, options).value();
  EXPECT_FALSE(pr.converged);
  EXPECT_EQ(pr.iterations, 1u);
}

TEST(PageRankTest, RejectsBadParameters) {
  const Graph g = Cycle(3);
  PageRankOptions options;
  options.alpha = 0.0;
  EXPECT_EQ(ComputePageRank(g, options).status().code(),
            StatusCode::kInvalidArgument);
  options.alpha = 1.0;
  EXPECT_EQ(ComputePageRank(g, options).status().code(),
            StatusCode::kInvalidArgument);
  options.alpha = 0.85;
  options.tolerance = 0.0;
  EXPECT_EQ(ComputePageRank(g, options).status().code(),
            StatusCode::kInvalidArgument);
  options.tolerance = 1e-9;
  options.max_iterations = 0;
  EXPECT_EQ(ComputePageRank(g, options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PageRankTest, RejectsEmptyGraph) {
  EXPECT_EQ(ComputePageRank(Graph()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PersonalizedPageRankTest, TeleportConcentratesAtReference) {
  const Graph g = Cycle(6);
  const PageRankScores ppr = ComputePersonalizedPageRank(g, 2).value();
  for (NodeId u = 0; u < 6; ++u) {
    if (u != 2) {
      EXPECT_GT(ppr.scores[2], ppr.scores[u]);
    }
  }
  EXPECT_NEAR(Sum(ppr.scores), 1.0, 1e-9);
}

TEST(PersonalizedPageRankTest, UnreachableNodesGetZero) {
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 0);
  builder.AddEdge(2, 0);  // 2 reaches 0, but 0 never reaches 2
  const Graph g = builder.Build().value();
  const PageRankScores ppr = ComputePersonalizedPageRank(g, 0).value();
  EXPECT_DOUBLE_EQ(ppr.scores[2], 0.0);
  EXPECT_GT(ppr.scores[1], 0.0);
}

TEST(PersonalizedPageRankTest, LowAlphaConcentratesMoreMassAtReference) {
  const Graph g = Cycle(8);
  PageRankOptions low, high;
  low.alpha = 0.3;
  high.alpha = 0.85;
  const double at_low =
      ComputePersonalizedPageRank(g, 0, low).value().scores[0];
  const double at_high =
      ComputePersonalizedPageRank(g, 0, high).value().scores[0];
  EXPECT_GT(at_low, at_high);
}

TEST(PersonalizedPageRankTest, MultiNodeTeleportSet) {
  const Graph g = Cycle(6);
  PageRankOptions options;
  options.teleport_set = {0, 3};
  const PageRankScores ppr = ComputePageRank(g, options).value();
  EXPECT_NEAR(Sum(ppr.scores), 1.0, 1e-9);
  // By symmetry of the cycle, 0 and 3 are equivalent.
  EXPECT_NEAR(ppr.scores[0], ppr.scores[3], 1e-9);
  EXPECT_GT(ppr.scores[0], ppr.scores[2]);
}

TEST(PersonalizedPageRankTest, RejectsBadTeleportSet) {
  const Graph g = Cycle(4);
  PageRankOptions options;
  options.teleport_set = {0, 0};
  EXPECT_EQ(ComputePageRank(g, options).status().code(),
            StatusCode::kInvalidArgument);
  options.teleport_set = {99};
  EXPECT_EQ(ComputePageRank(g, options).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(ComputePersonalizedPageRank(g, 99).status().code(),
            StatusCode::kOutOfRange);
}

TEST(PersonalizedPageRankTest, DanglingMassReturnsToReference) {
  // 0 -> 1, 1 dangling: mass teleports home, not uniformly.
  GraphBuilder builder;
  builder.AddEdge(0, 1);
  const Graph g = builder.Build().value();
  const PageRankScores ppr = ComputePersonalizedPageRank(g, 0).value();
  EXPECT_NEAR(Sum(ppr.scores), 1.0, 1e-9);
  EXPECT_GT(ppr.scores[0], ppr.scores[1]);
}

}  // namespace
}  // namespace cyclerank
