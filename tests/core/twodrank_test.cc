#include "core/twodrank.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

TEST(MergeTwoDimTest, OrdersByShell) {
  // K  = (0, 1, 2), K* = (2, 1, 0):
  // shells: node0 max(0,2)=2, node1 max(1,1)=1, node2 max(2,0)=2.
  // node1 first (shell 1); then shell 2: node2 is on the CheiRank edge
  // (K*=0 < K=2 -> PageRank edge? K=2=shell, K*=0 -> PageRank edge class 1);
  // node0 has K*=2=shell, K=0 -> CheiRank edge class 0 -> before node2.
  const std::vector<NodeId> order =
      internal::MergeTwoDim({0, 1, 2}, {2, 1, 0});
  EXPECT_EQ(order, (std::vector<NodeId>{1, 0, 2}));
}

TEST(MergeTwoDimTest, CornerComesLastInShell) {
  // node0: K=1,K*=0 (chei edge at shell 1? K*=0<1, K=1 -> PR edge);
  // node1: K=0,K*=1 (chei edge); node2: corner K=K*=2... build 3 nodes:
  // shells: n0=1, n1=1, n2=2.
  // Within shell 1: chei-edge node (n1) before pr-edge node (n0).
  const std::vector<NodeId> order =
      internal::MergeTwoDim({1, 0, 2}, {0, 1, 2});
  EXPECT_EQ(order, (std::vector<NodeId>{1, 0, 2}));
}

TEST(MergeTwoDimTest, IdenticalRanksCornerOrder) {
  // K == K* for all: all corners, ordered by shell.
  const std::vector<NodeId> order =
      internal::MergeTwoDim({2, 0, 1}, {2, 0, 1});
  EXPECT_EQ(order, (std::vector<NodeId>{1, 2, 0}));
}

TEST(MergeTwoDimTest, OutputIsPermutation) {
  const std::vector<uint32_t> pr = {3, 1, 4, 0, 2};
  const std::vector<uint32_t> chei = {0, 2, 1, 4, 3};
  std::vector<NodeId> order = internal::MergeTwoDim(pr, chei);
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1, 2, 3, 4}));
}

Graph HubAndIndex() {
  // Node 0: "hub" — everyone links to it (top PageRank).
  // Node 1: "index" — links to everyone (top CheiRank).
  // Nodes 2..5: ordinary.
  GraphBuilder builder;
  for (NodeId u = 2; u <= 5; ++u) {
    builder.AddEdge(u, 0);
    builder.AddEdge(1, u);
  }
  builder.AddEdge(1, 0);
  builder.AddEdge(0, 1);
  return builder.Build().value();
}

TEST(TwoDRankTest, CombinesBothDimensions) {
  const Graph g = HubAndIndex();
  const TwoDRankResult result = Compute2DRank(g).value();
  ASSERT_EQ(result.order.size(), g.num_nodes());
  // Hub tops PageRank, index tops CheiRank.
  EXPECT_EQ(result.pagerank_position[0], 0u);
  EXPECT_EQ(result.cheirank_position[1], 0u);
  // Both must appear at the head of the 2D ranking, before ordinary nodes.
  const auto pos = [&](NodeId u) {
    return std::find(result.order.begin(), result.order.end(), u) -
           result.order.begin();
  };
  for (NodeId u = 2; u <= 5; ++u) {
    EXPECT_LT(pos(0), pos(u));
    EXPECT_LT(pos(1), pos(u));
  }
}

TEST(TwoDRankTest, OrderIsPermutationOfAllNodes) {
  const Graph g = HubAndIndex();
  TwoDRankResult result = Compute2DRank(g).value();
  std::sort(result.order.begin(), result.order.end());
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(result.order[u], u);
}

TEST(TwoDRankTest, PositionsAreConsistentPermutations) {
  const Graph g = HubAndIndex();
  const TwoDRankResult result = Compute2DRank(g).value();
  std::vector<bool> seen_pr(g.num_nodes(), false);
  std::vector<bool> seen_chei(g.num_nodes(), false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    ASSERT_LT(result.pagerank_position[u], g.num_nodes());
    ASSERT_LT(result.cheirank_position[u], g.num_nodes());
    EXPECT_FALSE(seen_pr[result.pagerank_position[u]]);
    EXPECT_FALSE(seen_chei[result.cheirank_position[u]]);
    seen_pr[result.pagerank_position[u]] = true;
    seen_chei[result.cheirank_position[u]] = true;
  }
}

TEST(Personalized2DRankTest, ReferenceRanksFirstOnCycle) {
  // On a directed cycle the reference tops both personalized PageRank and
  // personalized CheiRank (teleport target, symmetric decay around it), so
  // it must top the merged ranking.
  GraphBuilder builder;
  for (NodeId u = 0; u < 6; ++u) builder.AddEdge(u, (u + 1) % 6);
  const Graph g = builder.Build().value();
  const TwoDRankResult result = ComputePersonalized2DRank(g, 4).value();
  EXPECT_EQ(result.order.front(), 4u);
  EXPECT_EQ(result.pagerank_position[4], 0u);
  EXPECT_EQ(result.cheirank_position[4], 0u);
}

TEST(Personalized2DRankTest, DiffersFromGlobal2DRank) {
  const Graph g = HubAndIndex();
  const TwoDRankResult global = Compute2DRank(g).value();
  const TwoDRankResult personalized = ComputePersonalized2DRank(g, 3).value();
  EXPECT_NE(global.order, personalized.order);
}

TEST(Personalized2DRankTest, RejectsInvalidReference) {
  const Graph g = HubAndIndex();
  EXPECT_EQ(ComputePersonalized2DRank(g, 77).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace cyclerank
