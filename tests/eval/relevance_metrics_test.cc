#include "eval/relevance_metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

RankedList MakeList(std::initializer_list<NodeId> nodes) {
  RankedList out;
  double score = 1.0;
  for (NodeId u : nodes) {
    out.push_back({u, score});
    score *= 0.5;
  }
  return out;
}

TEST(PrecisionTest, CountsHitsOverK) {
  const RankedList ranking = MakeList({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, {1, 3}, 2).value(), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, {1, 3}, 4).value(), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, {1, 2}, 2).value(), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtK(ranking, {9}, 4).value(), 0.0);
}

TEST(PrecisionTest, ShortRankingDividesByK) {
  // Only 2 entries but k=4: missing slots count as misses.
  EXPECT_DOUBLE_EQ(PrecisionAtK(MakeList({1, 2}), {1, 2}, 4).value(), 0.5);
}

TEST(PrecisionTest, RejectsZeroK) {
  EXPECT_FALSE(PrecisionAtK(MakeList({1}), {1}, 0).ok());
}

TEST(RecallTest, FractionOfRelevantFound) {
  const RankedList ranking = MakeList({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(RecallAtK(ranking, {1, 9}, 4).value(), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranking, {1, 2, 3, 4}, 2).value(), 0.5);
  EXPECT_DOUBLE_EQ(RecallAtK(ranking, {1}, 1).value(), 1.0);
}

TEST(RecallTest, RejectsEmptyRelevantSet) {
  EXPECT_FALSE(RecallAtK(MakeList({1}), {}, 1).ok());
}

TEST(ReciprocalRankTest, FirstHitPosition) {
  EXPECT_DOUBLE_EQ(ReciprocalRank(MakeList({5, 6, 7}), {7}), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(MakeList({5, 6, 7}), {5}), 1.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank(MakeList({5, 6, 7}), {9}), 0.0);
  EXPECT_DOUBLE_EQ(ReciprocalRank({}, {1}), 0.0);
}

TEST(AveragePrecisionTest, KnownValues) {
  // Relevant {1,3} in ranking (1,2,3,4): hits at ranks 1 and 3 ->
  // AP = (1/1 + 2/3) / 2.
  EXPECT_NEAR(AveragePrecision(MakeList({1, 2, 3, 4}), {1, 3}).value(),
              (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  // All relevant at the head: AP = 1.
  EXPECT_DOUBLE_EQ(AveragePrecision(MakeList({1, 2}), {1, 2}).value(), 1.0);
  // Relevant node never ranked: contributes 0.
  EXPECT_DOUBLE_EQ(AveragePrecision(MakeList({1}), {9}).value(), 0.0);
}

TEST(NdcgTest, PerfectRankingIsOne) {
  EXPECT_NEAR(NdcgAtK(MakeList({1, 2, 3}), {1, 2}, 3).value(), 1.0, 1e-12);
}

TEST(NdcgTest, WorstPlacementLowerThanBest) {
  const double best = NdcgAtK(MakeList({1, 8, 9}), {1}, 3).value();
  const double worst = NdcgAtK(MakeList({8, 9, 1}), {1}, 3).value();
  EXPECT_DOUBLE_EQ(best, 1.0);
  EXPECT_NEAR(worst, std::log2(2.0) / std::log2(4.0), 1e-12);
  EXPECT_LT(worst, best);
}

TEST(NdcgTest, KnownMixedValue) {
  // Relevant {1,3}; ranking (2,1,3): gains at positions 2 and 3.
  const double dcg = 1.0 / std::log2(3.0) + 1.0 / std::log2(4.0);
  const double ideal = 1.0 / std::log2(2.0) + 1.0 / std::log2(3.0);
  EXPECT_NEAR(NdcgAtK(MakeList({2, 1, 3}), {1, 3}, 3).value(), dcg / ideal,
              1e-12);
}

TEST(NdcgTest, RejectsBadArguments) {
  EXPECT_FALSE(NdcgAtK(MakeList({1}), {1}, 0).ok());
  EXPECT_FALSE(NdcgAtK(MakeList({1}), {}, 3).ok());
}

}  // namespace
}  // namespace cyclerank
