#include "eval/comparison.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace cyclerank {
namespace {

Graph LabeledGraph() {
  GraphBuilder builder;
  builder.AddEdge("alpha", "beta");
  builder.AddEdge("beta", "gamma");
  builder.AddEdge("gamma", "delta");
  return builder.Build().value();
}

RankedList List(std::initializer_list<NodeId> nodes) {
  RankedList out;
  double score = 1.0;
  for (NodeId u : nodes) {
    out.push_back({u, score});
    score /= 2;
  }
  return out;
}

TEST(ComparisonTableTest, RendersHeadersAndRows) {
  const Graph g = LabeledGraph();
  const std::vector<ComparisonColumn> columns = {
      {"PageRank", List({0, 1, 2})},
      {"Cyclerank", List({2, 1, 0})},
  };
  ComparisonTableOptions options;
  options.top_k = 3;
  const std::string table = RenderComparisonTable(g, columns, options);
  EXPECT_NE(table.find("PageRank"), std::string::npos);
  EXPECT_NE(table.find("Cyclerank"), std::string::npos);
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("gamma"), std::string::npos);
  // Three data rows: "  1", "  2", "  3".
  EXPECT_NE(table.find("\n  1"), std::string::npos);
  EXPECT_NE(table.find("\n  3"), std::string::npos);
}

TEST(ComparisonTableTest, SkipNodeOmitsReference) {
  const Graph g = LabeledGraph();
  const std::vector<ComparisonColumn> columns = {{"CR", List({0, 1, 2})}};
  ComparisonTableOptions options;
  options.top_k = 2;
  options.skip_node = 0;  // "alpha" is the reference
  const std::string table = RenderComparisonTable(g, columns, options);
  EXPECT_EQ(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
  EXPECT_NE(table.find("gamma"), std::string::npos);
}

TEST(ComparisonTableTest, EmptyCellsRenderedAsDash) {
  // The nl / pl columns of Table III: fewer results than rows.
  const Graph g = LabeledGraph();
  const std::vector<ComparisonColumn> columns = {{"CR", List({1})}};
  ComparisonTableOptions options;
  options.top_k = 3;
  const std::string table = RenderComparisonTable(g, columns, options);
  EXPECT_NE(table.find("-"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
}

TEST(ComparisonTableTest, ScoresShownOnRequest) {
  const Graph g = LabeledGraph();
  const std::vector<ComparisonColumn> columns = {{"CR", List({0})}};
  ComparisonTableOptions options;
  options.top_k = 1;
  options.show_scores = true;
  const std::string table = RenderComparisonTable(g, columns, options);
  EXPECT_NE(table.find("(1)"), std::string::npos);
}

TEST(PairwiseTest, ComputesAllPairs) {
  const std::vector<ComparisonColumn> columns = {
      {"A", List({0, 1, 2})},
      {"B", List({0, 1, 2})},
      {"C", List({3, 4, 5})},
  };
  const auto pairs = ComparePairwise(columns, 3);
  ASSERT_EQ(pairs.size(), 3u);  // AB, AC, BC
  EXPECT_DOUBLE_EQ(pairs[0].jaccard_top_k, 1.0);  // A vs B identical
  EXPECT_DOUBLE_EQ(pairs[1].jaccard_top_k, 0.0);  // A vs C disjoint
  EXPECT_DOUBLE_EQ(pairs[0].overlap_top_k, 1.0);
  EXPECT_GT(pairs[0].rbo, 0.99);
}

TEST(PairwiseTest, RenderContainsMetrics) {
  const std::vector<ComparisonColumn> columns = {
      {"A", List({0, 1})},
      {"B", List({1, 0})},
  };
  const std::string text = RenderPairwise(ComparePairwise(columns, 2));
  EXPECT_NE(text.find("A vs B"), std::string::npos);
  EXPECT_NE(text.find("jaccard=1"), std::string::npos);
  EXPECT_NE(text.find("rbo="), std::string::npos);
}

}  // namespace
}  // namespace cyclerank
