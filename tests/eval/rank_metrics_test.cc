#include "eval/rank_metrics.h"

#include <gtest/gtest.h>

namespace cyclerank {
namespace {

RankedList MakeList(std::initializer_list<NodeId> nodes) {
  RankedList out;
  double score = 1.0;
  for (NodeId u : nodes) {
    out.push_back({u, score});
    score *= 0.9;
  }
  return out;
}

TEST(JaccardTest, IdenticalSetsScoreOne) {
  const RankedList a = MakeList({1, 2, 3});
  EXPECT_DOUBLE_EQ(JaccardAtK(a, a, 3), 1.0);
  EXPECT_DOUBLE_EQ(JaccardAtK(a, a, 0), 1.0);
}

TEST(JaccardTest, DisjointSetsScoreZero) {
  EXPECT_DOUBLE_EQ(JaccardAtK(MakeList({1, 2}), MakeList({3, 4}), 2), 0.0);
}

TEST(JaccardTest, PartialOverlap) {
  // top-3 sets {1,2,3} and {2,3,4}: |∩|=2, |∪|=4.
  EXPECT_DOUBLE_EQ(JaccardAtK(MakeList({1, 2, 3}), MakeList({2, 3, 4}), 3),
                   0.5);
}

TEST(JaccardTest, OrderIrrelevant) {
  EXPECT_DOUBLE_EQ(JaccardAtK(MakeList({1, 2, 3}), MakeList({3, 2, 1}), 3),
                   1.0);
}

TEST(JaccardTest, EmptyListsAreIdentical) {
  EXPECT_DOUBLE_EQ(JaccardAtK({}, {}, 5), 1.0);
}

TEST(OverlapTest, NormalizesByK) {
  EXPECT_DOUBLE_EQ(OverlapAtK(MakeList({1, 2, 3}), MakeList({2, 3, 4}), 3),
                   2.0 / 3.0);
  EXPECT_DOUBLE_EQ(OverlapAtK(MakeList({1}), MakeList({1}), 1), 1.0);
}

TEST(RboTest, IdenticalRankingsScoreOne) {
  const RankedList a = MakeList({5, 3, 8, 1});
  EXPECT_NEAR(RankBiasedOverlap(a, a).value(), 1.0, 1e-12);
}

TEST(RboTest, DisjointRankingsScoreZero) {
  EXPECT_NEAR(
      RankBiasedOverlap(MakeList({1, 2, 3}), MakeList({4, 5, 6})).value(),
      0.0, 1e-12);
}

TEST(RboTest, TopWeightedness) {
  // Agreement at the head is worth more than agreement at the tail.
  const RankedList base = MakeList({1, 2, 3, 4});
  const RankedList head_same = MakeList({1, 2, 9, 8});
  const RankedList tail_same = MakeList({9, 8, 3, 4});
  EXPECT_GT(RankBiasedOverlap(base, head_same).value(),
            RankBiasedOverlap(base, tail_same).value());
}

TEST(RboTest, SymmetricInArguments) {
  const RankedList a = MakeList({1, 2, 3, 4});
  const RankedList b = MakeList({2, 1, 5, 3});
  EXPECT_NEAR(RankBiasedOverlap(a, b).value(),
              RankBiasedOverlap(b, a).value(), 1e-12);
}

TEST(RboTest, RejectsBadPersistence) {
  const RankedList a = MakeList({1});
  EXPECT_FALSE(RankBiasedOverlap(a, a, 0.0).ok());
  EXPECT_FALSE(RankBiasedOverlap(a, a, 1.0).ok());
}

TEST(KendallTest, PerfectAgreement) {
  const RankedList a = MakeList({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(KendallTau(a, a).value(), 1.0);
}

TEST(KendallTest, PerfectDisagreement) {
  EXPECT_DOUBLE_EQ(
      KendallTau(MakeList({1, 2, 3, 4}), MakeList({4, 3, 2, 1})).value(),
      -1.0);
}

TEST(KendallTest, SingleSwap) {
  // One discordant pair among C(4,2)=6.
  EXPECT_NEAR(
      KendallTau(MakeList({1, 2, 3, 4}), MakeList({2, 1, 3, 4})).value(),
      (5.0 - 1.0) / 6.0, 1e-12);
}

TEST(KendallTest, RestrictedToCommonNodes) {
  // Common nodes {2,3} in the same relative order -> tau 1.
  EXPECT_DOUBLE_EQ(
      KendallTau(MakeList({1, 2, 3}), MakeList({2, 3, 9})).value(), 1.0);
}

TEST(KendallTest, TooFewCommonNodesRejected) {
  EXPECT_FALSE(KendallTau(MakeList({1, 2}), MakeList({3, 4})).ok());
  EXPECT_FALSE(KendallTau(MakeList({1}), MakeList({1})).ok());
}

TEST(SpearmanTest, PerfectAgreementAndReversal) {
  const RankedList a = MakeList({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(SpearmanRho(a, a).value(), 1.0);
  EXPECT_DOUBLE_EQ(SpearmanRho(a, MakeList({5, 4, 3, 2, 1})).value(), -1.0);
}

TEST(SpearmanTest, KnownValue) {
  // Ranks a: 0,1,2,3 vs b: 1,0,3,2 -> d² = 4 -> rho = 1 - 24/60 = 0.6.
  EXPECT_NEAR(
      SpearmanRho(MakeList({1, 2, 3, 4}), MakeList({2, 1, 4, 3})).value(),
      0.6, 1e-12);
}

TEST(FootruleTest, ZeroForIdenticalOneForReversed) {
  const RankedList a = MakeList({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(SpearmanFootrule(a, a).value(), 0.0);
  EXPECT_DOUBLE_EQ(SpearmanFootrule(a, MakeList({4, 3, 2, 1})).value(), 1.0);
}

TEST(FootruleTest, IntermediateValue) {
  // a: 0,1,2,3 ; b ranks: 1,0,3,2 -> |d| sum = 4; max = floor(16/2)=8.
  EXPECT_NEAR(
      SpearmanFootrule(MakeList({1, 2, 3, 4}), MakeList({2, 1, 4, 3})).value(),
      0.5, 1e-12);
}

}  // namespace
}  // namespace cyclerank
