#include "platform/result_cache.h"

#include <gtest/gtest.h>

#include <string>

namespace cyclerank {
namespace {

/// A completed result with `entries` ranking rows (the footprint knob).
TaskResult MakeResult(const std::string& task_id, size_t entries) {
  TaskResult result;
  result.task_id = task_id;
  result.spec.dataset = "d";
  result.spec.algorithm = "pagerank";
  result.status = Status::OK();
  for (size_t i = 0; i < entries; ++i) {
    result.ranking.push_back({static_cast<NodeId>(i), 1.0 / (1.0 + i)});
  }
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache;
  EXPECT_FALSE(cache.Get("k").has_value());
  cache.Put("k", MakeResult("t", 10));
  const auto hit = cache.Get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->task_id, "t");
  EXPECT_EQ(hit->ranking.size(), 10u);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedWhenOverBudget) {
  const size_t one = ResultCache::EstimateBytes("a", MakeResult("t", 100));
  // Room for two ~equal entries, not three.
  ResultCache cache(2 * one + one / 2);
  cache.Put("a", MakeResult("t", 100));
  cache.Put("b", MakeResult("t", 100));
  ASSERT_TRUE(cache.Get("a").has_value());  // bump "a": "b" is now LRU
  cache.Put("c", MakeResult("t", 100));
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, cache.max_bytes());
}

TEST(ResultCacheTest, EntryLargerThanBudgetRejected) {
  ResultCache cache(256);
  cache.Put("big", MakeResult("t", 10000));
  EXPECT_FALSE(cache.Get("big").has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCacheTest, ZeroBudgetDisablesStorage) {
  ResultCache cache(0);
  cache.Put("k", MakeResult("t", 1));
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, OverwriteReplacesEntryAndBytes) {
  ResultCache cache;
  cache.Put("k", MakeResult("old", 100));
  const size_t bytes_before = cache.stats().bytes;
  cache.Put("k", MakeResult("new", 10));
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_LT(stats.bytes, bytes_before);
  EXPECT_EQ(cache.Get("k")->task_id, "new");
}

TEST(ResultCacheTest, ClearEmptiesEntriesKeepsCounters) {
  ResultCache cache;
  cache.Put("k", MakeResult("t", 5));
  ASSERT_TRUE(cache.Get("k").has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get("k").has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // counters survive Clear
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, GetReturnsACopy) {
  ResultCache cache;
  cache.Put("k", MakeResult("t", 3));
  auto first = cache.Get("k");
  first->ranking.clear();  // mutating the copy must not corrupt the cache
  EXPECT_EQ(cache.Get("k")->ranking.size(), 3u);
}

}  // namespace
}  // namespace cyclerank
