#include "platform/result_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "platform/spill_tier.h"
#include "storage_test_util.h"

namespace cyclerank {
namespace {

/// A completed result with `entries` ranking rows (the footprint knob).
TaskResult MakeResult(const std::string& task_id, size_t entries) {
  TaskResult result;
  result.task_id = task_id;
  result.spec.dataset = "d";
  result.spec.algorithm = "pagerank";
  result.status = Status::OK();
  for (size_t i = 0; i < entries; ++i) {
    result.ranking.push_back({static_cast<NodeId>(i), 1.0 / (1.0 + i)});
  }
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache;
  EXPECT_FALSE(cache.Get("k").has_value());
  cache.Put("k", MakeResult("t", 10));
  const auto hit = cache.Get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->task_id, "t");
  EXPECT_EQ(hit->ranking.size(), 10u);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedWhenOverBudget) {
  const size_t one = ResultCache::EstimateBytes("a", MakeResult("t", 100));
  // Room for two ~equal entries, not three.
  ResultCache cache(2 * one + one / 2);
  cache.Put("a", MakeResult("t", 100));
  cache.Put("b", MakeResult("t", 100));
  ASSERT_TRUE(cache.Get("a").has_value());  // bump "a": "b" is now LRU
  cache.Put("c", MakeResult("t", 100));
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_LE(stats.bytes, cache.max_bytes());
}

TEST(ResultCacheTest, EntryLargerThanBudgetRejected) {
  ResultCache cache(256);
  cache.Put("big", MakeResult("t", 10000));
  EXPECT_FALSE(cache.Get("big").has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ResultCacheTest, ZeroBudgetDisablesStorage) {
  ResultCache cache(0);
  cache.Put("k", MakeResult("t", 1));
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, OverwriteReplacesEntryAndBytes) {
  ResultCache cache;
  cache.Put("k", MakeResult("old", 100));
  const size_t bytes_before = cache.stats().bytes;
  cache.Put("k", MakeResult("new", 10));
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_LT(stats.bytes, bytes_before);
  EXPECT_EQ(cache.Get("k")->task_id, "new");
}

TEST(ResultCacheTest, ClearEmptiesEntriesKeepsCounters) {
  ResultCache cache;
  cache.Put("k", MakeResult("t", 5));
  ASSERT_TRUE(cache.Get("k").has_value());
  cache.Clear();
  EXPECT_FALSE(cache.Get("k").has_value());
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.hits, 1u);  // counters survive Clear
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, GetReturnsACopy) {
  ResultCache cache;
  cache.Put("k", MakeResult("t", 3));
  auto first = cache.Get("k");
  first->ranking.clear();  // mutating the copy must not corrupt the cache
  EXPECT_EQ(cache.Get("k")->ranking.size(), 3u);
}

// ---- PR 6: disk tier behind the cache --------------------------------------

TEST(ResultCacheSpillTest, EvictedEntryDemotesToDiskAndReloads) {
  SpillTier spill(FreshSpillDir("cache_demote"), SpillTierOptions{},
                  "cached result");
  const size_t one = ResultCache::EstimateBytes("a", MakeResult("t", 100));
  ResultCache cache(2 * one + one / 2, &spill);
  cache.Put("a", MakeResult("result-a", 100));
  cache.Put("b", MakeResult("result-b", 100));
  cache.Put("c", MakeResult("result-c", 100));  // evicts "a" → disk
  spill.Flush();
  EXPECT_EQ(cache.stats().disk_spills, 1u);
  EXPECT_TRUE(spill.Contains("a"));
  // The next fingerprint hit reloads from disk — a hit, not a kernel re-run
  // — and re-admits to memory (evicting the now-LRU "b" in its place).
  const auto reloaded = cache.Get("a");
  ASSERT_TRUE(reloaded.has_value());
  EXPECT_EQ(reloaded->task_id, "result-a");
  EXPECT_EQ(reloaded->ranking.size(), 100u);
  const ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.disk_reloads, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ResultCacheSpillTest, ReDemotionSkipsRewriteForContentAddressedKeys) {
  SpillTier spill(FreshSpillDir("cache_redemote"), SpillTierOptions{},
                  "cached result");
  const size_t one = ResultCache::EstimateBytes("a", MakeResult("t", 100));
  ResultCache cache(one + one / 2, &spill);  // room for exactly one entry
  cache.Put("a", MakeResult("result-a", 100));
  cache.Put("b", MakeResult("result-b", 100));  // demotes "a"
  spill.Flush();
  const SpillTierStats before = spill.stats();
  ASSERT_TRUE(cache.Get("a").has_value());  // reload "a", demote "b"
  ASSERT_TRUE(cache.Get("b").has_value());  // reload "b", demote "a" again
  spill.Flush();
  // Fingerprints are content-addressed, so the second demotion of "a" found
  // its disk copy still valid and skipped the rewrite.
  EXPECT_EQ(spill.stats().spills, before.spills + 1);  // only "b" was new
  EXPECT_EQ(cache.stats().disk_spills, 3u);
}

TEST(ResultCacheSpillTest, ErasePrefixInvalidatesBothTiers) {
  SpillTier spill(FreshSpillDir("cache_eraseprefix"), SpillTierOptions{},
                  "cached result");
  const size_t one = ResultCache::EstimateBytes("a", MakeResult("t", 100));
  ResultCache cache(one + one / 2, &spill);
  cache.Put("d1/fp-old", MakeResult("stale", 100));
  cache.Put("d1/fp-new", MakeResult("fresh", 100));  // demotes fp-old to disk
  cache.Put("d2/fp", MakeResult("other", 10));
  spill.Flush();
  ASSERT_TRUE(spill.Contains("d1/fp-old"));
  // Re-binding dataset d1 must drop entries for it in *both* tiers, or the
  // disk tier would revive rankings computed against the old graph.
  EXPECT_EQ(cache.ErasePrefix("d1/"), 2u);
  EXPECT_FALSE(cache.Get("d1/fp-old").has_value());
  EXPECT_FALSE(cache.Get("d1/fp-new").has_value());
  EXPECT_FALSE(spill.Contains("d1/fp-old"));
  EXPECT_TRUE(cache.Get("d2/fp").has_value());
}

TEST(ResultCacheSpillTest, UndecodableSpillDegradesToMissAndIsDropped) {
  SpillTier spill(FreshSpillDir("cache_corrupt"), SpillTierOptions{},
                  "cached result");
  ResultCache cache(ResultCache::kDefaultMaxBytes, &spill);
  // Plant garbage under a key the cache will look up: the payload passes the
  // tier's checksum (it was stored as-is) but fails result deserialization.
  ASSERT_TRUE(spill.Put("k", "not a serialized TaskResult").ok());
  EXPECT_FALSE(cache.Get("k").has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  // The bad entry is dropped so it cannot fail again on every lookup.
  EXPECT_FALSE(spill.Contains("k"));
}

}  // namespace
}  // namespace cyclerank
